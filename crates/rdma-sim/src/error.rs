use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The `rkey` does not name a registered region (never registered, or
    /// already deregistered).
    UnknownRegion(u32),
    /// An access touched bytes outside the registered region.
    OutOfBounds {
        /// The offending region.
        rkey: u32,
        /// Requested start offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// Registered region size in bytes.
        region_len: u64,
    },
    /// An atomic verb used a non-8-byte-aligned offset.
    Misaligned {
        /// The offending region.
        rkey: u32,
        /// The unaligned offset.
        offset: u64,
    },
    /// A configuration value was out of range.
    InvalidParameter(String),
    /// A verb kept faulting past the queue pair's retransmission budget
    /// (see [`crate::QueuePair::set_retry_limit`]).
    RetriesExhausted {
        /// The verb that gave up.
        verb: &'static str,
        /// Attempts made (all faulted).
        attempts: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownRegion(rkey) => write!(f, "unknown region rkey {rkey}"),
            Error::OutOfBounds {
                rkey,
                offset,
                len,
                region_len,
            } => write!(
                f,
                "out-of-bounds access on rkey {rkey}: [{offset}, {offset}+{len}) exceeds region of {region_len} bytes"
            ),
            Error::Misaligned { rkey, offset } => {
                write!(f, "atomic on rkey {rkey} at unaligned offset {offset}")
            }
            Error::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Error::RetriesExhausted { verb, attempts } => {
                write!(f, "{verb} gave up after {attempts} faulted attempts")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_bounds() {
        let e = Error::OutOfBounds {
            rkey: 3,
            offset: 10,
            len: 20,
            region_len: 16,
        };
        let s = e.to_string();
        assert!(s.contains("rkey 3"));
        assert!(s.contains("16 bytes"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
