//! The network cost model.

use crate::{Error, Result};

/// Cost model for one-sided RDMA operations.
///
/// Time is charged in microseconds of virtual time:
///
/// ```text
/// cost(round trip with W work requests moving B bytes)
///   = base_rtt_us + W * per_wr_us + B * 8 / (bandwidth_gbps * 1000)
/// ```
///
/// A doorbell batch of `n` work requests executes in
/// `ceil(n / doorbell_limit)` round trips — posting more WRs than the NIC
/// can absorb in one doorbell forces extra trips, which is exactly the
/// scalability trade-off §3.2 of the paper describes.
///
/// The [`NetworkModel::connectx6`] preset approximates the paper's
/// testbed (Mellanox ConnectX-6, 100 Gb/s): ~2 µs base round trip and
/// ~0.2 µs of NIC/PCIe handling per work request.
///
/// # Example
///
/// ```rust
/// use rdma_sim::NetworkModel;
///
/// let m = NetworkModel::connectx6();
/// // A single small read costs roughly the base RTT.
/// let one = m.round_trip_cost_us(1, 64);
/// assert!(one >= 2.0 && one < 3.0);
/// // Moving a megabyte is bandwidth-dominated.
/// assert!(m.round_trip_cost_us(1, 1 << 20) > 80.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    base_rtt_us: f64,
    per_wr_us: f64,
    bandwidth_gbps: f64,
    doorbell_limit: usize,
}

impl NetworkModel {
    /// Creates a model from raw parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when any latency/bandwidth is
    /// non-positive or `doorbell_limit` is zero.
    pub fn new(
        base_rtt_us: f64,
        per_wr_us: f64,
        bandwidth_gbps: f64,
        doorbell_limit: usize,
    ) -> Result<Self> {
        if base_rtt_us <= 0.0 || bandwidth_gbps <= 0.0 || per_wr_us < 0.0 || base_rtt_us.is_nan() {
            return Err(Error::InvalidParameter(
                "latencies must be positive and bandwidth non-zero".into(),
            ));
        }
        if doorbell_limit == 0 {
            return Err(Error::InvalidParameter(
                "doorbell_limit must be >= 1".into(),
            ));
        }
        Ok(NetworkModel {
            base_rtt_us,
            per_wr_us,
            bandwidth_gbps,
            doorbell_limit,
        })
    }

    /// Preset approximating the paper's testbed: ConnectX-6 100 Gb/s,
    /// 2 µs base round trip, 0.2 µs per work request, 16 WRs per doorbell.
    pub fn connectx6() -> Self {
        NetworkModel {
            base_rtt_us: 2.0,
            per_wr_us: 0.2,
            bandwidth_gbps: 100.0,
            doorbell_limit: 16,
        }
    }

    /// A slower 25 Gb/s RoCE-style fabric, useful for sensitivity
    /// analysis.
    pub fn roce25() -> Self {
        NetworkModel {
            base_rtt_us: 5.0,
            per_wr_us: 0.3,
            bandwidth_gbps: 25.0,
            doorbell_limit: 16,
        }
    }

    /// Returns a copy with a different doorbell limit (for the §3.2
    /// ablation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `limit` is zero.
    pub fn with_doorbell_limit(mut self, limit: usize) -> Result<Self> {
        if limit == 0 {
            return Err(Error::InvalidParameter(
                "doorbell_limit must be >= 1".into(),
            ));
        }
        self.doorbell_limit = limit;
        Ok(self)
    }

    /// Returns a copy with a different base round-trip latency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `rtt_us` is non-positive.
    pub fn with_base_rtt_us(mut self, rtt_us: f64) -> Result<Self> {
        if rtt_us <= 0.0 || rtt_us.is_nan() {
            return Err(Error::InvalidParameter("base rtt must be positive".into()));
        }
        self.base_rtt_us = rtt_us;
        Ok(self)
    }

    /// Base round-trip latency in microseconds.
    pub fn base_rtt_us(&self) -> f64 {
        self.base_rtt_us
    }

    /// Per-work-request NIC/PCIe overhead in microseconds.
    pub fn per_wr_us(&self) -> f64 {
        self.per_wr_us
    }

    /// Line rate in Gb/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Maximum work requests the NIC absorbs per doorbell round trip.
    pub fn doorbell_limit(&self) -> usize {
        self.doorbell_limit
    }

    /// Virtual time for one round trip carrying `wrs` work requests and
    /// `bytes` total payload.
    pub fn round_trip_cost_us(&self, wrs: usize, bytes: usize) -> f64 {
        self.base_rtt_us
            + wrs as f64 * self.per_wr_us
            + (bytes as f64 * 8.0) / (self.bandwidth_gbps * 1_000.0)
    }

    /// Number of round trips a doorbell batch of `wrs` work requests
    /// needs under the doorbell limit.
    pub fn doorbell_round_trips(&self, wrs: usize) -> usize {
        wrs.div_ceil(self.doorbell_limit)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::connectx6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connectx6_preset_is_valid() {
        let m = NetworkModel::connectx6();
        assert_eq!(m.bandwidth_gbps(), 100.0);
        assert_eq!(m.doorbell_limit(), 16);
    }

    #[test]
    fn cost_scales_with_bytes() {
        let m = NetworkModel::connectx6();
        let small = m.round_trip_cost_us(1, 100);
        let large = m.round_trip_cost_us(1, 1_000_000);
        assert!(large > small);
        // 1 MB at 100 Gb/s is 80 µs of serialization alone.
        assert!((large - small) > 70.0);
    }

    #[test]
    fn cost_scales_with_work_requests() {
        let m = NetworkModel::connectx6();
        assert!(m.round_trip_cost_us(10, 0) > m.round_trip_cost_us(1, 0));
    }

    #[test]
    fn doorbell_round_trips_split_on_limit() {
        let m = NetworkModel::connectx6().with_doorbell_limit(4).unwrap();
        assert_eq!(m.doorbell_round_trips(1), 1);
        assert_eq!(m.doorbell_round_trips(4), 1);
        assert_eq!(m.doorbell_round_trips(5), 2);
        assert_eq!(m.doorbell_round_trips(17), 5);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(NetworkModel::new(0.0, 0.1, 100.0, 16).is_err());
        assert!(NetworkModel::new(2.0, 0.1, 0.0, 16).is_err());
        assert!(NetworkModel::new(2.0, -0.1, 100.0, 16).is_err());
        assert!(NetworkModel::new(2.0, 0.1, 100.0, 0).is_err());
        assert!(NetworkModel::connectx6().with_doorbell_limit(0).is_err());
        assert!(NetworkModel::connectx6().with_base_rtt_us(-1.0).is_err());
    }

    #[test]
    fn roce_preset_is_slower_than_connectx6() {
        let fast = NetworkModel::connectx6();
        let slow = NetworkModel::roce25();
        assert!(slow.round_trip_cost_us(1, 1 << 20) > fast.round_trip_cost_us(1, 1 << 20));
    }
}
