//! Asynchronous verb posting with completion queues.
//!
//! Real RDMA applications rarely call blocking verbs: they *post* work
//! requests to a queue pair's send queue, *ring the doorbell* once for
//! the whole batch, and later *poll the completion queue*. This module
//! gives [`QueuePair`] that surface. It is sugar over the same execution
//! and cost model as the synchronous verbs — a rung doorbell costs
//! exactly what [`QueuePair::read_doorbell`] charges for the same batch —
//! but it lets callers interleave posting with other work and consume
//! completions incrementally, the way a real event loop does.
//!
//! # Example
//!
//! ```rust
//! use rdma_sim::{MemoryNode, NetworkModel, QueuePair, ReadReq};
//!
//! # fn main() -> Result<(), rdma_sim::Error> {
//! let node = MemoryNode::new("mem0");
//! let region = node.register(64)?;
//! let qp = QueuePair::connect(&node, NetworkModel::connectx6());
//! qp.write(region.rkey(), 0, &[7; 8])?;
//!
//! qp.post_read(1, ReadReq::new(region.rkey(), 0, 4));
//! qp.post_read(2, ReadReq::new(region.rkey(), 4, 4));
//! qp.ring_doorbell()?; // one round trip for both
//!
//! let done = qp.poll_cq(16);
//! assert_eq!(done.len(), 2);
//! assert_eq!(done[0].wr_id, 1);
//! assert_eq!(done[0].payload.as_deref(), Some(&[7u8, 7, 7, 7][..]));
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::{QueuePair, ReadReq, Result, WriteReq};

/// The verb a completion corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerbKind {
    /// `RDMA_READ`.
    Read,
    /// `RDMA_WRITE`.
    Write,
}

/// One entry popped from the completion queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Caller-chosen work-request id, echoed back.
    pub wr_id: u64,
    /// Which verb completed.
    pub op: VerbKind,
    /// For reads, the fetched bytes; `None` for writes.
    pub payload: Option<Vec<u8>>,
}

#[derive(Debug)]
enum Pending {
    Read(u64, ReadReq),
    Write(u64, WriteReq),
}

/// Send-queue and completion-queue state attached to a [`QueuePair`].
#[derive(Debug, Default)]
pub(crate) struct SendState {
    pending: Mutex<Vec<Pending>>,
    completions: Mutex<VecDeque<Completion>>,
}

impl QueuePair {
    /// Posts a read work request to the send queue. Nothing executes (or
    /// costs anything) until [`QueuePair::ring_doorbell`].
    pub fn post_read(&self, wr_id: u64, req: ReadReq) {
        self.send_state().pending.lock().push(Pending::Read(wr_id, req));
    }

    /// Posts a write work request to the send queue.
    pub fn post_write(&self, wr_id: u64, req: WriteReq) {
        self.send_state()
            .pending
            .lock()
            .push(Pending::Write(wr_id, req));
    }

    /// Work requests currently posted but not yet rung.
    pub fn posted(&self) -> usize {
        self.send_state().pending.lock().len()
    }

    /// Rings the doorbell: executes every posted work request as doorbell
    /// batches (reads and writes batch separately, preserving post
    /// order within each kind) and pushes one [`Completion`] per request
    /// onto the completion queue. Returns how many requests executed.
    ///
    /// # Errors
    ///
    /// Validates all requests before executing any; on failure the send
    /// queue is left intact, nothing executes, and nothing is charged —
    /// the caller can inspect, fix, or drop the batch.
    pub fn ring_doorbell(&self) -> Result<usize> {
        let state = self.send_state();
        let mut pending = state.pending.lock();
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for p in pending.iter() {
            match p {
                Pending::Read(id, r) => reads.push((*id, *r)),
                Pending::Write(id, w) => writes.push((*id, w.clone())),
            }
        }
        let read_reqs: Vec<ReadReq> = reads.iter().map(|(_, r)| *r).collect();
        let write_reqs: Vec<WriteReq> = writes.iter().map(|(_, w)| w.clone()).collect();

        // All-or-nothing: validate every request up front so a bad write
        // cannot leave the batch half-executed after the reads ran.
        for r in &read_reqs {
            self.check_bounds(r.rkey, r.offset, r.len)?;
        }
        for w in &write_reqs {
            self.check_bounds(w.rkey, w.offset, w.data.len() as u64)?;
        }
        let buffers = self.read_doorbell(&read_reqs)?;
        self.write_doorbell(&write_reqs)?;

        let count = pending.len();
        pending.clear();
        drop(pending);

        let mut cq = state.completions.lock();
        for ((wr_id, _), payload) in reads.into_iter().zip(buffers) {
            cq.push_back(Completion {
                wr_id,
                op: VerbKind::Read,
                payload: Some(payload),
            });
        }
        for (wr_id, _) in writes {
            cq.push_back(Completion {
                wr_id,
                op: VerbKind::Write,
                payload: None,
            });
        }
        Ok(count)
    }

    /// Polls up to `max` completions, in completion order.
    pub fn poll_cq(&self, max: usize) -> Vec<Completion> {
        let mut cq = self.send_state().completions.lock();
        let take = max.min(cq.len());
        cq.drain(..take).collect()
    }

    /// Completions currently waiting to be polled.
    pub fn cq_depth(&self) -> usize {
        self.send_state().completions.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryNode, NetworkModel};

    fn setup() -> (std::sync::Arc<MemoryNode>, crate::RegionHandle, QueuePair) {
        let node = MemoryNode::new("m");
        let region = node.register(256).unwrap();
        let qp = QueuePair::connect(&node, NetworkModel::connectx6());
        (node, region, qp)
    }

    #[test]
    fn post_then_ring_executes_and_completes() {
        let (_n, r, qp) = setup();
        qp.write(r.rkey(), 0, &[1, 2, 3, 4]).unwrap();
        qp.post_read(7, ReadReq::new(r.rkey(), 0, 2));
        qp.post_read(8, ReadReq::new(r.rkey(), 2, 2));
        assert_eq!(qp.posted(), 2);
        assert_eq!(qp.ring_doorbell().unwrap(), 2);
        assert_eq!(qp.posted(), 0);
        let done = qp.poll_cq(10);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].payload.as_deref(), Some(&[1u8, 2][..]));
        assert_eq!(done[1].wr_id, 8);
    }

    #[test]
    fn posting_costs_nothing_until_rung() {
        let (_n, r, qp) = setup();
        qp.post_read(1, ReadReq::new(r.rkey(), 0, 8));
        assert_eq!(qp.clock().now_us(), 0.0);
        assert_eq!(qp.stats().round_trips(), 0);
        qp.ring_doorbell().unwrap();
        assert!(qp.clock().now_us() > 0.0);
        assert_eq!(qp.stats().round_trips(), 1);
    }

    #[test]
    fn rung_batch_costs_same_as_read_doorbell() {
        let node = MemoryNode::new("m");
        let r = node.register(1024).unwrap();
        let sync_qp = QueuePair::connect(&node, NetworkModel::connectx6());
        let async_qp = QueuePair::connect(&node, NetworkModel::connectx6());
        let reqs: Vec<ReadReq> = (0..8).map(|i| ReadReq::new(r.rkey(), i * 64, 64)).collect();
        sync_qp.read_doorbell(&reqs).unwrap();
        for (i, req) in reqs.iter().enumerate() {
            async_qp.post_read(i as u64, *req);
        }
        async_qp.ring_doorbell().unwrap();
        assert_eq!(sync_qp.clock().now_us(), async_qp.clock().now_us());
        assert_eq!(
            sync_qp.stats().round_trips(),
            async_qp.stats().round_trips()
        );
    }

    #[test]
    fn mixed_reads_and_writes_complete_with_kinds() {
        let (_n, r, qp) = setup();
        qp.post_write(1, WriteReq::new(r.rkey(), 0, vec![9, 9]));
        qp.post_read(2, ReadReq::new(r.rkey(), 16, 2));
        qp.ring_doorbell().unwrap();
        let done = qp.poll_cq(10);
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|c| c.op == VerbKind::Write && c.wr_id == 1));
        assert!(done.iter().any(|c| c.op == VerbKind::Read && c.wr_id == 2));
        // The write actually landed.
        assert_eq!(qp.read(r.rkey(), 0, 2).unwrap(), vec![9, 9]);
    }

    #[test]
    fn invalid_batch_leaves_send_queue_intact() {
        let (_n, r, qp) = setup();
        qp.post_read(1, ReadReq::new(r.rkey(), 0, 8));
        qp.post_read(2, ReadReq::new(r.rkey(), 10_000, 8)); // out of bounds
        assert!(qp.ring_doorbell().is_err());
        assert_eq!(qp.posted(), 2, "failed ring must not consume the queue");
        assert_eq!(qp.cq_depth(), 0);
        assert_eq!(qp.stats().round_trips(), 0);
    }

    #[test]
    fn poll_cq_respects_max_and_order() {
        let (_n, r, qp) = setup();
        for i in 0..5u64 {
            qp.post_read(i, ReadReq::new(r.rkey(), i * 8, 8));
        }
        qp.ring_doorbell().unwrap();
        assert_eq!(qp.cq_depth(), 5);
        let first = qp.poll_cq(2);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].wr_id, 0);
        assert_eq!(qp.cq_depth(), 3);
        let rest = qp.poll_cq(100);
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[2].wr_id, 4);
    }

    #[test]
    fn empty_ring_is_a_noop() {
        let (_n, _r, qp) = setup();
        assert_eq!(qp.ring_doorbell().unwrap(), 0);
        assert_eq!(qp.clock().now_us(), 0.0);
        assert!(qp.poll_cq(1).is_empty());
    }
}
