//! A deterministic, in-process simulation of an RDMA disaggregated-memory
//! fabric.
//!
//! The d-HNSW paper runs on Mellanox ConnectX-6 100 Gb NICs. This crate is
//! the substitution that removes the hardware gate while preserving what
//! the paper's evaluation actually measures: **round trips**, **bytes
//! moved**, **work-request counts**, and **doorbell consolidation**. Every
//! one-sided verb is executed against real in-process buffers (reads
//! return real data, writes mutate it, CAS is atomic under a lock) while a
//! [`NetworkModel`] charges virtual time to the issuing queue pair's
//! [`VirtualClock`].
//!
//! # Architecture
//!
//! - [`MemoryNode`] — the passive memory-pool side: registered memory
//!   regions addressed by `rkey` + byte offset. No compute ever happens
//!   here, matching the paper's "extremely weak computational power"
//!   memory instances.
//! - [`QueuePair`] — the compute-side handle. One-sided
//!   [`QueuePair::read`], [`QueuePair::write`], [`QueuePair::cas`],
//!   [`QueuePair::faa`], plus [`QueuePair::read_doorbell`] /
//!   [`QueuePair::write_doorbell`] which execute many work requests in
//!   `ceil(n / doorbell_limit)` network round trips — the §3.2 doorbell
//!   batching with its NIC-scalability cap.
//! - Asynchronous posting — [`QueuePair::post_read`] /
//!   [`QueuePair::post_write`] + [`QueuePair::ring_doorbell`] +
//!   [`QueuePair::poll_cq`], the completion-queue shape real verbs code
//!   uses (same cost model as the blocking calls).
//! - Fault injection — [`QueuePair::fail_next`] /
//!   [`QueuePair::set_fault_rate`] drop attempts which the queue pair
//!   retransmits like a reliable-connection NIC, charging timeout time
//!   ([`QueuePair::set_retry_limit`] bounds the budget).
//! - [`NetworkModel`] — the cost model: per-round-trip base latency,
//!   per-work-request NIC/PCIe overhead, and line-rate bandwidth.
//! - [`VirtualClock`] / [`TransferStats`] — the measurement plane the
//!   benchmark harness reads.
//!
//! # Example
//!
//! ```rust
//! use rdma_sim::{MemoryNode, NetworkModel, QueuePair, ReadReq};
//!
//! # fn main() -> Result<(), rdma_sim::Error> {
//! let node = MemoryNode::new("mem0");
//! let region = node.register(1024)?;
//!
//! let qp = QueuePair::connect(&node, NetworkModel::connectx6());
//! qp.write(region.rkey(), 0, b"hello remote memory")?;
//! let back = qp.read(region.rkey(), 0, 5)?;
//! assert_eq!(&back, b"hello");
//!
//! // Two discontiguous reads in one doorbell: one round trip.
//! let before = qp.stats().round_trips();
//! qp.read_doorbell(&[ReadReq::new(region.rkey(), 0, 5), ReadReq::new(region.rkey(), 6, 6)])?;
//! assert_eq!(qp.stats().round_trips() - before, 1);
//! assert!(qp.clock().now_us() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod cq;
mod error;
mod fault;
mod model;
mod node;
mod qp;
mod stats;
mod trace;

pub use clock::VirtualClock;
pub use cq::{Completion, VerbKind};
pub use error::Error;
pub use fault::DEFAULT_RETRY_LIMIT;
pub use model::NetworkModel;
pub use node::{MemoryNode, RegionHandle};
pub use qp::{QueuePair, ReadReq, WriteReq};
pub use stats::{ReadCause, StatsSnapshot, TransferStats, DOORBELL_SIZE_BUCKETS, READ_CAUSES};
pub use trace::{FaultEvent, TraceSink, VerbSpan, WqeSpan};

/// Convenient result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, Error>;
