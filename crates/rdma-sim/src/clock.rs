//! Virtual time accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing virtual clock, in microseconds.
///
/// Network costs computed by the [`crate::NetworkModel`] are charged here.
/// Internally the clock stores picoseconds in an `AtomicU64`, which keeps
/// `advance` lock-free and exact enough (2^64 ps ≈ 213 days) for any
/// simulation this crate runs.
///
/// # Example
///
/// ```rust
/// use rdma_sim::VirtualClock;
///
/// let clock = VirtualClock::new();
/// clock.advance_us(2.5);
/// clock.advance_us(0.5);
/// assert!((clock.now_us() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    picos: AtomicU64,
}

const PICOS_PER_US: f64 = 1_000_000.0;

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock by `us` microseconds. Negative or non-finite
    /// amounts are ignored (costs are never negative by construction).
    pub fn advance_us(&self, us: f64) {
        if us.is_finite() && us > 0.0 {
            self.picos
                .fetch_add((us * PICOS_PER_US) as u64, Ordering::Relaxed);
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> f64 {
        self.picos.load(Ordering::Relaxed) as f64 / PICOS_PER_US
    }

    /// Resets the clock to zero (between benchmark phases).
    pub fn reset(&self) {
        self.picos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now_us(), 0.0);
    }

    #[test]
    fn accumulates_small_increments_exactly_enough() {
        let c = VirtualClock::new();
        for _ in 0..1_000 {
            c.advance_us(0.001);
        }
        assert!((c.now_us() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ignores_negative_and_nan() {
        let c = VirtualClock::new();
        c.advance_us(-5.0);
        c.advance_us(f64::NAN);
        assert_eq!(c.now_us(), 0.0);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = VirtualClock::new();
        c.advance_us(10.0);
        c.reset();
        assert_eq!(c.now_us(), 0.0);
    }

    #[test]
    fn concurrent_advances_are_not_lost() {
        let c = std::sync::Arc::new(VirtualClock::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.advance_us(0.01);
                    }
                });
            }
        });
        assert!((c.now_us() - 400.0).abs() < 0.1);
    }
}
