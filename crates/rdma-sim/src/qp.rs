//! The compute-side queue pair: one-sided verbs and doorbell batching.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::trace::{split_chunk_intervals, SharedSink, TraceSink, VerbSpan, WqeSpan};
use crate::{Error, MemoryNode, NetworkModel, ReadCause, Result, TransferStats, VirtualClock};

/// A read work request: fetch `len` bytes at `offset` within region
/// `rkey`, attributed to a [`ReadCause`] for byte provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReq {
    /// Target region.
    pub rkey: u32,
    /// Byte offset within the region.
    pub offset: u64,
    /// Bytes to fetch.
    pub len: u64,
    /// Why this read happens (defaults to [`ReadCause::Other`]).
    pub cause: ReadCause,
}

impl ReadReq {
    /// Creates a read request attributed to [`ReadCause::Other`].
    pub fn new(rkey: u32, offset: u64, len: u64) -> Self {
        ReadReq {
            rkey,
            offset,
            len,
            cause: ReadCause::Other,
        }
    }

    /// Re-tags this request with `cause`.
    pub fn with_cause(mut self, cause: ReadCause) -> Self {
        self.cause = cause;
        self
    }
}

/// A write work request: place `data` at `offset` within region `rkey`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReq {
    /// Target region.
    pub rkey: u32,
    /// Byte offset within the region.
    pub offset: u64,
    /// Payload to write.
    pub data: Vec<u8>,
}

impl WriteReq {
    /// Creates a write request.
    pub fn new(rkey: u32, offset: u64, data: Vec<u8>) -> Self {
        WriteReq { rkey, offset, data }
    }
}

/// A reliable-connection queue pair from a compute instance to one
/// [`MemoryNode`].
///
/// Every verb executes against the node's real buffers and charges
/// virtual time to this queue pair's [`VirtualClock`] according to the
/// [`NetworkModel`]; [`TransferStats`] counts what moved. Verbs take
/// `&self` — a queue pair may be shared across threads of one compute
/// instance, exactly like a real thread-safe QP wrapper would be.
///
/// # Example
///
/// ```rust
/// use rdma_sim::{MemoryNode, NetworkModel, QueuePair};
///
/// # fn main() -> Result<(), rdma_sim::Error> {
/// let node = MemoryNode::new("mem0");
/// let region = node.register(64)?;
/// let qp = QueuePair::connect(&node, NetworkModel::connectx6());
///
/// qp.write(region.rkey(), 8, &[1, 2, 3])?;
/// assert_eq!(qp.read(region.rkey(), 8, 3)?, vec![1, 2, 3]);
/// assert_eq!(qp.stats().round_trips(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct QueuePair {
    node: Arc<MemoryNode>,
    model: NetworkModel,
    clock: VirtualClock,
    stats: TransferStats,
    send: crate::cq::SendState,
    fault: crate::fault::FaultState,
    has_sink: AtomicBool,
    sink: RwLock<Option<SharedSink>>,
}

impl QueuePair {
    /// Connects a new queue pair to `node` under cost model `model`.
    pub fn connect(node: &Arc<MemoryNode>, model: NetworkModel) -> Self {
        QueuePair {
            node: Arc::clone(node),
            model,
            clock: VirtualClock::new(),
            stats: TransferStats::new(),
            send: crate::cq::SendState::default(),
            fault: crate::fault::FaultState::default(),
            has_sink: AtomicBool::new(false),
            sink: RwLock::new(None),
        }
    }

    /// Installs (or removes) a [`TraceSink`] observing every verb this
    /// queue pair executes. With no sink installed the per-verb
    /// overhead is one relaxed atomic load.
    pub fn set_trace_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        let mut slot = self.sink.write();
        self.has_sink.store(sink.is_some(), Ordering::Relaxed);
        *slot = sink;
    }

    /// Emits a verb span (plus its work requests) to the sink, if any.
    fn emit_verb(&self, span: VerbSpan, wqes: &[WqeSpan]) {
        if !self.has_sink.load(Ordering::Relaxed) {
            return;
        }
        if let Some(sink) = self.sink.read().as_ref() {
            sink.verb_span(&span, wqes);
        }
    }

    /// Emits a single-work-request verb span covering `[vt0, now]`.
    fn emit_plain(&self, verb: &'static str, offset: u64, bytes: u64, vt0: f64) {
        if !self.has_sink.load(Ordering::Relaxed) {
            return;
        }
        let vt1 = self.clock.now_us();
        self.emit_verb(
            VerbSpan {
                verb,
                wqes: 1,
                bytes,
                chunk: 0,
                vt_start_us: vt0,
                vt_end_us: vt1,
            },
            &[WqeSpan {
                index: 0,
                offset,
                bytes,
                vt_start_us: vt0,
                vt_end_us: vt1,
            }],
        );
    }

    /// Emits a fault event to the sink, if any.
    pub(crate) fn emit_fault(&self, event: &crate::trace::FaultEvent) {
        if !self.has_sink.load(Ordering::Relaxed) {
            return;
        }
        if let Some(sink) = self.sink.read().as_ref() {
            sink.fault(event);
        }
    }

    pub(crate) fn fault_state(&self) -> &crate::fault::FaultState {
        &self.fault
    }

    /// Charges one base round trip of virtual time (a retransmission
    /// timeout).
    pub(crate) fn charge_timeout(&self) {
        self.clock.advance_us(self.model.base_rtt_us());
    }

    pub(crate) fn send_state(&self) -> &crate::cq::SendState {
        &self.send
    }

    pub(crate) fn check_bounds(&self, rkey: u32, offset: u64, len: u64) -> Result<()> {
        let region_len = self.node.region_len(rkey)?;
        if offset.checked_add(len).map(|end| end > region_len).unwrap_or(true) {
            return Err(Error::OutOfBounds {
                rkey,
                offset,
                len,
                region_len,
            });
        }
        Ok(())
    }

    /// One-sided `RDMA_READ`: one network round trip, attributed to
    /// [`ReadCause::Other`].
    ///
    /// # Errors
    ///
    /// [`Error::UnknownRegion`] or [`Error::OutOfBounds`].
    pub fn read(&self, rkey: u32, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.read_with_cause(rkey, offset, len, ReadCause::Other)
    }

    /// One-sided `RDMA_READ` with explicit byte provenance: identical
    /// cost and semantics to [`QueuePair::read`], but the bytes and the
    /// round trip are attributed to `cause` in [`TransferStats`].
    ///
    /// # Errors
    ///
    /// [`Error::UnknownRegion`] or [`Error::OutOfBounds`].
    pub fn read_with_cause(
        &self,
        rkey: u32,
        offset: u64,
        len: u64,
        cause: ReadCause,
    ) -> Result<Vec<u8>> {
        self.check_bounds(rkey, offset, len)?;
        self.admit("read")?;
        let region = self.node.region(rkey)?;
        let guard = region.read();
        let out = guard[offset as usize..(offset + len) as usize].to_vec();
        drop(guard);
        let vt0 = self.clock.now_us();
        self.clock
            .advance_us(self.model.round_trip_cost_us(1, len as usize));
        self.stats.record_read_round_trip(cause);
        self.stats.record_read_cause(cause, 1, len);
        self.node.service_stats().record_read_round_trip(cause);
        self.node.service_stats().record_read_cause(cause, 1, len);
        self.emit_plain("read", offset, len, vt0);
        Ok(out)
    }

    /// One-sided `RDMA_WRITE`: one network round trip.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownRegion`] or [`Error::OutOfBounds`].
    pub fn write(&self, rkey: u32, offset: u64, data: &[u8]) -> Result<()> {
        self.check_bounds(rkey, offset, data.len() as u64)?;
        self.admit("write")?;
        let region = self.node.region(rkey)?;
        region.write()[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        let vt0 = self.clock.now_us();
        self.clock
            .advance_us(self.model.round_trip_cost_us(1, data.len()));
        self.stats.record_round_trips(1);
        self.stats.record_write(1, data.len() as u64);
        self.node.service_stats().record_round_trips(1);
        self.node.service_stats().record_write(1, data.len() as u64);
        self.emit_plain("write", offset, data.len() as u64, vt0);
        Ok(())
    }

    /// Doorbell-batched reads: all requests are posted with a single
    /// doorbell and execute in `ceil(n / doorbell_limit)` network round
    /// trips (the NIC issues one PCIe transaction per work request). The
    /// §3.2 primitive for fetching discontiguous sub-HNSW clusters.
    ///
    /// Results are returned in request order. An empty batch is a no-op
    /// costing nothing.
    ///
    /// # Errors
    ///
    /// Validates every request before executing any; on failure nothing
    /// is charged or transferred.
    pub fn read_doorbell(&self, reqs: &[ReadReq]) -> Result<Vec<Vec<u8>>> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        for r in reqs {
            self.check_bounds(r.rkey, r.offset, r.len)?;
        }
        self.admit("read_doorbell")?;
        let mut out = Vec::with_capacity(reqs.len());
        for r in reqs {
            let region = self.node.region(r.rkey)?;
            let guard = region.read();
            out.push(guard[r.offset as usize..(r.offset + r.len) as usize].to_vec());
        }
        self.stats.record_doorbell(reqs.len() as u64);
        // Charge per doorbell-limit chunk: each chunk is one round trip.
        for (ci, chunk) in reqs.chunks(self.model.doorbell_limit()).enumerate() {
            let bytes: usize = chunk.iter().map(|r| r.len as usize).sum();
            let vt0 = self.clock.now_us();
            self.clock
                .advance_us(self.model.round_trip_cost_us(chunk.len(), bytes));
            // Bytes and WQEs are attributed per cause exactly; the
            // chunk's single round trip goes to the cause carrying the
            // most bytes in it (ties break to the lowest cause index).
            let mut per_cause = [(0u64, 0u64); crate::READ_CAUSES];
            for r in chunk {
                let slot = &mut per_cause[r.cause.index()];
                slot.0 += 1;
                slot.1 += r.len;
            }
            let dominant = ReadCause::ALL[per_cause
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.cmp(&b.1 .1).then(b.0.cmp(&a.0)))
                .map(|(i, _)| i)
                .unwrap_or(ReadCause::Other.index())];
            for (i, &(wrs, cbytes)) in per_cause.iter().enumerate() {
                if wrs == 0 {
                    continue;
                }
                let cause = ReadCause::ALL[i];
                self.stats.record_read_cause(cause, wrs, cbytes);
                self.node.service_stats().record_read_cause(cause, wrs, cbytes);
            }
            self.stats.record_read_round_trip(dominant);
            self.node.service_stats().record_read_round_trip(dominant);
            if self.has_sink.load(Ordering::Relaxed) {
                let vt1 = self.clock.now_us();
                let sizes: Vec<(u64, u64)> = chunk.iter().map(|r| (r.offset, r.len)).collect();
                self.emit_verb(
                    VerbSpan {
                        verb: "read_doorbell",
                        wqes: chunk.len() as u32,
                        bytes: bytes as u64,
                        chunk: ci as u32,
                        vt_start_us: vt0,
                        vt_end_us: vt1,
                    },
                    &split_chunk_intervals(vt0, vt1, &sizes),
                );
            }
        }
        Ok(out)
    }

    /// Doorbell-batched writes; same cost semantics as
    /// [`QueuePair::read_doorbell`].
    ///
    /// # Errors
    ///
    /// Validates every request before executing any.
    pub fn write_doorbell(&self, reqs: &[WriteReq]) -> Result<()> {
        if reqs.is_empty() {
            return Ok(());
        }
        for r in reqs {
            self.check_bounds(r.rkey, r.offset, r.data.len() as u64)?;
        }
        self.admit("write_doorbell")?;
        for r in reqs {
            let region = self.node.region(r.rkey)?;
            region.write()[r.offset as usize..r.offset as usize + r.data.len()]
                .copy_from_slice(&r.data);
        }
        self.stats.record_doorbell(reqs.len() as u64);
        for (ci, chunk) in reqs.chunks(self.model.doorbell_limit()).enumerate() {
            let bytes: usize = chunk.iter().map(|r| r.data.len()).sum();
            let vt0 = self.clock.now_us();
            self.clock
                .advance_us(self.model.round_trip_cost_us(chunk.len(), bytes));
            self.stats.record_round_trips(1);
            self.stats.record_write(chunk.len() as u64, bytes as u64);
            self.node.service_stats().record_round_trips(1);
            self.node
                .service_stats()
                .record_write(chunk.len() as u64, bytes as u64);
            if self.has_sink.load(Ordering::Relaxed) {
                let vt1 = self.clock.now_us();
                let sizes: Vec<(u64, u64)> =
                    chunk.iter().map(|r| (r.offset, r.data.len() as u64)).collect();
                self.emit_verb(
                    VerbSpan {
                        verb: "write_doorbell",
                        wqes: chunk.len() as u32,
                        bytes: bytes as u64,
                        chunk: ci as u32,
                        vt_start_us: vt0,
                        vt_end_us: vt1,
                    },
                    &split_chunk_intervals(vt0, vt1, &sizes),
                );
            }
        }
        Ok(())
    }

    /// Atomic compare-and-swap on an aligned `u64` (little-endian).
    /// Returns the previous value; the swap happened iff the return equals
    /// `expected`.
    ///
    /// # Errors
    ///
    /// [`Error::Misaligned`] when `offset % 8 != 0`, plus the usual bounds
    /// errors.
    pub fn cas(&self, rkey: u32, offset: u64, expected: u64, new: u64) -> Result<u64> {
        if !offset.is_multiple_of(8) {
            return Err(Error::Misaligned { rkey, offset });
        }
        self.check_bounds(rkey, offset, 8)?;
        self.admit("cas")?;
        let region = self.node.region(rkey)?;
        let mut guard = region.write();
        let slot = &mut guard[offset as usize..offset as usize + 8];
        let current = u64::from_le_bytes(slot.try_into().expect("8 bytes"));
        if current == expected {
            slot.copy_from_slice(&new.to_le_bytes());
        }
        drop(guard);
        let vt0 = self.clock.now_us();
        self.clock.advance_us(self.model.round_trip_cost_us(1, 8));
        self.stats.record_round_trips(1);
        self.stats.record_atomic();
        self.node.service_stats().record_round_trips(1);
        self.node.service_stats().record_atomic();
        self.emit_plain("cas", offset, 8, vt0);
        Ok(current)
    }

    /// Atomic fetch-and-add on an aligned `u64` (little-endian,
    /// wrapping). Returns the previous value.
    ///
    /// # Errors
    ///
    /// Same as [`QueuePair::cas`].
    pub fn faa(&self, rkey: u32, offset: u64, add: u64) -> Result<u64> {
        if !offset.is_multiple_of(8) {
            return Err(Error::Misaligned { rkey, offset });
        }
        self.check_bounds(rkey, offset, 8)?;
        self.admit("faa")?;
        let region = self.node.region(rkey)?;
        let mut guard = region.write();
        let slot = &mut guard[offset as usize..offset as usize + 8];
        let current = u64::from_le_bytes(slot.try_into().expect("8 bytes"));
        slot.copy_from_slice(&current.wrapping_add(add).to_le_bytes());
        drop(guard);
        let vt0 = self.clock.now_us();
        self.clock.advance_us(self.model.round_trip_cost_us(1, 8));
        self.stats.record_round_trips(1);
        self.stats.record_atomic();
        self.node.service_stats().record_round_trips(1);
        self.node.service_stats().record_atomic();
        self.emit_plain("faa", offset, 8, vt0);
        Ok(current)
    }

    /// This queue pair's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// This queue pair's transfer statistics.
    pub fn stats(&self) -> &TransferStats {
        &self.stats
    }

    /// The cost model in force.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// The memory node this queue pair is connected to.
    pub fn node(&self) -> &Arc<MemoryNode> {
        &self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(len: usize) -> (Arc<MemoryNode>, crate::RegionHandle, QueuePair) {
        let node = MemoryNode::new("m");
        let region = node.register(len).unwrap();
        let qp = QueuePair::connect(&node, NetworkModel::connectx6());
        (node, region, qp)
    }

    #[test]
    fn write_then_read_round_trips_data() {
        let (_n, r, qp) = setup(64);
        qp.write(r.rkey(), 10, &[9, 8, 7]).unwrap();
        assert_eq!(qp.read(r.rkey(), 10, 3).unwrap(), vec![9, 8, 7]);
    }

    #[test]
    fn read_out_of_bounds_is_rejected() {
        let (_n, r, qp) = setup(16);
        assert!(matches!(
            qp.read(r.rkey(), 10, 10).unwrap_err(),
            Error::OutOfBounds { .. }
        ));
        // Offset overflow must not panic.
        assert!(qp.read(r.rkey(), u64::MAX, 2).is_err());
    }

    #[test]
    fn unknown_rkey_is_rejected() {
        let (_n, _r, qp) = setup(16);
        assert!(matches!(
            qp.read(777, 0, 1).unwrap_err(),
            Error::UnknownRegion(777)
        ));
    }

    #[test]
    fn each_read_is_one_round_trip() {
        let (_n, r, qp) = setup(64);
        for _ in 0..5 {
            qp.read(r.rkey(), 0, 8).unwrap();
        }
        assert_eq!(qp.stats().round_trips(), 5);
        assert_eq!(qp.stats().work_requests(), 5);
        assert_eq!(qp.stats().bytes_read(), 40);
    }

    #[test]
    fn doorbell_batches_into_one_round_trip() {
        let (_n, r, qp) = setup(64);
        let reqs: Vec<ReadReq> = (0..8).map(|i| ReadReq::new(r.rkey(), i * 8, 8)).collect();
        let out = qp.read_doorbell(&reqs).unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(qp.stats().round_trips(), 1);
        assert_eq!(qp.stats().work_requests(), 8);
        assert_eq!(qp.stats().doorbell_batches(), 1);
    }

    #[test]
    fn doorbell_splits_past_the_limit() {
        let node = MemoryNode::new("m");
        let r = node.register(1024).unwrap();
        let model = NetworkModel::connectx6().with_doorbell_limit(4).unwrap();
        let qp = QueuePair::connect(&node, model);
        let reqs: Vec<ReadReq> = (0..10).map(|i| ReadReq::new(r.rkey(), i * 8, 8)).collect();
        qp.read_doorbell(&reqs).unwrap();
        assert_eq!(qp.stats().round_trips(), 3); // ceil(10/4)
    }

    #[test]
    fn doorbell_preserves_request_order() {
        let (_n, r, qp) = setup(64);
        qp.write(r.rkey(), 0, &[1]).unwrap();
        qp.write(r.rkey(), 32, &[2]).unwrap();
        let out = qp
            .read_doorbell(&[ReadReq::new(r.rkey(), 32, 1), ReadReq::new(r.rkey(), 0, 1)])
            .unwrap();
        assert_eq!(out, vec![vec![2], vec![1]]);
    }

    #[test]
    fn doorbell_validates_before_executing() {
        let (_n, r, qp) = setup(16);
        let reqs = vec![
            WriteReq::new(r.rkey(), 0, vec![1, 2]),
            WriteReq::new(r.rkey(), 100, vec![3]), // out of bounds
        ];
        assert!(qp.write_doorbell(&reqs).is_err());
        // First request must not have been applied.
        assert_eq!(qp.read(r.rkey(), 0, 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn empty_doorbell_costs_nothing() {
        let (_n, _r, qp) = setup(16);
        qp.read_doorbell(&[]).unwrap();
        qp.write_doorbell(&[]).unwrap();
        assert_eq!(qp.stats().round_trips(), 0);
        assert_eq!(qp.clock().now_us(), 0.0);
    }

    #[test]
    fn cas_swaps_only_on_match() {
        let (_n, r, qp) = setup(16);
        assert_eq!(qp.cas(r.rkey(), 0, 0, 42).unwrap(), 0);
        assert_eq!(qp.cas(r.rkey(), 0, 0, 99).unwrap(), 42); // mismatch: no swap
        assert_eq!(qp.read(r.rkey(), 0, 8).unwrap(), 42u64.to_le_bytes());
    }

    #[test]
    fn faa_adds_and_returns_previous() {
        let (_n, r, qp) = setup(16);
        assert_eq!(qp.faa(r.rkey(), 8, 5).unwrap(), 0);
        assert_eq!(qp.faa(r.rkey(), 8, 3).unwrap(), 5);
        assert_eq!(qp.read(r.rkey(), 8, 8).unwrap(), 8u64.to_le_bytes());
    }

    #[test]
    fn atomics_require_alignment() {
        let (_n, r, qp) = setup(16);
        assert!(matches!(
            qp.cas(r.rkey(), 3, 0, 1).unwrap_err(),
            Error::Misaligned { .. }
        ));
        assert!(qp.faa(r.rkey(), 7, 1).is_err());
    }

    #[test]
    fn virtual_time_advances_with_traffic() {
        let (_n, r, qp) = setup(1024);
        let t0 = qp.clock().now_us();
        qp.read(r.rkey(), 0, 1024).unwrap();
        let t1 = qp.clock().now_us();
        assert!(t1 > t0 + 2.0, "read should cost at least the base RTT");
    }

    #[test]
    fn doorbell_is_cheaper_than_individual_reads() {
        let node = MemoryNode::new("m");
        let r = node.register(4096).unwrap();
        let model = NetworkModel::connectx6();
        let single = QueuePair::connect(&node, model);
        let batched = QueuePair::connect(&node, model);
        for i in 0..8u64 {
            single.read(r.rkey(), i * 512, 512).unwrap();
        }
        let reqs: Vec<ReadReq> = (0..8).map(|i| ReadReq::new(r.rkey(), i * 512, 512)).collect();
        batched.read_doorbell(&reqs).unwrap();
        assert!(
            batched.clock().now_us() < single.clock().now_us() / 2.0,
            "doorbell {} vs individual {}",
            batched.clock().now_us(),
            single.clock().now_us()
        );
    }

    #[test]
    fn concurrent_readers_share_a_qp_safely() {
        let node = MemoryNode::new("m");
        let r = node.register(4096).unwrap();
        let qp = std::sync::Arc::new(QueuePair::connect(&node, NetworkModel::connectx6()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let qp = qp.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        qp.read(r.rkey(), (t * 1000 + i * 8) % 4000, 8).unwrap();
                    }
                });
            }
        });
        assert_eq!(qp.stats().round_trips(), 400);
    }

    #[test]
    fn node_service_stats_aggregate_across_queue_pairs() {
        let node = MemoryNode::new("m");
        let r = node.register(128).unwrap();
        let a = QueuePair::connect(&node, NetworkModel::connectx6());
        let b = QueuePair::connect(&node, NetworkModel::connectx6());
        a.read(r.rkey(), 0, 16).unwrap();
        b.write(r.rkey(), 0, &[1; 8]).unwrap();
        b.faa(r.rkey(), 0, 1).unwrap();
        let svc = node.service_stats();
        assert_eq!(svc.round_trips(), 3);
        assert_eq!(svc.bytes_read(), 16);
        assert_eq!(svc.bytes_written(), 8);
        assert_eq!(svc.atomics(), 1);
        // Per-QP views stay isolated.
        assert_eq!(a.stats().round_trips(), 1);
        assert_eq!(b.stats().round_trips(), 2);
    }

    #[test]
    fn mixed_cause_doorbell_tiles_bytes_and_attributes_the_trip() {
        let (_n, r, qp) = setup(1024);
        // One big stage-load span plus two tiny version checks in one
        // doorbell: bytes tile per cause, the chunk's single trip goes
        // to the dominant-bytes cause.
        let reqs = [
            ReadReq::new(r.rkey(), 0, 512).with_cause(ReadCause::StageLoad),
            ReadReq::new(r.rkey(), 512, 8).with_cause(ReadCause::VersionCheck),
            ReadReq::new(r.rkey(), 520, 8).with_cause(ReadCause::VersionCheck),
        ];
        qp.read_doorbell(&reqs).unwrap();
        let snap = qp.stats().snapshot();
        assert_eq!(snap.bytes_for(ReadCause::StageLoad), 512);
        assert_eq!(snap.bytes_for(ReadCause::VersionCheck), 16);
        assert_eq!(snap.cause_bytes.iter().sum::<u64>(), snap.bytes_read);
        assert_eq!(snap.round_trips, 1);
        assert_eq!(snap.trips_for(ReadCause::StageLoad), 1);
        assert_eq!(snap.trips_for(ReadCause::VersionCheck), 0);
        // Service-side mirror agrees.
        let svc = _n.service_stats().snapshot();
        assert_eq!(svc.cause_bytes, snap.cause_bytes);
        assert_eq!(svc.cause_trips, snap.cause_trips);
    }

    #[test]
    fn plain_read_attributes_to_its_cause() {
        let (_n, r, qp) = setup(64);
        qp.read_with_cause(r.rkey(), 0, 32, ReadCause::Naive).unwrap();
        qp.read(r.rkey(), 0, 8).unwrap();
        let snap = qp.stats().snapshot();
        assert_eq!(snap.bytes_for(ReadCause::Naive), 32);
        assert_eq!(snap.bytes_for(ReadCause::Other), 8);
        assert_eq!(snap.trips_for(ReadCause::Naive), 1);
        assert_eq!(snap.cause_bytes.iter().sum::<u64>(), snap.bytes_read);
    }

    #[test]
    fn queue_pair_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueuePair>();
    }

    #[derive(Debug, Default)]
    struct RecordingSink {
        verbs: parking_lot::Mutex<Vec<(VerbSpan, Vec<WqeSpan>)>>,
        faults: parking_lot::Mutex<Vec<crate::trace::FaultEvent>>,
    }

    impl TraceSink for RecordingSink {
        fn verb_span(&self, span: &VerbSpan, wqes: &[WqeSpan]) {
            self.verbs.lock().push((*span, wqes.to_vec()));
        }
        fn fault(&self, event: &crate::trace::FaultEvent) {
            self.faults.lock().push(*event);
        }
    }

    #[test]
    fn sink_sees_plain_verbs_with_virtual_intervals() {
        let (_n, r, qp) = setup(64);
        let sink = Arc::new(RecordingSink::default());
        qp.set_trace_sink(Some(sink.clone()));
        qp.write(r.rkey(), 0, &[1; 16]).unwrap();
        qp.read(r.rkey(), 0, 16).unwrap();
        qp.cas(r.rkey(), 0, 0, 0).unwrap();
        qp.faa(r.rkey(), 8, 1).unwrap();
        let verbs = sink.verbs.lock();
        let names: Vec<&str> = verbs.iter().map(|(s, _)| s.verb).collect();
        assert_eq!(names, vec!["write", "read", "cas", "faa"]);
        for (span, wqes) in verbs.iter() {
            assert_eq!(span.wqes, 1);
            assert_eq!(wqes.len(), 1);
            assert!(span.vt_end_us > span.vt_start_us);
        }
        // Spans are contiguous on the virtual clock: each starts where
        // the previous ended.
        for pair in verbs.windows(2) {
            assert_eq!(pair[1].0.vt_start_us, pair[0].0.vt_end_us);
        }
    }

    #[test]
    fn sink_sees_per_chunk_doorbell_spans() {
        let node = MemoryNode::new("m");
        let r = node.register(1024).unwrap();
        let model = NetworkModel::connectx6().with_doorbell_limit(4).unwrap();
        let qp = QueuePair::connect(&node, model);
        let sink = Arc::new(RecordingSink::default());
        qp.set_trace_sink(Some(sink.clone()));
        let reqs: Vec<ReadReq> = (0..10).map(|i| ReadReq::new(r.rkey(), i * 8, 8)).collect();
        qp.read_doorbell(&reqs).unwrap();
        let verbs = sink.verbs.lock();
        assert_eq!(verbs.len(), 3); // ceil(10/4) chunks
        assert_eq!(verbs[0].0.chunk, 0);
        assert_eq!(verbs[2].0.chunk, 2);
        assert_eq!(verbs[0].0.wqes, 4);
        assert_eq!(verbs[2].0.wqes, 2);
        // Per-WQE spans tile their chunk interval.
        let (span, wqes) = &verbs[1];
        assert_eq!(wqes[0].vt_start_us, span.vt_start_us);
        assert_eq!(wqes.last().unwrap().vt_end_us, span.vt_end_us);
        assert_eq!(wqes[1].offset, reqs[5].offset);
    }

    #[test]
    fn sink_sees_fault_retries_and_uninstall_stops_events() {
        let (_n, r, qp) = setup(64);
        let sink = Arc::new(RecordingSink::default());
        qp.set_trace_sink(Some(sink.clone()));
        qp.fail_next(2);
        qp.read(r.rkey(), 0, 8).unwrap();
        {
            let faults = sink.faults.lock();
            assert_eq!(faults.len(), 2);
            assert_eq!(faults[0].attempt, 1);
            assert_eq!(faults[1].attempt, 2);
            assert!(faults[0].timeout_us > 0.0);
        }
        qp.set_trace_sink(None);
        qp.read(r.rkey(), 0, 8).unwrap();
        assert_eq!(sink.verbs.lock().len(), 1);
    }
}
