//! Verb-level trace hooks.
//!
//! A [`TraceSink`] installed on a [`crate::QueuePair`] observes every
//! verb the queue pair executes — one [`VerbSpan`] per plain verb or
//! doorbell chunk, with per-work-request [`WqeSpan`]s inside it, plus a
//! [`FaultEvent`] for every dropped-and-retransmitted attempt. All
//! timestamps are virtual-clock microseconds, so a sink can reconstruct
//! exactly where modeled network time went.
//!
//! The hook is designed for an *engine-side tracer* (the `dhnsw` crate
//! attaches its span tracer here), but anything implementing the trait
//! works. With no sink installed the per-verb overhead is a single
//! relaxed atomic load; with a sink installed but idle it is one
//! additional read-lock acquisition.
//!
//! Within a doorbell chunk the cost model charges the whole chunk at
//! once; the emitter splits the chunk's virtual interval across its
//! work requests proportionally to their payload sizes (line-rate
//! serialization is sequential on the wire), so per-WQE spans tile the
//! chunk span without overlapping.

use std::sync::Arc;

/// One verb execution, or one doorbell chunk of a batched verb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerbSpan {
    /// Verb name: `read`, `write`, `cas`, `faa`, `read_doorbell`,
    /// `write_doorbell`.
    pub verb: &'static str,
    /// Work requests executed in this span (1 for plain verbs).
    pub wqes: u32,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Chunk index within the doorbell call (0 for plain verbs).
    pub chunk: u32,
    /// Virtual-clock start, microseconds.
    pub vt_start_us: f64,
    /// Virtual-clock end, microseconds.
    pub vt_end_us: f64,
}

/// One work request inside a [`VerbSpan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WqeSpan {
    /// Position within the chunk.
    pub index: u32,
    /// Byte offset the work request targets.
    pub offset: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Virtual-clock start, microseconds (a proportional slice of the
    /// chunk interval).
    pub vt_start_us: f64,
    /// Virtual-clock end, microseconds.
    pub vt_end_us: f64,
}

/// One faulted (dropped and retransmitted) verb attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// The verb whose attempt dropped.
    pub verb: &'static str,
    /// 1-based retransmission attempt number.
    pub attempt: u32,
    /// Virtual time charged for the retransmission timeout,
    /// microseconds.
    pub timeout_us: f64,
    /// Virtual-clock time after the timeout was charged, microseconds.
    pub vt_us: f64,
}

/// Receives verb-level trace events from a queue pair.
///
/// Implementations must be cheap and non-blocking: sinks are invoked
/// inline on the verb path.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// One verb execution or doorbell chunk, with its work requests.
    fn verb_span(&self, span: &VerbSpan, wqes: &[WqeSpan]);

    /// One faulted attempt (fired before the verb eventually succeeds
    /// or exhausts its retries).
    fn fault(&self, event: &FaultEvent);
}

/// Splits the chunk interval `[vt_start, vt_end]` across work requests
/// proportionally to `bytes`, returning contiguous per-WQE intervals.
/// Zero-byte batches split evenly.
pub(crate) fn split_chunk_intervals(
    vt_start: f64,
    vt_end: f64,
    sizes: &[(u64, u64)], // (offset, bytes) per WQE
) -> Vec<WqeSpan> {
    let n = sizes.len();
    let total: u64 = sizes.iter().map(|&(_, b)| b).sum();
    let dur = (vt_end - vt_start).max(0.0);
    let mut out = Vec::with_capacity(n);
    let mut cursor = vt_start;
    let mut cum = 0u64;
    for (i, &(offset, bytes)) in sizes.iter().enumerate() {
        cum += bytes;
        let frac = if total > 0 {
            cum as f64 / total as f64
        } else {
            (i + 1) as f64 / n as f64
        };
        let end = vt_start + dur * frac;
        out.push(WqeSpan {
            index: i as u32,
            offset,
            bytes,
            vt_start_us: cursor,
            vt_end_us: end,
        });
        cursor = end;
    }
    out
}

/// Shared handle to an optional sink (what a queue pair stores).
pub(crate) type SharedSink = Arc<dyn TraceSink>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_proportional_and_tiles() {
        let spans = split_chunk_intervals(10.0, 20.0, &[(0, 30), (100, 10)]);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].vt_start_us, 10.0);
        assert!((spans[0].vt_end_us - 17.5).abs() < 1e-9);
        assert_eq!(spans[1].vt_start_us, spans[0].vt_end_us);
        assert!((spans[1].vt_end_us - 20.0).abs() < 1e-9);
        assert_eq!(spans[1].offset, 100);
    }

    #[test]
    fn zero_bytes_split_evenly() {
        let spans = split_chunk_intervals(0.0, 4.0, &[(0, 0), (8, 0)]);
        assert!((spans[0].vt_end_us - 2.0).abs() < 1e-9);
        assert!((spans[1].vt_end_us - 4.0).abs() < 1e-9);
    }
}
