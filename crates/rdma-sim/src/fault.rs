//! Fault injection and retransmission.
//!
//! Real RDMA reliable-connection queue pairs retransmit lost packets in
//! hardware; an operation only surfaces an error after the retry count is
//! exhausted. This module models that: a [`QueuePair`] can be given a
//! deterministic fault plan (an explicit "fail the next N attempts"
//! counter and/or a seeded random drop rate), every faulted attempt
//! charges a timeout's worth of virtual time, and the verb transparently
//! retries up to the configured limit before failing with
//! [`crate::Error::RetriesExhausted`].
//!
//! Faults are injected *per attempt*, before any data moves, so a failed
//! verb never partially executes.
//!
//! # Example
//!
//! ```rust
//! use rdma_sim::{MemoryNode, NetworkModel, QueuePair};
//!
//! # fn main() -> Result<(), rdma_sim::Error> {
//! let node = MemoryNode::new("mem0");
//! let region = node.register(64)?;
//! let qp = QueuePair::connect(&node, NetworkModel::connectx6());
//!
//! qp.fail_next(2); // the next two attempts drop
//! let data = qp.read(region.rkey(), 0, 8)?; // retransmits twice, then succeeds
//! assert_eq!(data.len(), 8);
//! assert_eq!(qp.stats().faults(), 2);
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::{Error, QueuePair, Result};

/// Default retransmission budget per verb, mirroring common RC QP
/// `retry_cnt` settings.
pub const DEFAULT_RETRY_LIMIT: u32 = 7;

/// Per-queue-pair fault state.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// Attempts allowed through before `fail_next` engages, counting
    /// down.
    skip_next: AtomicU32,
    /// Attempts that will deterministically fail, counting down.
    fail_next: AtomicU32,
    /// Random drop rate in [0, 1], encoded as parts-per-million.
    drop_ppm: AtomicU32,
    /// xorshift state for the random drops (seeded, deterministic).
    rng: AtomicU64,
    /// Retransmissions allowed per verb before giving up.
    retry_limit: AtomicU32,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState {
            skip_next: AtomicU32::new(0),
            fail_next: AtomicU32::new(0),
            drop_ppm: AtomicU32::new(0),
            rng: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            retry_limit: AtomicU32::new(DEFAULT_RETRY_LIMIT),
        }
    }
}

impl FaultState {
    /// Whether the next attempt should fail.
    fn attempt_fails(&self) -> bool {
        // Armed skips let attempts through before `fail_next` engages.
        loop {
            let s = self.skip_next.load(Ordering::Relaxed);
            if s == 0 {
                break;
            }
            if self
                .skip_next
                .compare_exchange(s, s - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return false;
            }
        }
        // Deterministic injections first.
        loop {
            let n = self.fail_next.load(Ordering::Relaxed);
            if n == 0 {
                break;
            }
            if self
                .fail_next
                .compare_exchange(n, n - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
        let ppm = self.drop_ppm.load(Ordering::Relaxed);
        if ppm == 0 {
            return false;
        }
        // xorshift64* step.
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % 1_000_000) < u64::from(ppm)
    }
}

impl QueuePair {
    /// Makes the next `n` verb attempts fail (shared across threads using
    /// this queue pair; attempts consume the counter in execution order).
    pub fn fail_next(&self, n: u32) {
        self.fault_state().fail_next.store(n, Ordering::Relaxed);
    }

    /// Lets the next `skip` verb attempts through, then fails the `n`
    /// after those — i.e. targets a fault at a specific verb inside a
    /// multi-verb protocol. Attempts include retransmissions, so pair
    /// with [`QueuePair::set_retry_limit`]`(0)` to map attempts onto
    /// verbs one-to-one.
    pub fn fail_nth(&self, skip: u32, n: u32) {
        self.fault_state().skip_next.store(skip, Ordering::Relaxed);
        self.fault_state().fail_next.store(n, Ordering::Relaxed);
    }

    /// Sets a random per-attempt drop rate in `[0, 1]`, deterministic for
    /// a given `seed`. A rate of `0.0` disables random faults.
    pub fn set_fault_rate(&self, rate: f64, seed: u64) {
        let ppm = (rate.clamp(0.0, 1.0) * 1_000_000.0) as u32;
        self.fault_state().drop_ppm.store(ppm, Ordering::Relaxed);
        self.fault_state()
            .rng
            .store(seed | 1, Ordering::Relaxed);
    }

    /// Sets the retransmission budget per verb (default
    /// [`DEFAULT_RETRY_LIMIT`]).
    pub fn set_retry_limit(&self, limit: u32) {
        self.fault_state()
            .retry_limit
            .store(limit, Ordering::Relaxed);
    }

    /// Runs the fault/retransmission loop for one verb attempt sequence:
    /// each dropped attempt charges one base round trip (the timeout) and
    /// counts a fault; returns `Ok(())` when an attempt goes through, or
    /// [`Error::RetriesExhausted`] when the budget is spent.
    pub(crate) fn admit(&self, verb: &'static str) -> Result<()> {
        let state = self.fault_state();
        let limit = state.retry_limit.load(Ordering::Relaxed);
        let mut attempts = 0u32;
        while state.attempt_fails() {
            attempts += 1;
            let vt0 = self.clock().now_us();
            self.charge_timeout();
            self.stats().record_fault();
            let vt1 = self.clock().now_us();
            self.emit_fault(&crate::trace::FaultEvent {
                verb,
                attempt: attempts,
                timeout_us: vt1 - vt0,
                vt_us: vt1,
            });
            if attempts > limit {
                return Err(Error::RetriesExhausted { verb, attempts });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryNode, NetworkModel, ReadReq};

    fn setup() -> (std::sync::Arc<MemoryNode>, crate::RegionHandle, QueuePair) {
        let node = MemoryNode::new("m");
        let region = node.register(256).unwrap();
        let qp = QueuePair::connect(&node, NetworkModel::connectx6());
        (node, region, qp)
    }

    #[test]
    fn transient_faults_retry_transparently() {
        let (_n, r, qp) = setup();
        qp.fail_next(3);
        let out = qp.read(r.rkey(), 0, 8).unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(qp.stats().faults(), 3);
        // Exactly one successful round trip recorded, plus timeout time.
        assert_eq!(qp.stats().round_trips(), 1);
        let plain = QueuePair::connect(qp.node(), *qp.model());
        plain.read(r.rkey(), 0, 8).unwrap();
        assert!(qp.clock().now_us() > plain.clock().now_us());
    }

    #[test]
    fn exhausted_retries_surface_an_error() {
        let (_n, r, qp) = setup();
        qp.set_retry_limit(2);
        qp.fail_next(10);
        let err = qp.read(r.rkey(), 0, 8).unwrap_err();
        assert!(matches!(err, Error::RetriesExhausted { attempts: 3, .. }));
        // Remaining injected faults stay armed for the next attempt.
        assert!(qp.stats().faults() >= 3);
    }

    #[test]
    fn faults_never_partially_execute_writes() {
        let (_n, r, qp) = setup();
        qp.set_retry_limit(0);
        qp.fail_next(1);
        assert!(qp.write(r.rkey(), 0, &[9; 8]).is_err());
        qp.fail_next(0);
        assert_eq!(qp.read(r.rkey(), 0, 8).unwrap(), vec![0; 8]);
    }

    #[test]
    fn fail_nth_targets_a_specific_attempt() {
        let (_n, r, qp) = setup();
        qp.set_retry_limit(0);
        qp.fail_nth(2, 1);
        // Attempts 1 and 2 pass, attempt 3 fails, attempt 4 passes.
        qp.read(r.rkey(), 0, 8).unwrap();
        qp.read(r.rkey(), 0, 8).unwrap();
        assert!(qp.read(r.rkey(), 0, 8).is_err());
        qp.read(r.rkey(), 0, 8).unwrap();
        assert_eq!(qp.stats().faults(), 1);
    }

    #[test]
    fn random_rate_is_deterministic_per_seed() {
        let counts: Vec<u64> = (0..2)
            .map(|_| {
                let (_n, r, qp) = setup();
                qp.set_fault_rate(0.3, 42);
                for _ in 0..200 {
                    let _ = qp.read(r.rkey(), 0, 4);
                }
                qp.stats().faults()
            })
            .collect();
        assert_eq!(counts[0], counts[1]);
        assert!(counts[0] > 20, "rate 0.3 produced only {} faults", counts[0]);
    }

    #[test]
    fn zero_rate_never_faults() {
        let (_n, r, qp) = setup();
        qp.set_fault_rate(0.0, 1);
        for _ in 0..100 {
            qp.read(r.rkey(), 0, 4).unwrap();
        }
        assert_eq!(qp.stats().faults(), 0);
    }

    #[test]
    fn doorbell_and_atomics_respect_faults() {
        let (_n, r, qp) = setup();
        qp.fail_next(1);
        qp.read_doorbell(&[ReadReq::new(r.rkey(), 0, 4)]).unwrap();
        assert_eq!(qp.stats().faults(), 1);
        qp.fail_next(1);
        qp.faa(r.rkey(), 0, 1).unwrap();
        assert_eq!(qp.stats().faults(), 2);
    }

    #[test]
    fn default_retry_limit_absorbs_realistic_fault_bursts() {
        let (_n, r, qp) = setup();
        qp.set_fault_rate(0.2, 7);
        let mut failures = 0;
        for _ in 0..500 {
            if qp.read(r.rkey(), 0, 4).is_err() {
                failures += 1;
            }
        }
        // P(8 consecutive drops at rate 0.2) ≈ 2.6e-6: effectively never.
        assert_eq!(failures, 0);
        assert!(qp.stats().faults() > 50);
    }
}
