//! Transfer statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Why a read crossed the network: the provenance tag the engine threads
/// down to the verb layer so every inbound byte can be attributed to the
/// subsystem that demanded it (the paper's bottleneck currency is bytes;
/// this names them).
///
/// The per-cause byte counters tile exactly: summing
/// [`StatsSnapshot::cause_bytes`] over all causes reproduces
/// [`StatsSnapshot::bytes_read`], because every byte-read recording path
/// goes through [`TransferStats::record_read_cause`] (plain
/// [`TransferStats::record_read`] attributes to [`ReadCause::Other`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReadCause {
    /// Batch-planned sub-HNSW cluster load (the §3.3 staged fetch).
    StageLoad,
    /// Heatmap-driven background prefetch between batches.
    Prefetch,
    /// Directory version-slot read (cache-pin verify or load piggyback).
    VersionCheck,
    /// Engine-level retry after substrate retransmission exhaustion or a
    /// version-churn reload.
    Retry,
    /// Health-report probe (overflow occupancy counters).
    HealthProbe,
    /// Full cluster-plus-overflow sweep (rebuild / compaction).
    OverflowScan,
    /// Naive per-query fetch (the no-batching baseline mode).
    Naive,
    /// Targeted full-precision vector fetch for exact rerank after a
    /// quantized (SQ8) cluster search.
    Rerank,
    /// Untagged reads: directory bootstrap, snapshots, ad-hoc callers.
    #[default]
    Other,
}

/// Number of [`ReadCause`] variants (length of the per-cause arrays).
pub const READ_CAUSES: usize = 9;

impl ReadCause {
    /// Every cause, in per-cause array-index order.
    pub const ALL: [ReadCause; READ_CAUSES] = [
        ReadCause::StageLoad,
        ReadCause::Prefetch,
        ReadCause::VersionCheck,
        ReadCause::Retry,
        ReadCause::HealthProbe,
        ReadCause::OverflowScan,
        ReadCause::Naive,
        ReadCause::Rerank,
        ReadCause::Other,
    ];

    /// This cause's slot in the per-cause arrays.
    pub fn index(self) -> usize {
        match self {
            ReadCause::StageLoad => 0,
            ReadCause::Prefetch => 1,
            ReadCause::VersionCheck => 2,
            ReadCause::Retry => 3,
            ReadCause::HealthProbe => 4,
            ReadCause::OverflowScan => 5,
            ReadCause::Naive => 6,
            ReadCause::Rerank => 7,
            ReadCause::Other => 8,
        }
    }

    /// Stable snake_case name (telemetry label / report key).
    pub fn as_str(self) -> &'static str {
        match self {
            ReadCause::StageLoad => "stage_load",
            ReadCause::Prefetch => "prefetch",
            ReadCause::VersionCheck => "version_check",
            ReadCause::Retry => "retry",
            ReadCause::HealthProbe => "health_probe",
            ReadCause::OverflowScan => "overflow_scan",
            ReadCause::Naive => "naive",
            ReadCause::Rerank => "rerank",
            ReadCause::Other => "other",
        }
    }
}

impl std::fmt::Display for ReadCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Atomic counters describing everything a queue pair moved.
///
/// These are the quantities the paper reports directly (round trips per
/// query, bytes transferred) or that its latency numbers are a function
/// of.
///
/// # Example
///
/// ```rust
/// use rdma_sim::TransferStats;
///
/// let s = TransferStats::new();
/// s.record_read(2, 1024);
/// assert_eq!(s.round_trips(), 0); // reads record WRs/bytes; trips are separate
/// s.record_round_trips(1);
/// assert_eq!(s.work_requests(), 2);
/// assert_eq!(s.bytes_read(), 1024);
/// ```
#[derive(Debug, Default)]
pub struct TransferStats {
    round_trips: AtomicU64,
    work_requests: AtomicU64,
    doorbell_batches: AtomicU64,
    doorbell_sizes: DoorbellSizeBuckets,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    atomics: AtomicU64,
    faults: AtomicU64,
    cause_bytes: CauseArray,
    cause_wrs: CauseArray,
    cause_trips: CauseArray,
}

/// One `u64` counter per [`ReadCause`].
#[derive(Debug, Default)]
struct CauseArray([AtomicU64; READ_CAUSES]);

impl CauseArray {
    fn add(&self, cause: ReadCause, n: u64) {
        self.0[cause.index()].fetch_add(n, Ordering::Relaxed);
    }

    fn load(&self) -> [u64; READ_CAUSES] {
        std::array::from_fn(|i| self.0[i].load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for c in &self.0 {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Number of doorbell batch-size buckets: sizes `1, 2, 4, …, 2^14`,
/// then everything larger.
pub const DOORBELL_SIZE_BUCKETS: usize = 16;

/// Power-of-two histogram of doorbell batch sizes (work requests per
/// doorbell ring). Bucket `i` counts batches of size in
/// `(2^(i-1), 2^i]`; the last bucket also absorbs anything larger.
#[derive(Debug, Default)]
struct DoorbellSizeBuckets([AtomicU64; DOORBELL_SIZE_BUCKETS]);

impl DoorbellSizeBuckets {
    fn record(&self, size: u64) {
        let i = if size <= 1 {
            0
        } else {
            (64 - (size - 1).leading_zeros() as usize).min(DOORBELL_SIZE_BUCKETS - 1)
        };
        self.0[i].fetch_add(1, Ordering::Relaxed);
    }

    fn load(&self) -> [u64; DOORBELL_SIZE_BUCKETS] {
        std::array::from_fn(|i| self.0[i].load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for b in &self.0 {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl TransferStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        TransferStats::default()
    }

    /// Records `n` network round trips.
    pub fn record_round_trips(&self, n: u64) {
        self.round_trips.fetch_add(n, Ordering::Relaxed);
    }

    /// Records read work: `wrs` work requests totalling `bytes` inbound,
    /// attributed to [`ReadCause::Other`].
    pub fn record_read(&self, wrs: u64, bytes: u64) {
        self.record_read_cause(ReadCause::Other, wrs, bytes);
    }

    /// Records read work attributed to `cause`. This is the only path
    /// that bumps `bytes_read`, so per-cause bytes tile the total by
    /// construction.
    pub fn record_read_cause(&self, cause: ReadCause, wrs: u64, bytes: u64) {
        self.work_requests.fetch_add(wrs, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.cause_wrs.add(cause, wrs);
        self.cause_bytes.add(cause, bytes);
    }

    /// Records one read round trip attributed to `cause` (a doorbell
    /// chunk's trip goes to the cause carrying the most bytes in it).
    pub fn record_read_round_trip(&self, cause: ReadCause) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.cause_trips.add(cause, 1);
    }

    /// Records write work: `wrs` work requests totalling `bytes` outbound.
    pub fn record_write(&self, wrs: u64, bytes: u64) {
        self.work_requests.fetch_add(wrs, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one doorbell batch submission of `size` work requests.
    pub fn record_doorbell(&self, size: u64) {
        self.doorbell_batches.fetch_add(1, Ordering::Relaxed);
        self.doorbell_sizes.record(size);
    }

    /// Records one faulted (dropped and retransmitted) verb attempt.
    pub fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Total faulted attempts observed.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Records one atomic verb (CAS or FAA).
    pub fn record_atomic(&self) {
        self.atomics.fetch_add(1, Ordering::Relaxed);
        self.work_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Total network round trips.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Total work requests posted.
    pub fn work_requests(&self) -> u64 {
        self.work_requests.load(Ordering::Relaxed)
    }

    /// Total doorbell batches posted.
    pub fn doorbell_batches(&self) -> u64 {
        self.doorbell_batches.load(Ordering::Relaxed)
    }

    /// Total bytes read from remote memory.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written to remote memory.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total atomic verbs executed.
    pub fn atomics(&self) -> u64 {
        self.atomics.load(Ordering::Relaxed)
    }

    /// Zeroes every counter (between benchmark phases).
    pub fn reset(&self) {
        self.round_trips.store(0, Ordering::Relaxed);
        self.work_requests.store(0, Ordering::Relaxed);
        self.doorbell_batches.store(0, Ordering::Relaxed);
        self.doorbell_sizes.reset();
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.atomics.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
        self.cause_bytes.reset();
        self.cause_wrs.reset();
        self.cause_trips.reset();
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            round_trips: self.round_trips(),
            work_requests: self.work_requests(),
            doorbell_batches: self.doorbell_batches(),
            doorbell_size_buckets: self.doorbell_sizes.load(),
            bytes_read: self.bytes_read(),
            bytes_written: self.bytes_written(),
            atomics: self.atomics(),
            faults: self.faults(),
            cause_bytes: self.cause_bytes.load(),
            cause_wrs: self.cause_wrs.load(),
            cause_trips: self.cause_trips.load(),
        }
    }
}

/// An immutable copy of [`TransferStats`] counters, with subtraction for
/// computing per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total network round trips.
    pub round_trips: u64,
    /// Total work requests posted.
    pub work_requests: u64,
    /// Total doorbell batches posted.
    pub doorbell_batches: u64,
    /// Doorbell batch sizes by power-of-two bucket: bucket `i` counts
    /// batches of `(2^(i-1), 2^i]` work requests (last bucket absorbs
    /// larger).
    pub doorbell_size_buckets: [u64; DOORBELL_SIZE_BUCKETS],
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total atomic verbs.
    pub atomics: u64,
    /// Total faulted (dropped and retransmitted) verb attempts.
    pub faults: u64,
    /// Bytes read per [`ReadCause`] (indexed by [`ReadCause::index`]);
    /// sums to `bytes_read`.
    pub cause_bytes: [u64; READ_CAUSES],
    /// Read work requests per [`ReadCause`].
    pub cause_wrs: [u64; READ_CAUSES],
    /// Read round trips per [`ReadCause`] (a mixed-cause doorbell chunk's
    /// single trip is attributed to its dominant-bytes cause).
    pub cause_trips: [u64; READ_CAUSES],
}

impl StatsSnapshot {
    /// Bytes read attributed to `cause`.
    pub fn bytes_for(&self, cause: ReadCause) -> u64 {
        self.cause_bytes[cause.index()]
    }

    /// Read round trips attributed to `cause`.
    pub fn trips_for(&self, cause: ReadCause) -> u64 {
        self.cause_trips[cause.index()]
    }
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            round_trips: self.round_trips - rhs.round_trips,
            work_requests: self.work_requests - rhs.work_requests,
            doorbell_batches: self.doorbell_batches - rhs.doorbell_batches,
            doorbell_size_buckets: std::array::from_fn(|i| {
                self.doorbell_size_buckets[i] - rhs.doorbell_size_buckets[i]
            }),
            bytes_read: self.bytes_read - rhs.bytes_read,
            bytes_written: self.bytes_written - rhs.bytes_written,
            atomics: self.atomics - rhs.atomics,
            faults: self.faults - rhs.faults,
            cause_bytes: std::array::from_fn(|i| self.cause_bytes[i] - rhs.cause_bytes[i]),
            cause_wrs: std::array::from_fn(|i| self.cause_wrs[i] - rhs.cause_wrs[i]),
            cause_trips: std::array::from_fn(|i| self.cause_trips[i] - rhs.cause_trips[i]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TransferStats::new();
        s.record_round_trips(2);
        s.record_read(3, 100);
        s.record_write(1, 50);
        s.record_doorbell(3);
        s.record_atomic();
        assert_eq!(s.round_trips(), 2);
        assert_eq!(s.work_requests(), 5);
        assert_eq!(s.bytes_read(), 100);
        assert_eq!(s.bytes_written(), 50);
        assert_eq!(s.doorbell_batches(), 1);
        assert_eq!(s.atomics(), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = TransferStats::new();
        s.record_read(3, 100);
        s.record_round_trips(1);
        s.record_doorbell(7);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn doorbell_sizes_land_in_power_of_two_buckets() {
        let s = TransferStats::new();
        s.record_doorbell(1); // bucket 0 (<= 1)
        s.record_doorbell(2); // bucket 1 (<= 2)
        s.record_doorbell(3); // bucket 2 (<= 4)
        s.record_doorbell(4); // bucket 2
        s.record_doorbell(16); // bucket 4
        s.record_doorbell(1_000_000); // clamped to the last bucket
        let snap = s.snapshot();
        assert_eq!(snap.doorbell_batches, 6);
        assert_eq!(snap.doorbell_size_buckets[0], 1);
        assert_eq!(snap.doorbell_size_buckets[1], 1);
        assert_eq!(snap.doorbell_size_buckets[2], 2);
        assert_eq!(snap.doorbell_size_buckets[4], 1);
        assert_eq!(snap.doorbell_size_buckets[DOORBELL_SIZE_BUCKETS - 1], 1);
        assert_eq!(
            snap.doorbell_size_buckets.iter().sum::<u64>(),
            snap.doorbell_batches
        );
    }

    #[test]
    fn doorbell_bucket_delta_subtracts_elementwise() {
        let s = TransferStats::new();
        s.record_doorbell(4);
        let before = s.snapshot();
        s.record_doorbell(4);
        s.record_doorbell(8);
        let delta = s.snapshot() - before;
        assert_eq!(delta.doorbell_batches, 2);
        assert_eq!(delta.doorbell_size_buckets[2], 1);
        assert_eq!(delta.doorbell_size_buckets[3], 1);
    }

    #[test]
    fn snapshot_delta_isolates_a_phase() {
        let s = TransferStats::new();
        s.record_round_trips(5);
        let before = s.snapshot();
        s.record_round_trips(3);
        s.record_read(1, 10);
        let delta = s.snapshot() - before;
        assert_eq!(delta.round_trips, 3);
        assert_eq!(delta.bytes_read, 10);
    }

    #[test]
    fn cause_bytes_tile_total_bytes_read() {
        let s = TransferStats::new();
        s.record_read_cause(ReadCause::StageLoad, 4, 4096);
        s.record_read_cause(ReadCause::VersionCheck, 2, 16);
        s.record_read(1, 100); // attributed to Other
        let snap = s.snapshot();
        assert_eq!(snap.bytes_for(ReadCause::StageLoad), 4096);
        assert_eq!(snap.bytes_for(ReadCause::VersionCheck), 16);
        assert_eq!(snap.bytes_for(ReadCause::Other), 100);
        assert_eq!(snap.cause_bytes.iter().sum::<u64>(), snap.bytes_read);
        assert_eq!(snap.cause_wrs.iter().sum::<u64>(), 7);
    }

    #[test]
    fn read_round_trips_carry_their_cause() {
        let s = TransferStats::new();
        s.record_read_round_trip(ReadCause::Prefetch);
        s.record_read_round_trip(ReadCause::Prefetch);
        s.record_round_trips(1); // e.g. a write: uncaused
        let snap = s.snapshot();
        assert_eq!(snap.round_trips, 3);
        assert_eq!(snap.trips_for(ReadCause::Prefetch), 2);
        assert_eq!(snap.cause_trips.iter().sum::<u64>(), 2);
    }

    #[test]
    fn cause_index_and_names_are_stable() {
        for (i, cause) in ReadCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
        assert_eq!(ReadCause::default(), ReadCause::Other);
        let names: std::collections::HashSet<&str> =
            ReadCause::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(names.len(), READ_CAUSES, "cause names must be unique");
    }

    #[test]
    fn cause_counters_reset_and_subtract() {
        let s = TransferStats::new();
        s.record_read_cause(ReadCause::Retry, 1, 10);
        let before = s.snapshot();
        s.record_read_cause(ReadCause::Retry, 1, 30);
        let delta = s.snapshot() - before;
        assert_eq!(delta.bytes_for(ReadCause::Retry), 30);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let s = std::sync::Arc::new(TransferStats::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        s.record_read(1, 8);
                    }
                });
            }
        });
        assert_eq!(s.work_requests(), 4_000);
        assert_eq!(s.bytes_read(), 32_000);
    }
}
