//! Transfer statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters describing everything a queue pair moved.
///
/// These are the quantities the paper reports directly (round trips per
/// query, bytes transferred) or that its latency numbers are a function
/// of.
///
/// # Example
///
/// ```rust
/// use rdma_sim::TransferStats;
///
/// let s = TransferStats::new();
/// s.record_read(2, 1024);
/// assert_eq!(s.round_trips(), 0); // reads record WRs/bytes; trips are separate
/// s.record_round_trips(1);
/// assert_eq!(s.work_requests(), 2);
/// assert_eq!(s.bytes_read(), 1024);
/// ```
#[derive(Debug, Default)]
pub struct TransferStats {
    round_trips: AtomicU64,
    work_requests: AtomicU64,
    doorbell_batches: AtomicU64,
    doorbell_sizes: DoorbellSizeBuckets,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    atomics: AtomicU64,
    faults: AtomicU64,
}

/// Number of doorbell batch-size buckets: sizes `1, 2, 4, …, 2^14`,
/// then everything larger.
pub const DOORBELL_SIZE_BUCKETS: usize = 16;

/// Power-of-two histogram of doorbell batch sizes (work requests per
/// doorbell ring). Bucket `i` counts batches of size in
/// `(2^(i-1), 2^i]`; the last bucket also absorbs anything larger.
#[derive(Debug, Default)]
struct DoorbellSizeBuckets([AtomicU64; DOORBELL_SIZE_BUCKETS]);

impl DoorbellSizeBuckets {
    fn record(&self, size: u64) {
        let i = if size <= 1 {
            0
        } else {
            (64 - (size - 1).leading_zeros() as usize).min(DOORBELL_SIZE_BUCKETS - 1)
        };
        self.0[i].fetch_add(1, Ordering::Relaxed);
    }

    fn load(&self) -> [u64; DOORBELL_SIZE_BUCKETS] {
        std::array::from_fn(|i| self.0[i].load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for b in &self.0 {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl TransferStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        TransferStats::default()
    }

    /// Records `n` network round trips.
    pub fn record_round_trips(&self, n: u64) {
        self.round_trips.fetch_add(n, Ordering::Relaxed);
    }

    /// Records read work: `wrs` work requests totalling `bytes` inbound.
    pub fn record_read(&self, wrs: u64, bytes: u64) {
        self.work_requests.fetch_add(wrs, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records write work: `wrs` work requests totalling `bytes` outbound.
    pub fn record_write(&self, wrs: u64, bytes: u64) {
        self.work_requests.fetch_add(wrs, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one doorbell batch submission of `size` work requests.
    pub fn record_doorbell(&self, size: u64) {
        self.doorbell_batches.fetch_add(1, Ordering::Relaxed);
        self.doorbell_sizes.record(size);
    }

    /// Records one faulted (dropped and retransmitted) verb attempt.
    pub fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Total faulted attempts observed.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Records one atomic verb (CAS or FAA).
    pub fn record_atomic(&self) {
        self.atomics.fetch_add(1, Ordering::Relaxed);
        self.work_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Total network round trips.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Total work requests posted.
    pub fn work_requests(&self) -> u64 {
        self.work_requests.load(Ordering::Relaxed)
    }

    /// Total doorbell batches posted.
    pub fn doorbell_batches(&self) -> u64 {
        self.doorbell_batches.load(Ordering::Relaxed)
    }

    /// Total bytes read from remote memory.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written to remote memory.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total atomic verbs executed.
    pub fn atomics(&self) -> u64 {
        self.atomics.load(Ordering::Relaxed)
    }

    /// Zeroes every counter (between benchmark phases).
    pub fn reset(&self) {
        self.round_trips.store(0, Ordering::Relaxed);
        self.work_requests.store(0, Ordering::Relaxed);
        self.doorbell_batches.store(0, Ordering::Relaxed);
        self.doorbell_sizes.reset();
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.atomics.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            round_trips: self.round_trips(),
            work_requests: self.work_requests(),
            doorbell_batches: self.doorbell_batches(),
            doorbell_size_buckets: self.doorbell_sizes.load(),
            bytes_read: self.bytes_read(),
            bytes_written: self.bytes_written(),
            atomics: self.atomics(),
            faults: self.faults(),
        }
    }
}

/// An immutable copy of [`TransferStats`] counters, with subtraction for
/// computing per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total network round trips.
    pub round_trips: u64,
    /// Total work requests posted.
    pub work_requests: u64,
    /// Total doorbell batches posted.
    pub doorbell_batches: u64,
    /// Doorbell batch sizes by power-of-two bucket: bucket `i` counts
    /// batches of `(2^(i-1), 2^i]` work requests (last bucket absorbs
    /// larger).
    pub doorbell_size_buckets: [u64; DOORBELL_SIZE_BUCKETS],
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total atomic verbs.
    pub atomics: u64,
    /// Total faulted (dropped and retransmitted) verb attempts.
    pub faults: u64,
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            round_trips: self.round_trips - rhs.round_trips,
            work_requests: self.work_requests - rhs.work_requests,
            doorbell_batches: self.doorbell_batches - rhs.doorbell_batches,
            doorbell_size_buckets: std::array::from_fn(|i| {
                self.doorbell_size_buckets[i] - rhs.doorbell_size_buckets[i]
            }),
            bytes_read: self.bytes_read - rhs.bytes_read,
            bytes_written: self.bytes_written - rhs.bytes_written,
            atomics: self.atomics - rhs.atomics,
            faults: self.faults - rhs.faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TransferStats::new();
        s.record_round_trips(2);
        s.record_read(3, 100);
        s.record_write(1, 50);
        s.record_doorbell(3);
        s.record_atomic();
        assert_eq!(s.round_trips(), 2);
        assert_eq!(s.work_requests(), 5);
        assert_eq!(s.bytes_read(), 100);
        assert_eq!(s.bytes_written(), 50);
        assert_eq!(s.doorbell_batches(), 1);
        assert_eq!(s.atomics(), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = TransferStats::new();
        s.record_read(3, 100);
        s.record_round_trips(1);
        s.record_doorbell(7);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn doorbell_sizes_land_in_power_of_two_buckets() {
        let s = TransferStats::new();
        s.record_doorbell(1); // bucket 0 (<= 1)
        s.record_doorbell(2); // bucket 1 (<= 2)
        s.record_doorbell(3); // bucket 2 (<= 4)
        s.record_doorbell(4); // bucket 2
        s.record_doorbell(16); // bucket 4
        s.record_doorbell(1_000_000); // clamped to the last bucket
        let snap = s.snapshot();
        assert_eq!(snap.doorbell_batches, 6);
        assert_eq!(snap.doorbell_size_buckets[0], 1);
        assert_eq!(snap.doorbell_size_buckets[1], 1);
        assert_eq!(snap.doorbell_size_buckets[2], 2);
        assert_eq!(snap.doorbell_size_buckets[4], 1);
        assert_eq!(snap.doorbell_size_buckets[DOORBELL_SIZE_BUCKETS - 1], 1);
        assert_eq!(
            snap.doorbell_size_buckets.iter().sum::<u64>(),
            snap.doorbell_batches
        );
    }

    #[test]
    fn doorbell_bucket_delta_subtracts_elementwise() {
        let s = TransferStats::new();
        s.record_doorbell(4);
        let before = s.snapshot();
        s.record_doorbell(4);
        s.record_doorbell(8);
        let delta = s.snapshot() - before;
        assert_eq!(delta.doorbell_batches, 2);
        assert_eq!(delta.doorbell_size_buckets[2], 1);
        assert_eq!(delta.doorbell_size_buckets[3], 1);
    }

    #[test]
    fn snapshot_delta_isolates_a_phase() {
        let s = TransferStats::new();
        s.record_round_trips(5);
        let before = s.snapshot();
        s.record_round_trips(3);
        s.record_read(1, 10);
        let delta = s.snapshot() - before;
        assert_eq!(delta.round_trips, 3);
        assert_eq!(delta.bytes_read, 10);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let s = std::sync::Arc::new(TransferStats::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        s.record_read(1, 8);
                    }
                });
            }
        });
        assert_eq!(s.work_requests(), 4_000);
        assert_eq!(s.bytes_read(), 32_000);
    }
}
