//! The passive memory-pool side.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{Error, Result, TransferStats};

/// A registered memory region, addressed remotely by its `rkey`.
///
/// Handles are plain identifiers (`Copy`), mirroring how real RDMA rkeys
/// travel between machines as integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionHandle {
    rkey: u32,
    len: u64,
}

impl RegionHandle {
    /// The remote key naming this region.
    pub fn rkey(&self) -> u32 {
        self.rkey
    }

    /// Registered length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A memory-pool instance: registered regions and nothing else.
///
/// Matching the paper's disaggregation model, a `MemoryNode` performs no
/// computation beyond memory registration — all access happens through
/// one-sided verbs issued by [`crate::QueuePair`]s.
///
/// # Example
///
/// ```rust
/// use rdma_sim::MemoryNode;
///
/// # fn main() -> Result<(), rdma_sim::Error> {
/// let node = MemoryNode::new("mem0");
/// let r = node.register(4096)?;
/// assert_eq!(r.len(), 4096);
/// assert_eq!(node.registered_bytes(), 4096);
/// node.deregister(r.rkey())?;
/// assert_eq!(node.registered_bytes(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemoryNode {
    name: String,
    regions: RwLock<HashMap<u32, Arc<RwLock<Vec<u8>>>>>,
    next_rkey: AtomicU32,
    service: TransferStats,
}

impl MemoryNode {
    /// Creates a memory node. The name only matters for diagnostics.
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        Arc::new(MemoryNode {
            name: name.into(),
            regions: RwLock::new(HashMap::new()),
            next_rkey: AtomicU32::new(1),
            service: TransferStats::new(),
        })
    }

    /// Registers a zero-initialized region of `len` bytes and returns its
    /// handle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a zero-length region.
    pub fn register(&self, len: usize) -> Result<RegionHandle> {
        if len == 0 {
            return Err(Error::InvalidParameter(
                "cannot register a zero-length region".into(),
            ));
        }
        let rkey = self.next_rkey.fetch_add(1, Ordering::Relaxed);
        self.regions
            .write()
            .insert(rkey, Arc::new(RwLock::new(vec![0u8; len])));
        Ok(RegionHandle {
            rkey,
            len: len as u64,
        })
    }

    /// Deregisters a region, releasing its memory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownRegion`] when `rkey` is not registered.
    pub fn deregister(&self, rkey: u32) -> Result<()> {
        self.regions
            .write()
            .remove(&rkey)
            .map(|_| ())
            .ok_or(Error::UnknownRegion(rkey))
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Length of the region behind `rkey`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownRegion`] when `rkey` is not registered.
    pub fn region_len(&self, rkey: u32) -> Result<u64> {
        Ok(self.region(rkey)?.read().len() as u64)
    }

    /// Total bytes currently registered across all regions.
    pub fn registered_bytes(&self) -> usize {
        self.regions
            .read()
            .values()
            .map(|r| r.read().len())
            .sum()
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.regions.read().len()
    }

    /// Aggregate traffic served by this node's NIC across *all* queue
    /// pairs — the memory-pool-side counterpart of the per-QP
    /// [`TransferStats`]. Useful for spotting a saturated memory node
    /// when many compute instances share it.
    pub fn service_stats(&self) -> &TransferStats {
        &self.service
    }

    pub(crate) fn region(&self, rkey: u32) -> Result<Arc<RwLock<Vec<u8>>>> {
        self.regions
            .read()
            .get(&rkey)
            .cloned()
            .ok_or(Error::UnknownRegion(rkey))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_unique_rkeys() {
        let node = MemoryNode::new("m");
        let a = node.register(10).unwrap();
        let b = node.register(10).unwrap();
        assert_ne!(a.rkey(), b.rkey());
        assert_eq!(node.region_count(), 2);
    }

    #[test]
    fn zero_length_registration_is_rejected() {
        let node = MemoryNode::new("m");
        assert!(node.register(0).is_err());
    }

    #[test]
    fn deregister_twice_fails_cleanly() {
        let node = MemoryNode::new("m");
        let r = node.register(8).unwrap();
        node.deregister(r.rkey()).unwrap();
        assert!(matches!(
            node.deregister(r.rkey()).unwrap_err(),
            Error::UnknownRegion(_)
        ));
    }

    #[test]
    fn region_len_reports_registered_size() {
        let node = MemoryNode::new("m");
        let r = node.register(123).unwrap();
        assert_eq!(node.region_len(r.rkey()).unwrap(), 123);
        assert!(node.region_len(999).is_err());
    }

    #[test]
    fn service_stats_start_at_zero() {
        let node = MemoryNode::new("m");
        assert_eq!(node.service_stats().round_trips(), 0);
        assert_eq!(node.service_stats().bytes_read(), 0);
    }

    #[test]
    fn regions_are_zero_initialized() {
        let node = MemoryNode::new("m");
        let r = node.register(16).unwrap();
        let region = node.region(r.rkey()).unwrap();
        assert!(region.read().iter().all(|&b| b == 0));
    }
}
