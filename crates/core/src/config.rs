//! System configuration.

use hnsw::HnswParams;
use rdma_sim::NetworkModel;
use vecsim::Metric;

use crate::{Error, Result};

/// Wire format for cluster payloads fetched from the memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantizeMode {
    /// Full-precision f32 clusters (the original wire format).
    #[default]
    Off,
    /// Scalar-quantized (SQ8) cluster payloads: the store writes a
    /// compressed copy of every cluster into the layout-v3 tail
    /// region, queries search over codes with asymmetric L2, and exact
    /// distances come from a targeted full-vector rerank read.
    Sq8,
}

impl QuantizeMode {
    /// Parses the CLI/env spelling: `off` or `sq8`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on any other string.
    pub fn parse(s: &str) -> Result<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "full" => Ok(QuantizeMode::Off),
            "sq8" => Ok(QuantizeMode::Sq8),
            other => Err(Error::InvalidParameter(format!(
                "unknown quantize mode {other:?} (expected off|sq8)"
            ))),
        }
    }

    /// The canonical spelling, matching what [`QuantizeMode::parse`]
    /// accepts.
    pub fn as_str(&self) -> &'static str {
        match self {
            QuantizeMode::Off => "off",
            QuantizeMode::Sq8 => "sq8",
        }
    }
}

/// Configuration for building and querying a d-HNSW store.
///
/// The defaults mirror the paper's setup ([`DHnswConfig::paper`]): 500
/// representatives, a three-layer meta-HNSW, a compute-side cache sized to
/// 10% of the clusters, and a ConnectX-6-like fabric.
/// [`DHnswConfig::small`] shrinks everything for tests and doc examples.
///
/// # Example
///
/// ```rust
/// use dhnsw::DHnswConfig;
///
/// let cfg = DHnswConfig::paper().with_fanout(6).with_cache_fraction(0.2);
/// assert_eq!(cfg.representatives(), 500);
/// assert_eq!(cfg.fanout(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct DHnswConfig {
    representatives: usize,
    fanout: usize,
    cache_fraction: f64,
    overflow_slots: usize,
    metric: Metric,
    meta_params: HnswParams,
    sub_params: HnswParams,
    network: NetworkModel,
    seed: u64,
    search_threads: usize,
    read_retry_limit: u32,
    retry_backoff_us: f64,
    degraded_ok: bool,
    pipeline_depth: usize,
    prefetch_budget_bytes: u64,
    quantize_mode: QuantizeMode,
    rerank_k: usize,
}

impl DHnswConfig {
    /// The paper's configuration: 500 representatives, fan-out 4, 10%
    /// cluster cache, ConnectX-6 network model.
    pub fn paper() -> Self {
        DHnswConfig {
            representatives: 500,
            fanout: 4,
            cache_fraction: 0.10,
            overflow_slots: 256,
            metric: Metric::L2,
            meta_params: HnswParams::new(8, 100).max_level(2),
            sub_params: HnswParams::new(16, 100),
            network: NetworkModel::connectx6(),
            seed: 0x5EED,
            search_threads: 0,
            read_retry_limit: 3,
            retry_backoff_us: 8.0,
            degraded_ok: false,
            pipeline_depth: 1,
            prefetch_budget_bytes: 0,
            quantize_mode: QuantizeMode::Off,
            rerank_k: 32,
        }
    }

    /// A scaled-down configuration for unit tests and doc examples: 32
    /// representatives and lighter graph parameters.
    pub fn small() -> Self {
        DHnswConfig {
            representatives: 32,
            fanout: 4,
            cache_fraction: 0.10,
            overflow_slots: 32,
            metric: Metric::L2,
            meta_params: HnswParams::new(6, 40).max_level(2),
            sub_params: HnswParams::new(8, 50),
            network: NetworkModel::connectx6(),
            seed: 0x5EED,
            search_threads: 1,
            read_retry_limit: 3,
            retry_backoff_us: 8.0,
            degraded_ok: false,
            pipeline_depth: 1,
            prefetch_budget_bytes: 0,
            quantize_mode: QuantizeMode::Off,
            rerank_k: 16,
        }
    }

    /// Number of uniformly sampled representative vectors (= partitions).
    pub fn representatives(&self) -> usize {
        self.representatives
    }

    /// Sets the representative count.
    pub fn with_representatives(mut self, n: usize) -> Self {
        self.representatives = n;
        self
    }

    /// Partitions probed per query (`b` in §3.3).
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Sets the per-query partition fan-out.
    pub fn with_fanout(mut self, b: usize) -> Self {
        self.fanout = b;
        self
    }

    /// Fraction of all clusters the compute-side LRU cache holds (`c`
    /// expressed relative to the cluster count; the paper uses 10%).
    pub fn cache_fraction(&self) -> f64 {
        self.cache_fraction
    }

    /// Sets the cache fraction.
    pub fn with_cache_fraction(mut self, f: f64) -> Self {
        self.cache_fraction = f;
        self
    }

    /// Cache capacity in clusters for a store with `partitions`
    /// clusters: at most all of them, and exactly `0` — caching
    /// disabled — when the fraction is `0.0`.
    pub fn cache_capacity(&self, partitions: usize) -> usize {
        if self.cache_fraction == 0.0 {
            return 0;
        }
        ((partitions as f64 * self.cache_fraction).ceil() as usize)
            .clamp(1, partitions.max(1))
    }

    /// Engine-level read retries per cluster load, on top of rdma-sim's
    /// own retransmission budget. Each retry re-reads the cluster span
    /// after a version mismatch or an exhausted-retransmission error.
    pub fn read_retry_limit(&self) -> u32 {
        self.read_retry_limit
    }

    /// Sets the engine-level read retry budget.
    pub fn with_read_retry_limit(mut self, n: u32) -> Self {
        self.read_retry_limit = n;
        self
    }

    /// Base backoff charged (in virtual µs) before the first engine
    /// retry; doubles on each subsequent retry, bounded by the retry
    /// limit.
    pub fn retry_backoff_us(&self) -> f64 {
        self.retry_backoff_us
    }

    /// Sets the base engine retry backoff in virtual µs.
    pub fn with_retry_backoff_us(mut self, us: f64) -> Self {
        self.retry_backoff_us = us;
        self
    }

    /// Whether a query batch may complete with *degraded* results when a
    /// cluster read exhausts the retry budget: affected queries are
    /// answered from the clusters that did arrive and report coverage
    /// `< 1.0` in [`crate::BatchReport`]. When `false` (the default),
    /// the batch fails with [`Error::ReadRetriesExhausted`].
    pub fn degraded_ok(&self) -> bool {
        self.degraded_ok
    }

    /// Sets whether degraded query results are acceptable.
    pub fn with_degraded_ok(mut self, ok: bool) -> Self {
        self.degraded_ok = ok;
        self
    }

    /// Micro-batches a query batch is split into so that micro-batch
    /// *i + 1*'s cluster loads overlap micro-batch *i*'s sub-HNSW search.
    /// `1` (the default) is the sequential route → load → search
    /// execution; the effective depth is additionally clamped to the
    /// batch size at query time.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// Sets the pipeline depth (must be `>= 1`).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Byte budget for the heatmap-driven background prefetcher that
    /// warms the LRU cache between batches. `0` (the default) disables
    /// prefetching entirely.
    pub fn prefetch_budget_bytes(&self) -> u64 {
        self.prefetch_budget_bytes
    }

    /// Sets the between-batch prefetch byte budget (`0` = disabled).
    pub fn with_prefetch_budget_bytes(mut self, bytes: u64) -> Self {
        self.prefetch_budget_bytes = bytes;
        self
    }

    /// Cluster wire format: full-precision or SQ8-compressed.
    pub fn quantize_mode(&self) -> QuantizeMode {
        self.quantize_mode
    }

    /// Sets the cluster wire format. [`QuantizeMode::Sq8`] makes the
    /// store write a compressed copy of every cluster (layout v3) and
    /// the engine fetch codes instead of f32 vectors.
    pub fn with_quantize_mode(mut self, mode: QuantizeMode) -> Self {
        self.quantize_mode = mode;
        self
    }

    /// Extra candidates (beyond `k`) a quantized search keeps per query
    /// as the exact-rerank pool. Ignored when quantization is off.
    pub fn rerank_k(&self) -> usize {
        self.rerank_k
    }

    /// Sets the rerank candidate pool size (must be `>= 1` when
    /// quantization is on).
    pub fn with_rerank_k(mut self, k: usize) -> Self {
        self.rerank_k = k;
        self
    }

    /// Overflow capacity per group, in inserted-vector records.
    pub fn overflow_slots(&self) -> usize {
        self.overflow_slots
    }

    /// Sets the per-group overflow capacity in records.
    pub fn with_overflow_slots(mut self, slots: usize) -> Self {
        self.overflow_slots = slots;
        self
    }

    /// Distance metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Sets the distance metric (propagated to both HNSW layers).
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// HNSW parameters for the meta index (level-capped).
    pub fn meta_params(&self) -> HnswParams {
        self.meta_params
            .clone()
            .metric(self.metric)
            .seed(self.seed ^ 0x11)
    }

    /// Sets the meta-HNSW parameters. A level cap of 2 is enforced at
    /// validation to preserve the three-layer shape the paper requires.
    pub fn with_meta_params(mut self, p: HnswParams) -> Self {
        self.meta_params = p;
        self
    }

    /// HNSW parameters for the per-partition sub-indexes.
    pub fn sub_params(&self) -> HnswParams {
        self.sub_params
            .clone()
            .metric(self.metric)
            .seed(self.seed ^ 0x22)
    }

    /// Sets the sub-HNSW parameters.
    pub fn with_sub_params(mut self, p: HnswParams) -> Self {
        self.sub_params = p;
        self
    }

    /// The network cost model.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// Sets the network cost model.
    pub fn with_network(mut self, model: NetworkModel) -> Self {
        self.network = model;
        self
    }

    /// Worker threads per compute instance for cluster materialization
    /// and sub-HNSW search (`0` = all available cores). The paper runs 18
    /// OpenMP threads per instance.
    pub fn search_threads(&self) -> usize {
        self.search_threads
    }

    /// Sets the per-instance search thread count (`0` = auto).
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.search_threads = threads;
        self
    }

    /// The effective thread count after resolving `0` to the host
    /// parallelism.
    pub fn effective_search_threads(&self) -> usize {
        if self.search_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.search_threads
        }
    }

    /// RNG seed for sampling and graph builds.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when any knob is out of range
    /// or the meta parameters are not level-capped.
    pub fn validate(&self) -> Result<()> {
        if self.representatives == 0 {
            return Err(Error::InvalidParameter(
                "representatives must be >= 1".into(),
            ));
        }
        if self.fanout == 0 {
            return Err(Error::InvalidParameter("fanout must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.cache_fraction) {
            return Err(Error::InvalidParameter(format!(
                "cache_fraction must be in [0, 1], got {}",
                self.cache_fraction
            )));
        }
        if self.pipeline_depth == 0 {
            return Err(Error::InvalidParameter(
                "pipeline_depth must be >= 1 (1 = sequential execution)".into(),
            ));
        }
        if self.quantize_mode != QuantizeMode::Off && self.rerank_k == 0 {
            return Err(Error::InvalidParameter(
                "rerank_k must be >= 1 when quantization is on".into(),
            ));
        }
        if !self.retry_backoff_us.is_finite() || self.retry_backoff_us < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "retry_backoff_us must be finite and >= 0, got {}",
                self.retry_backoff_us
            )));
        }
        self.meta_params
            .validate()
            .map_err(|e| Error::InvalidParameter(format!("meta params: {e}")))?;
        self.sub_params
            .validate()
            .map_err(|e| Error::InvalidParameter(format!("sub params: {e}")))?;
        if self.meta_params.max_level_cap().is_none() {
            return Err(Error::InvalidParameter(
                "meta params must be level-capped (the meta-HNSW is a fixed-height pyramid)"
                    .into(),
            ));
        }
        Ok(())
    }
}

impl Default for DHnswConfig {
    fn default() -> Self {
        DHnswConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DHnswConfig::paper().validate().unwrap();
        DHnswConfig::small().validate().unwrap();
    }

    #[test]
    fn paper_preset_matches_the_paper() {
        let c = DHnswConfig::paper();
        assert_eq!(c.representatives(), 500);
        assert!((c.cache_fraction() - 0.10).abs() < 1e-12);
        assert_eq!(c.meta_params().max_level_cap(), Some(2));
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(DHnswConfig::paper()
            .with_representatives(0)
            .validate()
            .is_err());
        assert!(DHnswConfig::paper().with_fanout(0).validate().is_err());
        assert!(DHnswConfig::paper()
            .with_cache_fraction(1.5)
            .validate()
            .is_err());
        assert!(DHnswConfig::paper()
            .with_meta_params(HnswParams::new(8, 100)) // no level cap
            .validate()
            .is_err());
    }

    #[test]
    fn cache_capacity_is_clamped() {
        let c = DHnswConfig::paper().with_cache_fraction(0.10);
        assert_eq!(c.cache_capacity(500), 50);
        assert_eq!(c.cache_capacity(5), 1);
        let full = DHnswConfig::paper().with_cache_fraction(1.0);
        assert_eq!(full.cache_capacity(500), 500);
        let none = DHnswConfig::paper().with_cache_fraction(0.0);
        assert_eq!(none.cache_capacity(500), 0, "fraction 0 disables caching");
        // Any positive fraction still provisions at least one slot.
        let tiny = DHnswConfig::paper().with_cache_fraction(1e-9);
        assert_eq!(tiny.cache_capacity(5), 1);
    }

    #[test]
    fn retry_knobs_default_and_build() {
        let c = DHnswConfig::paper();
        assert_eq!(c.read_retry_limit(), 3);
        assert!((c.retry_backoff_us() - 8.0).abs() < 1e-12);
        assert!(!c.degraded_ok());
        let c = c
            .with_read_retry_limit(5)
            .with_retry_backoff_us(2.5)
            .with_degraded_ok(true);
        assert_eq!(c.read_retry_limit(), 5);
        assert!((c.retry_backoff_us() - 2.5).abs() < 1e-12);
        assert!(c.degraded_ok());
        c.validate().unwrap();
        assert!(DHnswConfig::paper()
            .with_retry_backoff_us(-1.0)
            .validate()
            .is_err());
        assert!(DHnswConfig::paper()
            .with_retry_backoff_us(f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn pipeline_knobs_default_and_build() {
        let c = DHnswConfig::paper();
        assert_eq!(c.pipeline_depth(), 1, "sequential by default");
        assert_eq!(c.prefetch_budget_bytes(), 0, "prefetch off by default");
        let c = c.with_pipeline_depth(3).with_prefetch_budget_bytes(1 << 20);
        assert_eq!(c.pipeline_depth(), 3);
        assert_eq!(c.prefetch_budget_bytes(), 1 << 20);
        c.validate().unwrap();
        assert!(DHnswConfig::paper()
            .with_pipeline_depth(0)
            .validate()
            .is_err());
    }

    #[test]
    fn quantize_knobs_default_parse_and_validate() {
        let c = DHnswConfig::paper();
        assert_eq!(c.quantize_mode(), QuantizeMode::Off);
        assert_eq!(c.rerank_k(), 32);
        let c = c
            .with_quantize_mode(QuantizeMode::Sq8)
            .with_rerank_k(48);
        assert_eq!(c.quantize_mode(), QuantizeMode::Sq8);
        assert_eq!(c.rerank_k(), 48);
        c.validate().unwrap();
        // rerank_k 0 is only illegal when quantization is on.
        assert!(DHnswConfig::paper()
            .with_quantize_mode(QuantizeMode::Sq8)
            .with_rerank_k(0)
            .validate()
            .is_err());
        DHnswConfig::paper().with_rerank_k(0).validate().unwrap();
        assert_eq!(QuantizeMode::parse("sq8").unwrap(), QuantizeMode::Sq8);
        assert_eq!(QuantizeMode::parse(" OFF ").unwrap(), QuantizeMode::Off);
        assert!(QuantizeMode::parse("pq").is_err());
        assert_eq!(QuantizeMode::Sq8.as_str(), "sq8");
    }

    #[test]
    fn metric_propagates_to_both_hnsw_layers() {
        let c = DHnswConfig::small().with_metric(Metric::Cosine);
        assert_eq!(c.meta_params().metric_kind(), Metric::Cosine);
        assert_eq!(c.sub_params().metric_kind(), Metric::Cosine);
    }

    #[test]
    fn search_threads_resolve() {
        assert!(DHnswConfig::paper().effective_search_threads() >= 1);
        assert_eq!(
            DHnswConfig::small()
                .with_search_threads(7)
                .effective_search_threads(),
            7
        );
    }

    #[test]
    fn seeds_differ_between_layers() {
        let c = DHnswConfig::small();
        assert_ne!(c.meta_params().rng_seed(), c.sub_params().rng_seed());
    }
}
