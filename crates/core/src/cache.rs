//! The compute-side cluster cache of §3.3.
//!
//! Each compute instance has limited DRAM, modeled as an LRU over
//! materialized clusters with a fixed capacity of `c` clusters (the paper
//! configures `c` to 10% of all clusters). The engine retains "the most
//! recently loaded `c` sub-HNSWs for the next batch" — which is exactly
//! LRU behaviour.

use std::collections::HashMap;
use std::sync::Arc;

use crate::cluster::LoadedCluster;
use crate::telemetry::span::{emit_scope_instant, ArgValue};

/// Lifetime counters of a [`ClusterCache`], as reported by
/// [`crate::ComputeNode::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident cluster.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Clusters pushed out by LRU pressure (invalidations and explicit
    /// clears are not evictions).
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// An LRU cache of [`LoadedCluster`]s keyed by partition id.
///
/// Entries are handed out as `Arc`s so a batch can keep using a cluster
/// it already resolved even if a later load in the same batch evicts it.
/// Each entry remembers the cluster *version* it was loaded at (the
/// remote version-slot value), so the engine can detect cross-node
/// mutations and invalidate stale entries on the next load.
///
/// Entries can additionally be **pinned** for the duration of a batch
/// ([`ClusterCache::pin`]): a pinned entry is never chosen as an LRU
/// victim, which lets the pipelined executor keep every cluster of the
/// current batch resident across micro-batch stages even while later
/// stages insert more clusters. When every resident entry is pinned,
/// [`ClusterCache::put`] admits the new entry anyway (a transient
/// oversubscription bounded by the batch's unique-cluster count — memory
/// the engine holds in its resolved set regardless);
/// [`ClusterCache::settle`] then evicts back down to capacity in LRU
/// order once the batch ends and the pins are released.
///
/// A capacity of `0` is an explicit **cache-disabled** mode: every
/// lookup misses, [`ClusterCache::put`] is a no-op, and nothing is ever
/// resident — so "no cache" benchmarks genuinely hold zero clusters.
///
/// # Example
///
/// ```rust
/// use dhnsw::cache::ClusterCache;
///
/// let mut cache = ClusterCache::new(2);
/// assert_eq!(cache.capacity(), 2);
/// assert!(cache.get(0).is_none());
/// ```
#[derive(Debug)]
pub struct ClusterCache {
    capacity: usize,
    entries: HashMap<u32, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// One resident cluster with its LRU stamp, load version, and pin state.
#[derive(Debug)]
struct Entry {
    stamp: u64,
    version: u64,
    pinned: bool,
    cluster: Arc<LoadedCluster>,
}

impl ClusterCache {
    /// Creates a cache holding at most `capacity` clusters; `0` disables
    /// caching entirely.
    pub fn new(capacity: usize) -> Self {
        ClusterCache {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Maximum clusters held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clusters currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a partition, refreshing its recency. Counts a hit or
    /// miss.
    pub fn get(&mut self, partition: u32) -> Option<Arc<LoadedCluster>> {
        self.tick += 1;
        match self.entries.get_mut(&partition) {
            Some(entry) => {
                entry.stamp = self.tick;
                self.stats.hits += 1;
                emit_scope_instant(
                    "cache_hit",
                    "cache",
                    &[("cluster", ArgValue::U64(u64::from(partition)))],
                );
                Some(Arc::clone(&entry.cluster))
            }
            None => {
                self.stats.misses += 1;
                emit_scope_instant(
                    "cache_miss",
                    "cache",
                    &[("cluster", ArgValue::U64(u64::from(partition)))],
                );
                None
            }
        }
    }

    /// Checks residency without touching recency or hit statistics (used
    /// by the load planner).
    pub fn contains(&self, partition: u32) -> bool {
        self.entries.contains_key(&partition)
    }

    /// The version a resident partition was loaded at, without touching
    /// recency or hit statistics (used by the engine's coherence check).
    pub fn version_of(&self, partition: u32) -> Option<u64> {
        self.entries.get(&partition).map(|e| e.version)
    }

    /// Inserts a cluster loaded at `version`, evicting the least
    /// recently used entry if the cache is full. Returns the evicted
    /// partition, if any, so callers (the engine's heatmap sampler) can
    /// attribute the eviction. A no-op when the cache is disabled
    /// (capacity 0).
    pub fn put(
        &mut self,
        partition: u32,
        cluster: Arc<LoadedCluster>,
        version: u64,
    ) -> Option<u32> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        let mut evicted = None;
        if !self.entries.contains_key(&partition) && self.entries.len() >= self.capacity {
            // Evict the least recently used *unpinned* entry. When the
            // whole cache is pinned (a batch whose working set exceeds
            // capacity), admit anyway; settle() restores the bound.
            if let Some((&victim, _)) = self
                .entries
                .iter()
                .filter(|(_, e)| !e.pinned)
                .min_by_key(|(_, e)| e.stamp)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
                evicted = Some(victim);
                emit_scope_instant(
                    "cache_evict",
                    "cache",
                    &[
                        ("victim", ArgValue::U64(u64::from(victim))),
                        ("for", ArgValue::U64(u64::from(partition))),
                    ],
                );
            }
        }
        let pinned = self.entries.get(&partition).is_some_and(|e| e.pinned);
        self.entries.insert(
            partition,
            Entry {
                stamp: self.tick,
                version,
                pinned,
                cluster,
            },
        );
        evicted
    }

    /// Pins a resident partition so LRU pressure cannot evict it until
    /// [`ClusterCache::unpin_all`] or [`ClusterCache::settle`]. Returns
    /// whether the partition was resident. Recency and hit statistics are
    /// untouched.
    pub fn pin(&mut self, partition: u32) -> bool {
        match self.entries.get_mut(&partition) {
            Some(entry) => {
                entry.pinned = true;
                true
            }
            None => false,
        }
    }

    /// Clears every pin without evicting anything.
    pub fn unpin_all(&mut self) {
        for entry in self.entries.values_mut() {
            entry.pinned = false;
        }
    }

    /// Number of currently pinned entries.
    pub fn pinned(&self) -> usize {
        self.entries.values().filter(|e| e.pinned).count()
    }

    /// Ends a batch's pin scope: releases every pin and evicts in LRU
    /// order until the cache is back within capacity (undoing any
    /// transient oversubscription pins forced). Returns the victims in
    /// eviction order; each counts as an LRU eviction.
    pub fn settle(&mut self) -> Vec<u32> {
        self.unpin_all();
        let mut victims = Vec::new();
        while self.entries.len() > self.capacity {
            let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            self.entries.remove(&victim);
            self.stats.evictions += 1;
            emit_scope_instant(
                "cache_evict",
                "cache",
                &[("victim", ArgValue::U64(u64::from(victim)))],
            );
            victims.push(victim);
        }
        victims
    }

    /// Drops a partition (after an insert invalidates its materialized
    /// form). Returns whether it was present.
    pub fn invalidate(&mut self, partition: u32) -> bool {
        self.entries.remove(&partition).is_some()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.stats.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.stats.misses
    }

    /// Lifetime eviction count (LRU pressure only).
    pub fn evictions(&self) -> u64 {
        self.stats.evictions
    }

    /// All lifetime counters at once.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Approximate resident bytes across all cached clusters.
    pub fn resident_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.cluster.resident_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SubCluster;
    use hnsw::HnswParams;
    use vecsim::gen;

    fn cluster(partition: u32) -> Arc<LoadedCluster> {
        let data = gen::uniform(4, 10, 0.0, 1.0, u64::from(partition)).unwrap();
        let ids: Vec<u32> = (0..10).collect();
        Arc::new(LoadedCluster::from_sub(
            SubCluster::build(partition, data, ids, &HnswParams::new(4, 16)).unwrap(),
        ))
    }

    #[test]
    fn get_after_put_hits() {
        let mut c = ClusterCache::new(4);
        c.put(7, cluster(7), 0);
        assert!(c.get(7).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn miss_is_counted() {
        let mut c = ClusterCache::new(4);
        assert!(c.get(1).is_none());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ClusterCache::new(2);
        c.put(0, cluster(0), 0);
        c.put(1, cluster(1), 0);
        c.get(0); // 0 is now more recent than 1
        c.put(2, cluster(2), 0); // evicts 1
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_reports_the_eviction_victim() {
        let mut c = ClusterCache::new(2);
        assert_eq!(c.put(0, cluster(0), 0), None);
        assert_eq!(c.put(1, cluster(1), 0), None);
        c.get(1); // 0 becomes the LRU
        assert_eq!(c.put(2, cluster(2), 0), Some(0));
        assert_eq!(c.put(2, cluster(2), 0), None, "refresh evicts nobody");
    }

    #[test]
    fn reinserting_resident_key_does_not_evict() {
        let mut c = ClusterCache::new(2);
        c.put(0, cluster(0), 0);
        c.put(1, cluster(1), 0);
        c.put(1, cluster(1), 0); // refresh, not grow
        assert_eq!(c.len(), 2);
        assert!(c.contains(0));
    }

    #[test]
    fn capacity_zero_disables_the_cache() {
        let mut c = ClusterCache::new(0);
        assert_eq!(c.capacity(), 0);
        assert_eq!(c.put(0, cluster(0), 1), None);
        assert!(c.is_empty());
        assert!(!c.contains(0));
        assert!(c.get(0).is_none());
        assert_eq!(c.misses(), 1);
        assert_eq!(c.evictions(), 0, "disabled cache never evicts");
        assert_eq!(c.version_of(0), None);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn entries_remember_their_load_version() {
        let mut c = ClusterCache::new(2);
        c.put(3, cluster(3), 17);
        assert_eq!(c.version_of(3), Some(17));
        assert_eq!(c.version_of(4), None);
        // A re-put at a newer version replaces the remembered one.
        c.put(3, cluster(3), 18);
        assert_eq!(c.version_of(3), Some(18));
        c.invalidate(3);
        assert_eq!(c.version_of(3), None);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = ClusterCache::new(2);
        c.put(3, cluster(3), 0);
        assert!(c.invalidate(3));
        assert!(!c.invalidate(3));
        assert!(c.get(3).is_none());
    }

    #[test]
    fn contains_does_not_perturb_lru_or_stats() {
        let mut c = ClusterCache::new(2);
        c.put(0, cluster(0), 0);
        c.put(1, cluster(1), 0);
        assert!(c.contains(0)); // must NOT refresh 0
        c.put(2, cluster(2), 0); // evicts 0, the true LRU
        assert!(!c.contains(0));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = ClusterCache::new(2);
        c.put(0, cluster(0), 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn evictions_count_lru_pressure_only() {
        let mut c = ClusterCache::new(2);
        c.put(0, cluster(0), 0);
        c.put(1, cluster(1), 0);
        assert_eq!(c.evictions(), 0);
        c.put(2, cluster(2), 0); // LRU pressure
        assert_eq!(c.evictions(), 1);
        c.invalidate(2); // explicit drop: not an eviction
        c.clear(); // neither is a clear
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn cache_stats_hit_rate() {
        let empty = CacheStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        let mut c = ClusterCache::new(2);
        c.put(0, cluster(0), 0);
        c.get(0);
        c.get(0);
        c.get(9);
        c.get(8);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_events_land_in_the_active_trace_scope() {
        use crate::telemetry::span::{SpanId, SpanTracer};
        let tracer = SpanTracer::new(4);
        tracer.set_enabled(true);
        let trace = tracer.begin("full");
        let root = trace.begin_span("query_batch", "engine", SpanId::NONE);
        let mut c = ClusterCache::new(1);
        {
            let _guard = trace.enter_scope(root);
            c.get(5); // miss
            c.put(5, cluster(5), 0);
            c.get(5); // hit
            c.put(6, cluster(6), 0); // evicts 5
        }
        c.get(6); // outside the scope: not traced
        trace.end_span(root);
        tracer.finish(trace);
        let ft = &tracer.recent()[0];
        let events: Vec<&str> = ft
            .spans
            .iter()
            .filter(|s| s.cat == "cache")
            .map(|s| s.name)
            .collect();
        assert_eq!(events, vec!["cache_miss", "cache_hit", "cache_evict"]);
    }

    #[test]
    fn pinned_entries_survive_lru_pressure() {
        let mut c = ClusterCache::new(2);
        c.put(0, cluster(0), 0);
        c.put(1, cluster(1), 0);
        assert!(c.pin(0), "resident entry pins");
        assert!(!c.pin(9), "absent entry does not");
        assert_eq!(c.pinned(), 1);
        // 0 is the LRU but pinned: pressure falls on 1 instead.
        assert_eq!(c.put(2, cluster(2), 0), Some(1));
        assert!(c.contains(0));
        c.unpin_all();
        assert_eq!(c.pinned(), 0);
        // With the pin released, 0 is evictable again.
        assert_eq!(c.put(3, cluster(3), 0), Some(0));
    }

    #[test]
    fn fully_pinned_cache_oversubscribes_then_settles() {
        let mut c = ClusterCache::new(2);
        c.put(0, cluster(0), 0);
        c.put(1, cluster(1), 0);
        c.pin(0);
        c.pin(1);
        // Everything is pinned: the put admits without a victim.
        assert_eq!(c.put(2, cluster(2), 0), None);
        c.pin(2);
        assert_eq!(c.len(), 3, "transient oversubscription");
        let evictions_before = c.evictions();
        let victims = c.settle();
        assert_eq!(c.len(), 2, "settle restores the capacity bound");
        assert_eq!(victims, vec![0], "LRU entry goes first");
        assert_eq!(c.evictions(), evictions_before + 1);
        assert_eq!(c.pinned(), 0);
    }

    #[test]
    fn put_preserves_the_pin_of_a_refreshed_entry() {
        let mut c = ClusterCache::new(2);
        c.put(0, cluster(0), 0);
        c.pin(0);
        c.put(0, cluster(0), 1); // reload at a newer version
        c.put(1, cluster(1), 0);
        // 0 is still pinned after the re-put: pressure must pick 1.
        assert_eq!(c.put(2, cluster(2), 0), Some(1));
        assert!(c.contains(0));
    }

    #[test]
    fn pins_on_a_disabled_cache_are_noops() {
        let mut c = ClusterCache::new(0);
        assert!(!c.pin(0));
        c.unpin_all();
        assert!(c.settle().is_empty());
        assert_eq!(c.pinned(), 0);
    }

    #[test]
    fn resident_bytes_tracks_contents() {
        let mut c = ClusterCache::new(2);
        assert_eq!(c.resident_bytes(), 0);
        c.put(0, cluster(0), 0);
        assert!(c.resident_bytes() > 0);
    }
}
