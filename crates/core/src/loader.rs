//! Query-aware batched data loading (§3.3).
//!
//! Given a batch of queries, each needing its `b` closest sub-HNSW
//! clusters, the planner computes the batch's *unique* cluster demand so
//! every cluster crosses the network **at most once per batch**, splits it
//! into cache hits and required loads, and emits the doorbell read
//! requests covering each required cluster's contiguous span (cluster +
//! overflow).
//!
//! The planner is pure — it performs no I/O — which keeps the dedup and
//! cache-interaction logic independently testable.

use rdma_sim::{ReadCause, ReadReq};

use crate::layout::Directory;
use crate::telemetry::span::ArgValue;
use crate::Result;

/// The outcome of planning one batch's cluster loads.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoadPlan {
    /// Deduplicated partitions the batch needs, in first-demand order.
    pub unique: Vec<u32>,
    /// Subset of `unique` already resident in the compute-side cache.
    pub cached: Vec<u32>,
    /// Subset of `unique` that must be fetched from the memory pool.
    pub to_load: Vec<u32>,
    /// Total demand before dedup (`Σ per-query fan-out`).
    pub raw_demand: usize,
}

impl LoadPlan {
    /// How many loads the query-aware dedup avoided versus naive
    /// per-query fetching (cache hits included).
    pub fn transfers_saved(&self) -> usize {
        self.raw_demand - self.to_load.len()
    }

    /// Fraction of the raw cluster demand served without a network
    /// transfer (batch dedup plus cache hits), in `[0, 1]`. A healthy
    /// warm deployment sits near 1; a cold or thrashing one near 0.
    pub fn reuse_ratio(&self) -> f64 {
        if self.raw_demand == 0 {
            0.0
        } else {
            self.transfers_saved() as f64 / self.raw_demand as f64
        }
    }

    /// The plan as span arguments, for annotating the cluster-union
    /// span of a batch trace.
    pub fn trace_args(&self) -> Vec<(&'static str, ArgValue)> {
        vec![
            ("raw_demand", ArgValue::U64(self.raw_demand as u64)),
            ("unique", ArgValue::U64(self.unique.len() as u64)),
            ("cached", ArgValue::U64(self.cached.len() as u64)),
            ("to_load", ArgValue::U64(self.to_load.len() as u64)),
            (
                "transfers_saved",
                ArgValue::U64(self.transfers_saved() as u64),
            ),
            ("reuse_ratio", ArgValue::F64(self.reuse_ratio())),
        ]
    }
}

/// Plans the loads for a batch.
///
/// `routes[i]` lists the partitions query `i` needs (its top-`b` from the
/// meta-HNSW). `is_cached` reports compute-side residency.
pub fn plan_batch(routes: &[Vec<u32>], is_cached: impl Fn(u32) -> bool) -> LoadPlan {
    let mut plan = LoadPlan::default();
    let mut seen = std::collections::HashSet::new();
    for route in routes {
        plan.raw_demand += route.len();
        for &p in route {
            if seen.insert(p) {
                plan.unique.push(p);
            }
        }
    }
    for &p in &plan.unique {
        if is_cached(p) {
            plan.cached.push(p);
        } else {
            plan.to_load.push(p);
        }
    }
    plan
}

/// Partitions a plan's `to_load` list across pipeline stages by *first
/// demand*: `bounds[s] = (lo, hi)` delimits stage `s`'s contiguous query
/// micro-batch, and each cluster lands in the earliest stage whose
/// queries route to it. Within a stage the original `to_load` order is
/// preserved, so concatenating the stage lists reproduces `to_load`
/// exactly — which is what keeps the pipelined executor's load order
/// (and therefore its byte/doorbell accounting and post-batch LRU state)
/// identical to the sequential path's.
///
/// Clusters in `to_load` that no bounded query demands (possible only
/// with inconsistent inputs) fall into stage 0 so nothing is dropped.
pub fn stage_loads(
    routes: &[Vec<u32>],
    to_load: &[u32],
    bounds: &[(usize, usize)],
) -> Vec<Vec<u32>> {
    let mut first_stage: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (stage, &(lo, hi)) in bounds.iter().enumerate() {
        for route in routes.iter().take(hi.min(routes.len())).skip(lo) {
            for &p in route {
                first_stage.entry(p).or_insert(stage);
            }
        }
    }
    let mut stages: Vec<Vec<u32>> = vec![Vec::new(); bounds.len().max(1)];
    for &p in to_load {
        let s = first_stage.get(&p).copied().unwrap_or(0);
        stages[s].push(p);
    }
    stages
}

/// Builds the read requests covering each partition's contiguous
/// cluster-plus-overflow span, in `partitions` order. Feeding the whole
/// list to [`rdma_sim::QueuePair::read_doorbell`] yields the §3.2
/// doorbell-batched load; issuing them one by one is the "without
/// doorbell" baseline.
///
/// # Errors
///
/// Returns [`crate::Error::UnknownPartition`] for an out-of-range id.
pub fn read_requests(
    directory: &Directory,
    rkey: u32,
    partitions: &[u32],
) -> Result<Vec<ReadReq>> {
    partitions
        .iter()
        .map(|&p| {
            let loc = directory.location(p)?;
            let (off, len) = loc.read_span();
            Ok(ReadReq::new(rkey, off, len))
        })
        .collect()
}

/// [`read_requests`] with every request tagged with a byte-provenance
/// [`ReadCause`], so the substrate's per-cause counters attribute the
/// span bytes to the right consumer (stage load, prefetch, naive fetch,
/// …) even when requests from several consumers share one doorbell.
///
/// # Errors
///
/// Same as [`read_requests`].
pub fn read_requests_tagged(
    directory: &Directory,
    rkey: u32,
    partitions: &[u32],
    cause: ReadCause,
) -> Result<Vec<ReadReq>> {
    Ok(read_requests(directory, rkey, partitions)?
        .into_iter()
        .map(|r| r.with_cause(cause))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routes(rs: &[&[u32]]) -> Vec<Vec<u32>> {
        rs.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn dedup_keeps_first_demand_order() {
        // The paper's Fig. 5 example: q1 -> {S1, S4}, q2 -> {S3, ...},
        // q3 -> {S4, S5}, q4 -> {S3, ...}.
        let plan = plan_batch(
            &routes(&[&[1, 4], &[3, 2], &[4, 5], &[3, 1]]),
            |_| false,
        );
        assert_eq!(plan.unique, vec![1, 4, 3, 2, 5]);
        assert_eq!(plan.raw_demand, 8);
        assert_eq!(plan.to_load.len(), 5);
        assert_eq!(plan.transfers_saved(), 3);
    }

    #[test]
    fn cached_partitions_are_not_loaded() {
        let plan = plan_batch(&routes(&[&[1, 2], &[2, 3]]), |p| p == 2);
        assert_eq!(plan.unique, vec![1, 2, 3]);
        assert_eq!(plan.cached, vec![2]);
        assert_eq!(plan.to_load, vec![1, 3]);
        assert_eq!(plan.transfers_saved(), 2);
    }

    #[test]
    fn empty_batch_plans_nothing() {
        let plan = plan_batch(&[], |_| true);
        assert_eq!(plan, LoadPlan::default());
    }

    #[test]
    fn fully_cached_batch_loads_nothing() {
        let plan = plan_batch(&routes(&[&[0, 1], &[1, 2]]), |_| true);
        assert!(plan.to_load.is_empty());
        assert_eq!(plan.cached, vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_within_one_query_counts_once() {
        let plan = plan_batch(&routes(&[&[5, 5, 5]]), |_| false);
        assert_eq!(plan.unique, vec![5]);
        assert_eq!(plan.raw_demand, 3);
    }

    #[test]
    fn trace_args_summarize_the_plan() {
        let plan = plan_batch(&routes(&[&[1, 2], &[2, 3]]), |p| p == 2);
        let args = plan.trace_args();
        assert!(args.contains(&("raw_demand", ArgValue::U64(4))));
        assert!(args.contains(&("unique", ArgValue::U64(3))));
        assert!(args.contains(&("cached", ArgValue::U64(1))));
        assert!(args.contains(&("to_load", ArgValue::U64(2))));
        assert!(args.contains(&("transfers_saved", ArgValue::U64(2))));
        assert!(args.contains(&("reuse_ratio", ArgValue::F64(0.5))));
    }

    #[test]
    fn reuse_ratio_spans_cold_to_warm() {
        assert_eq!(plan_batch(&[], |_| false).reuse_ratio(), 0.0);
        // Cold batch with disjoint routes: nothing reused.
        assert_eq!(
            plan_batch(&routes(&[&[0], &[1]]), |_| false).reuse_ratio(),
            0.0
        );
        // Fully cached batch: everything reused.
        assert_eq!(
            plan_batch(&routes(&[&[0, 1], &[1, 0]]), |_| true).reuse_ratio(),
            1.0
        );
    }

    #[test]
    fn stage_loads_assigns_by_first_demand() {
        // Queries 0-1 form stage 0, queries 2-3 stage 1. Cluster 4 is
        // first demanded by query 0, cluster 3 by query 1, clusters 5
        // and 2 only by stage-1 queries.
        let rs = routes(&[&[1, 4], &[3, 2], &[4, 5], &[3, 1]]);
        let plan = plan_batch(&rs, |p| p == 2);
        assert_eq!(plan.to_load, vec![1, 4, 3, 5]);
        let staged = stage_loads(&rs, &plan.to_load, &[(0, 2), (2, 4)]);
        assert_eq!(staged, vec![vec![1, 4, 3], vec![5]]);
        // Concatenation reproduces to_load order exactly.
        let flat: Vec<u32> = staged.into_iter().flatten().collect();
        assert_eq!(flat, plan.to_load);
    }

    #[test]
    fn stage_loads_single_stage_is_the_whole_plan() {
        let rs = routes(&[&[0, 1], &[2, 0]]);
        let plan = plan_batch(&rs, |_| false);
        let staged = stage_loads(&rs, &plan.to_load, &[(0, 2)]);
        assert_eq!(staged, vec![plan.to_load.clone()]);
    }

    #[test]
    fn stage_loads_handles_empty_and_unrouted_input() {
        assert_eq!(stage_loads(&[], &[], &[]), vec![Vec::<u32>::new()]);
        // A cluster no bounded query routes to defaults to stage 0.
        let rs = routes(&[&[7]]);
        let staged = stage_loads(&rs, &[9, 7], &[(0, 1), (1, 1)]);
        assert_eq!(staged, vec![vec![9, 7], vec![]]);
    }

    #[test]
    fn read_requests_cover_full_spans() {
        let dir = Directory::plan(&[64, 128, 32], 4, 4).unwrap();
        let reqs = read_requests(&dir, 9, &[2, 0]).unwrap();
        assert_eq!(reqs.len(), 2);
        let loc2 = dir.location(2).unwrap();
        let (off, len) = loc2.read_span();
        assert_eq!(reqs[0], ReadReq::new(9, off, len));
        // Order follows the input partitions.
        let loc0 = dir.location(0).unwrap();
        assert_eq!(reqs[1].offset, loc0.read_span().0);
    }

    #[test]
    fn read_requests_tagged_carry_their_cause() {
        let dir = Directory::plan(&[64, 128], 4, 4).unwrap();
        let reqs =
            read_requests_tagged(&dir, 9, &[1, 0], ReadCause::StageLoad).unwrap();
        assert_eq!(reqs.len(), 2);
        assert!(reqs.iter().all(|r| r.cause == ReadCause::StageLoad));
        // Offsets and lengths are untouched by tagging.
        let plain = read_requests(&dir, 9, &[1, 0]).unwrap();
        for (t, p) in reqs.iter().zip(&plain) {
            assert_eq!((t.rkey, t.offset, t.len), (p.rkey, p.offset, p.len));
        }
    }

    #[test]
    fn read_requests_reject_unknown_partition() {
        let dir = Directory::plan(&[64], 4, 4).unwrap();
        assert!(read_requests(&dir, 1, &[5]).is_err());
    }
}
