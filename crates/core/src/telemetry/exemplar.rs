//! Bounded tail-exemplar store and the why-slow diagnoser.
//!
//! Aggregate histograms say *that* p99 moved; exemplars say *which
//! query* and *why*. Every finished batch records a [`TailRecord`]
//! here, and the store retains three bounded views:
//!
//! 1. **Bucket exemplars** — for each latency-histogram bucket, the
//!    trace id and dominant [`ReadCause`] of the most recent batch
//!    whose per-query latency landed in it, so any populated bucket
//!    (p50, p99, the overflow bucket) is clickable back to a concrete
//!    query via `/whyslow/<trace-id>`.
//! 2. **Reservoir** — a uniform sample over *all* batches (Algorithm
//!    R under a seeded [SplitMix64] generator, so runs are
//!    deterministic). This is the diagnoser's picture of "normal".
//! 3. **K-slowest** — the exact top-K batches by wall latency, the
//!    only entries that retain their full span trees.
//!
//! The **why-slow diagnoser** diffs an exemplar's per-query phase
//! breakdown and per-cause byte ledger against the reservoir medians
//! and emits a ranked verdict: `network_bound`, `retry_storm`,
//! `cache_cold`, `overflow_heavy`, `pipeline_stall`, `compute_bound`,
//! or `nominal` when the exemplar does not exceed the baseline. The
//! byte-share scores tile the network excess exactly (plus the
//! compute share they sum to 1), so the ranking is a decomposition,
//! not a heuristic grab-bag.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use rdma_sim::{ReadCause, READ_CAUSES};

use crate::breakdown::CostLedger;
use crate::telemetry::span::FinishedTrace;
use crate::telemetry::{bucket_bound, bucket_index, HIST_BUCKETS};

/// Default reservoir capacity (uniform sample over all batches).
pub const RESERVOIR_CAPACITY: usize = 64;

/// Default number of slowest batches retained exactly (with spans).
pub const SLOWEST_CAPACITY: usize = 8;

/// Default reservoir seed; fixed so two identical runs retain
/// identical exemplar sets.
const DEFAULT_SEED: u64 = 0x5EED_7A11_D0A7_F00D;

/// Verdicts the diagnoser can emit, in ranking-tie precedence order
/// (`nominal` is the no-excess fallback and not listed).
pub const VERDICTS: [&str; 6] = [
    "network_bound",
    "retry_storm",
    "cache_cold",
    "overflow_heavy",
    "pipeline_stall",
    "compute_bound",
];

/// Stable numeric code for a verdict (for metric exposition):
/// `nominal`=0, then [`VERDICTS`] in order from 1. Unknown strings
/// map to 99.
pub fn verdict_index(verdict: &str) -> u64 {
    if verdict == "nominal" {
        return 0;
    }
    VERDICTS
        .iter()
        .position(|v| *v == verdict)
        .map_or(99, |i| i as u64 + 1)
}

/// Everything the tail-anatomy layer keeps about one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TailRecord {
    /// Trace id: the span tracer's batch sequence number (assigned
    /// even when span capture is disabled).
    pub trace_id: u64,
    /// Search-mode label (`full`, `no_doorbell`, `naive`).
    pub mode: &'static str,
    /// Queries in the batch.
    pub queries: u32,
    /// Whole-batch wall latency, microseconds.
    pub total_us: f64,
    /// Mean per-query wall latency, microseconds.
    pub per_query_us: f64,
    /// The integer per-query sample the latency histogram observed —
    /// bucket exemplars are filed under `bucket_index` of exactly
    /// this value, so every populated bucket carries an exemplar by
    /// construction.
    pub latency_sample_us: u64,
    /// Meta-HNSW routing time, microseconds.
    pub meta_us: f64,
    /// Exposed network time, microseconds.
    pub network_us: f64,
    /// Sub-HNSW search time, microseconds.
    pub sub_us: f64,
    /// Cluster materialization time, microseconds.
    pub materialize_us: f64,
    /// Byte/trip provenance of the batch, by [`ReadCause`].
    pub ledger: CostLedger,
    /// Queries answered with incomplete cluster coverage.
    pub degraded_queries: u32,
    /// Engine-level read retries the batch performed.
    pub read_retries: u64,
}

/// The exemplar a histogram bucket points at: the most recent batch
/// whose per-query latency sample landed in that bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketExemplar {
    /// Trace id of the exemplar batch.
    pub trace_id: u64,
    /// Its mean per-query latency, microseconds.
    pub per_query_us: f64,
    /// Its dominant read cause (`None` when the batch read nothing).
    pub cause: Option<ReadCause>,
}

#[derive(Debug)]
struct SlowEntry {
    rec: TailRecord,
    spans: Option<FinishedTrace>,
}

#[derive(Debug)]
struct Inner {
    reservoir: Vec<TailRecord>,
    /// Batches offered to the reservoir so far (Algorithm R's `n`).
    seen: u64,
    rng: u64,
    /// Exact K-slowest, sorted slowest-first (ties: lower trace id).
    slowest: Vec<SlowEntry>,
    buckets: [Option<BucketExemplar>; HIST_BUCKETS],
}

/// The bounded tail-exemplar store. All three views update under one
/// short lock per batch; counters are atomics readable without it.
#[derive(Debug)]
pub struct ExemplarStore {
    reservoir_capacity: usize,
    slowest_capacity: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
    flushed_recorded: AtomicU64,
    flushed_dropped: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for ExemplarStore {
    fn default() -> Self {
        Self::with_config(RESERVOIR_CAPACITY, SLOWEST_CAPACITY, DEFAULT_SEED)
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `true` when `a` ranks strictly slower than `b` (ties break toward
/// the earlier batch so the K-slowest set is total-ordered and exact).
fn slower(a: &TailRecord, b: &TailRecord) -> bool {
    a.total_us > b.total_us || (a.total_us == b.total_us && a.trace_id < b.trace_id)
}

impl ExemplarStore {
    /// A store with explicit capacities and reservoir seed (tests and
    /// benchmarks; production uses `Default`).
    pub fn with_config(reservoir_capacity: usize, slowest_capacity: usize, seed: u64) -> Self {
        ExemplarStore {
            reservoir_capacity: reservoir_capacity.max(1),
            slowest_capacity: slowest_capacity.max(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            flushed_recorded: AtomicU64::new(0),
            flushed_dropped: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                reservoir: Vec::new(),
                seen: 0,
                rng: seed,
                slowest: Vec::new(),
                buckets: [None; HIST_BUCKETS],
            }),
        }
    }

    /// Records one batch. The bucket exemplar always updates; the
    /// span tree (if any) is retained only while the batch sits in
    /// the K-slowest set; the reservoir keeps a uniform sample.
    pub fn record(&self, rec: TailRecord, spans: Option<FinishedTrace>) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.inner.lock();
        let g = &mut *guard;

        g.buckets[bucket_index(rec.latency_sample_us)] = Some(BucketExemplar {
            trace_id: rec.trace_id,
            per_query_us: rec.per_query_us,
            cause: rec.ledger.dominant_cause(),
        });

        let pos = g.slowest.partition_point(|e| slower(&e.rec, &rec));
        if pos < self.slowest_capacity {
            g.slowest.insert(
                pos,
                SlowEntry {
                    rec: rec.clone(),
                    spans,
                },
            );
            if g.slowest.len() > self.slowest_capacity {
                g.slowest.pop();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }

        g.seen += 1;
        if g.reservoir.len() < self.reservoir_capacity {
            g.reservoir.push(rec);
        } else {
            let j = splitmix(&mut g.rng) % g.seen;
            if (j as usize) < self.reservoir_capacity {
                g.reservoir[j as usize] = rec;
            }
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Batches recorded over the store's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Exemplars evicted or not retained: reservoir losses once full
    /// plus K-slowest displacements.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// `(recorded, dropped)` growth since the last call, claiming the
    /// interval atomically so several nodes flushing one shared store
    /// into counters never double count the same increment.
    pub fn take_flush_delta(&self) -> (u64, u64) {
        let rec = self.recorded();
        let dr = self.dropped();
        let prev_rec = self.flushed_recorded.swap(rec, Ordering::Relaxed);
        let prev_dr = self.flushed_dropped.swap(dr, Ordering::Relaxed);
        (rec.saturating_sub(prev_rec), dr.saturating_sub(prev_dr))
    }

    /// Records currently held (reservoir + K-slowest slots).
    pub fn occupancy(&self) -> u64 {
        let g = self.inner.lock();
        (g.reservoir.len() + g.slowest.len()) as u64
    }

    /// The K-slowest records, slowest first.
    pub fn slowest(&self) -> Vec<TailRecord> {
        self.inner.lock().slowest.iter().map(|e| e.rec.clone()).collect()
    }

    /// The current reservoir sample, in slot order.
    pub fn reservoir(&self) -> Vec<TailRecord> {
        self.inner.lock().reservoir.clone()
    }

    /// The per-bucket exemplars, indexed like the latency histogram's
    /// buckets.
    pub fn bucket_exemplars(&self) -> [Option<BucketExemplar>; HIST_BUCKETS] {
        self.inner.lock().buckets
    }

    /// Finds a retained record by trace id (K-slowest first, since
    /// those carry spans, then the reservoir).
    pub fn lookup(&self, trace_id: u64) -> Option<(TailRecord, Option<FinishedTrace>)> {
        let g = self.inner.lock();
        if let Some(e) = g.slowest.iter().find(|e| e.rec.trace_id == trace_id) {
            return Some((e.rec.clone(), e.spans.clone()));
        }
        g.reservoir
            .iter()
            .find(|r| r.trace_id == trace_id)
            .map(|r| (r.clone(), None))
    }

    /// Drops every retained exemplar and resets the counters (the
    /// reservoir seed is preserved mid-stream; determinism holds for
    /// a fixed record sequence from construction).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.reservoir.clear();
        g.slowest.clear();
        g.seen = 0;
        g.buckets = [None; HIST_BUCKETS];
        self.recorded.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.flushed_recorded.store(0, Ordering::Relaxed);
        self.flushed_dropped.store(0, Ordering::Relaxed);
    }

    /// Renders the whole store as deterministic JSON (the
    /// `/exemplars` endpoint body).
    pub fn render_json(&self) -> String {
        let g = self.inner.lock();
        let rec_json = |r: &TailRecord, has_spans: Option<bool>| {
            let cause = r
                .ledger
                .dominant_cause()
                .map_or("none", |c| c.as_str());
            let spans = match has_spans {
                Some(b) => format!(", \"has_spans\": {b}"),
                None => String::new(),
            };
            format!(
                "{{\"trace_id\": {}, \"mode\": \"{}\", \"queries\": {}, \
                 \"total_us\": {}, \"per_query_us\": {}, \"dominant_cause\": \"{}\", \
                 \"degraded_queries\": {}, \"read_retries\": {}{}}}",
                r.trace_id,
                r.mode,
                r.queries,
                num3(r.total_us),
                num3(r.per_query_us),
                cause,
                r.degraded_queries,
                r.read_retries,
                spans
            )
        };
        let slowest: Vec<String> = g
            .slowest
            .iter()
            .map(|e| rec_json(&e.rec, Some(e.spans.is_some())))
            .collect();
        let reservoir: Vec<String> = g.reservoir.iter().map(|r| rec_json(r, None)).collect();
        let buckets: Vec<String> = g
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().map(|b| (i, b)))
            .map(|(i, b)| {
                let bound = bucket_bound(i);
                let le = if bound.is_infinite() {
                    "\"+Inf\"".to_string()
                } else {
                    format!("{bound}")
                };
                format!(
                    "{{\"le\": {le}, \"trace_id\": {}, \"per_query_us\": {}, \"cause\": \"{}\"}}",
                    b.trace_id,
                    num3(b.per_query_us),
                    b.cause.map_or("none", |c| c.as_str())
                )
            })
            .collect();
        format!(
            "{{\n  \"occupancy\": {},\n  \"recorded\": {},\n  \"dropped\": {},\n  \
             \"slowest\": [{}],\n  \"reservoir\": [{}],\n  \"buckets\": [{}]\n}}\n",
            (g.reservoir.len() + g.slowest.len()) as u64,
            self.recorded(),
            self.dropped(),
            slowest.join(", "),
            reservoir.join(", "),
            buckets.join(", ")
        )
    }

    /// Diagnoses why `trace_id` was slow relative to the reservoir
    /// median (the `/whyslow/<id>` endpoint body). `None` when no
    /// retained record has that id.
    pub fn whyslow_json(&self, trace_id: u64) -> Option<String> {
        let (rec, spans) = self.lookup(trace_id)?;
        let baseline = self.reservoir();
        Some(diagnose(&rec, spans.is_some(), &baseline).render_json())
    }

    /// Diagnoses the single slowest retained batch. Returns
    /// `(trace_id, verdict, json)`; `None` while the store is empty.
    pub fn diagnose_slowest(&self) -> Option<(u64, &'static str, String)> {
        let (rec, has_spans) = {
            let g = self.inner.lock();
            let e = g.slowest.first()?;
            (e.rec.clone(), e.spans.is_some())
        };
        let d = diagnose(&rec, has_spans, &self.reservoir());
        Some((rec.trace_id, d.verdict, d.render_json()))
    }
}

/// A ranked why-slow verdict for one exemplar.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Trace id of the diagnosed batch.
    pub trace_id: u64,
    /// Top-ranked verdict (a [`VERDICTS`] entry, or `nominal`).
    pub verdict: &'static str,
    /// Score per verdict, [`VERDICTS`] order. Scores sum to 1 when
    /// any excess exists (byte shares tile the network excess).
    pub scores: [f64; 6],
    /// Per-query phase excess over the baseline median, µs:
    /// `[meta, network, sub_hnsw, materialize]`.
    pub excess_us: [f64; 4],
    /// Per-query byte excess over the baseline median, by cause.
    pub excess_bytes: [f64; READ_CAUSES],
    /// The exemplar's mean per-query latency, µs.
    pub per_query_us: f64,
    /// The baseline (reservoir median) per-query latency, µs.
    pub baseline_per_query_us: f64,
    /// Queries in the diagnosed batch.
    pub queries: u32,
    /// Search-mode label of the batch.
    pub mode: &'static str,
    /// Degraded queries in the batch.
    pub degraded_queries: u32,
    /// Engine-level read retries the batch performed.
    pub read_retries: u64,
    /// Whether the full span tree is retained for this batch.
    pub has_spans: bool,
}

/// Median of `values` (upper median; 0 when empty). Deterministic:
/// total order via `f64::total_cmp`.
fn median(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    values[values.len() / 2]
}

/// Formats a float with three decimals, clamping non-finite to 0.
fn num3(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Diffs `rec` against the reservoir medians and ranks the verdicts.
///
/// The decomposition: the four per-query phase excesses (clamped at
/// zero) split the total excess into a network share and a compute
/// share; the network share is then subdivided by per-cause byte
/// excess — retry and half the version-check churn score
/// `retry_storm`, stage loads score `cache_cold`, overflow scans
/// score `overflow_heavy`, and the rest scores `network_bound`. A
/// network excess with *no* byte excess means the transfer overlap
/// was lost, not that more data moved: `pipeline_stall`. With no
/// meaningful excess at all the verdict is `nominal`.
pub fn diagnose(rec: &TailRecord, has_spans: bool, baseline: &[TailRecord]) -> Diagnosis {
    let per_query = |r: &TailRecord| {
        let q = f64::from(r.queries.max(1));
        (
            [
                r.meta_us / q,
                r.network_us / q,
                r.sub_us / q,
                r.materialize_us / q,
            ],
            std::array::from_fn::<f64, READ_CAUSES, _>(|i| r.ledger.cause_bytes[i] as f64 / q),
        )
    };
    let (phases, bytes) = per_query(rec);
    let base_phases: [f64; 4] = std::array::from_fn(|i| {
        median(baseline.iter().map(|r| per_query(r).0[i]).collect())
    });
    let base_bytes: [f64; READ_CAUSES] = std::array::from_fn(|i| {
        median(baseline.iter().map(|r| per_query(r).1[i]).collect())
    });
    let baseline_per_query_us = median(baseline.iter().map(|r| r.per_query_us).collect());

    let excess_us: [f64; 4] = std::array::from_fn(|i| (phases[i] - base_phases[i]).max(0.0));
    let excess_bytes: [f64; READ_CAUSES] =
        std::array::from_fn(|i| (bytes[i] - base_bytes[i]).max(0.0));
    let u_total: f64 = excess_us.iter().sum();

    let mut scores = [0.0f64; 6];
    // Under half a microsecond of per-query excess is noise, not a
    // tail: the batch is within its window's normal behavior.
    if u_total >= 0.5 {
        let net_share = excess_us[1] / u_total;
        let compute = (excess_us[0] + excess_us[2] + excess_us[3]) / u_total;
        let byte_total: f64 = excess_bytes.iter().sum();
        if byte_total > 0.0 {
            let b = |c: ReadCause| excess_bytes[c.index()];
            let retry = b(ReadCause::Retry) + 0.5 * b(ReadCause::VersionCheck);
            let cold = b(ReadCause::StageLoad);
            let overflow = b(ReadCause::OverflowScan);
            let rest = (byte_total - retry - cold - overflow).max(0.0);
            scores[0] = net_share * rest / byte_total; // network_bound
            scores[1] = net_share * retry / byte_total; // retry_storm
            scores[2] = net_share * cold / byte_total; // cache_cold
            scores[3] = net_share * overflow / byte_total; // overflow_heavy
        } else {
            scores[4] = net_share; // pipeline_stall
        }
        scores[5] = compute; // compute_bound
    }
    let mut verdict = "nominal";
    let mut best = 0.0;
    for (i, &s) in scores.iter().enumerate() {
        if s > best {
            best = s;
            verdict = VERDICTS[i];
        }
    }
    Diagnosis {
        trace_id: rec.trace_id,
        verdict,
        scores,
        excess_us,
        excess_bytes,
        per_query_us: rec.per_query_us,
        baseline_per_query_us,
        queries: rec.queries,
        mode: rec.mode,
        degraded_queries: rec.degraded_queries,
        read_retries: rec.read_retries,
        has_spans,
    }
}

impl Diagnosis {
    /// Deterministic JSON rendering of the ranked verdict.
    pub fn render_json(&self) -> String {
        let scores: Vec<String> = VERDICTS
            .iter()
            .zip(self.scores.iter())
            .map(|(v, s)| format!("\"{v}\": {}", num3(*s)))
            .collect();
        let phases = ["meta_route", "network", "sub_hnsw", "materialize"];
        let excess_us: Vec<String> = phases
            .iter()
            .zip(self.excess_us.iter())
            .map(|(p, v)| format!("\"{p}\": {}", num3(*v)))
            .collect();
        let excess_bytes: Vec<String> = ReadCause::ALL
            .iter()
            .map(|c| {
                format!(
                    "\"{}\": {}",
                    c.as_str(),
                    num3(self.excess_bytes[c.index()])
                )
            })
            .collect();
        format!(
            "{{\n  \"trace_id\": {},\n  \"mode\": \"{}\",\n  \"queries\": {},\n  \
             \"verdict\": \"{}\",\n  \"per_query_us\": {},\n  \
             \"baseline_per_query_us\": {},\n  \"degraded_queries\": {},\n  \
             \"read_retries\": {},\n  \"has_spans\": {},\n  \
             \"scores\": {{{}}},\n  \"excess_us_per_query\": {{{}}},\n  \
             \"excess_bytes_per_query\": {{{}}}\n}}\n",
            self.trace_id,
            self.mode,
            self.queries,
            self.verdict,
            num3(self.per_query_us),
            num3(self.baseline_per_query_us),
            self.degraded_queries,
            self.read_retries,
            self.has_spans,
            scores.join(", "),
            excess_us.join(", "),
            excess_bytes.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(trace_id: u64, total_us: f64, queries: u32) -> TailRecord {
        let q = queries.max(1);
        let per = total_us / f64::from(q);
        TailRecord {
            trace_id,
            mode: "full",
            queries,
            total_us,
            per_query_us: per,
            latency_sample_us: per as u64,
            meta_us: 0.05 * total_us,
            network_us: 0.6 * total_us,
            sub_us: 0.25 * total_us,
            materialize_us: 0.1 * total_us,
            ledger: CostLedger::default(),
            degraded_queries: 0,
            read_retries: 0,
        }
    }

    fn with_bytes(mut r: TailRecord, cause: ReadCause, bytes: u64) -> TailRecord {
        r.ledger.cause_bytes[cause.index()] = bytes;
        r
    }

    #[test]
    fn bucket_exemplars_track_the_latest_batch_per_bucket() {
        let s = ExemplarStore::default();
        s.record(rec(1, 320.0, 32), None); // per-query 10 → bucket of 10
        s.record(rec(2, 3200.0, 32), None); // per-query 100
        s.record(rec(3, 352.0, 32), None); // per-query 11 → same bucket as 10
        let ex = s.bucket_exemplars();
        let b10 = ex[bucket_index(10)].expect("bucket for 10µs");
        assert_eq!(b10.trace_id, 3, "most recent batch wins the bucket");
        let b100 = ex[bucket_index(100)].expect("bucket for 100µs");
        assert_eq!(b100.trace_id, 2);
        assert_eq!(ex.iter().flatten().count(), 2);
    }

    #[test]
    fn slowest_set_is_exact_and_keeps_spans_only_there() {
        let s = ExemplarStore::with_config(4, 2, 7);
        let spans_of = |seq| FinishedTrace {
            label: "full",
            seq,
            total_us: 1.0,
            spans: Vec::new(),
        };
        for (id, total) in [(1u64, 50.0), (2, 400.0), (3, 100.0), (4, 300.0)] {
            s.record(rec(id, total, 16), Some(spans_of(id)));
        }
        let slow: Vec<u64> = s.slowest().iter().map(|r| r.trace_id).collect();
        assert_eq!(slow, vec![2, 4], "exact top-2 by latency, slowest first");
        // Spans survive only for the K-slowest entries.
        assert!(s.lookup(2).unwrap().1.is_some());
        assert!(s.lookup(1).unwrap().1.is_none(), "reservoir keeps no spans");
        // Displacements counted as drops: ids 1 and 3 left the set.
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.recorded(), 4);
    }

    #[test]
    fn eviction_wraps_around_bounded_capacity() {
        let s = ExemplarStore::with_config(4, 2, 99);
        for i in 0..20u64 {
            // Latencies cycle so every bucket keeps being rewritten.
            let total = 100.0 + (i % 5) as f64 * 50.0;
            s.record(rec(i, total, 1), None);
        }
        assert_eq!(s.recorded(), 20);
        assert_eq!(s.occupancy(), 6, "4 reservoir slots + 2 slowest");
        // Once the reservoir is full every further record drops one
        // (itself or a displaced entry), plus slowest displacements.
        assert!(s.dropped() >= 16, "dropped={}", s.dropped());
        // The slowest pair is exactly the ties-broken top-2 of the
        // 300µs batches: ids 4 and 9 (lowest ids at the max latency).
        let slow: Vec<u64> = s.slowest().iter().map(|r| r.trace_id).collect();
        assert_eq!(slow, vec![4, 9]);
        // Bucket exemplars always reflect the most recent batch.
        let ex = s.bucket_exemplars();
        let b = ex[bucket_index(250)].expect("250µs bucket");
        assert_eq!(b.trace_id, 18, "last id with 250µs is 18");
        // Lifetime counters survive clear() only as zeros.
        s.clear();
        assert_eq!((s.occupancy(), s.recorded(), s.dropped()), (0, 0, 0));
        assert!(s.bucket_exemplars().iter().all(|b| b.is_none()));
    }

    #[test]
    fn diagnoser_labels_a_retry_storm() {
        // Baseline: cheap batches whose bytes are all stage loads.
        let baseline: Vec<TailRecord> = (0..9)
            .map(|i| with_bytes(rec(i, 160.0, 16), ReadCause::StageLoad, 4096))
            .collect();
        // The tail batch: network exploded, and the byte excess is
        // dominated by retry traffic.
        let mut slow = with_bytes(rec(99, 1600.0, 16), ReadCause::StageLoad, 4096);
        slow.ledger.cause_bytes[ReadCause::Retry.index()] = 65536;
        slow.read_retries = 9;
        let d = diagnose(&slow, true, &baseline);
        assert_eq!(d.verdict, "retry_storm");
        assert!(d.scores[1] > d.scores[0], "retry beats generic network");
        assert!(d.scores[1] > d.scores[5], "retry beats compute");
        // Scores tile: network byte shares + compute sum to 1.
        let sum: f64 = d.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        let json = d.render_json();
        assert!(json.contains("\"verdict\": \"retry_storm\""));
        assert!(json.contains("\"read_retries\": 9"));
    }

    #[test]
    fn diagnoser_separates_the_other_verdicts() {
        let baseline: Vec<TailRecord> = (0..9).map(|i| rec(i, 160.0, 16)).collect();
        // Cold batch: network excess carried by stage-load bytes.
        let cold = with_bytes(rec(90, 1600.0, 16), ReadCause::StageLoad, 1 << 20);
        assert_eq!(diagnose(&cold, false, &baseline).verdict, "cache_cold");
        // Overflow-heavy batch.
        let ovf = with_bytes(rec(91, 1600.0, 16), ReadCause::OverflowScan, 1 << 20);
        assert_eq!(diagnose(&ovf, false, &baseline).verdict, "overflow_heavy");
        // Network grew with no byte excess: the overlap stalled.
        let stall = rec(92, 1600.0, 16);
        assert_eq!(diagnose(&stall, false, &baseline).verdict, "pipeline_stall");
        // Compute-bound batch: sub-HNSW search dominates the excess.
        let mut cpu = rec(93, 1600.0, 16);
        cpu.network_us = 0.6 * 160.0; // baseline network
        cpu.sub_us = 1600.0 - cpu.network_us - cpu.meta_us - cpu.materialize_us;
        assert_eq!(diagnose(&cpu, false, &baseline).verdict, "compute_bound");
        // A batch at the baseline is nominal.
        assert_eq!(diagnose(&rec(94, 160.0, 16), false, &baseline).verdict, "nominal");
        // Prefetch-carried excess is generic network-bound.
        let net = with_bytes(rec(95, 1600.0, 16), ReadCause::Prefetch, 1 << 20);
        assert_eq!(diagnose(&net, false, &baseline).verdict, "network_bound");
    }

    #[test]
    fn whyslow_resolves_retained_ids_only() {
        let s = ExemplarStore::with_config(8, 2, 1);
        for i in 0..6u64 {
            s.record(rec(i, 100.0 + i as f64, 8), None);
        }
        let json = s.whyslow_json(5).expect("retained id resolves");
        assert!(json.contains("\"trace_id\": 5"));
        assert!(s.whyslow_json(777).is_none());
        let (id, verdict, json) = s.diagnose_slowest().expect("store non-empty");
        assert_eq!(id, 5, "slowest batch");
        assert!(json.contains(&format!("\"verdict\": \"{verdict}\"")));
    }

    #[test]
    fn verdict_indices_are_stable() {
        assert_eq!(verdict_index("nominal"), 0);
        assert_eq!(verdict_index("network_bound"), 1);
        assert_eq!(verdict_index("retry_storm"), 2);
        assert_eq!(verdict_index("cache_cold"), 3);
        assert_eq!(verdict_index("overflow_heavy"), 4);
        assert_eq!(verdict_index("pipeline_stall"), 5);
        assert_eq!(verdict_index("compute_bound"), 6);
        assert_eq!(verdict_index("??"), 99);
    }

    #[test]
    fn render_json_is_deterministic_and_structured() {
        let s = ExemplarStore::with_config(4, 2, 3);
        s.record(
            with_bytes(rec(1, 500.0, 10), ReadCause::StageLoad, 2048),
            None,
        );
        s.record(rec(2, 90.0, 10), None);
        let a = s.render_json();
        assert_eq!(a, s.render_json(), "rendering is a pure read");
        assert!(a.contains("\"occupancy\": 4"), "{a}");
        assert!(a.contains("\"recorded\": 2"));
        assert!(a.contains("\"dominant_cause\": \"stage_load\""));
        assert!(a.contains("\"le\": "));
        // Empty store renders empty arrays, not broken JSON.
        let empty = ExemplarStore::default().render_json();
        assert!(empty.contains("\"slowest\": []"));
        assert!(empty.contains("\"buckets\": []"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn reservoir_is_seed_deterministic_and_k_slowest_exact(
            totals in prop::collection::vec(1u32..1_000_000, 1..120)
        ) {
            let a = ExemplarStore::with_config(8, 4, 0xABCD);
            let b = ExemplarStore::with_config(8, 4, 0xABCD);
            for (i, &t) in totals.iter().enumerate() {
                a.record(rec(i as u64, f64::from(t), 4), None);
                b.record(rec(i as u64, f64::from(t), 4), None);
            }
            // Same seed + same stream → identical reservoirs.
            prop_assert_eq!(a.reservoir(), b.reservoir());
            prop_assert_eq!(a.dropped(), b.dropped());
            // The K-slowest set is exact: matches a full sort.
            let mut want: Vec<(f64, u64)> = totals
                .iter()
                .enumerate()
                .map(|(i, &t)| (f64::from(t), i as u64))
                .collect();
            want.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            let want_ids: Vec<u64> =
                want.iter().take(4).map(|&(_, id)| id).collect();
            let got_ids: Vec<u64> =
                a.slowest().iter().map(|r| r.trace_id).collect();
            prop_assert_eq!(got_ids, want_ids);
            prop_assert!(a.occupancy() <= 12);
            prop_assert_eq!(a.recorded(), totals.len() as u64);
        }
    }
}
