//! Chrome trace-event JSON exposition for finished span traces.
//!
//! Renders [`FinishedTrace`]s into the [Trace Event Format] consumed
//! by Perfetto and `chrome://tracing`: one process (`pid` 1), one
//! lane (`tid`) per batch named after its sequence number and search
//! mode, duration spans as complete `"X"` events and markers as
//! thread-scoped `"i"` instants. Timestamps are wall-clock
//! microseconds relative to each batch's epoch; virtual-clock
//! intervals ride along in `args` as `vt_start_us` / `vt_dur_us`.
//!
//! Events are sorted by timestamp (ties broken longest-duration
//! first, so parents precede the children they enclose), which keeps
//! the output deterministic and viewer-friendly. Everything is
//! rendered by hand — no serialization dependency.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use super::escape;
use super::span::{FinishedTrace, SpanKind};

/// Formats an f64 for JSON with fixed three-decimal precision (the
/// Chrome format takes fractional microseconds; fixed width keeps
/// golden files stable).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Renders `traces` as a complete Chrome trace-event JSON document.
///
/// Load the result in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`. Each batch appears as its own thread lane;
/// span nesting follows wall-clock containment.
pub fn chrome_trace_json(traces: &[FinishedTrace]) -> String {
    let mut meta: Vec<String> = Vec::new();
    let mut events: Vec<(f64, f64, String)> = Vec::new();
    for ft in traces {
        meta.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"batch {} ({})\"}}}}",
            ft.seq,
            ft.seq,
            escape(ft.label)
        ));
        for rec in &ft.spans {
            let mut args = String::new();
            for (k, v) in &rec.args {
                args.push_str(&format!("\"{}\":{},", escape(k), v.render_json()));
            }
            if rec.vt_dur_us > 0.0 {
                args.push_str(&format!(
                    "\"vt_start_us\":{},\"vt_dur_us\":{},",
                    json_num(rec.vt_start_us),
                    json_num(rec.vt_dur_us)
                ));
            }
            args.pop(); // trailing comma (no-op when empty)
            let dur = rec.wall_dur_us.max(0.0);
            let json = match rec.kind {
                SpanKind::Span => format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
                    escape(rec.name),
                    escape(rec.cat),
                    json_num(rec.wall_start_us),
                    json_num(dur),
                    ft.seq,
                    args
                ),
                SpanKind::Instant => format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
                    escape(rec.name),
                    escape(rec.cat),
                    json_num(rec.wall_start_us),
                    ft.seq,
                    args
                ),
            };
            events.push((rec.wall_start_us, -dur, json));
        }
    }
    events.sort_by(|a, b| {
        a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1))
    });
    let all: Vec<String> = meta.into_iter().chain(events.into_iter().map(|e| e.2)).collect();
    if all.is_empty() {
        return "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}".to_string();
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}",
        all.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::super::span::{ArgValue, SpanRecord};
    use super::*;

    fn span(
        name: &'static str,
        parent: u32,
        start: f64,
        dur: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanRecord {
        SpanRecord {
            name,
            cat: "engine",
            parent,
            kind: SpanKind::Span,
            wall_start_us: start,
            wall_dur_us: dur,
            vt_start_us: 0.0,
            vt_dur_us: 0.0,
            args,
        }
    }

    #[test]
    fn empty_input_is_an_empty_document() {
        let json = chrome_trace_json(&[]);
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn spans_render_as_sorted_x_events_with_lane_metadata() {
        let ft = FinishedTrace {
            label: "full",
            seq: 3,
            total_us: 100.0,
            spans: vec![
                span("query_batch", 0, 0.0, 100.0, Vec::new()),
                // Recorded out of wall order on purpose.
                span("sub_hnsw_search", 1, 60.0, 30.0, Vec::new()),
                span(
                    "meta_route",
                    1,
                    0.0,
                    10.0,
                    vec![("fanout", ArgValue::U64(4))],
                ),
            ],
        };
        let json = chrome_trace_json(&[ft]);
        assert!(json.contains("\"args\":{\"name\":\"batch 3 (full)\"}"));
        assert!(json.contains(
            "{\"name\":\"query_batch\",\"cat\":\"engine\",\"ph\":\"X\",\
             \"ts\":0.000,\"dur\":100.000,\"pid\":1,\"tid\":3,\"args\":{}}"
        ));
        assert!(json.contains("\"fanout\":4"));
        // Sorted by ts, parent before same-ts child, search span last.
        let qb = json.find("query_batch").unwrap();
        let mr = json.find("meta_route").unwrap();
        let ss = json.find("sub_hnsw_search").unwrap();
        assert!(qb < mr && mr < ss);
    }

    #[test]
    fn instants_render_as_thread_scoped_i_events() {
        let ft = FinishedTrace {
            label: "full",
            seq: 0,
            total_us: 5.0,
            spans: vec![SpanRecord {
                name: "cache_hit",
                cat: "cache",
                parent: 0,
                kind: SpanKind::Instant,
                wall_start_us: 2.5,
                wall_dur_us: 0.0,
                vt_start_us: 0.0,
                vt_dur_us: 0.0,
                args: vec![("cluster", ArgValue::U64(9))],
            }],
        };
        let json = chrome_trace_json(&[ft]);
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":2.500"));
        assert!(json.contains("\"cluster\":9"));
    }

    #[test]
    fn virtual_clock_rides_in_args() {
        let mut rec = span("read_doorbell", 1, 10.0, 20.0, Vec::new());
        rec.vt_start_us = 1.0;
        rec.vt_dur_us = 15.5;
        let ft = FinishedTrace {
            label: "full",
            seq: 0,
            total_us: 30.0,
            spans: vec![rec],
        };
        let json = chrome_trace_json(&[ft]);
        assert!(json.contains("\"vt_start_us\":1.000,\"vt_dur_us\":15.500"));
    }
}
