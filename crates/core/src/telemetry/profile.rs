//! Always-on cumulative flame profile of the batch read path.
//!
//! Every finished batch folds its span tree into a [`ProfileAccumulator`]:
//! a weighted call-tree keyed by the `;`-joined span-name path
//! (`query_batch;network;read_doorbell`), accumulating call counts,
//! inclusive wall and virtual-clock microseconds, and *self* wall time
//! (inclusive minus children). The accumulated tree exports in the
//! collapsed-stack ("folded") format that `flamegraph.pl`, inferno, and
//! speedscope all ingest directly:
//!
//! ```text
//! query_batch;network;read_doorbell 1724
//! query_batch;sub_hnsw_search 9310
//! ```
//!
//! one line per distinct path, weight = cumulative self wall µs.
//!
//! When span tracing is disabled the engine still folds each batch's
//! coarse [`crate::breakdown::LatencyBreakdown`] through
//! [`ProfileAccumulator::fold_phases`], so `/profile/folded` is never
//! empty on a serving node: the profile degrades from verb-level to
//! phase-level resolution instead of disappearing.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use crate::breakdown::LatencyBreakdown;
use crate::telemetry::span::{FinishedTrace, SpanKind};

/// Cumulative weight of one span-name path across all folded batches.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PathStats {
    /// Number of spans folded into this path.
    pub calls: u64,
    /// Inclusive wall-clock microseconds (span durations summed).
    pub wall_us: f64,
    /// Inclusive virtual-clock microseconds (the RDMA cost model).
    pub vt_us: f64,
    /// Self wall-clock microseconds: inclusive time minus the wall
    /// time of direct children, clamped at zero per span. This is the
    /// folded-stack weight.
    pub self_us: f64,
}

/// The cumulative weighted call-tree. Cheap to fold into (one lock
/// acquisition and a handful of `BTreeMap` upserts per batch) and
/// deterministic to render (paths export in lexicographic order).
#[derive(Debug, Default)]
pub struct ProfileAccumulator {
    paths: Mutex<BTreeMap<String, PathStats>>,
}

impl ProfileAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished batch trace into the call-tree. Instant
    /// markers carry no duration and are skipped; duration spans key
    /// on the `;`-joined name path from the root (recording order
    /// guarantees parents precede children).
    pub fn fold_trace(&self, ft: &FinishedTrace) {
        let n = ft.spans.len();
        let mut paths: Vec<Option<String>> = vec![None; n];
        let mut child_wall = vec![0.0f64; n];
        for (i, rec) in ft.spans.iter().enumerate() {
            if rec.kind == SpanKind::Instant {
                continue;
            }
            let path = match rec.parent as usize {
                0 => rec.name.to_string(),
                p => match &paths[p - 1] {
                    Some(parent) => format!("{parent};{}", rec.name),
                    // Parent was skipped (instant) — treat as a root.
                    None => rec.name.to_string(),
                },
            };
            if rec.parent != 0 {
                child_wall[rec.parent as usize - 1] += rec.wall_dur_us.max(0.0);
            }
            paths[i] = Some(path);
        }
        let mut map = self.paths.lock();
        for (i, rec) in ft.spans.iter().enumerate() {
            let Some(path) = paths[i].take() else { continue };
            let wall = rec.wall_dur_us.max(0.0);
            let s = map.entry(path).or_default();
            s.calls += 1;
            s.wall_us += wall;
            s.vt_us += rec.vt_dur_us.max(0.0);
            s.self_us += (wall - child_wall[i]).max(0.0);
        }
    }

    /// Folds one batch's coarse phase breakdown — the always-on path
    /// used when span tracing is off. Synthesizes the same top-level
    /// paths the real span tree would produce (`query_batch;network`,
    /// `query_batch;sub_hnsw_search`, …) so the folded export stays
    /// loadable and comparable; the root's self time absorbs whatever
    /// `total_us` the four phases do not cover.
    pub fn fold_phases(&self, breakdown: &LatencyBreakdown, total_us: f64) {
        let phases = [
            ("query_batch;meta_route", breakdown.meta_hnsw_us, 0.0),
            ("query_batch;network", breakdown.network_us, breakdown.network_us),
            ("query_batch;sub_hnsw_search", breakdown.sub_hnsw_us, 0.0),
            ("query_batch;materialize", breakdown.materialize_us, 0.0),
        ];
        let mut map = self.paths.lock();
        let mut covered = 0.0;
        for (path, wall, vt) in phases {
            let wall = wall.max(0.0);
            covered += wall;
            let s = map.entry(path.to_string()).or_default();
            s.calls += 1;
            s.wall_us += wall;
            s.vt_us += vt.max(0.0);
            s.self_us += wall;
        }
        let total = total_us.max(0.0);
        let root = map.entry("query_batch".to_string()).or_default();
        root.calls += 1;
        root.wall_us += total;
        root.self_us += (total - covered).max(0.0);
    }

    /// Renders the accumulated tree in collapsed-stack format: one
    /// `path <self-µs>` line per distinct path, lexicographic order,
    /// integer weights (rounded). Loadable by `flamegraph.pl`,
    /// inferno, and speedscope.
    pub fn render_folded(&self) -> String {
        let map = self.paths.lock();
        let mut out = String::new();
        for (path, s) in map.iter() {
            out.push_str(&format!("{path} {}\n", s.self_us.round() as u64));
        }
        out
    }

    /// A copy of the accumulated paths and their stats, lexicographic
    /// by path. Exposition/test path — allocates.
    pub fn snapshot(&self) -> Vec<(String, PathStats)> {
        self.paths
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Number of distinct paths accumulated so far.
    pub fn len(&self) -> usize {
        self.paths.lock().len()
    }

    /// Whether nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every accumulated path.
    pub fn clear(&self) {
        self.paths.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::span::{SpanId, SpanRecord, SpanTracer};

    fn span(
        name: &'static str,
        parent: u32,
        start: f64,
        dur: f64,
        vt: f64,
    ) -> SpanRecord {
        SpanRecord {
            name,
            cat: "engine",
            parent,
            kind: SpanKind::Span,
            wall_start_us: start,
            wall_dur_us: dur,
            vt_start_us: 0.0,
            vt_dur_us: vt,
            args: Vec::new(),
        }
    }

    fn sample_trace() -> FinishedTrace {
        FinishedTrace {
            label: "full",
            seq: 0,
            total_us: 100.0,
            spans: vec![
                span("query_batch", 0, 0.0, 100.0, 0.0),
                span("meta_route", 1, 0.0, 10.0, 0.0),
                span("network", 1, 10.0, 50.0, 40.0),
                span("read_doorbell", 3, 10.0, 50.0, 40.0),
                span("sub_hnsw_search", 1, 60.0, 30.0, 0.0),
                SpanRecord {
                    name: "cache_hit",
                    cat: "cache",
                    parent: 1,
                    kind: SpanKind::Instant,
                    wall_start_us: 5.0,
                    wall_dur_us: 0.0,
                    vt_start_us: 0.0,
                    vt_dur_us: 0.0,
                    args: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn fold_trace_accumulates_self_time_per_path() {
        let p = ProfileAccumulator::new();
        p.fold_trace(&sample_trace());
        p.fold_trace(&sample_trace());
        let snap: std::collections::BTreeMap<_, _> = p.snapshot().into_iter().collect();
        let root = snap.get("query_batch").unwrap();
        assert_eq!(root.calls, 2);
        assert!((root.wall_us - 200.0).abs() < 1e-9);
        // Root self = 100 - (10 + 50 + 30) = 10 per fold.
        assert!((root.self_us - 20.0).abs() < 1e-9);
        let net = snap.get("query_batch;network").unwrap();
        // Network's only child (the doorbell) covers it fully.
        assert!((net.self_us - 0.0).abs() < 1e-9);
        assert!((net.vt_us - 80.0).abs() < 1e-9);
        let db = snap.get("query_batch;network;read_doorbell").unwrap();
        assert!((db.self_us - 100.0).abs() < 1e-9);
        // The instant marker contributes no path.
        assert!(!snap.contains_key("query_batch;cache_hit"));
        assert_eq!(snap.len(), 5);
    }

    #[test]
    fn fold_phases_synthesizes_the_coarse_tree() {
        let p = ProfileAccumulator::new();
        let b = LatencyBreakdown {
            network_us: 40.0,
            sub_hnsw_us: 25.0,
            meta_hnsw_us: 5.0,
            materialize_us: 10.0,
        };
        p.fold_phases(&b, 90.0);
        let snap: std::collections::BTreeMap<_, _> = p.snapshot().into_iter().collect();
        assert_eq!(snap.len(), 5);
        assert!((snap["query_batch;network"].self_us - 40.0).abs() < 1e-9);
        assert!((snap["query_batch;network"].vt_us - 40.0).abs() < 1e-9);
        assert!((snap["query_batch;sub_hnsw_search"].self_us - 25.0).abs() < 1e-9);
        // Root self absorbs the uncovered 10µs.
        assert!((snap["query_batch"].self_us - 10.0).abs() < 1e-9);
        // Folding both resolutions lands in the same tree.
        p.fold_trace(&sample_trace());
        assert_eq!(p.len(), 6, "doorbell path joins the phase paths");
    }

    #[test]
    fn folded_render_is_sorted_and_parseable() {
        let p = ProfileAccumulator::new();
        p.fold_trace(&sample_trace());
        let text = p.render_folded();
        assert!(!text.is_empty());
        let mut last = String::new();
        for line in text.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("`path weight` shape");
            assert!(!path.is_empty());
            weight.parse::<u64>().expect("integer weight");
            assert!(path > last.as_str(), "lexicographic order");
            last = path.to_string();
        }
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn live_traces_fold_cleanly() {
        let t = SpanTracer::new(4);
        t.set_enabled(true);
        let p = ProfileAccumulator::new();
        let trace = t.begin("full");
        let root = trace.begin_span("query_batch", "engine", SpanId::NONE);
        let child = trace.begin_span("meta_route", "engine", root);
        trace.end_span(child);
        trace.end_span(root);
        let ft = t.finish_trace(trace).unwrap();
        p.fold_trace(&ft);
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "query_batch");
        assert_eq!(snap[1].0, "query_batch;meta_route");
        p.clear();
        assert!(p.is_empty());
    }
}
