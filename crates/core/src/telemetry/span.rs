//! Parent/child span tracing for the batch read path.
//!
//! One [`BatchTrace`] covers one `query_batch` call: a root span with
//! routing / cluster-union / network / search children, per-doorbell
//! and per-work-request spans bridged in from the RDMA substrate, and
//! instant events for cache hits, misses, evictions, and fault
//! retries. Each span carries **two** timelines:
//!
//! - *wall* microseconds relative to the batch epoch (an [`Instant`]
//!   captured at [`SpanTracer::begin`]) — the primary timeline, what
//!   the Chrome exporter renders;
//! - *virtual-clock* microseconds from the simulated fabric — the
//!   modeled network cost, attached as span arguments so a trace shows
//!   both where real time went and what the cost model charged.
//!
//! Tracing is off by default; a disabled [`BatchTrace`] is a `None`
//! and every method on it is a no-op, so the query path pays one
//! atomic load per batch when idle. Finished traces land in a bounded
//! ring on the [`SpanTracer`]; batches whose root span exceeds the
//! configured slow threshold additionally render their full span tree
//! into the slow-query log (and to stderr).
//!
//! The RDMA substrate cannot depend on this crate, so the bridge runs
//! the other way: [`QpSpanSink`] implements [`rdma_sim::TraceSink`]
//! and resolves the *current scope* — a thread-local stack pushed by
//! [`BatchTrace::enter_scope`] around each phase — to decide which
//! trace and parent span the verb events belong to. This works
//! because verbs execute synchronously on the thread that entered the
//! scope.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Default number of finished traces the tracer retains.
pub const DEFAULT_SPAN_TRACE_CAPACITY: usize = 64;

/// Number of rendered slow-query reports retained.
const SLOW_LOG_CAPACITY: usize = 32;

/// A value attached to a span argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counts, bytes, offsets).
    U64(u64),
    /// Floating point (virtual-clock microseconds).
    F64(f64),
    /// Static string (mode labels, verb names).
    Str(&'static str),
}

impl ArgValue {
    /// Renders the value as a JSON fragment.
    pub(crate) fn render_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) => crate::telemetry::chrome::json_num(*v),
            ArgValue::Str(s) => format!("\"{}\"", crate::telemetry::escape(s)),
        }
    }

    /// Renders the value for the plain-text slow log.
    fn render_plain(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) => format!("{v:.1}"),
            ArgValue::Str(s) => (*s).to_string(),
        }
    }
}

/// Whether a record is a duration span or a point-in-time marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration span (`ph: "X"` in Chrome trace events).
    Span,
    /// An instant marker (`ph: "i"`).
    Instant,
}

/// Identifier of a span within one batch trace.
///
/// A 1-based index into the trace's span list; `0` means "none" and is
/// what the root span uses as its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The "no parent" sentinel (what the root span points at).
    pub const NONE: SpanId = SpanId(0);

    /// Raw 1-based index (0 = none).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// One recorded span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (`query_batch`, `meta_route`, `read_doorbell`, …).
    pub name: &'static str,
    /// Category (`engine`, `rdma`, `cache`) — Chrome's `cat` field.
    pub cat: &'static str,
    /// Raw [`SpanId`] of the parent span (0 for the root).
    pub parent: u32,
    /// Duration span or instant marker.
    pub kind: SpanKind,
    /// Wall-clock start, microseconds since the batch epoch.
    pub wall_start_us: f64,
    /// Wall-clock duration, microseconds. Negative while the span is
    /// open; [`SpanTracer::finish`] closes any still-open span at the
    /// batch end.
    pub wall_dur_us: f64,
    /// Virtual-clock start, microseconds (0 when not applicable).
    pub vt_start_us: f64,
    /// Virtual-clock duration, microseconds (0 when not applicable).
    pub vt_dur_us: f64,
    /// Key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A finished batch trace: the root span plus its whole tree, in
/// recording order (parents always precede their children).
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedTrace {
    /// Search-mode label of the batch (`full`, `no_doorbell`, `naive`).
    pub label: &'static str,
    /// Monotonic batch sequence number (the Chrome `tid`).
    pub seq: u64,
    /// Root-span wall duration, microseconds.
    pub total_us: f64,
    /// Every span and instant recorded for the batch.
    pub spans: Vec<SpanRecord>,
}

#[derive(Debug)]
struct BatchInner {
    epoch: Instant,
    seq: u64,
    label: &'static str,
    spans: Mutex<Vec<SpanRecord>>,
}

/// Handle to an in-flight batch trace.
///
/// Cloneable — clones share the same span tree (the thread-local scope
/// holds one). When tracing is disabled the handle carries only the
/// batch's trace id and every recording method is a no-op, so call
/// sites never branch on enablement. The trace id (sequence number) is
/// assigned by [`SpanTracer::begin`] whether or not spans are being
/// recorded, so histogram exemplars and the slow-query log can name a
/// batch even when full span capture is off.
#[derive(Debug, Clone, Default)]
pub struct BatchTrace {
    seq: u64,
    inner: Option<Arc<BatchInner>>,
}

impl BatchTrace {
    /// An empty, always-no-op handle (trace id 0).
    pub fn disabled() -> Self {
        BatchTrace::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The batch's trace id — the tracer-wide monotonic sequence
    /// number, assigned even when span recording is disabled.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Microseconds elapsed since the batch epoch (0 when disabled).
    pub fn elapsed_us(&self) -> f64 {
        match &self.inner {
            None => 0.0,
            Some(inner) => inner.epoch.elapsed().as_secs_f64() * 1e6,
        }
    }

    /// Opens a span starting now. Returns [`SpanId::NONE`] when
    /// disabled.
    pub fn begin_span(&self, name: &'static str, cat: &'static str, parent: SpanId) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let now = inner.epoch.elapsed().as_secs_f64() * 1e6;
        let mut spans = inner.spans.lock();
        spans.push(SpanRecord {
            name,
            cat,
            parent: parent.0,
            kind: SpanKind::Span,
            wall_start_us: now,
            wall_dur_us: -1.0,
            vt_start_us: 0.0,
            vt_dur_us: 0.0,
            args: Vec::new(),
        });
        SpanId(spans.len() as u32)
    }

    /// Closes a span at the current wall time.
    pub fn end_span(&self, id: SpanId) {
        self.end_span_with(id, &[]);
    }

    /// Closes a span and attaches arguments.
    pub fn end_span_with(&self, id: SpanId, args: &[(&'static str, ArgValue)]) {
        let Some(inner) = &self.inner else { return };
        if id.0 == 0 {
            return;
        }
        let now = inner.epoch.elapsed().as_secs_f64() * 1e6;
        let mut spans = inner.spans.lock();
        if let Some(rec) = spans.get_mut(id.0 as usize - 1) {
            rec.wall_dur_us = (now - rec.wall_start_us).max(0.0);
            rec.args.extend_from_slice(args);
        }
    }

    /// Attaches arguments to an open or closed span.
    pub fn add_args(&self, id: SpanId, args: &[(&'static str, ArgValue)]) {
        let Some(inner) = &self.inner else { return };
        if id.0 == 0 {
            return;
        }
        let mut spans = inner.spans.lock();
        if let Some(rec) = spans.get_mut(id.0 as usize - 1) {
            rec.args.extend_from_slice(args);
        }
    }

    /// Sets the virtual-clock interval of a span.
    pub fn set_vt(&self, id: SpanId, vt_start_us: f64, vt_dur_us: f64) {
        let Some(inner) = &self.inner else { return };
        if id.0 == 0 {
            return;
        }
        let mut spans = inner.spans.lock();
        if let Some(rec) = spans.get_mut(id.0 as usize - 1) {
            rec.vt_start_us = vt_start_us;
            rec.vt_dur_us = vt_dur_us;
        }
    }

    /// Records an instant marker at the current wall time.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        parent: SpanId,
        args: &[(&'static str, ArgValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        let now = inner.epoch.elapsed().as_secs_f64() * 1e6;
        inner.spans.lock().push(SpanRecord {
            name,
            cat,
            parent: parent.0,
            kind: SpanKind::Instant,
            wall_start_us: now,
            wall_dur_us: 0.0,
            vt_start_us: 0.0,
            vt_dur_us: 0.0,
            args: args.to_vec(),
        });
    }

    /// Pushes a fully-timed span record (the RDMA sink uses this to
    /// place verb spans at explicit wall intervals). Returns the new
    /// span's id.
    pub fn push_span(&self, rec: SpanRecord) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut spans = inner.spans.lock();
        spans.push(rec);
        SpanId(spans.len() as u32)
    }

    /// Pushes this trace onto the thread-local scope stack so that
    /// substrate events ([`QpSpanSink`], cache listeners) attach to
    /// `parent`. The scope pops when the guard drops; scopes nest.
    pub fn enter_scope(&self, parent: SpanId) -> ScopeGuard {
        if !self.is_enabled() {
            return ScopeGuard { active: false };
        }
        SCOPE.with(|s| {
            s.borrow_mut().push(NetScope {
                trace: self.clone(),
                parent,
                last_wall_us: self.elapsed_us(),
            });
        });
        ScopeGuard { active: true }
    }
}

/// Per-thread stack of active trace scopes (innermost last).
struct NetScope {
    trace: BatchTrace,
    parent: SpanId,
    /// Wall cursor: verb spans tile the scope's wall time, each one
    /// covering the interval since the previous emission.
    last_wall_us: f64,
}

thread_local! {
    static SCOPE: RefCell<Vec<NetScope>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`BatchTrace::enter_scope`].
#[derive(Debug)]
pub struct ScopeGuard {
    active: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.active {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Records an instant event against the innermost active scope on
/// this thread (no-op without one). This is how the cluster cache
/// reports hit/miss/evict events without depending on a trace handle.
pub fn emit_scope_instant(name: &'static str, cat: &'static str, args: &[(&'static str, ArgValue)]) {
    SCOPE.with(|s| {
        let stack = s.borrow();
        if let Some(scope) = stack.last() {
            scope.trace.instant(name, cat, scope.parent, args);
        }
    });
}

/// Bridges [`rdma_sim::TraceSink`] events into the active trace scope.
///
/// Install one per queue pair via `QueuePair::set_trace_sink`. Verb
/// spans tile the scope's wall time using the scope cursor (the verbs
/// run synchronously, so the wall interval since the last emission is
/// the verb's real cost); per-work-request child spans subdivide the
/// verb's wall interval proportionally to their virtual-clock slices.
#[derive(Debug, Default)]
pub struct QpSpanSink;

impl rdma_sim::TraceSink for QpSpanSink {
    fn verb_span(&self, span: &rdma_sim::VerbSpan, wqes: &[rdma_sim::WqeSpan]) {
        SCOPE.with(|s| {
            let mut stack = s.borrow_mut();
            let Some(scope) = stack.last_mut() else { return };
            let wall_now = scope.trace.elapsed_us();
            let wall_start = scope.last_wall_us.min(wall_now);
            let wall_dur = wall_now - wall_start;
            let vt_dur = (span.vt_end_us - span.vt_start_us).max(0.0);
            let verb_id = scope.trace.push_span(SpanRecord {
                name: span.verb,
                cat: "rdma",
                parent: scope.parent.raw(),
                kind: SpanKind::Span,
                wall_start_us: wall_start,
                wall_dur_us: wall_dur,
                vt_start_us: span.vt_start_us,
                vt_dur_us: vt_dur,
                args: vec![
                    ("wqes", ArgValue::U64(u64::from(span.wqes))),
                    ("bytes", ArgValue::U64(span.bytes)),
                    ("chunk", ArgValue::U64(u64::from(span.chunk))),
                ],
            });
            if wqes.len() > 1 {
                // Doorbell chunk: one child span per work request — for
                // reads, that is one per fetched cluster (§3.2).
                let child = if span.verb == "write_doorbell" {
                    "wqe_write"
                } else {
                    "cluster_read"
                };
                for w in wqes {
                    let (f0, f1) = if vt_dur > 0.0 {
                        (
                            (w.vt_start_us - span.vt_start_us) / vt_dur,
                            (w.vt_end_us - span.vt_start_us) / vt_dur,
                        )
                    } else {
                        (0.0, 1.0)
                    };
                    scope.trace.push_span(SpanRecord {
                        name: child,
                        cat: "rdma",
                        parent: verb_id.raw(),
                        kind: SpanKind::Span,
                        wall_start_us: wall_start + wall_dur * f0,
                        wall_dur_us: wall_dur * (f1 - f0).max(0.0),
                        vt_start_us: w.vt_start_us,
                        vt_dur_us: (w.vt_end_us - w.vt_start_us).max(0.0),
                        args: vec![
                            ("wqe", ArgValue::U64(u64::from(w.index))),
                            ("offset", ArgValue::U64(w.offset)),
                            ("bytes", ArgValue::U64(w.bytes)),
                        ],
                    });
                }
            }
            scope.last_wall_us = wall_now;
        });
    }

    fn fault(&self, event: &rdma_sim::FaultEvent) {
        SCOPE.with(|s| {
            let stack = s.borrow();
            let Some(scope) = stack.last() else { return };
            scope.trace.instant(
                "fault_retry",
                "rdma",
                scope.parent,
                &[
                    ("verb", ArgValue::Str(event.verb)),
                    ("attempt", ArgValue::U64(u64::from(event.attempt))),
                    ("timeout_us", ArgValue::F64(event.timeout_us)),
                    ("vt_us", ArgValue::F64(event.vt_us)),
                ],
            );
        });
    }
}

/// The span tracer: hands out [`BatchTrace`]s and retains finished
/// ones in a bounded ring, plus a slow-query log.
#[derive(Debug)]
pub struct SpanTracer {
    enabled: AtomicBool,
    /// Slow-query threshold in whole microseconds; 0 disables the log.
    slow_threshold_us: AtomicU64,
    next_seq: AtomicU64,
    capacity: usize,
    finished: Mutex<VecDeque<FinishedTrace>>,
    slow_log: Mutex<VecDeque<String>>,
}

impl SpanTracer {
    pub(crate) fn new(capacity: usize) -> Self {
        SpanTracer {
            enabled: AtomicBool::new(false),
            slow_threshold_us: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            capacity: capacity.max(1),
            finished: Mutex::new(VecDeque::new()),
            slow_log: Mutex::new(VecDeque::new()),
        }
    }

    /// Turns span tracing on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether new batches are traced.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the slow-query threshold in microseconds (0 disables).
    /// Batches whose root span exceeds it dump their span tree to the
    /// slow log and stderr.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// Current slow-query threshold in microseconds (0 = disabled).
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// Starts a trace for one batch. The trace id (sequence number)
    /// is assigned unconditionally so exemplars and slow-query log
    /// lines can reference the batch; span recording itself only
    /// happens while the tracer is enabled.
    pub fn begin(&self, label: &'static str) -> BatchTrace {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if !self.is_enabled() {
            return BatchTrace { seq, inner: None };
        }
        BatchTrace {
            seq,
            inner: Some(Arc::new(BatchInner {
                epoch: Instant::now(),
                seq,
                label,
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Finishes a trace, discarding the finished tree (see
    /// [`SpanTracer::finish_trace`]).
    pub fn finish(&self, trace: BatchTrace) {
        let _ = self.finish_trace(trace);
    }

    /// Finishes a trace: closes any still-open spans, retains the
    /// result (evicting the oldest at capacity), and renders a
    /// slow-query report if over threshold. Returns a copy of the
    /// finished trace so the caller can fold it into the profile
    /// accumulator or retain it as a tail exemplar; `None` for
    /// disabled handles.
    pub fn finish_trace(&self, trace: BatchTrace) -> Option<FinishedTrace> {
        let inner = trace.inner?;
        let now = inner.epoch.elapsed().as_secs_f64() * 1e6;
        let spans = {
            let mut guard = inner.spans.lock();
            for rec in guard.iter_mut() {
                if rec.wall_dur_us < 0.0 {
                    rec.wall_dur_us = (now - rec.wall_start_us).max(0.0);
                }
            }
            std::mem::take(&mut *guard)
        };
        let total_us = spans.first().map_or(now, |root| root.wall_dur_us);
        let ft = FinishedTrace {
            label: inner.label,
            seq: inner.seq,
            total_us,
            spans,
        };
        let threshold = self.slow_threshold_us.load(Ordering::Relaxed);
        if threshold > 0 && ft.total_us > threshold as f64 {
            let report = render_tree(&ft);
            eprintln!("{report}");
            let mut log = self.slow_log.lock();
            if log.len() == SLOW_LOG_CAPACITY {
                log.pop_front();
            }
            log.push_back(report);
        }
        let mut finished = self.finished.lock();
        if finished.len() == self.capacity {
            finished.pop_front();
        }
        finished.push_back(ft.clone());
        Some(ft)
    }

    /// The retained finished traces, oldest first.
    pub fn recent(&self) -> Vec<FinishedTrace> {
        self.finished.lock().iter().cloned().collect()
    }

    /// The retained slow-query reports, oldest first.
    pub fn slow_log(&self) -> Vec<String> {
        self.slow_log.lock().iter().cloned().collect()
    }

    /// Number of retained finished traces.
    pub fn len(&self) -> usize {
        self.finished.lock().len()
    }

    /// Whether no finished traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained traces and slow-query reports.
    pub fn clear(&self) {
        self.finished.lock().clear();
        self.slow_log.lock().clear();
    }
}

/// Dominant read cause of a finished trace, derived from the root
/// span's `bytes_<cause>` arguments (the engine attaches one per
/// nonzero [`rdma_sim::ReadCause`], in cause-index order, so ties
/// break toward the lowest index like `CostLedger::dominant_cause`).
fn dominant_cause_label(ft: &FinishedTrace) -> &'static str {
    let Some(root) = ft.spans.first() else {
        return "none";
    };
    let mut best: Option<(&'static str, u64)> = None;
    for (k, v) in &root.args {
        let Some(cause) = (*k).strip_prefix("bytes_") else {
            continue;
        };
        let ArgValue::U64(b) = v else { continue };
        if *b == 0 {
            continue;
        }
        match best {
            Some((_, bb)) if bb >= *b => {}
            _ => best = Some((cause, *b)),
        }
    }
    best.map_or("none", |(c, _)| c)
}

/// Renders a finished trace as an indented span tree for the
/// slow-query log. The header carries the batch's trace id and its
/// dominant read cause so a log line joins directly against the
/// exemplar store (`/whyslow/<trace-id>`).
fn render_tree(ft: &FinishedTrace) -> String {
    let mut out = format!(
        "slow query batch: trace_id={} mode={} total={:.1}us cause={} ({} spans)",
        ft.seq,
        ft.label,
        ft.total_us,
        dominant_cause_label(ft),
        ft.spans.len()
    );
    // Children of span `p` (0 = roots), preserving recording order.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); ft.spans.len() + 1];
    for (i, rec) in ft.spans.iter().enumerate() {
        children[rec.parent as usize].push(i);
    }
    let mut stack: Vec<(usize, usize)> = children[0].iter().rev().map(|&i| (i, 1)).collect();
    while let Some((i, depth)) = stack.pop() {
        let rec = &ft.spans[i];
        let mut line = format!(
            "\n{:indent$}{} [{}]",
            "",
            rec.name,
            rec.cat,
            indent = depth * 2
        );
        match rec.kind {
            SpanKind::Span => {
                line.push_str(&format!(
                    " wall={:.1}+{:.1}us",
                    rec.wall_start_us, rec.wall_dur_us
                ));
                if rec.vt_dur_us > 0.0 {
                    line.push_str(&format!(" vt={:.1}us", rec.vt_dur_us));
                }
            }
            SpanKind::Instant => {
                line.push_str(&format!(" @{:.1}us", rec.wall_start_us));
            }
        }
        for (k, v) in &rec.args {
            line.push_str(&format!(" {k}={}", v.render_plain()));
        }
        out.push_str(&line);
        for &c in children[i + 1].iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::TraceSink;

    fn tracer() -> SpanTracer {
        let t = SpanTracer::new(4);
        t.set_enabled(true);
        t
    }

    #[test]
    fn disabled_tracer_hands_out_noop_handles() {
        let t = SpanTracer::new(4);
        let trace = t.begin("full");
        assert!(!trace.is_enabled());
        let id = trace.begin_span("x", "engine", SpanId::NONE);
        assert_eq!(id, SpanId::NONE);
        trace.end_span(id);
        assert!(t.finish_trace(trace).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn trace_ids_advance_even_while_disabled() {
        // Exemplars and slow-log lines key on the trace id, so every
        // batch gets a unique one whether or not spans are captured.
        let t = SpanTracer::new(4);
        assert_eq!(t.begin("full").seq(), 0);
        assert_eq!(t.begin("full").seq(), 1);
        t.set_enabled(true);
        let enabled = t.begin("full");
        assert_eq!(enabled.seq(), 2);
        let ft = t.finish_trace(enabled).expect("enabled trace finishes");
        assert_eq!(ft.seq, 2);
        t.set_enabled(false);
        assert_eq!(t.begin("full").seq(), 3);
        assert_eq!(BatchTrace::disabled().seq(), 0, "no-op handle id");
    }

    #[test]
    fn spans_nest_and_close_with_durations() {
        let t = tracer();
        let trace = t.begin("full");
        let root = trace.begin_span("query_batch", "engine", SpanId::NONE);
        let child = trace.begin_span("meta_route", "engine", root);
        trace.end_span_with(child, &[("fanout", ArgValue::U64(4))]);
        trace.instant("marker", "cache", root, &[]);
        trace.end_span(root);
        t.finish(trace);

        let got = t.recent();
        assert_eq!(got.len(), 1);
        let ft = &got[0];
        assert_eq!(ft.label, "full");
        assert_eq!(ft.spans.len(), 3);
        assert_eq!(ft.spans[0].name, "query_batch");
        assert_eq!(ft.spans[0].parent, 0);
        assert_eq!(ft.spans[1].parent, 1, "child points at root");
        assert_eq!(ft.spans[1].args, vec![("fanout", ArgValue::U64(4))]);
        assert_eq!(ft.spans[2].kind, SpanKind::Instant);
        assert!(ft.spans[0].wall_dur_us >= ft.spans[1].wall_dur_us);
        assert!(ft.total_us >= 0.0);
    }

    #[test]
    fn finish_closes_open_spans_and_ring_respects_capacity() {
        let t = SpanTracer::new(2);
        t.set_enabled(true);
        for i in 0..3u64 {
            let trace = t.begin("full");
            let root = trace.begin_span("query_batch", "engine", SpanId::NONE);
            let _leaked = trace.begin_span("never_ended", "engine", root);
            t.finish(trace);
            let _ = i;
        }
        let got = t.recent();
        assert_eq!(got.len(), 2, "ring keeps the newest N");
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[1].seq, 2);
        for ft in &got {
            for rec in &ft.spans {
                assert!(rec.wall_dur_us >= 0.0, "open span was closed at finish");
            }
        }
    }

    #[test]
    fn slow_threshold_gates_the_slow_log() {
        let t = tracer();
        t.set_slow_threshold_us(500);
        // Fast batch: under threshold, no report.
        let fast = t.begin("full");
        fast.begin_span("query_batch", "engine", SpanId::NONE);
        t.finish(fast);
        assert!(t.slow_log().is_empty());
        // Slow batch: sleep past the threshold.
        let slow = t.begin("full");
        let seq = slow.seq();
        let root = slow.begin_span("query_batch", "engine", SpanId::NONE);
        let child = slow.begin_span("sub_hnsw_search", "engine", root);
        std::thread::sleep(std::time::Duration::from_millis(2));
        slow.end_span(child);
        slow.end_span_with(
            root,
            &[
                ("bytes_stage_load", ArgValue::U64(100)),
                ("bytes_retry", ArgValue::U64(700)),
            ],
        );
        t.finish(slow);
        let log = t.slow_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].contains("slow query batch"));
        assert!(log[0].contains("sub_hnsw_search"));
        assert!(log[0].contains("mode=full"));
        // The header joins against the exemplar store: trace id plus
        // the dominant read cause from the root span's byte args.
        assert!(log[0].contains(&format!("trace_id={seq}")));
        assert!(log[0].contains("cause=retry"));
    }

    #[test]
    fn dominant_cause_falls_back_to_none() {
        let t = tracer();
        let trace = t.begin("full");
        trace.begin_span("query_batch", "engine", SpanId::NONE);
        let ft = t.finish_trace(trace).unwrap();
        assert_eq!(dominant_cause_label(&ft), "none");
        // Ties break toward the first (lowest-index) cause argument.
        let trace = t.begin("full");
        let root = trace.begin_span("query_batch", "engine", SpanId::NONE);
        trace.end_span_with(
            root,
            &[
                ("bytes_stage_load", ArgValue::U64(500)),
                ("bytes_version_check", ArgValue::U64(500)),
            ],
        );
        let ft = t.finish_trace(trace).unwrap();
        assert_eq!(dominant_cause_label(&ft), "stage_load");
    }

    #[test]
    fn qp_sink_attaches_verbs_to_the_active_scope() {
        let t = tracer();
        let trace = t.begin("full");
        let root = trace.begin_span("query_batch", "engine", SpanId::NONE);
        let net = trace.begin_span("network", "engine", root);
        let sink = QpSpanSink;
        {
            let _guard = trace.enter_scope(net);
            sink.verb_span(
                &rdma_sim::VerbSpan {
                    verb: "read_doorbell",
                    wqes: 2,
                    bytes: 96,
                    chunk: 0,
                    vt_start_us: 0.0,
                    vt_end_us: 10.0,
                },
                &[
                    rdma_sim::WqeSpan {
                        index: 0,
                        offset: 0,
                        bytes: 64,
                        vt_start_us: 0.0,
                        vt_end_us: 6.0,
                    },
                    rdma_sim::WqeSpan {
                        index: 1,
                        offset: 64,
                        bytes: 32,
                        vt_start_us: 6.0,
                        vt_end_us: 10.0,
                    },
                ],
            );
            sink.fault(&rdma_sim::FaultEvent {
                verb: "read",
                attempt: 1,
                timeout_us: 5.0,
                vt_us: 15.0,
            });
        }
        // Scope popped: further events are dropped.
        sink.fault(&rdma_sim::FaultEvent {
            verb: "read",
            attempt: 2,
            timeout_us: 5.0,
            vt_us: 20.0,
        });
        trace.end_span(net);
        trace.end_span(root);
        t.finish(trace);

        let ft = &t.recent()[0];
        let names: Vec<&str> = ft.spans.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "query_batch",
                "network",
                "read_doorbell",
                "cluster_read",
                "cluster_read",
                "fault_retry"
            ]
        );
        let verb = &ft.spans[2];
        assert_eq!(verb.parent, 2, "verb nests under the network span");
        assert_eq!(verb.vt_dur_us, 10.0);
        let wqe0 = &ft.spans[3];
        let wqe1 = &ft.spans[4];
        assert_eq!(wqe0.parent, 3, "WQEs nest under the verb span");
        assert_eq!(wqe1.args[1], ("offset", ArgValue::U64(64)));
        // WQE wall intervals tile the verb's wall interval.
        assert!((wqe0.wall_start_us - verb.wall_start_us).abs() < 1e-6);
        let w0_end = wqe0.wall_start_us + wqe0.wall_dur_us;
        assert!((w0_end - wqe1.wall_start_us).abs() < 1e-6);
        let w1_end = wqe1.wall_start_us + wqe1.wall_dur_us;
        assert!((w1_end - (verb.wall_start_us + verb.wall_dur_us)).abs() < 1e-6);
    }

    #[test]
    fn scope_instants_reach_the_innermost_scope() {
        let t = tracer();
        let trace = t.begin("full");
        let root = trace.begin_span("query_batch", "engine", SpanId::NONE);
        emit_scope_instant("cache_hit", "cache", &[]);
        {
            let _guard = trace.enter_scope(root);
            emit_scope_instant("cache_hit", "cache", &[("cluster", ArgValue::U64(7))]);
        }
        emit_scope_instant("cache_hit", "cache", &[]);
        trace.end_span(root);
        t.finish(trace);
        let ft = &t.recent()[0];
        assert_eq!(ft.spans.len(), 2, "only the in-scope instant landed");
        assert_eq!(ft.spans[1].name, "cache_hit");
        assert_eq!(ft.spans[1].args, vec![("cluster", ArgValue::U64(7))]);
    }
}
