//! Time-series telemetry: history ring, rate derivation, and online
//! anomaly detection.
//!
//! Every other observability surface (`/metrics`, `/health`,
//! `/profile/folded`, `/exemplars`) is a point-in-time snapshot. The
//! [`SeriesRecorder`] adds the *time axis*: a bounded ring of
//! timestamped [`Sample`]s of the hub's query-path instruments, from
//! which consecutive pairs derive a [`SeriesPoint`] of per-second
//! rates (QPS, bytes/s by [`ReadCause`], retries/s, evictions/s) and
//! *windowed* latency quantiles — the saturating
//! [`HistogramSnapshot`] subtraction gives the exact histogram of
//! queries that landed between two ticks, so p99 here is the p99 *of
//! that window*, not a lifetime aggregate.
//!
//! **Determinism contract.** Sampling is driven by an explicit
//! [`SeriesRecorder::tick`] carrying the caller's timestamp; this
//! module never reads the wall clock. Tests and `bench_regress` tick
//! with synthetic timestamps (one tick per batch, one virtual second
//! apart), making every derived rate — and therefore every anomaly
//! verdict on a deterministic series — reproducible bit-for-bit under
//! pinned seeds. Only the serving plane (`dhnsw_cli serve`) runs a
//! background sampler thread that ticks from the wall clock.
//!
//! **Anomaly scoring.** Each tracked series (see [`TRACKED_SERIES`])
//! feeds an online detector keeping an EWMA mean and an EWMA absolute
//! deviation (a streaming stand-in for the MAD). A point scores
//! `z = |x - mean| / max(1.4826·dev, rel_floor·|mean|, abs_floor)`;
//! the `1.4826` factor rescales the MAD to a standard-deviation
//! equivalent under a normal baseline, and the two floors keep a
//! near-constant series (dev → 0) from turning measurement dust into
//! infinite z-scores. Detection fires on `z ≥ enter_z` and re-arms
//! only once `z ≤ exit_z` (hysteresis), warm-up points are never
//! scored, idle windows (zero queries) are never scored, and
//! anomalous points update the baseline with a strongly reduced
//! weight so a level shift is flagged instead of silently absorbed.
//! A firing bumps `dhnsw_anomaly_total{series=…}`, drops a structured
//! `anomaly` instant in the span ring (watchdog-style), and appends
//! an [`AnomalyRecord`] linking the slowest retained exemplar's trace
//! id — closing the loop from "p99 jumped at t=14s" to a concrete
//! `/whyslow/<id>` diagnosis.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use rdma_sim::{ReadCause, READ_CAUSES};

use super::span::{ArgValue, SpanId};
use super::{json_f64, Counter, Histogram, HistogramSnapshot, Telemetry};

/// Default number of derived points the ring retains (at the serving
/// plane's 1 Hz sampler: ten minutes of history).
pub const DEFAULT_SERIES_CAPACITY: usize = 600;

/// Default number of anomaly records retained.
pub const DEFAULT_ANOMALY_CAPACITY: usize = 256;

/// Tuning for the online anomaly detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// Points a detector consumes before it starts scoring; the
    /// warm-up also uses a faster EWMA weight so the baseline locks
    /// on quickly.
    pub warmup: u32,
    /// z-score at or above which an anomaly fires.
    pub enter_z: f64,
    /// z-score at or below which a fired detector re-arms
    /// (hysteresis: between `exit_z` and `enter_z` the episode is
    /// considered ongoing and no new record is emitted).
    pub exit_z: f64,
    /// EWMA weight of the newest point for both mean and deviation.
    pub alpha: f64,
    /// Deviation floor as a fraction of `|mean|`, so a jitter-free
    /// series still needs a materially different value to fire.
    pub rel_floor: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            warmup: 5,
            enter_z: 6.0,
            exit_z: 3.0,
            alpha: 0.3,
            rel_floor: 0.05,
        }
    }
}

/// One series the anomaly detector watches.
#[derive(Debug, Clone, Copy)]
pub struct TrackedSeries {
    /// Stable series name (`qps`, `p99_us`, …) — becomes the `series`
    /// label on `dhnsw_anomaly_total` and the key in anomaly records.
    pub name: &'static str,
    /// Whether the series is a pure function of the workload and the
    /// caller-supplied tick timestamps (true), or contaminated by
    /// wall-clock measurement (false, e.g. latency quantiles).
    /// `bench_regress` hard-gates *deterministic* anomalies to zero;
    /// wall-clock series are band-gated instead.
    pub deterministic: bool,
    /// Absolute deviation floor in the series' own unit.
    pub abs_floor: f64,
}

/// Number of tracked series.
pub const TRACKED: usize = 6;

/// The series the detector watches, in [`SeriesPoint::tracked_value`]
/// index order.
pub const TRACKED_SERIES: [TrackedSeries; TRACKED] = [
    TrackedSeries {
        name: "qps",
        deterministic: true,
        abs_floor: 1.0,
    },
    TrackedSeries {
        name: "p99_us",
        deterministic: false,
        abs_floor: 50.0,
    },
    TrackedSeries {
        name: "bytes_per_s",
        deterministic: true,
        abs_floor: 1024.0,
    },
    TrackedSeries {
        name: "retries_per_s",
        deterministic: true,
        abs_floor: 0.5,
    },
    TrackedSeries {
        name: "evictions_per_s",
        deterministic: true,
        abs_floor: 0.5,
    },
    TrackedSeries {
        name: "hit_rate",
        deterministic: true,
        abs_floor: 0.05,
    },
];

/// One raw observation of the hub's query-path instruments at a tick.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Caller-supplied timestamp, microseconds.
    pub t_us: u64,
    /// Lifetime full-mode queries answered.
    pub queries: u64,
    /// Lifetime bytes read from remote memory.
    pub bytes_read: u64,
    /// Lifetime bytes read, by [`ReadCause`] index.
    pub cause_bytes: [u64; READ_CAUSES],
    /// Lifetime engine-level read retries.
    pub read_retries: u64,
    /// Lifetime cache evictions.
    pub evictions: u64,
    /// Lifetime cluster-cache lookup hits.
    pub cache_hits: u64,
    /// Lifetime cluster-cache lookup misses.
    pub cache_misses: u64,
    /// Lifetime pipeline-hidden virtual network microseconds.
    pub hidden_us: u64,
    /// Lifetime network-stage microseconds.
    pub network_us: u64,
    /// Lifetime latency histogram snapshot.
    pub latency: HistogramSnapshot,
}

/// Rates and windowed quantiles derived from two consecutive samples.
#[derive(Debug, Clone, Copy)]
pub struct SeriesPoint {
    /// Timestamp of the newer sample, microseconds.
    pub t_us: u64,
    /// Width of the window, microseconds.
    pub dt_us: u64,
    /// Queries answered inside the window.
    pub window_queries: u64,
    /// Queries per second over the window.
    pub qps: f64,
    /// Windowed p50 latency, microseconds.
    pub p50_us: f64,
    /// Windowed p95 latency, microseconds.
    pub p95_us: f64,
    /// Windowed p99 latency, microseconds.
    pub p99_us: f64,
    /// Remote-read bytes per second over the window.
    pub bytes_per_s: f64,
    /// Remote-read bytes per second by [`ReadCause`] index.
    pub cause_bytes_per_s: [f64; READ_CAUSES],
    /// Engine read retries per second over the window.
    pub retries_per_s: f64,
    /// Cache evictions per second over the window.
    pub evictions_per_s: f64,
    /// Cluster-cache hit rate inside the window (`0` when the window
    /// saw no cache activity).
    pub hit_rate: f64,
    /// Cache lookups (hits + misses) inside the window.
    pub window_cache_ops: u64,
    /// Fraction of window network time hidden behind compute by
    /// pipelining (`hidden / (hidden + exposed network)`, `0` when
    /// the window moved no bytes).
    pub hidden_ratio: f64,
}

impl SeriesPoint {
    /// Value of tracked series `idx` (index into [`TRACKED_SERIES`]).
    pub fn tracked_value(&self, idx: usize) -> f64 {
        match idx {
            0 => self.qps,
            1 => self.p99_us,
            2 => self.bytes_per_s,
            3 => self.retries_per_s,
            4 => self.evictions_per_s,
            5 => self.hit_rate,
            _ => 0.0,
        }
    }

    /// Renders the point as a JSON object.
    pub fn to_json(&self) -> String {
        let causes = ReadCause::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| format!("\"{}\": {}", c.as_str(), json_f64(self.cause_bytes_per_s[i])))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"t_us\": {}, \"dt_us\": {}, \"window_queries\": {}, \"qps\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"bytes_per_s\": {}, \
             \"retries_per_s\": {}, \"evictions_per_s\": {}, \"hit_rate\": {}, \
             \"window_cache_ops\": {}, \"hidden_ratio\": {}, \"cause_bytes_per_s\": {{{causes}}}}}",
            self.t_us,
            self.dt_us,
            self.window_queries,
            json_f64(self.qps),
            json_f64(self.p50_us),
            json_f64(self.p95_us),
            json_f64(self.p99_us),
            json_f64(self.bytes_per_s),
            json_f64(self.retries_per_s),
            json_f64(self.evictions_per_s),
            json_f64(self.hit_rate),
            self.window_cache_ops,
            json_f64(self.hidden_ratio),
        )
    }
}

/// One anomaly the detector fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyRecord {
    /// Timestamp of the offending point, microseconds.
    pub t_us: u64,
    /// Which tracked series fired.
    pub series: &'static str,
    /// The offending value.
    pub value: f64,
    /// The detector's EWMA baseline at fire time.
    pub mean: f64,
    /// The robust z-score that crossed `enter_z`.
    pub zscore: f64,
    /// Whether the series is deterministic under pinned seeds and
    /// synthetic ticks (see [`TrackedSeries::deterministic`]).
    pub deterministic: bool,
    /// Trace id of the slowest retained tail exemplar at fire time —
    /// feed it to `/whyslow/<id>` for a ranked diagnosis. `None` when
    /// no exemplars are retained yet.
    pub exemplar: Option<u64>,
}

impl AnomalyRecord {
    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> String {
        let exemplar = self
            .exemplar
            .map_or("null".to_string(), |id| id.to_string());
        format!(
            "{{\"t_us\": {}, \"series\": \"{}\", \"value\": {}, \"mean\": {}, \
             \"zscore\": {}, \"deterministic\": {}, \"exemplar\": {exemplar}}}",
            self.t_us,
            self.series,
            json_f64(self.value),
            json_f64(self.mean),
            json_f64(self.zscore),
            self.deterministic,
        )
    }
}

/// Online EWMA mean + EWMA absolute-deviation detector for one series.
#[derive(Debug, Clone, Copy, Default)]
struct Detector {
    /// Points consumed.
    n: u32,
    /// EWMA mean.
    mean: f64,
    /// EWMA absolute deviation from the running mean.
    dev: f64,
    /// Hysteresis state: inside an anomaly episode.
    active: bool,
}

impl Detector {
    /// Feeds one point; returns `Some((baseline_mean, z))` when a new
    /// anomaly episode starts.
    fn update(&mut self, x: f64, cfg: &AnomalyConfig, abs_floor: f64) -> Option<(f64, f64)> {
        if self.n == 0 {
            self.n = 1;
            self.mean = x;
            self.dev = 0.0;
            return None;
        }
        let scale = (1.4826 * self.dev)
            .max(cfg.rel_floor * self.mean.abs())
            .max(abs_floor);
        let z = (x - self.mean).abs() / scale;
        self.n += 1;
        let warming = self.n <= cfg.warmup;
        let mut fired = None;
        if !warming {
            if !self.active && z >= cfg.enter_z {
                self.active = true;
                fired = Some((self.mean, z));
            } else if self.active && z <= cfg.exit_z {
                self.active = false;
            }
        }
        // Anomalous points barely move the baseline (a level shift is
        // flagged, not absorbed); warm-up converges fast.
        let a = if warming {
            cfg.alpha.max(0.5)
        } else if z >= cfg.enter_z {
            cfg.alpha * 0.1
        } else {
            cfg.alpha
        };
        self.dev = (1.0 - a) * self.dev + a * (x - self.mean).abs();
        self.mean = (1.0 - a) * self.mean + a * x;
        fired
    }
}

/// Pre-resolved instrument handles the recorder samples. Resolution
/// re-registers the same names the engine registers (get-or-register
/// returns the existing `Arc`), so the recorder observes the live
/// counters of the hub it is embedded in.
#[derive(Debug)]
struct Handles {
    queries: Arc<Counter>,
    latency: Arc<Histogram>,
    bytes_read: Arc<Counter>,
    cause_bytes: [Arc<Counter>; READ_CAUSES],
    read_retries: Arc<Counter>,
    evictions: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    hidden_us: Arc<Counter>,
    network_us: Arc<Counter>,
}

impl Handles {
    /// Resolves the full-mode query-path instruments on `t`. The
    /// recorder watches `mode="full"` — the mode the serving plane
    /// and the regression harness run; the other modes exist only as
    /// bench comparison baselines.
    fn resolve(t: &Telemetry) -> Handles {
        let m: &[(&str, &str)] = &[("mode", "full")];
        Handles {
            queries: t.counter("dhnsw_queries_total", "Queries answered", m),
            latency: t.histogram(
                "dhnsw_query_latency_us",
                "Per-query latency in microseconds (CPU wall + exposed network stall, batch time / batch size)",
                m,
            ),
            bytes_read: t.counter(
                "dhnsw_rdma_bytes_read_total",
                "Bytes read from remote memory",
                &[],
            ),
            cause_bytes: std::array::from_fn(|i| {
                t.counter(
                    "dhnsw_rdma_read_bytes_by_cause_total",
                    "Bytes read from remote memory, by read cause; sums to dhnsw_rdma_bytes_read_total",
                    &[("cause", ReadCause::ALL[i].as_str())],
                )
            }),
            read_retries: t.counter(
                "dhnsw_read_retries_total",
                "Engine-level cluster read retries (version mismatch or exhausted retransmissions)",
                m,
            ),
            evictions: t.counter(
                "dhnsw_cache_evictions_total",
                "Clusters evicted by LRU pressure",
                &[],
            ),
            cache_hits: t.counter("dhnsw_cache_hits_total", "Cluster cache lookup hits", &[]),
            cache_misses: t.counter(
                "dhnsw_cache_misses_total",
                "Cluster cache lookup misses",
                &[],
            ),
            hidden_us: t.counter(
                "dhnsw_pipeline_hidden_us_total",
                "Virtual network time hidden behind compute by micro-batch pipelining",
                m,
            ),
            network_us: t.counter(
                "dhnsw_stage_us_total",
                "Cumulative stage time in microseconds",
                &[("mode", "full"), ("stage", "network")],
            ),
        }
    }

    /// Reads every instrument at `t_us`.
    fn sample(&self, t_us: u64) -> Sample {
        Sample {
            t_us,
            queries: self.queries.get(),
            bytes_read: self.bytes_read.get(),
            cause_bytes: std::array::from_fn(|i| self.cause_bytes[i].get()),
            read_retries: self.read_retries.get(),
            evictions: self.evictions.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            hidden_us: self.hidden_us.get(),
            network_us: self.network_us.get(),
            latency: self.latency.snapshot(),
        }
    }
}

/// Derives a point from two consecutive samples (`cur.t_us` strictly
/// after `prev.t_us`).
fn derive(prev: &Sample, cur: &Sample) -> SeriesPoint {
    let dt_us = cur.t_us.saturating_sub(prev.t_us);
    let secs = dt_us as f64 / 1e6;
    let window = cur.latency - prev.latency;
    let dq = cur.queries.saturating_sub(prev.queries);
    let dbytes = cur.bytes_read.saturating_sub(prev.bytes_read);
    let dhits = cur.cache_hits.saturating_sub(prev.cache_hits);
    let dmisses = cur.cache_misses.saturating_sub(prev.cache_misses);
    let dhidden = cur.hidden_us.saturating_sub(prev.hidden_us);
    let dnetwork = cur.network_us.saturating_sub(prev.network_us);
    let cache_ops = dhits + dmisses;
    SeriesPoint {
        t_us: cur.t_us,
        dt_us,
        window_queries: dq,
        qps: dq as f64 / secs,
        p50_us: window.quantile(0.50),
        p95_us: window.quantile(0.95),
        p99_us: window.quantile(0.99),
        bytes_per_s: dbytes as f64 / secs,
        cause_bytes_per_s: std::array::from_fn(|i| {
            cur.cause_bytes[i].saturating_sub(prev.cause_bytes[i]) as f64 / secs
        }),
        retries_per_s: cur.read_retries.saturating_sub(prev.read_retries) as f64 / secs,
        evictions_per_s: cur.evictions.saturating_sub(prev.evictions) as f64 / secs,
        hit_rate: if cache_ops > 0 {
            dhits as f64 / cache_ops as f64
        } else {
            0.0
        },
        window_cache_ops: cache_ops,
        hidden_ratio: if dhidden + dnetwork > 0 {
            dhidden as f64 / (dhidden + dnetwork) as f64
        } else {
            0.0
        },
    }
}

#[derive(Debug, Default)]
struct Inner {
    handles: Option<Handles>,
    last: Option<Sample>,
    points: VecDeque<SeriesPoint>,
    anomalies: VecDeque<AnomalyRecord>,
    fired: u64,
    detectors: [Detector; TRACKED],
}

/// Bounded ring of derived series points plus the online anomaly
/// detectors over them. See the module docs for the scoring math and
/// the determinism contract.
#[derive(Debug)]
pub struct SeriesRecorder {
    capacity: usize,
    anomaly_capacity: usize,
    config: AnomalyConfig,
    inner: Mutex<Inner>,
}

impl Default for SeriesRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SeriesRecorder {
    /// A recorder with the default point capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SERIES_CAPACITY)
    }

    /// A recorder retaining up to `points` derived points.
    pub fn with_capacity(points: usize) -> Self {
        SeriesRecorder {
            capacity: points.max(1),
            anomaly_capacity: DEFAULT_ANOMALY_CAPACITY,
            config: AnomalyConfig::default(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Replaces the anomaly-detector tuning (builder style; intended
    /// for tests and standalone recorders — the hub-embedded recorder
    /// keeps the defaults).
    pub fn with_config(mut self, config: AnomalyConfig) -> Self {
        self.config = config;
        self
    }

    /// The detector tuning in effect.
    pub fn config(&self) -> AnomalyConfig {
        self.config
    }

    /// Takes one sample of `telemetry`'s query-path instruments at
    /// `now_us` and, from the second tick on, derives and retains a
    /// [`SeriesPoint`], feeding the anomaly detectors.
    ///
    /// Returns `None` for the baseline (first) tick and for ticks
    /// whose timestamp does not advance past the previous sample
    /// (which simply re-baseline). Never reads the wall clock.
    pub fn tick(&self, telemetry: &Telemetry, now_us: u64) -> Option<SeriesPoint> {
        let mut inner = self.inner.lock();
        if inner.handles.is_none() {
            inner.handles = Some(Handles::resolve(telemetry));
        }
        let cur = inner.handles.as_ref().expect("resolved above").sample(now_us);
        let Some(prev) = inner.last else {
            inner.last = Some(cur);
            return None;
        };
        if now_us <= prev.t_us {
            inner.last = Some(cur);
            return None;
        }
        let point = derive(&prev, &cur);
        inner.last = Some(cur);
        let mut new_records = Vec::new();
        // Idle windows are not scored: an idle gap must neither look
        // like an anomaly nor dilute the traffic baseline, and the
        // determinism contract wants scoring to depend only on active
        // windows.
        if point.window_queries > 0 {
            for (i, tracked) in TRACKED_SERIES.iter().enumerate() {
                let x = point.tracked_value(i);
                if let Some((mean, z)) =
                    inner.detectors[i].update(x, &self.config, tracked.abs_floor)
                {
                    let exemplar = telemetry
                        .exemplars()
                        .slowest()
                        .first()
                        .map(|rec| rec.trace_id);
                    let record = AnomalyRecord {
                        t_us: point.t_us,
                        series: tracked.name,
                        value: x,
                        mean,
                        zscore: z,
                        deterministic: tracked.deterministic,
                        exemplar,
                    };
                    inner.fired += 1;
                    if inner.anomalies.len() == self.anomaly_capacity {
                        inner.anomalies.pop_front();
                    }
                    inner.anomalies.push_back(record);
                    new_records.push(record);
                }
            }
        }
        if inner.points.len() == self.capacity {
            inner.points.pop_front();
        }
        inner.points.push_back(point);
        drop(inner);
        // Counter and span emission take the registry/span locks;
        // keep them outside the recorder lock.
        for record in &new_records {
            emit_anomaly(telemetry, record);
        }
        Some(point)
    }

    /// Every retained point, oldest first.
    pub fn points(&self) -> Vec<SeriesPoint> {
        self.inner.lock().points.iter().copied().collect()
    }

    /// Every retained anomaly record, oldest first.
    pub fn anomalies(&self) -> Vec<AnomalyRecord> {
        self.inner.lock().anomalies.iter().copied().collect()
    }

    /// Lifetime count of anomalies fired (not bounded by the record
    /// ring).
    pub fn anomaly_count(&self) -> u64 {
        self.inner.lock().fired
    }

    /// Drops all samples, points, records, and detector state. The
    /// next tick is a fresh baseline.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.last = None;
        inner.points.clear();
        inner.anomalies.clear();
        inner.fired = 0;
        inner.detectors = [Detector::default(); TRACKED];
    }

    /// Renders the retained points as the `/timeseries` JSON document.
    ///
    /// `window_s` keeps only points within that many seconds of the
    /// newest point (`0` = everything retained); `step` then thins to
    /// every `step`-th point, anchored so the newest point is always
    /// included.
    pub fn render_json(&self, window_s: u64, step: usize) -> String {
        let inner = self.inner.lock();
        let step = step.max(1);
        let cutoff = match (window_s, inner.points.back()) {
            (0, _) | (_, None) => 0,
            (w, Some(newest)) => newest.t_us.saturating_sub(w.saturating_mul(1_000_000)),
        };
        let kept: Vec<&SeriesPoint> = inner
            .points
            .iter()
            .filter(|p| p.t_us >= cutoff)
            .collect();
        // Anchor stepping at the newest point and walk backwards.
        let mut picked: Vec<&SeriesPoint> = Vec::new();
        let mut i = kept.len();
        while i > 0 {
            picked.push(kept[i - 1]);
            i = i.saturating_sub(step);
        }
        picked.reverse();
        let body = picked
            .iter()
            .map(|p| p.to_json())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"window_s\": {window_s}, \"step\": {step}, \"retained\": {}, \
             \"anomaly_total\": {}, \"points\": [{body}]}}",
            inner.points.len(),
            inner.fired,
        )
    }

    /// Renders the retained anomaly records as the `/anomalies` JSON
    /// document.
    pub fn anomalies_json(&self) -> String {
        let inner = self.inner.lock();
        let body = inner
            .anomalies
            .iter()
            .map(|r| r.to_json())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"fired\": {}, \"retained\": {}, \"records\": [{body}]}}",
            inner.fired,
            inner.anomalies.len(),
        )
    }
}

/// Publishes one anomaly: bumps `dhnsw_anomaly_total{series=…}` and,
/// when span capture is enabled, records an `anomaly_detector` trace
/// with a structured `anomaly` instant (mirroring the SLO watchdog's
/// emission shape).
fn emit_anomaly(telemetry: &Telemetry, record: &AnomalyRecord) {
    telemetry
        .counter(
            "dhnsw_anomaly_total",
            "Anomalies flagged by the series recorder (EWMA mean + MAD z-score)",
            &[("series", record.series)],
        )
        .inc();
    let trace = telemetry.spans().begin("anomaly");
    if trace.is_enabled() {
        let root = trace.begin_span("anomaly_detector", "health", SpanId::NONE);
        let mut args = vec![
            ("series", ArgValue::Str(record.series)),
            ("value", ArgValue::F64(record.value)),
            ("mean", ArgValue::F64(record.mean)),
            ("zscore", ArgValue::F64(record.zscore)),
        ];
        if let Some(id) = record.exemplar {
            args.push(("exemplar", ArgValue::U64(id)));
        }
        trace.instant("anomaly", "health", root, &args);
        trace.end_span(root);
    }
    telemetry.spans().finish(trace);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hub plus the handles tests use to drive the instruments the
    /// recorder watches.
    fn hub() -> (Telemetry, Handles) {
        let t = Telemetry::with_trace_capacity(8);
        let h = Handles::resolve(&t);
        (t, h)
    }

    /// Drives one synthetic traffic window: `q` queries of `lat_us`
    /// each, `bytes` stage-load bytes, `retries` retries.
    fn drive(h: &Handles, q: u64, lat_us: u64, bytes: u64, retries: u64) {
        h.queries.add(q);
        h.latency.observe_n(lat_us, q);
        h.bytes_read.add(bytes);
        h.cause_bytes[ReadCause::StageLoad.index()].add(bytes);
        h.read_retries.add(retries);
        h.cache_hits.add(3 * q);
        h.cache_misses.add(q);
    }

    #[test]
    fn first_tick_is_baseline_and_rates_are_exact() {
        let (t, h) = hub();
        let rec = SeriesRecorder::with_capacity(16);
        assert!(rec.tick(&t, 0).is_none(), "first tick is the baseline");
        drive(&h, 50, 400, 2_000_000, 0);
        let p = rec.tick(&t, 2_000_000).expect("second tick derives");
        assert_eq!(p.window_queries, 50);
        assert!((p.qps - 25.0).abs() < 1e-9, "50 q / 2 s, got {}", p.qps);
        assert!(
            (p.bytes_per_s - 1_000_000.0).abs() < 1e-6,
            "2 MB / 2 s, got {}",
            p.bytes_per_s
        );
        assert!(
            (p.cause_bytes_per_s[ReadCause::StageLoad.index()] - 1_000_000.0).abs() < 1e-6
        );
        assert!((p.hit_rate - 0.75).abs() < 1e-9);
        // Windowed quantile sees only this window's 400 us samples.
        assert!(p.p99_us >= 400.0 && p.p99_us <= 512.0, "p99 {}", p.p99_us);
        assert_eq!(rec.points().len(), 1);
    }

    #[test]
    fn non_advancing_tick_rebaselines_instead_of_dividing_by_zero() {
        let (t, h) = hub();
        let rec = SeriesRecorder::with_capacity(16);
        assert!(rec.tick(&t, 1_000).is_none());
        drive(&h, 10, 100, 1000, 0);
        assert!(rec.tick(&t, 1_000).is_none(), "same timestamp re-baselines");
        assert!(rec.tick(&t, 500).is_none(), "regressing timestamp too");
        drive(&h, 10, 100, 1000, 0);
        let p = rec.tick(&t, 1_000_500).expect("clock advanced");
        // The re-baseline consumed the first burst; only the second
        // burst lands in this window.
        assert_eq!(p.window_queries, 10);
    }

    #[test]
    fn ring_capacity_is_bounded() {
        let (t, h) = hub();
        let rec = SeriesRecorder::with_capacity(4);
        rec.tick(&t, 0);
        for i in 1..=20u64 {
            drive(&h, 5, 100, 100, 0);
            rec.tick(&t, i * 1_000_000);
        }
        let points = rec.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points.last().expect("non-empty").t_us, 20_000_000);
        assert_eq!(points[0].t_us, 17_000_000);
    }

    #[test]
    fn steady_traffic_fires_no_anomaly_and_a_spike_fires_once() {
        let (t, h) = hub();
        let rec = SeriesRecorder::with_capacity(64);
        rec.tick(&t, 0);
        // 12 identical windows: warm-up plus a long steady baseline.
        for i in 1..=12u64 {
            drive(&h, 40, 300, 100_000, 0);
            rec.tick(&t, i * 1_000_000);
        }
        assert_eq!(rec.anomaly_count(), 0, "steady traffic is not anomalous");
        // Retry storm: retries jump from 0/s to 80/s.
        drive(&h, 40, 300, 100_000, 80);
        rec.tick(&t, 13_000_000);
        let records = rec.anomalies();
        assert_eq!(rec.anomaly_count(), 1, "records: {records:?}");
        assert_eq!(records[0].series, "retries_per_s");
        assert!(records[0].deterministic);
        assert!(records[0].zscore >= rec.config().enter_z);
        // Hysteresis: the storm continuing is the same episode.
        drive(&h, 40, 300, 100_000, 85);
        rec.tick(&t, 14_000_000);
        assert_eq!(rec.anomaly_count(), 1, "ongoing episode does not re-fire");
        // The counter surfaced in the registry.
        let prom = t.render_prometheus();
        assert!(
            prom.contains("dhnsw_anomaly_total{series=\"retries_per_s\"} 1"),
            "prometheus exposition missing anomaly counter:\n{prom}"
        );
    }

    #[test]
    fn warmup_suppresses_scoring_and_idle_windows_are_skipped() {
        let (t, h) = hub();
        let cfg = AnomalyConfig {
            warmup: 3,
            ..AnomalyConfig::default()
        };
        let rec = SeriesRecorder::with_capacity(64).with_config(cfg);
        rec.tick(&t, 0);
        // Wildly different windows inside warm-up: no anomalies.
        drive(&h, 10, 100, 1_000, 0);
        rec.tick(&t, 1_000_000);
        drive(&h, 500, 100, 9_000_000, 40);
        rec.tick(&t, 2_000_000);
        assert_eq!(rec.anomaly_count(), 0, "warm-up must not score");
        // Idle windows (no queries) never feed the detectors.
        for i in 3..=30u64 {
            rec.tick(&t, i * 1_000_000);
        }
        assert_eq!(rec.anomaly_count(), 0, "idle windows must not score");
        let points = rec.points();
        assert_eq!(points.last().expect("non-empty").window_queries, 0);
    }

    #[test]
    fn clear_resets_baseline_points_and_detectors() {
        let (t, h) = hub();
        let rec = SeriesRecorder::with_capacity(8);
        rec.tick(&t, 0);
        drive(&h, 10, 100, 1_000, 0);
        rec.tick(&t, 1_000_000);
        assert_eq!(rec.points().len(), 1);
        rec.clear();
        assert!(rec.points().is_empty());
        assert!(rec.anomalies().is_empty());
        assert_eq!(rec.anomaly_count(), 0);
        assert!(
            rec.tick(&t, 2_000_000).is_none(),
            "tick after clear is a fresh baseline"
        );
    }

    #[test]
    fn render_json_windows_and_steps_anchor_on_newest() {
        let (t, h) = hub();
        let rec = SeriesRecorder::with_capacity(32);
        rec.tick(&t, 0);
        for i in 1..=10u64 {
            drive(&h, 8, 200, 4_000, 0);
            rec.tick(&t, i * 1_000_000);
        }
        let all = rec.render_json(0, 1);
        assert!(all.contains("\"retained\": 10"));
        assert!(all.contains("\"t_us\": 1000000"));
        assert!(all.contains("\"t_us\": 10000000"));
        // 3-second window keeps t = 7, 8, 9, 10 s.
        let windowed = rec.render_json(3, 1);
        assert!(!windowed.contains("\"t_us\": 6000000"));
        assert!(windowed.contains("\"t_us\": 7000000"));
        assert!(windowed.contains("\"t_us\": 10000000"));
        // Stepping by 4 anchors on the newest point.
        let stepped = rec.render_json(0, 4);
        assert!(stepped.contains("\"t_us\": 10000000"));
        assert!(stepped.contains("\"t_us\": 6000000"));
        assert!(stepped.contains("\"t_us\": 2000000"));
        assert!(!stepped.contains("\"t_us\": 9000000"));
        // Anomalies document is well-formed even when empty.
        let anomalies = rec.anomalies_json();
        assert!(anomalies.contains("\"fired\": 0"));
        assert!(anomalies.contains("\"records\": []"));
    }

    #[test]
    fn detector_hysteresis_rearms_after_recovery() {
        let cfg = AnomalyConfig::default();
        let mut d = Detector::default();
        for _ in 0..10 {
            assert!(d.update(100.0, &cfg, 1.0).is_none());
        }
        assert!(d.update(1_000.0, &cfg, 1.0).is_some(), "spike fires");
        assert!(d.update(1_000.0, &cfg, 1.0).is_none(), "episode continues");
        // Recovery to baseline re-arms…
        for _ in 0..5 {
            assert!(d.update(100.0, &cfg, 1.0).is_none());
        }
        assert!(!d.active, "recovered below exit_z");
        // …and a second spike fires a new episode.
        assert!(d.update(1_000.0, &cfg, 1.0).is_some());
    }
}
