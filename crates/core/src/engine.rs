//! The compute-instance query engine.
//!
//! A [`ComputeNode`] is one compute-pool instance: it caches the
//! meta-HNSW and the layout directory, owns a queue pair to the memory
//! pool and an LRU cluster cache, and answers batched top-k queries. The
//! [`SearchMode`] selects between full d-HNSW and the paper's two
//! baselines, which differ **only** in how cluster bytes cross the
//! network:
//!
//! | mode | meta cache | query-aware dedup | LRU cache | doorbell |
//! |------|-----------|-------------------|-----------|----------|
//! | [`SearchMode::Full`]       | ✓ | ✓ | ✓ | ✓ |
//! | [`SearchMode::NoDoorbell`] | ✓ | ✓ | ✓ | ✗ (one round trip per cluster) |
//! | [`SearchMode::Naive`]      | ✓ | ✗ | ✗ | ✗ (per-query cluster fetches) |
//!
//! Mutations go through the shared overflow areas: [`ComputeNode::insert`]
//! (four one-sided verbs, the last publishing the partition's version),
//! [`ComputeNode::insert_batch`] (doorbell-batched), and
//! [`ComputeNode::delete`] (tombstone records). Reads validate the
//! per-partition version slots around each cluster fetch and retry (or
//! degrade, when allowed) when a read cannot stabilize.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rdma_sim::{QueuePair, ReadCause, StatsSnapshot, READ_CAUSES};
use vecsim::{Dataset, Neighbor, TopK};

use crate::breakdown::{BatchReport, CostLedger};
use crate::cache::{CacheStats, ClusterCache};
use crate::cluster::{LoadedCluster, OverflowRecord};
use crate::config::QuantizeMode;
use crate::health::heatmap::ClusterHeatmap;
use crate::health::report::{
    CacheHealth, GroupHealth, HealthReport, LatencyHealth, LayoutSummary, ReliabilityHealth,
    TailHealth,
};
use crate::health::skew::skew_of;
use crate::layout::{Directory, DIRECTORY_PEEK_BYTES, ID_COUNTER_OFFSET};
use crate::loader::{plan_batch, read_requests_tagged, stage_loads};
use crate::meta::MetaIndex;
use crate::store::VectorStore;
use crate::telemetry::exemplar::TailRecord;
use crate::telemetry::span::{ArgValue, BatchTrace, QpSpanSink, SpanId};
use crate::telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, QueryTrace, Telemetry};
use crate::{DHnswConfig, Error, Result};

/// `(partition, version-at-load, raw span bytes)` triples that passed a
/// load stage's optimistic version check. In SQ8 mode the span bytes are
/// the compressed blob, optionally followed by the group's raw overflow
/// area (present exactly when the partition's version was nonzero).
type StableLoads = Vec<(u32, u64, Vec<u8>)>;

/// One quantized-search candidate, carrying enough addressing to rerank
/// it with an exact full-precision read.
#[derive(Debug, Clone, Copy)]
struct SqCand {
    id: u32,
    dist: f32,
    partition: u32,
    /// Base row inside the uncompressed cluster blob; `None` means the
    /// distance is already exact (overflow insert or full-precision
    /// fallback).
    local: Option<u32>,
    /// Worst-case quantization error of `dist` (zero when exact).
    err: f32,
}

/// Entries the node-level exact-vector cache may hold before it is
/// cleared wholesale; bounds rerank memory at ~`cap × dim × 4` bytes.
const RERANK_CACHE_CAP: usize = 8_192;

/// Span-argument keys for per-cause byte counts, indexed by
/// [`ReadCause::index`]. Span arg keys must be `'static`, so the
/// prefix is baked in here instead of formatted at runtime.
const CAUSE_BYTE_KEYS: [&str; READ_CAUSES] = [
    "bytes_stage_load",
    "bytes_prefetch",
    "bytes_version_check",
    "bytes_retry",
    "bytes_health_probe",
    "bytes_overflow_scan",
    "bytes_naive",
    "bytes_rerank",
    "bytes_other",
];

/// Which of the paper's three evaluated schemes this compute node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchMode {
    /// Full d-HNSW: query-aware batched loading + LRU cache + doorbell
    /// batching.
    #[default]
    Full,
    /// "d-HNSW (w./o. doorbell)": batched loading and caching, but each
    /// discontiguous cluster costs its own network round trip.
    NoDoorbell,
    /// "Naive d-HNSW": every query fetches each of its clusters with an
    /// individual `RDMA_READ`; no reuse within or across batches.
    Naive,
}

impl SearchMode {
    /// A short stable name, used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            SearchMode::Full => "d-HNSW",
            SearchMode::NoDoorbell => "d-HNSW (w/o doorbell)",
            SearchMode::Naive => "Naive d-HNSW",
        }
    }

    /// The value of the `mode` metric label: lowercase, no punctuation.
    pub fn label(self) -> &'static str {
        match self {
            SearchMode::Full => "full",
            SearchMode::NoDoorbell => "no_doorbell",
            SearchMode::Naive => "naive",
        }
    }
}

impl std::fmt::Display for SearchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-call query parameters.
///
/// `k` and `ef` mirror [`ComputeNode::query_batch`]'s positional
/// arguments; `fanout` overrides the configured partitions-per-query
/// (`b`) for this call only — useful for recall/bandwidth sweeps without
/// rebuilding the store.
///
/// # Example
///
/// ```rust
/// use dhnsw::QueryOptions;
///
/// let opts = QueryOptions::new(10, 48).with_fanout(8);
/// assert_eq!(opts.fanout, Some(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOptions {
    /// Results per query.
    pub k: usize,
    /// Sub-HNSW beam width (`efSearch`).
    pub ef: usize,
    /// Partitions probed per query; `None` uses the store configuration.
    pub fanout: Option<usize>,
}

impl QueryOptions {
    /// Options with the store-configured fan-out.
    pub fn new(k: usize, ef: usize) -> Self {
        QueryOptions {
            k,
            ef,
            fanout: None,
        }
    }

    /// Overrides the per-query partition fan-out.
    pub fn with_fanout(mut self, b: usize) -> Self {
        self.fanout = Some(b);
        self
    }
}

/// Pre-resolved metric handles for one compute node. Resolving happens
/// once at connect; recording on the query path is pure atomics.
#[derive(Debug)]
struct EngineMetrics {
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    latency_us: Arc<Histogram>,
    stage_meta_us: Arc<Counter>,
    stage_network_us: Arc<Counter>,
    stage_sub_us: Arc<Counter>,
    stage_materialize_us: Arc<Counter>,
    pipeline_hidden_us: Arc<Counter>,
    prefetch_rounds: Arc<Counter>,
    prefetch_clusters: Arc<Counter>,
    prefetch_bytes: Arc<Counter>,
    clusters_loaded: Arc<Counter>,
    cluster_cache_hits: Arc<Counter>,
    raw_cluster_demand: Arc<Counter>,
    transfers_saved: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_occupancy: Arc<Gauge>,
    cache_resident_bytes: Arc<Gauge>,
    rdma_round_trips: Arc<Counter>,
    rdma_work_requests: Arc<Counter>,
    rdma_doorbell_batches: Arc<Counter>,
    rdma_bytes_read: Arc<Counter>,
    rdma_read_bytes_by_cause: [Arc<Counter>; READ_CAUSES],
    rdma_read_trips_by_cause: [Arc<Counter>; READ_CAUSES],
    rdma_bytes_written: Arc<Counter>,
    rdma_atomics: Arc<Counter>,
    rdma_faults: Arc<Counter>,
    doorbell_batch_size: Arc<Histogram>,
    degraded_queries: Arc<Counter>,
    read_retries: Arc<Counter>,
    inserts: Arc<Counter>,
    insert_overflow: Arc<Counter>,
    deletes: Arc<Counter>,
    tail_exemplar_occupancy: Arc<Gauge>,
    tail_profile_paths: Arc<Gauge>,
    tail_exemplars_recorded: Arc<Counter>,
    tail_exemplars_dropped: Arc<Counter>,
}

impl EngineMetrics {
    fn new(t: &Telemetry, mode: SearchMode) -> Self {
        let m: &[(&str, &str)] = &[("mode", mode.label())];
        EngineMetrics {
            queries: t.counter("dhnsw_queries_total", "Queries answered", m),
            batches: t.counter("dhnsw_query_batches_total", "Query batches answered", m),
            latency_us: t.histogram(
                "dhnsw_query_latency_us",
                "Per-query latency in microseconds (CPU wall + exposed network stall, batch time / batch size)",
                m,
            ),
            stage_meta_us: t.counter(
                "dhnsw_stage_us_total",
                "Cumulative stage time in microseconds",
                &[("mode", mode.label()), ("stage", "meta_hnsw")],
            ),
            stage_network_us: t.counter(
                "dhnsw_stage_us_total",
                "Cumulative stage time in microseconds",
                &[("mode", mode.label()), ("stage", "network")],
            ),
            stage_sub_us: t.counter(
                "dhnsw_stage_us_total",
                "Cumulative stage time in microseconds",
                &[("mode", mode.label()), ("stage", "sub_hnsw")],
            ),
            stage_materialize_us: t.counter(
                "dhnsw_stage_us_total",
                "Cumulative stage time in microseconds",
                &[("mode", mode.label()), ("stage", "materialize")],
            ),
            pipeline_hidden_us: t.counter(
                "dhnsw_pipeline_hidden_us_total",
                "Virtual network time hidden behind compute by micro-batch pipelining",
                m,
            ),
            prefetch_rounds: t.counter(
                "dhnsw_prefetch_rounds_total",
                "Between-batch heatmap prefetch rounds that loaded at least one cluster",
                m,
            ),
            prefetch_clusters: t.counter(
                "dhnsw_prefetch_clusters_total",
                "Clusters warmed into the cache by the heatmap prefetcher",
                m,
            ),
            prefetch_bytes: t.counter(
                "dhnsw_prefetch_bytes_total",
                "Bytes read from remote memory by the heatmap prefetcher",
                m,
            ),
            clusters_loaded: t.counter(
                "dhnsw_clusters_loaded_total",
                "Clusters fetched from remote memory",
                m,
            ),
            cluster_cache_hits: t.counter(
                "dhnsw_cluster_cache_hits_total",
                "Cluster loads avoided by cache residency at plan time",
                m,
            ),
            raw_cluster_demand: t.counter(
                "dhnsw_raw_cluster_demand_total",
                "Cluster demand before query-aware dedup (queries x fanout)",
                m,
            ),
            transfers_saved: t.counter(
                "dhnsw_loader_transfers_saved_total",
                "Cluster transfers avoided by dedup and cache reuse",
                m,
            ),
            cache_hits: t.counter("dhnsw_cache_hits_total", "Cluster cache lookup hits", &[]),
            cache_misses: t.counter(
                "dhnsw_cache_misses_total",
                "Cluster cache lookup misses",
                &[],
            ),
            cache_evictions: t.counter(
                "dhnsw_cache_evictions_total",
                "Clusters evicted by LRU pressure",
                &[],
            ),
            cache_occupancy: t.gauge(
                "dhnsw_cache_occupancy_clusters",
                "Clusters resident in the most recently active node's cache",
                &[],
            ),
            cache_resident_bytes: t.gauge(
                "dhnsw_cache_resident_bytes",
                "Approximate bytes resident in the most recently active node's cache",
                &[],
            ),
            rdma_round_trips: t.counter(
                "dhnsw_rdma_round_trips_total",
                "Network round trips issued",
                &[],
            ),
            rdma_work_requests: t.counter(
                "dhnsw_rdma_work_requests_total",
                "RDMA work requests posted",
                &[],
            ),
            rdma_doorbell_batches: t.counter(
                "dhnsw_rdma_doorbell_batches_total",
                "Doorbell batches submitted",
                &[],
            ),
            rdma_bytes_read: t.counter(
                "dhnsw_rdma_bytes_read_total",
                "Bytes read from remote memory",
                &[],
            ),
            rdma_read_bytes_by_cause: std::array::from_fn(|i| {
                t.counter(
                    "dhnsw_rdma_read_bytes_by_cause_total",
                    "Bytes read from remote memory, by read cause; sums to dhnsw_rdma_bytes_read_total",
                    &[("cause", ReadCause::ALL[i].as_str())],
                )
            }),
            rdma_read_trips_by_cause: std::array::from_fn(|i| {
                t.counter(
                    "dhnsw_rdma_read_round_trips_by_cause_total",
                    "Read round trips by dominant-bytes cause (write/atomic trips carry no cause)",
                    &[("cause", ReadCause::ALL[i].as_str())],
                )
            }),
            rdma_bytes_written: t.counter(
                "dhnsw_rdma_bytes_written_total",
                "Bytes written to remote memory",
                &[],
            ),
            rdma_atomics: t.counter(
                "dhnsw_rdma_atomics_total",
                "Atomic verbs (CAS/FAA) executed",
                &[],
            ),
            rdma_faults: t.counter(
                "dhnsw_rdma_faults_total",
                "Faulted (dropped and retransmitted) verb attempts",
                &[],
            ),
            doorbell_batch_size: t.histogram(
                "dhnsw_doorbell_batch_size",
                "Work requests per doorbell batch",
                &[],
            ),
            degraded_queries: t.counter(
                "dhnsw_degraded_queries_total",
                "Queries answered from an incomplete cluster set after read retries ran out",
                m,
            ),
            read_retries: t.counter(
                "dhnsw_read_retries_total",
                "Engine-level cluster read retries (version mismatch or exhausted retransmissions)",
                m,
            ),
            inserts: t.counter("dhnsw_inserts_total", "Insert attempts", &[]),
            insert_overflow: t.counter(
                "dhnsw_insert_overflow_total",
                "Inserts rejected because the group overflow area was full",
                &[],
            ),
            deletes: t.counter("dhnsw_deletes_total", "Delete attempts", &[]),
            tail_exemplar_occupancy: t.gauge(
                "dhnsw_tail_exemplar_occupancy",
                "Tail exemplars currently retained (reservoir + K-slowest)",
                &[],
            ),
            tail_profile_paths: t.gauge(
                "dhnsw_tail_profile_paths",
                "Distinct span paths accumulated in the always-on folded profile",
                &[],
            ),
            tail_exemplars_recorded: t.counter(
                "dhnsw_tail_exemplars_recorded_total",
                "Batch exemplars offered to the tail exemplar store",
                &[],
            ),
            tail_exemplars_dropped: t.counter(
                "dhnsw_tail_exemplars_dropped_total",
                "Batch exemplars evicted or rejected by the bounded exemplar store",
                &[],
            ),
        }
    }
}

/// Last-flushed substrate counters, for converting cumulative snapshots
/// into telemetry deltas without double counting.
#[derive(Debug, Default)]
struct FlushState {
    rdma: StatsSnapshot,
    cache: CacheStats,
}

/// Counter values captured at the previous health report, so the next
/// report can evaluate a *window* (the interval since that report)
/// instead of lifetime aggregates. A cold-start latency spike or miss
/// burst therefore ages out after one report interval rather than
/// pinning the SLO watchdog in violation forever.
#[derive(Debug, Default)]
struct WindowState {
    latency: HistogramSnapshot,
    hits: u64,
    misses: u64,
}

/// One compute-pool instance.
///
/// See the crate docs for an end-to-end example. Thread-safety: a
/// `ComputeNode` may be shared across threads; the cluster cache is
/// internally locked and the queue pair is thread-safe.
#[derive(Debug)]
pub struct ComputeNode {
    qp: QueuePair,
    rkey: u32,
    meta: Arc<MetaIndex>,
    directory: Directory,
    cache: Mutex<ClusterCache>,
    config: DHnswConfig,
    mode: SearchMode,
    telemetry: Arc<Telemetry>,
    metrics: EngineMetrics,
    heatmap: Arc<ClusterHeatmap>,
    flushed: Mutex<FlushState>,
    window: Mutex<WindowState>,
    // Runtime-tunable execution knobs (see `set_pipeline_depth` /
    // `set_prefetch_budget_bytes`): initialized from the store config and
    // the environment, adjustable per node without reconnecting.
    pipeline_depth: AtomicUsize,
    prefetch_budget: AtomicU64,
    // SQ8 wire format in force: the directory carries compressed blobs
    // *and* this node's config asks for them (naive mode always reads
    // full precision — it is the paper's uncompressed baseline).
    use_sq: bool,
    // Exact full-precision vectors fetched for rerank, keyed by
    // (partition, base row). Base vectors are immutable, so entries
    // never go stale; the map is cleared wholesale past
    // `RERANK_CACHE_CAP` to bound memory.
    rerank_cache: Mutex<HashMap<(u32, u32), Vec<f32>>>,
}

impl ComputeNode {
    /// Connects to the store: opens a queue pair and fetches the layout
    /// directory from the head of the remote region (one `RDMA_READ`),
    /// exactly as §3.2 describes compute instances caching the offsets.
    pub(crate) fn connect(
        store: &VectorStore,
        mode: SearchMode,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self> {
        let mut config = store.config().clone();
        // Reliability knobs are also settable from the environment so
        // binaries can run fault drills without code changes:
        // DHNSW_READ_RETRY_LIMIT, DHNSW_RETRY_BACKOFF_US, and
        // DHNSW_DEGRADED_OK=1.
        if let Some(n) = std::env::var("DHNSW_READ_RETRY_LIMIT")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            config = config.with_read_retry_limit(n);
        }
        if let Some(us) = std::env::var("DHNSW_RETRY_BACKOFF_US")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            config = config.with_retry_backoff_us(us);
        }
        if std::env::var("DHNSW_DEGRADED_OK").is_ok_and(|v| v == "1") {
            config = config.with_degraded_ok(true);
        }
        // Execution knobs: DHNSW_PIPELINE_DEPTH splits batches into
        // overlapped micro-batches, DHNSW_PREFETCH_BUDGET_BYTES arms the
        // between-batch heatmap prefetcher, DHNSW_SEARCH_THREADS sizes
        // the per-instance worker pool (0 = all cores).
        if let Some(d) = std::env::var("DHNSW_PIPELINE_DEPTH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            config = config.with_pipeline_depth(d.max(1));
        }
        if let Some(bytes) = std::env::var("DHNSW_PREFETCH_BUDGET_BYTES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            config = config.with_prefetch_budget_bytes(bytes);
        }
        if let Some(t) = std::env::var("DHNSW_SEARCH_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            config = config.with_search_threads(t);
        }
        // Wire-format knobs: DHNSW_QUANTIZE_MODE=off|sq8 selects the
        // cluster payload fetched by queries (sq8 only takes effect when
        // the store was built quantized), DHNSW_RERANK_K sizes the
        // exact-rerank candidate pool.
        if let Some(m) = std::env::var("DHNSW_QUANTIZE_MODE")
            .ok()
            .and_then(|v| QuantizeMode::parse(&v).ok())
        {
            config = config.with_quantize_mode(m);
        }
        if let Some(rk) = std::env::var("DHNSW_RERANK_K")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            config = config.with_rerank_k(rk.max(1));
        }
        let qp = QueuePair::connect(store.memory_node(), config.network());
        let rkey = store.region().rkey();
        // Peek the header first: a v3 (quantized) store carries an SQ
        // span table whose size the connect path cannot know up front.
        let head = qp.read(rkey, 0, DIRECTORY_PEEK_BYTES as u64)?;
        let dir_len = Directory::peek_size(&head)? as u64;
        let dir_bytes = qp.read(rkey, 0, dir_len)?;
        let directory = Directory::from_bytes(&dir_bytes)?;
        let capacity = config.cache_capacity(directory.partitions());
        let metrics = EngineMetrics::new(&telemetry, mode);
        // Bridge substrate verb events into the span tracer. Without an
        // active trace scope the sink drops events after one
        // thread-local lookup, so untraced verbs stay cheap.
        qp.set_trace_sink(Some(Arc::new(QpSpanSink)));
        // Environment knobs so binaries get tracing without code changes:
        // DHNSW_TRACE_SPANS=1 enables per-batch span capture and
        // DHNSW_SLOW_QUERY_US=<µs> arms the slow-query log.
        if std::env::var("DHNSW_TRACE_SPANS").is_ok_and(|v| v == "1") {
            telemetry.spans().set_enabled(true);
        }
        if let Some(us) = std::env::var("DHNSW_SLOW_QUERY_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            telemetry.spans().set_slow_threshold_us(us);
            if us > 0 {
                // A slow-query budget is meaningless without capture.
                telemetry.spans().set_enabled(true);
            }
        }
        // The directory fetch above already moved bytes; start the flush
        // baseline there so connect traffic is not charged to queries.
        let flushed = Mutex::new(FlushState {
            rdma: qp.stats().snapshot(),
            cache: CacheStats::default(),
        });
        let heatmap = Arc::new(ClusterHeatmap::new(directory.partitions()));
        let pipeline_depth = AtomicUsize::new(config.pipeline_depth().max(1));
        let prefetch_budget = AtomicU64::new(config.prefetch_budget_bytes());
        let use_sq = directory.has_sq_spans()
            && config.quantize_mode() != QuantizeMode::Off
            && mode != SearchMode::Naive;
        Ok(ComputeNode {
            qp,
            rkey,
            meta: Arc::clone(store.meta()),
            directory,
            cache: Mutex::new(ClusterCache::new(capacity)),
            config,
            mode,
            telemetry,
            metrics,
            heatmap,
            flushed,
            window: Mutex::new(WindowState::default()),
            pipeline_depth,
            prefetch_budget,
            use_sq,
            rerank_cache: Mutex::new(HashMap::new()),
        })
    }

    /// Whether this node fetches clusters in the compressed SQ8 wire
    /// format (directory is layout v3 *and* quantization is enabled for
    /// this node; naive mode always reads full precision).
    pub fn is_quantized(&self) -> bool {
        self.use_sq
    }

    /// The micro-batch pipeline depth in force (`1` = sequential).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth.load(Ordering::Relaxed)
    }

    /// Sets the micro-batch pipeline depth for subsequent batches on this
    /// node (clamped to `>= 1`; additionally clamped to the batch size at
    /// query time). Depth 1 is the strict route → load → search
    /// execution; deeper pipelines overlap micro-batch *i + 1*'s cluster
    /// loads with micro-batch *i*'s search.
    pub fn set_pipeline_depth(&self, depth: usize) {
        self.pipeline_depth.store(depth.max(1), Ordering::Relaxed);
    }

    /// The between-batch prefetch byte budget in force (`0` = disabled).
    pub fn prefetch_budget_bytes(&self) -> u64 {
        self.prefetch_budget.load(Ordering::Relaxed)
    }

    /// Sets the byte budget the heatmap-driven prefetcher may spend
    /// warming the cluster cache after each query batch (`0` disables
    /// prefetching).
    pub fn set_prefetch_budget_bytes(&self, bytes: u64) {
        self.prefetch_budget.store(bytes, Ordering::Relaxed);
    }

    /// The search mode this node runs.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// The `(offset, len)` span one stage load of partition `p` reads:
    /// the contiguous cluster+overflow group span, or just the
    /// compressed blob when this node uses the SQ8 wire format.
    fn load_span(&self, p: u32) -> Result<(u64, u64)> {
        if self.use_sq {
            self.directory
                .sq_span(p)?
                .ok_or_else(|| Error::Corrupt(format!("partition {p} has no sq span")))
        } else {
            Ok(self.directory.location(p)?.read_span())
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DHnswConfig {
        &self.config
    }

    /// The cached meta index.
    pub fn meta(&self) -> &MetaIndex {
        &self.meta
    }

    /// The cached layout directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The queue pair (for inspecting transfer statistics and virtual
    /// time).
    pub fn queue_pair(&self) -> &QueuePair {
        &self.qp
    }

    /// Lifetime cluster-cache counters since connect.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    /// The telemetry hub this node records into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The per-cluster access heatmap this node samples into.
    pub fn heatmap(&self) -> &ClusterHeatmap {
        &self.heatmap
    }

    /// Assembles a point-in-time [`HealthReport`]: live per-group
    /// overflow occupancy (one doorbell batch of 8-byte counter
    /// reads), layout/fragmentation accounting, the access heatmap,
    /// routing-skew statistics, and cache/latency summaries. The
    /// report's headline numbers are also published as telemetry
    /// gauges. Read-only with respect to the store.
    ///
    /// # Errors
    ///
    /// Propagates substrate read errors or a corrupt overflow counter.
    pub fn health_report(&self) -> Result<HealthReport> {
        let groups = self.directory.groups();
        let reqs: Vec<rdma_sim::ReadReq> = groups
            .iter()
            .map(|g| {
                rdma_sim::ReadReq::new(self.rkey, g.overflow_off, 8)
                    .with_cause(ReadCause::HealthProbe)
            })
            .collect();
        let buffers = self.qp.read_doorbell(&reqs)?;
        let mut group_health = Vec::with_capacity(groups.len());
        let mut layout = LayoutSummary {
            total_bytes: self.directory.total_len(),
            directory_bytes: self.directory.directory_bytes(),
            // Alignment padding starts with the directory's own, plus
            // the SQ tail region's (zero on pre-v3 layouts).
            padding_bytes: self.directory.directory_padding() + self.directory.sq_padding_bytes(),
            sq_bytes: self.directory.sq_live_bytes(),
            ..LayoutSummary::default()
        };
        for (g, buf) in groups.iter().zip(&buffers) {
            let raw: [u8; 8] = buf.as_slice().try_into().map_err(|_| {
                Error::Corrupt(format!("group {} overflow counter short read", g.group))
            })?;
            let used = u64::from_le_bytes(raw);
            // Reservations are compensated on the overflow-full path, so
            // a counter past capacity is not bookkeeping slack — it means
            // the remote counter (or the directory) is damaged. Surface
            // that instead of silently clamping it away.
            if used > g.overflow_capacity {
                return Err(Error::Corrupt(format!(
                    "group {} overflow counter {} exceeds capacity {}",
                    g.group, used, g.overflow_capacity
                )));
            }
            let occupancy = if g.overflow_capacity == 0 {
                0.0
            } else {
                used as f64 / g.overflow_capacity as f64
            };
            layout.cluster_bytes += g.cluster_bytes;
            layout.padding_bytes += g.padding_bytes;
            layout.overflow_capacity_bytes += g.overflow_capacity;
            layout.overflow_used_bytes += used;
            layout.max_group_occupancy = layout.max_group_occupancy.max(occupancy);
            layout.mean_group_occupancy += occupancy;
            group_health.push(GroupHealth {
                group: g.group,
                front: g.front,
                back: g.back,
                cluster_bytes: g.cluster_bytes,
                padding_bytes: g.padding_bytes,
                overflow_capacity_bytes: g.overflow_capacity,
                overflow_used_bytes: used,
                overflow_slack_bytes: g.overflow_capacity - used,
                occupancy,
            });
        }
        if !group_health.is_empty() {
            layout.mean_group_occupancy /= group_health.len() as f64;
        }
        if layout.total_bytes > 0 {
            let total = layout.total_bytes as f64;
            // Live bytes: directory, clusters, the SQ8 tail (layout v3),
            // the 8-byte counters, and overflow records already written.
            // Dead bytes: alignment padding plus unused overflow slack.
            let live = layout.directory_bytes
                + layout.cluster_bytes
                + layout.sq_bytes
                + 8 * group_health.len() as u64
                + layout.overflow_used_bytes;
            let dead = layout.padding_bytes
                + (layout.overflow_capacity_bytes - layout.overflow_used_bytes);
            layout.utilization = live as f64 / total;
            layout.fragmentation = dead as f64 / total;
        }

        let partitions = self.directory.partitions();
        let topk = (partitions / 10).max(1);
        let cluster_bytes: Vec<u64> = self
            .directory
            .locations()
            .iter()
            .map(|loc| loc.cluster_len)
            .collect();
        let degree_hist: Vec<u64> = hnsw::diagnostics::degree_histogram(self.meta.hnsw(), 0)
            .into_iter()
            .map(|d| d as u64)
            .collect();

        // Hit rate uses plan-time residency (hits = loads avoided,
        // misses = clusters fetched): the engine only probes the LRU
        // for partitions planning already proved resident, so the
        // cache's own lookup counters can never record a miss and
        // would report a vacuous 100% here.
        // Window deltas: everything since the previous health report.
        // The baseline advances here, so each report consumes its window
        // exactly once and an idle interval yields an empty window (the
        // watchdog skips empty windows rather than falling back to
        // lifetime aggregates, which would re-fire stale violations).
        let (window_lat, window_hits, window_misses) = {
            let mut w = self.window.lock();
            let lat_now = self.metrics.latency_us.snapshot();
            let hits_now = self.metrics.cluster_cache_hits.get();
            let misses_now = self.metrics.clusters_loaded.get();
            let delta = (
                lat_now - w.latency,
                hits_now.saturating_sub(w.hits),
                misses_now.saturating_sub(w.misses),
            );
            w.latency = lat_now;
            w.hits = hits_now;
            w.misses = misses_now;
            delta
        };
        let cache = {
            let c = self.cache.lock();
            let stats = c.stats();
            let hits = self.metrics.cluster_cache_hits.get();
            let misses = self.metrics.clusters_loaded.get();
            CacheHealth {
                capacity: c.capacity(),
                resident: c.len(),
                resident_bytes: c.resident_bytes() as u64,
                hits,
                misses,
                evictions: stats.evictions,
                hit_rate: if hits + misses == 0 {
                    0.0
                } else {
                    hits as f64 / (hits + misses) as f64
                },
                window_hits,
                window_misses,
                window_hit_rate: if window_hits + window_misses == 0 {
                    0.0
                } else {
                    window_hits as f64 / (window_hits + window_misses) as f64
                },
            }
        };
        let latency = {
            let h = &self.metrics.latency_us;
            LatencyHealth {
                queries: h.count(),
                p50_us: h.quantile(0.5),
                p95_us: h.quantile(0.95),
                p99_us: h.quantile(0.99),
                max_us: h.max(),
                window_queries: window_lat.count(),
                window_p50_us: window_lat.quantile(0.5),
                window_p95_us: window_lat.quantile(0.95),
                window_p99_us: window_lat.quantile(0.99),
            }
        };
        let reliability = {
            let queries = self.metrics.queries.get();
            let degraded = self.metrics.degraded_queries.get();
            ReliabilityHealth {
                queries,
                degraded_queries: degraded,
                read_retries: self.metrics.read_retries.get(),
                degraded_rate: if queries == 0 {
                    0.0
                } else {
                    degraded as f64 / queries as f64
                },
            }
        };

        let tail = {
            let ex = self.telemetry.exemplars();
            let slowest = ex.slowest();
            TailHealth {
                exemplar_occupancy: ex.occupancy(),
                exemplars_recorded: ex.recorded(),
                exemplars_dropped: ex.dropped(),
                profile_paths: self.telemetry.profile().len() as u64,
                slowest_trace_id: slowest.first().map(|r| r.trace_id),
                slowest_total_us: slowest.first().map_or(0.0, |r| r.total_us),
            }
        };

        let report = HealthReport {
            mode: self.mode.label(),
            partitions,
            groups: group_health,
            layout,
            heatmap: self.heatmap.snapshot(),
            partition_skew: skew_of(&cluster_bytes, topk),
            route_skew: skew_of(&self.heatmap.route_hit_counts(), topk),
            degree_skew: skew_of(&degree_hist, topk),
            cache,
            latency,
            reliability,
            tail,
            violations: Vec::new(),
        };
        report.publish(&self.telemetry);
        Ok(report)
    }

    /// Clears the clock and transfer counters — used between benchmark
    /// phases. The telemetry flush baseline is rewound with them so
    /// global counters neither double-count nor go backwards.
    pub fn reset_measurements(&self) {
        let mut flushed = self.flushed.lock();
        self.qp.clock().reset();
        self.qp.stats().reset();
        flushed.rdma = StatsSnapshot::default();
    }

    /// Converts cumulative substrate/cache counters into deltas since
    /// the last flush and adds them to the telemetry registry. Pure
    /// atomic reads and adds — no verbs, no allocation.
    fn flush_telemetry(&self) {
        // The flushed lock is taken first and reads happen under it, so
        // concurrent flushes see monotonic counters and deltas cannot
        // underflow.
        let mut flushed = self.flushed.lock();
        let (cache_now, cache_len, cache_bytes) = {
            let c = self.cache.lock();
            (c.stats(), c.len(), c.resident_bytes())
        };
        let rdma_now = self.qp.stats().snapshot();
        let rdma = rdma_now - flushed.rdma;
        let m = &self.metrics;
        m.rdma_round_trips.add(rdma.round_trips);
        m.rdma_work_requests.add(rdma.work_requests);
        m.rdma_doorbell_batches.add(rdma.doorbell_batches);
        m.rdma_bytes_read.add(rdma.bytes_read);
        for (i, c) in m.rdma_read_bytes_by_cause.iter().enumerate() {
            c.add(rdma.cause_bytes[i]);
        }
        for (i, c) in m.rdma_read_trips_by_cause.iter().enumerate() {
            c.add(rdma.cause_trips[i]);
        }
        m.rdma_bytes_written.add(rdma.bytes_written);
        m.rdma_atomics.add(rdma.atomics);
        m.rdma_faults.add(rdma.faults);
        for (i, &count) in rdma.doorbell_size_buckets.iter().enumerate() {
            // Merge pre-bucketed counts at each bucket's upper bound; the
            // telemetry histogram's log-2 buckets line up with these.
            m.doorbell_batch_size.observe_n(1u64 << i, count);
        }
        m.cache_hits.add(cache_now.hits - flushed.cache.hits);
        m.cache_misses.add(cache_now.misses - flushed.cache.misses);
        m.cache_evictions
            .add(cache_now.evictions - flushed.cache.evictions);
        m.cache_occupancy.set(cache_len as u64);
        m.cache_resident_bytes.set(cache_bytes as u64);
        let ex = self.telemetry.exemplars();
        let (tail_recorded, tail_dropped) = ex.take_flush_delta();
        m.tail_exemplars_recorded.add(tail_recorded);
        m.tail_exemplars_dropped.add(tail_dropped);
        m.tail_exemplar_occupancy.set(ex.occupancy());
        m.tail_profile_paths
            .set(self.telemetry.profile().len() as u64);
        flushed.rdma = rdma_now;
        flushed.cache = cache_now;
    }

    /// Takes one time-series sample at `now_us` (caller-supplied —
    /// synthetic in tests and benchmarks, wall-clock only in the
    /// serving plane's sampler thread).
    ///
    /// Substrate and cache counters are normally flushed to the
    /// telemetry registry on the query path, so a sampler ticking
    /// *between* batches would read stale values; this flushes first
    /// and then ticks the hub's [`crate::telemetry::series::SeriesRecorder`],
    /// returning the derived point (see
    /// [`crate::telemetry::Telemetry::tick_series`]).
    pub fn sample_series(&self, now_us: u64) -> Option<crate::telemetry::series::SeriesPoint> {
        self.flush_telemetry();
        self.telemetry.tick_series(now_us)
    }

    /// Empties the LRU cluster cache (cold-start benchmarks).
    pub fn drop_cache(&self) {
        self.cache.lock().clear();
    }

    /// Answers a single query; convenience wrapper over
    /// [`ComputeNode::query_batch`].
    ///
    /// # Errors
    ///
    /// Same as [`ComputeNode::query_batch`].
    pub fn query(&self, query: &[f32], k: usize, ef: usize) -> Result<Vec<Neighbor>> {
        let batch = Dataset::from_rows(&[query])?;
        let (mut results, _) = self.query_batch(&batch, k, ef)?;
        Ok(results.pop().unwrap_or_default())
    }

    /// Answers a batch of queries: top-`k` per query with sub-HNSW beam
    /// width `ef`, plus the batch's [`BatchReport`].
    ///
    /// Results carry global vector ids (base ids `0..base_len`, then
    /// insert-allocated ids) sorted by ascending distance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the query batch has the
    /// wrong dimensionality, plus any substrate or corruption error.
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
        ef: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, BatchReport)> {
        self.query_batch_opts(queries, &QueryOptions::new(k, ef))
    }

    /// Like [`ComputeNode::query_batch`], with per-call [`QueryOptions`]
    /// (notably a fan-out override).
    ///
    /// # Errors
    ///
    /// Same as [`ComputeNode::query_batch`].
    pub fn query_batch_opts(
        &self,
        queries: &Dataset,
        opts: &QueryOptions,
    ) -> Result<(Vec<Vec<Neighbor>>, BatchReport)> {
        if queries.is_empty() {
            return Ok((Vec::new(), BatchReport::default()));
        }
        if queries.dim() != self.directory.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.directory.dim(),
                got: queries.dim(),
            });
        }
        if opts.fanout == Some(0) {
            return Err(Error::InvalidParameter("fanout must be >= 1".into()));
        }
        let b = opts.fanout.unwrap_or_else(|| self.config.fanout());
        // With tracing off this costs one atomic load; the trace itself
        // is a Copy value moved into a preallocated ring — recording a
        // batch never allocates.
        let tracing = self.telemetry.traces().is_enabled();
        let stats0 = if tracing {
            Some(self.qp.stats().snapshot())
        } else {
            None
        };
        // Span tracing: one root span per batch; the planned/naive paths
        // hang stage spans off it. `begin` hands back a no-op handle
        // when the tracer is off.
        let trace = self.telemetry.spans().begin(self.mode.label());
        let root = trace.begin_span("query_batch", "engine", SpanId::NONE);
        trace.add_args(
            root,
            &[
                ("mode", ArgValue::Str(self.mode.label())),
                ("queries", ArgValue::U64(queries.len() as u64)),
                ("k", ArgValue::U64(opts.k as u64)),
                ("ef", ArgValue::U64(opts.ef as u64)),
                ("fanout", ArgValue::U64(b as u64)),
            ],
        );
        let t0 = Instant::now();
        let outcome = match self.mode {
            SearchMode::Full => {
                self.query_batch_planned(queries, opts.k, opts.ef, b, true, &trace, root)
            }
            SearchMode::NoDoorbell => {
                self.query_batch_planned(queries, opts.k, opts.ef, b, false, &trace, root)
            }
            SearchMode::Naive => self.query_batch_naive(queries, opts.k, opts.ef, b, &trace, root),
        };
        // Release the batch's cache pins whether it succeeded or not —
        // leaked pins would exempt entries from LRU pressure forever.
        // Settling also evicts down to capacity if a fully-pinned cache
        // transiently oversubscribed, charging those evictions here.
        {
            let victims = self.cache.lock().settle();
            if self.heatmap.is_enabled() {
                for v in victims {
                    self.heatmap.record_eviction(v);
                }
            }
        }
        let (results, report) = match outcome {
            Ok(pair) => pair,
            Err(e) => {
                trace.end_span_with(root, &[("error", ArgValue::Str("batch_failed"))]);
                self.telemetry.spans().finish(trace);
                return Err(e);
            }
        };
        // Simulated batch latency: CPU wall time plus the *exposed*
        // network stall from the virtual clock. The process never
        // actually sleeps on the simulated NIC, so wall time alone
        // would undercount the one component this system is about —
        // a retry storm or a lost pipeline overlap would be invisible
        // in the latency series and in the tail exemplars.
        let total_us = t0.elapsed().as_secs_f64() * 1e6 + report.breakdown.network_us;
        // Byte provenance on the root span: the slow-query log's explain
        // data. Only nonzero causes are attached to keep spans small.
        let cause_args: Vec<(&'static str, ArgValue)> = report
            .ledger
            .cause_bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, &b)| (CAUSE_BYTE_KEYS[i], ArgValue::U64(b)))
            .collect();
        trace.add_args(root, &cause_args);
        trace.end_span_with(
            root,
            &[
                ("unique_clusters", ArgValue::U64(report.unique_clusters as u64)),
                ("cache_hits", ArgValue::U64(report.cache_hits as u64)),
                ("clusters_loaded", ArgValue::U64(report.clusters_loaded as u64)),
                ("round_trips", ArgValue::U64(report.round_trips)),
                ("bytes_read", ArgValue::U64(report.bytes_read)),
                ("meta_us", ArgValue::F64(report.breakdown.meta_hnsw_us)),
                ("network_vt_us", ArgValue::F64(report.breakdown.network_us)),
                ("sub_us", ArgValue::F64(report.breakdown.sub_hnsw_us)),
                (
                    "materialize_us",
                    ArgValue::F64(report.breakdown.materialize_us),
                ),
            ],
        );
        let trace_id = trace.seq();
        let finished = self.telemetry.spans().finish_trace(trace);

        let m = &self.metrics;
        let n = report.queries.max(1) as u64;
        m.queries.add(report.queries as u64);
        m.batches.inc();
        // The exemplar keeps this exact sample so bucket exemplars line
        // up with the latency histogram by construction.
        let latency_sample_us = (total_us / n as f64) as u64;
        m.latency_us.observe_n(latency_sample_us, n);
        m.stage_meta_us.add(report.breakdown.meta_hnsw_us as u64);
        m.stage_network_us.add(report.breakdown.network_us as u64);
        m.stage_sub_us.add(report.breakdown.sub_hnsw_us as u64);
        m.stage_materialize_us
            .add(report.breakdown.materialize_us as u64);
        m.clusters_loaded.add(report.clusters_loaded as u64);
        m.cluster_cache_hits.add(report.cache_hits as u64);
        m.raw_cluster_demand.add(report.raw_cluster_demand as u64);
        m.degraded_queries.add(report.degraded_queries as u64);
        m.read_retries.add(report.read_retries);
        m.transfers_saved.add(
            (report.raw_cluster_demand.saturating_sub(report.clusters_loaded)) as u64,
        );

        // Tail anatomy: fold this batch into the always-on profile (at
        // span resolution when tracing is live, phase resolution
        // otherwise) and offer it to the exemplar store, which retains
        // the full span tree only while the batch ranks in the
        // K-slowest set.
        match &finished {
            Some(ft) => self.telemetry.profile().fold_trace(ft),
            None => self
                .telemetry
                .profile()
                .fold_phases(&report.breakdown, total_us),
        }
        self.telemetry.exemplars().record(
            TailRecord {
                trace_id,
                mode: self.mode.label(),
                queries: report.queries as u32,
                total_us,
                per_query_us: total_us / n as f64,
                latency_sample_us,
                meta_us: report.breakdown.meta_hnsw_us,
                network_us: report.breakdown.network_us,
                sub_us: report.breakdown.sub_hnsw_us,
                materialize_us: report.breakdown.materialize_us,
                ledger: report.ledger,
                degraded_queries: report.degraded_queries as u32,
                read_retries: report.read_retries,
            },
            finished,
        );
        self.flush_telemetry();

        if let Some(stats0) = stats0 {
            let delta = self.qp.stats().snapshot() - stats0;
            self.telemetry.traces().record(QueryTrace {
                mode: self.mode.label(),
                queries: report.queries as u32,
                k: opts.k as u32,
                ef: opts.ef as u32,
                fanout: b as u32,
                raw_cluster_demand: report.raw_cluster_demand as u32,
                unique_clusters: report.unique_clusters as u32,
                cache_hits: report.cache_hits as u32,
                clusters_loaded: report.clusters_loaded as u32,
                doorbell_batches: delta.doorbell_batches as u32,
                round_trips: report.round_trips,
                bytes_read: report.bytes_read,
                meta_us: report.breakdown.meta_hnsw_us,
                network_us: report.breakdown.network_us,
                sub_us: report.breakdown.sub_hnsw_us,
                materialize_us: report.breakdown.materialize_us,
                total_us,
                cause_bytes: delta.cause_bytes,
            });
        }
        // Warm the cache for the next batch while the client digests this
        // one. Runs after every counter above so prefetch traffic is
        // never attributed to the batch that triggered it.
        if self.prefetch_budget_bytes() > 0 {
            self.prefetch_hot();
        }
        Ok((results, report))
    }

    /// The Full / NoDoorbell path: route → plan → load once per cluster →
    /// search.
    #[allow(clippy::too_many_arguments)]
    fn query_batch_planned(
        &self,
        queries: &Dataset,
        k: usize,
        ef: usize,
        b: usize,
        doorbell: bool,
        trace: &BatchTrace,
        root: SpanId,
    ) -> Result<(Vec<Vec<Neighbor>>, BatchReport)> {
        let mut report = BatchReport {
            queries: queries.len(),
            ..Default::default()
        };

        // 1. Meta-HNSW routing (cached index, pure compute).
        let s_meta = trace.begin_span("meta_route", "engine", root);
        let t_meta = Instant::now();
        let routes: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| self.meta.route(q, b).iter().map(|n| n.id).collect())
            .collect();
        report.breakdown.meta_hnsw_us = t_meta.elapsed().as_secs_f64() * 1e6;
        trace.end_span_with(s_meta, &[("fanout", ArgValue::U64(b as u64))]);

        // Heatmap sampling: one relaxed load decides, then relaxed
        // counter bumps only — nothing here allocates or takes a lock.
        let heat = self.heatmap.is_enabled();
        if heat {
            self.heatmap.begin_batch();
            for route in &routes {
                for &p in route {
                    self.heatmap.record_route(p);
                }
            }
        }

        // 2. Query-aware load planning against current cache residency.
        let s_union = trace.begin_span("cluster_union", "engine", root);
        let plan = {
            let cache = self.cache.lock();
            plan_batch(&routes, |p| cache.contains(p))
        };
        report.raw_cluster_demand = plan.raw_demand;
        report.unique_clusters = plan.unique.len();
        report.cache_hits = plan.cached.len();
        report.clusters_loaded = plan.to_load.len();
        if heat {
            for &p in &plan.cached {
                self.heatmap.record_cache_hit(p);
            }
        }

        // Pin cached clusters before loading so LRU pressure from
        // same-batch (or later-stage) loads cannot take them away
        // mid-batch. Cache hit instants attach to the cluster-union span
        // via the scope. Each pin remembers the version the entry was
        // loaded at for the coherence check below.
        let mut resolved: HashMap<u32, Arc<LoadedCluster>> = HashMap::new();
        let mut pinned_versions: Vec<(u32, u64)> = Vec::new();
        let mut lost: Vec<u32> = Vec::new();
        {
            let _scope = trace.enter_scope(s_union);
            let mut cache = self.cache.lock();
            for &p in &plan.cached {
                let version = cache.version_of(p).unwrap_or(0);
                if let Some(c) = cache.get(p) {
                    cache.pin(p);
                    resolved.insert(p, c);
                    pinned_versions.push((p, version));
                } else {
                    // A concurrent batch on this node evicted the entry
                    // between planning and pinning: demote it to a
                    // stage-0 load so every routed cluster still
                    // resolves. Never happens single-threaded — the
                    // cache only changes between the two locks when
                    // another thread settles or admits.
                    lost.push(p);
                }
            }
        }
        trace.end_span_with(s_union, &plan.trace_args());

        // 3–5. Pipelined execution. The batch is split into `depth`
        // contiguous micro-batches (stages); each to-load cluster is
        // assigned to the stage of its first-demanding query. Stage
        // `i + 1`'s loads are issued — and charged to the virtual NIC
        // timeline — *before* stage `i`'s materialize + search runs on
        // the worker pool, so transfer time overlaps compute. Depth 1
        // reproduces the sequential route → load → materialize → search
        // execution exactly: same verbs, same order, same accounting.
        //
        // Every cluster still crosses the network at most once per batch
        // (stages partition `plan.to_load`), loaded clusters stay pinned
        // in the cache across stages, and cached-pin version verifies
        // ride stage 0's doorbell so a stale entry is demoted and
        // reloaded before *any* stage searches it.
        let versioned = self.directory.has_version_slots();
        let verify: Vec<(u32, u64)> = if versioned && !plan.to_load.is_empty() {
            pinned_versions
        } else {
            Vec::new()
        };
        let depth = self.pipeline_depth().clamp(1, queries.len());
        let chunk = queries.len().div_ceil(depth);
        let bounds: Vec<(usize, usize)> = (0..depth)
            .map(|s| (s * chunk, ((s + 1) * chunk).min(queries.len())))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let mut staged = stage_loads(&routes, &plan.to_load, &bounds);
        let lost_n = lost.len();
        if !lost.is_empty() {
            // Loading at stage 0 is always at-or-before first demand, so
            // the stage invariant holds for demoted entries too.
            staged[0].append(&mut lost);
        }
        let stages = bounds.len();
        let threads = self.config.effective_search_threads();
        let stats0 = self.qp.stats().snapshot();

        let mut verify = Some(verify);
        let mut failed: Vec<u32> = Vec::new();
        // Lost entries were counted as hits by the planner but must be
        // re-fetched, so they start the demotion count.
        let mut demoted = lost_n;
        let mut load_vt = vec![0.0f64; stages];
        let mut cpu_wall = vec![0.0f64; stages];
        let mut loads: Vec<Vec<(u32, u64, Vec<u8>)>> = (0..stages).map(|_| Vec::new()).collect();
        let mut mat_total = 0.0f64;
        let mut sub_total = 0.0f64;
        let mut loaded_total = 0usize;
        let mut searched_all: Vec<(Vec<Neighbor>, f64)> = Vec::with_capacity(queries.len());
        // Quantized flow: stages accumulate per-query candidate *pools*
        // (approximate distances plus rerank addresses); the exact
        // rerank below turns them into final results.
        let pool_k = k + self.config.rerank_k().max(1);
        let mut pools_all: Vec<(Vec<SqCand>, f64)> = Vec::new();

        for i in 0..stages {
            if i == 0 {
                let pending = std::mem::take(&mut staged[0]);
                let verify0 = verify.take().unwrap_or_default();
                if !pending.is_empty() || !verify0.is_empty() {
                    let (stable, vt) = self.load_stage(
                        0,
                        pending,
                        verify0,
                        doorbell,
                        versioned,
                        trace,
                        root,
                        &mut resolved,
                        &mut report,
                        &mut failed,
                        &mut demoted,
                    )?;
                    load_vt[0] = vt;
                    loads[0] = stable;
                }
            }
            if i + 1 < stages && !staged[i + 1].is_empty() {
                // Double buffering: the next micro-batch's clusters go on
                // the wire now, while this stage computes below.
                let (stable, vt) = self.load_stage(
                    i + 1,
                    std::mem::take(&mut staged[i + 1]),
                    Vec::new(),
                    doorbell,
                    versioned,
                    trace,
                    root,
                    &mut resolved,
                    &mut report,
                    &mut failed,
                    &mut demoted,
                )?;
                load_vt[i + 1] = vt;
                loads[i + 1] = stable;
            }

            // Materialize this stage's loads (compute on loaded data) and
            // cache them, pinned, at the version they were read.
            // Deserialization fans out over the instance's worker
            // threads, like the paper's per-instance OpenMP pool.
            let stable = std::mem::take(&mut loads[i]);
            let t_mat = Instant::now();
            let s_mat = trace.begin_span("materialize", "engine", root);
            let stable_parts: Vec<u32> = stable.iter().map(|(p, _, _)| *p).collect();
            let stable_versions: Vec<u64> = stable.iter().map(|(_, v, _)| *v).collect();
            let stable_bufs: Vec<Vec<u8>> = stable.into_iter().map(|(_, _, b)| b).collect();
            let loaded = if self.use_sq {
                materialize_sq_parallel(&self.directory, &stable_parts, &stable_bufs, threads)?
            } else {
                materialize_parallel(&self.directory, &stable_parts, &stable_bufs, threads)?
            };
            {
                let _scope = trace.enter_scope(s_mat);
                let mut cache = self.cache.lock();
                for ((&p, cluster), version) in stable_parts
                    .iter()
                    .zip(&loaded)
                    .zip(stable_versions.iter().copied())
                {
                    if let Some(victim) = cache.put(p, Arc::clone(cluster), version) {
                        if heat {
                            self.heatmap.record_eviction(victim);
                        }
                    }
                    cache.pin(p);
                    resolved.insert(p, Arc::clone(cluster));
                }
            }
            trace.end_span_with(
                s_mat,
                &[
                    ("clusters", ArgValue::U64(loaded.len() as u64)),
                    ("stage", ArgValue::U64(i as u64)),
                ],
            );
            loaded_total += loaded.len();
            let mat_us = t_mat.elapsed().as_secs_f64() * 1e6;
            mat_total += mat_us;

            // Sub-HNSW search for this micro-batch's queries. A stage
            // only ever routes to clusters first demanded at or before
            // it, all of which were loaded (or recorded failed) above —
            // so failures are always known before the search that must
            // tolerate them, exactly as in the sequential path.
            let (lo, hi) = bounds[i];
            let s_search = trace.begin_span("sub_hnsw_search", "engine", root);
            let t_sub = Instant::now();
            if self.use_sq {
                let pools = search_over_sq(
                    &routes[lo..hi],
                    queries,
                    lo,
                    &resolved,
                    pool_k,
                    threads,
                    !failed.is_empty(),
                )?;
                pools_all.extend(pools);
            } else {
                let searched = search_over(
                    &routes[lo..hi],
                    queries,
                    lo,
                    &resolved,
                    k,
                    ef,
                    threads,
                    !failed.is_empty(),
                )?;
                searched_all.extend(searched);
            }
            let sub_us = t_sub.elapsed().as_secs_f64() * 1e6;
            sub_total += sub_us;
            trace.end_span_with(
                s_search,
                &[
                    ("queries", ArgValue::U64((hi - lo) as u64)),
                    ("ef", ArgValue::U64(ef as u64)),
                    ("stage", ArgValue::U64(i as u64)),
                ],
            );
            cpu_wall[i] = mat_us + sub_us;
        }

        report.cache_hits = plan.cached.len() - demoted;
        report.clusters_loaded = loaded_total;
        report.breakdown.materialize_us = mat_total;
        report.breakdown.sub_hnsw_us = sub_total;
        // Schedule composition over the two-clock model: the NIC
        // serializes stage loads on the virtual clock while the worker
        // pool consumes stages in order. The *exposed* network time is
        // the total stall the compute timeline spends waiting on the NIC
        // — with one stage exactly the whole virtual transfer time, with
        // deeper pipelines whatever the overlap could not hide.
        let mut nic_done = 0.0f64;
        let mut cpu_done = 0.0f64;
        let mut exposed = 0.0f64;
        for i in 0..stages {
            nic_done += load_vt[i];
            let wait = (nic_done - cpu_done).max(0.0);
            exposed += wait;
            cpu_done += wait + cpu_wall[i];
        }
        report.breakdown.network_us = exposed;
        let total_vt: f64 = load_vt.iter().sum();
        let hidden = (total_vt - exposed).max(0.0);
        if stages > 1 {
            self.metrics.pipeline_hidden_us.add(hidden as u64);
            trace.instant(
                "pipeline_overlap",
                "engine",
                root,
                &[
                    ("stages", ArgValue::U64(stages as u64)),
                    ("network_vt_us", ArgValue::F64(total_vt)),
                    ("exposed_us", ArgValue::F64(exposed)),
                    ("hidden_us", ArgValue::F64(hidden)),
                ],
            );
        }
        // Exact rerank (quantized flow only): one targeted doorbell
        // fetches the full-precision vectors of every candidate that
        // could still enter its query's top-k, then the pools collapse
        // into final results. Runs before the stats delta so rerank
        // bytes land in this batch's ledger.
        if self.use_sq {
            let t_rr = Instant::now();
            let rr_vt =
                self.rerank_exact(queries, k, &mut pools_all, &resolved, doorbell, trace, root, &mut report)?;
            report.breakdown.network_us += rr_vt;
            report.breakdown.sub_hnsw_us += t_rr.elapsed().as_secs_f64() * 1e6;
            searched_all = std::mem::take(&mut pools_all)
                .into_iter()
                .map(|(pool, cov)| {
                    let mut top = TopK::new(k);
                    for c in &pool {
                        top.push(c.id, c.dist);
                    }
                    (top.into_sorted_vec(), cov)
                })
                .collect();
        }
        let stats_delta = self.qp.stats().snapshot() - stats0;
        report.round_trips = stats_delta.round_trips;
        report.bytes_read = stats_delta.bytes_read;
        report.ledger = CostLedger::from_delta(&stats_delta);

        let mut results = Vec::with_capacity(searched_all.len());
        if failed.is_empty() {
            results.extend(searched_all.into_iter().map(|(r, _)| r));
        } else {
            let mut coverage = Vec::with_capacity(searched_all.len());
            for (r, cov) in searched_all {
                if cov < 1.0 {
                    report.degraded_queries += 1;
                }
                coverage.push(cov);
                results.push(r);
            }
            report.coverage = coverage;
        }
        Ok((results, report))
    }

    /// Loads one pipeline stage's pending clusters — plus any
    /// piggybacked cached-pin version verifies — under the optimistic
    /// version protocol: each span travels between two reads of its
    /// partition's version slot; a mismatch means a writer committed
    /// mid-read and the span is re-fetched. Cached pins whose verify
    /// fails are demoted (invalidated and reloaded with this stage).
    /// Substrate retransmission-budget errors are retried here too, with
    /// exponential backoff charged to virtual time; past the engine
    /// budget the stage's survivors land in `failed` when degraded
    /// results are allowed, otherwise the batch errors.
    ///
    /// Returns the stabilized `(partition, version, span)` triples and
    /// the stage's virtual network time.
    #[allow(clippy::too_many_arguments)]
    fn load_stage(
        &self,
        stage: usize,
        mut pending: Vec<u32>,
        mut verify: Vec<(u32, u64)>,
        doorbell: bool,
        versioned: bool,
        trace: &BatchTrace,
        root: SpanId,
        resolved: &mut HashMap<u32, Arc<LoadedCluster>>,
        report: &mut BatchReport,
        failed: &mut Vec<u32>,
        demoted: &mut usize,
    ) -> Result<(StableLoads, f64)> {
        let s_net = trace.begin_span("network", "engine", root);
        trace.add_args(s_net, &[("stage", ArgValue::U64(stage as u64))]);
        let clock0 = self.qp.clock().now_us();
        let stats0 = self.qp.stats().snapshot();
        // (partition, version-at-load, span bytes) that passed the check.
        let mut stable: Vec<(u32, u64, Vec<u8>)> = Vec::new();
        let mut attempt: u32 = 0;
        while !pending.is_empty() || !verify.is_empty() {
            // Provenance: version-slot reads are version checks, cluster
            // spans are stage loads on the first attempt and retries
            // afterwards — so a retry storm shows up as `retry` bytes in
            // the ledger, not inflated stage-load traffic.
            let span_cause = if attempt == 0 {
                ReadCause::StageLoad
            } else {
                ReadCause::Retry
            };
            let mut reqs = Vec::with_capacity(verify.len() + 3 * pending.len());
            for &(p, _) in &verify {
                reqs.push(
                    rdma_sim::ReadReq::new(self.rkey, self.directory.version_slot_off(p)?, 8)
                        .with_cause(ReadCause::VersionCheck),
                );
            }
            if versioned {
                for &p in &pending {
                    let vs = rdma_sim::ReadReq::new(
                        self.rkey,
                        self.directory.version_slot_off(p)?,
                        8,
                    )
                    .with_cause(ReadCause::VersionCheck);
                    let (off, len) = self.load_span(p)?;
                    reqs.push(vs);
                    reqs.push(rdma_sim::ReadReq::new(self.rkey, off, len).with_cause(span_cause));
                    reqs.push(vs);
                }
            } else {
                reqs.extend(read_requests_tagged(
                    &self.directory,
                    self.rkey,
                    &pending,
                    span_cause,
                )?);
            }
            let outcome = {
                let _scope = trace.enter_scope(s_net);
                if doorbell {
                    self.qp.read_doorbell(&reqs)
                } else {
                    reqs.iter()
                        .map(|r| self.qp.read_with_cause(r.rkey, r.offset, r.len, r.cause))
                        .collect::<std::result::Result<Vec<_>, _>>()
                }
            };
            let buffers = match outcome {
                Ok(buffers) => buffers,
                Err(rdma_sim::Error::RetriesExhausted { .. }) => {
                    attempt += 1;
                    report.read_retries += 1;
                    if attempt > self.config.read_retry_limit() {
                        if self.config.degraded_ok() {
                            failed.append(&mut pending);
                            verify.clear();
                            break;
                        }
                        trace.end_span(s_net);
                        return Err(Error::ReadRetriesExhausted {
                            partition: pending.first().copied().unwrap_or_default(),
                            attempts: attempt,
                        });
                    }
                    self.backoff(attempt, trace, s_net, pending.len());
                    continue;
                }
                Err(e) => {
                    trace.end_span(s_net);
                    return Err(e.into());
                }
            };
            let mut bufs = buffers.into_iter();
            let mut unstable: Vec<u32> = Vec::new();
            for &(p, pinned) in &verify {
                let now = read_version(&bufs.next().expect("one buffer per request"))?;
                if now != pinned {
                    // A writer moved the cluster since we cached it:
                    // drop the stale pin and reload it with this stage.
                    self.cache.lock().invalidate(p);
                    resolved.remove(&p);
                    unstable.push(p);
                    *demoted += 1;
                }
            }
            verify.clear();
            let mut needs_overflow: Vec<(u32, Vec<u8>)> = Vec::new();
            for &p in &pending {
                if versioned {
                    let before = read_version(&bufs.next().expect("version read"))?;
                    let span = bufs.next().expect("span read");
                    let after = read_version(&bufs.next().expect("version read"))?;
                    if before == after {
                        if self.use_sq && after != 0 {
                            // The compressed blob carries no overflow
                            // records; a nonzero version proves some
                            // exist, so a follow-up read is required.
                            needs_overflow.push((p, span));
                        } else {
                            stable.push((p, after, span));
                        }
                    } else {
                        unstable.push(p);
                    }
                } else {
                    stable.push((p, 0, bufs.next().expect("span read")));
                }
            }
            // SQ8 follow-up: fetch the mutated partitions' overflow
            // areas (bracketed again) and append each to its blob for
            // materialization. The blob itself is immutable, so a
            // version moving *between* the two rounds is harmless — the
            // newer overflow strictly supersedes the older; only a torn
            // overflow read (bracket mismatch) sends the partition
            // around again.
            if !needs_overflow.is_empty() {
                let mut oreqs = Vec::with_capacity(3 * needs_overflow.len());
                for &(p, _) in &needs_overflow {
                    let vs = rdma_sim::ReadReq::new(
                        self.rkey,
                        self.directory.version_slot_off(p)?,
                        8,
                    )
                    .with_cause(ReadCause::VersionCheck);
                    let loc = self.directory.location(p)?;
                    oreqs.push(vs);
                    oreqs.push(
                        rdma_sim::ReadReq::new(self.rkey, loc.overflow_off, loc.overflow_len)
                            .with_cause(ReadCause::OverflowScan),
                    );
                    oreqs.push(vs);
                }
                let outcome = {
                    let _scope = trace.enter_scope(s_net);
                    if doorbell {
                        self.qp.read_doorbell(&oreqs)
                    } else {
                        oreqs
                            .iter()
                            .map(|r| self.qp.read_with_cause(r.rkey, r.offset, r.len, r.cause))
                            .collect::<std::result::Result<Vec<_>, _>>()
                    }
                };
                match outcome {
                    Ok(buffers) => {
                        let mut obufs = buffers.into_iter();
                        for (p, mut span) in needs_overflow {
                            let before = read_version(&obufs.next().expect("version read"))?;
                            let area = obufs.next().expect("overflow read");
                            let after = read_version(&obufs.next().expect("version read"))?;
                            if before == after {
                                span.extend_from_slice(&area);
                                stable.push((p, after, span));
                            } else {
                                unstable.push(p);
                            }
                        }
                    }
                    Err(rdma_sim::Error::RetriesExhausted { .. }) => {
                        // Send them back through the shared retry budget
                        // (blob and overflow are re-read together).
                        report.read_retries += 1;
                        unstable.extend(needs_overflow.into_iter().map(|(p, _)| p));
                    }
                    Err(e) => {
                        trace.end_span(s_net);
                        return Err(e.into());
                    }
                }
            }
            if unstable.is_empty() {
                break;
            }
            attempt += 1;
            report.read_retries += unstable.len() as u64;
            if attempt > self.config.read_retry_limit() {
                if self.config.degraded_ok() {
                    failed.append(&mut unstable);
                    break;
                }
                trace.end_span(s_net);
                return Err(Error::ReadRetriesExhausted {
                    partition: unstable[0],
                    attempts: attempt,
                });
            }
            self.backoff(attempt, trace, s_net, unstable.len());
            pending = unstable;
        }
        let vt = self.qp.clock().now_us() - clock0;
        let stats_delta = self.qp.stats().snapshot() - stats0;
        if self.heatmap.is_enabled() {
            for (p, _, span) in &stable {
                self.heatmap.record_load(*p, span.len() as u64);
            }
        }
        trace.set_vt(s_net, clock0, vt);
        trace.end_span_with(
            s_net,
            &[
                ("round_trips", ArgValue::U64(stats_delta.round_trips)),
                ("bytes_read", ArgValue::U64(stats_delta.bytes_read)),
                (
                    "doorbell_batches",
                    ArgValue::U64(stats_delta.doorbell_batches),
                ),
                ("read_retries", ArgValue::U64(report.read_retries)),
            ],
        );
        Ok((stable, vt))
    }

    /// Exact-rerank pass for quantized batches. Decides which pool
    /// candidates could still enter their query's top-`k` — those whose
    /// error interval reaches below the k-th smallest upper bound —
    /// fetches the missing full-precision vectors with one
    /// [`ReadCause::Rerank`]-tagged doorbell (deduplicated across the
    /// batch and against the node-level exact-vector cache), and swaps
    /// exact distances in. Candidates provably outside the top-k keep
    /// their asymmetric distance: they cannot displace a reranked
    /// survivor, so the final top-k id set equals a full rerank's.
    ///
    /// Base vectors are immutable (mutations live in overflow areas),
    /// so the reads need no version brackets and cache entries never go
    /// stale. Returns the fetch's virtual network time.
    #[allow(clippy::too_many_arguments)]
    fn rerank_exact(
        &self,
        queries: &Dataset,
        k: usize,
        pools: &mut [(Vec<SqCand>, f64)],
        resolved: &HashMap<u32, Arc<LoadedCluster>>,
        doorbell: bool,
        trace: &BatchTrace,
        root: SpanId,
        report: &mut BatchReport,
    ) -> Result<f64> {
        // Per query: pool indices to exactify, with the (partition, row)
        // address of each full vector.
        let mut plan: Vec<Vec<(usize, (u32, u32))>> = Vec::with_capacity(pools.len());
        let mut need: Vec<(u32, u32)> = Vec::new();
        let mut queued: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        {
            let cache = self.rerank_cache.lock();
            for (pool, _) in pools.iter() {
                let mut wanted = Vec::new();
                if !pool.is_empty() && k > 0 {
                    let mut uppers: Vec<f32> = pool.iter().map(|c| c.dist + c.err).collect();
                    uppers.sort_by(f32::total_cmp);
                    let thresh = uppers[k.min(uppers.len()) - 1];
                    for (i, c) in pool.iter().enumerate() {
                        let Some(local) = c.local else { continue };
                        if c.dist - c.err <= thresh {
                            let key = (c.partition, local);
                            wanted.push((i, key));
                            if !cache.contains_key(&key) && queued.insert(key) {
                                need.push(key);
                            }
                        }
                    }
                }
                plan.push(wanted);
            }
        }
        if plan.iter().all(|w| w.is_empty()) {
            return Ok(0.0);
        }

        let dim = self.directory.dim();
        let vec_bytes = (dim * 4) as u64;
        let s_rr = trace.begin_span("rerank", "engine", root);
        let clock0 = self.qp.clock().now_us();
        let candidates: u64 = plan.iter().map(|w| w.len() as u64).sum();
        let mut fetched: Vec<((u32, u32), Vec<f32>)> = Vec::with_capacity(need.len());
        let mut pending = need;
        let mut attempt = 0u32;
        while !pending.is_empty() {
            let mut reqs = Vec::with_capacity(pending.len());
            for &(p, local) in &pending {
                let loc = self.directory.location(p)?;
                let rows = resolved
                    .get(&p)
                    .and_then(|c| c.sq())
                    .map(|sq| sq.len())
                    .ok_or_else(|| {
                        Error::Corrupt(format!("rerank candidate in unresolved cluster {p}"))
                    })?;
                // Serialized clusters end with the raw row-major f32
                // vectors, so row `local` sits a fixed distance from
                // the blob's tail.
                let off = loc.cluster_off + loc.cluster_len
                    - (rows as u64 - u64::from(local)) * vec_bytes;
                reqs.push(
                    rdma_sim::ReadReq::new(self.rkey, off, vec_bytes)
                        .with_cause(ReadCause::Rerank),
                );
            }
            let outcome = {
                let _scope = trace.enter_scope(s_rr);
                if doorbell {
                    self.qp.read_doorbell(&reqs)
                } else {
                    reqs.iter()
                        .map(|r| self.qp.read_with_cause(r.rkey, r.offset, r.len, r.cause))
                        .collect::<std::result::Result<Vec<_>, _>>()
                }
            };
            match outcome {
                Ok(buffers) => {
                    for (&key, buf) in pending.iter().zip(&buffers) {
                        let mut v = Vec::with_capacity(dim);
                        for ch in buf.chunks_exact(4) {
                            v.push(f32::from_le_bytes(ch.try_into().expect("4 bytes")));
                        }
                        fetched.push((key, v));
                    }
                    pending.clear();
                }
                Err(rdma_sim::Error::RetriesExhausted { .. }) => {
                    attempt += 1;
                    report.read_retries += 1;
                    if attempt > self.config.read_retry_limit() {
                        if self.config.degraded_ok() {
                            // Unfetched candidates keep their asymmetric
                            // distances: the answer degrades gracefully
                            // instead of failing the batch.
                            break;
                        }
                        trace.end_span(s_rr);
                        return Err(Error::ReadRetriesExhausted {
                            partition: pending[0].0,
                            attempts: attempt,
                        });
                    }
                    self.backoff(attempt, trace, s_rr, pending.len());
                }
                Err(e) => {
                    trace.end_span(s_rr);
                    return Err(e.into());
                }
            }
        }
        let vt = self.qp.clock().now_us() - clock0;
        let fetched_n = fetched.len() as u64;
        let mut exacted = 0u64;
        {
            let mut cache = self.rerank_cache.lock();
            if cache.len() + fetched.len() > RERANK_CACHE_CAP {
                cache.clear();
            }
            for (key, v) in fetched {
                cache.insert(key, v);
            }
            for (qi, (pool, _)) in pools.iter_mut().enumerate() {
                let q = queries.get(qi);
                for &(ci, key) in &plan[qi] {
                    if let Some(v) = cache.get(&key) {
                        pool[ci].dist = vecsim::l2_sq(q, v);
                        pool[ci].err = 0.0;
                        exacted += 1;
                    }
                }
            }
        }
        trace.set_vt(s_rr, clock0, vt);
        trace.end_span_with(
            s_rr,
            &[
                ("candidates", ArgValue::U64(candidates)),
                ("fetched", ArgValue::U64(fetched_n)),
                ("exacted", ArgValue::U64(exacted)),
            ],
        );
        Ok(vt)
    }

    /// Heatmap-driven background prefetch: warms the LRU cache with the
    /// hottest non-resident clusters (EWMA hotness from the partition
    /// heatmap), bounded by the node's prefetch byte budget and the
    /// cache capacity. Runs synchronously between batches — the
    /// substrate's verb schedule is deterministic, and a detached thread
    /// would race it — so `query_batch` invokes it *after* a batch's
    /// accounting closes; prefetch traffic lands on the engine's
    /// `dhnsw_prefetch_*` counters, never on a batch report.
    ///
    /// Best-effort by design: any substrate error or unresolved version
    /// churn abandons the round silently. Returns the number of clusters
    /// admitted to the cache.
    pub fn prefetch_hot(&self) -> usize {
        let budget = self.prefetch_budget_bytes();
        if budget == 0 || self.mode == SearchMode::Naive || !self.heatmap.is_enabled() {
            return 0;
        }
        let capacity = self.cache.lock().capacity();
        if capacity == 0 {
            return 0;
        }
        // Rank every partition by EWMA hotness (partition id as the
        // deterministic tie-break) and aim the cache at the hottest
        // `capacity` of them. Steering toward that *target set* — rather
        // than a "hotter than the coldest resident" floor — makes
        // repeated rounds converge: once the residents are exactly the
        // target, no pick survives the resident filter and prefetch
        // goes quiet instead of ping-ponging entries of equal heat.
        let mut heat = self.heatmap.snapshot();
        heat.sort_by(|a, b| {
            b.hotness
                .partial_cmp(&a.hotness)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.partition.cmp(&b.partition))
        });
        let target: Vec<u32> = heat
            .iter()
            .filter(|h| h.hotness > 0.0)
            .take(capacity)
            .map(|h| h.partition)
            .collect();
        let mut picks: Vec<u32> = Vec::new();
        let mut planned_bytes = 0u64;
        {
            let cache = self.cache.lock();
            for &p in &target {
                if cache.contains(p) {
                    continue;
                }
                let Ok((_, len)) = self.load_span(p) else {
                    continue;
                };
                // Budget-gated picks are skipped, not queued: they fail
                // the same gate every round, so a too-small budget never
                // causes repeated load traffic for the same cluster.
                if planned_bytes + len > budget {
                    continue;
                }
                planned_bytes += len;
                picks.push(p);
            }
        }
        if picks.is_empty() {
            return 0;
        }

        let trace = self.telemetry.spans().begin("prefetch");
        let root = trace.begin_span("prefetch", "engine", SpanId::NONE);
        let clock0 = self.qp.clock().now_us();
        let stats0 = self.qp.stats().snapshot();
        let versioned = self.directory.has_version_slots();
        let doorbell = self.mode == SearchMode::Full;
        let mut stable: Vec<(u32, u64, Vec<u8>)> = Vec::new();
        let mut pending = picks.clone();
        let mut attempt: u32 = 0;
        'load: while !pending.is_empty() {
            let mut reqs = Vec::with_capacity(3 * pending.len());
            for &p in &pending {
                let Ok((off, len)) = self.load_span(p) else {
                    break 'load;
                };
                if versioned {
                    let Ok(vs_off) = self.directory.version_slot_off(p) else {
                        break 'load;
                    };
                    let vs = rdma_sim::ReadReq::new(self.rkey, vs_off, 8)
                        .with_cause(ReadCause::VersionCheck);
                    reqs.push(vs);
                    reqs.push(
                        rdma_sim::ReadReq::new(self.rkey, off, len)
                            .with_cause(ReadCause::Prefetch),
                    );
                    reqs.push(vs);
                } else {
                    reqs.push(
                        rdma_sim::ReadReq::new(self.rkey, off, len)
                            .with_cause(ReadCause::Prefetch),
                    );
                }
            }
            let outcome = {
                let _scope = trace.enter_scope(root);
                if doorbell {
                    self.qp.read_doorbell(&reqs)
                } else {
                    reqs.iter()
                        .map(|r| self.qp.read_with_cause(r.rkey, r.offset, r.len, r.cause))
                        .collect::<std::result::Result<Vec<_>, _>>()
                }
            };
            // Best effort: a fault or persistent version churn abandons
            // the survivors rather than burning the batch path's budget.
            let Ok(buffers) = outcome else {
                break;
            };
            let mut bufs = buffers.into_iter();
            let mut unstable: Vec<u32> = Vec::new();
            for &p in &pending {
                if versioned {
                    let (Ok(before), Some(span)) =
                        (read_version(&bufs.next().expect("version read")), bufs.next())
                    else {
                        break 'load;
                    };
                    let Ok(after) = read_version(&bufs.next().expect("version read")) else {
                        break 'load;
                    };
                    if before == after {
                        if self.use_sq && after != 0 {
                            // A mutated partition would need an overflow
                            // follow-up read; prefetch is best-effort,
                            // so leave it to the query path.
                        } else {
                            stable.push((p, after, span));
                        }
                    } else {
                        unstable.push(p);
                    }
                } else {
                    stable.push((p, 0, bufs.next().expect("span read")));
                }
            }
            if unstable.is_empty() {
                break;
            }
            attempt += 1;
            if attempt > self.config.read_retry_limit() {
                break;
            }
            self.backoff(attempt, &trace, root, unstable.len());
            pending = unstable;
        }

        let threads = self.config.effective_search_threads();
        let parts: Vec<u32> = stable.iter().map(|(p, _, _)| *p).collect();
        let versions: Vec<u64> = stable.iter().map(|(_, v, _)| *v).collect();
        let bufs: Vec<Vec<u8>> = stable.into_iter().map(|(_, _, b)| b).collect();
        let mut admitted = 0usize;
        let materialized = if self.use_sq {
            materialize_sq_parallel(&self.directory, &parts, &bufs, threads)
        } else {
            materialize_parallel(&self.directory, &parts, &bufs, threads)
        };
        if let Ok(loaded) = materialized {
            let mut cache = self.cache.lock();
            // Make room by dropping the coldest residents *outside* the
            // target set, so this round's admissions never LRU-evict each
            // other or a resident hotter than what they replace.
            let mut need = (cache.len() + parts.len()).saturating_sub(capacity);
            if need > 0 {
                let in_target: std::collections::HashSet<u32> = target.iter().copied().collect();
                for h in heat.iter().rev() {
                    if need == 0 {
                        break;
                    }
                    if !in_target.contains(&h.partition) && cache.invalidate(h.partition) {
                        self.heatmap.record_eviction(h.partition);
                        need -= 1;
                    }
                }
            }
            for ((&p, cluster), version) in
                parts.iter().zip(&loaded).zip(versions.iter().copied())
            {
                // Deliberately no `record_load` here: prefetch traffic
                // must not feed back into the hotness signal it follows.
                if let Some(victim) = cache.put(p, Arc::clone(cluster), version) {
                    self.heatmap.record_eviction(victim);
                }
                admitted += 1;
            }
        }
        let delta = self.qp.stats().snapshot() - stats0;
        self.metrics.prefetch_rounds.inc();
        self.metrics.prefetch_clusters.add(admitted as u64);
        self.metrics.prefetch_bytes.add(delta.bytes_read);
        trace.set_vt(root, clock0, self.qp.clock().now_us() - clock0);
        trace.end_span_with(
            root,
            &[
                ("planned", ArgValue::U64(picks.len() as u64)),
                ("admitted", ArgValue::U64(admitted as u64)),
                ("bytes_read", ArgValue::U64(delta.bytes_read)),
                ("round_trips", ArgValue::U64(delta.round_trips)),
                ("budget_bytes", ArgValue::U64(budget)),
            ],
        );
        self.telemetry.spans().finish(trace);
        self.flush_telemetry();
        admitted
    }

    /// Charges one exponential-backoff step to virtual time before an
    /// engine-level read retry and records a `read_retry` span instant.
    fn backoff(&self, attempt: u32, trace: &BatchTrace, parent: SpanId, clusters: usize) {
        let us = self.config.retry_backoff_us() * f64::from(1u32 << (attempt - 1).min(16));
        self.qp.clock().advance_us(us);
        trace.instant(
            "read_retry",
            "engine",
            parent,
            &[
                ("attempt", ArgValue::U64(u64::from(attempt))),
                ("clusters", ArgValue::U64(clusters as u64)),
                ("backoff_us", ArgValue::F64(us)),
            ],
        );
    }

    /// The Naive path: each query fetches each of its clusters with an
    /// individual read; nothing is reused within or across batches.
    #[allow(clippy::too_many_arguments)]
    fn query_batch_naive(
        &self,
        queries: &Dataset,
        k: usize,
        ef: usize,
        b: usize,
        trace: &BatchTrace,
        root: SpanId,
    ) -> Result<(Vec<Vec<Neighbor>>, BatchReport)> {
        let mut report = BatchReport {
            queries: queries.len(),
            ..Default::default()
        };

        // Meta routing (still cached locally — the naive baseline differs
        // only in how cluster bytes cross the network).
        let s_meta = trace.begin_span("meta_route", "engine", root);
        let t_meta = Instant::now();
        let routes: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| self.meta.route(q, b).iter().map(|n| n.id).collect())
            .collect();
        report.breakdown.meta_hnsw_us = t_meta.elapsed().as_secs_f64() * 1e6;
        trace.end_span_with(s_meta, &[("fanout", ArgValue::U64(b as u64))]);

        // Heatmap sampling (the naive baseline still routes, and every
        // route is a load — it has no cache).
        let heat = self.heatmap.is_enabled();
        if heat {
            self.heatmap.begin_batch();
            for route in &routes {
                for &p in route {
                    self.heatmap.record_route(p);
                }
            }
        }

        // The naive scheme never dedups its loads, but "unique clusters"
        // is still a property of the batch, not of the fetch strategy:
        // report the batch-wide union so the metric is comparable across
        // modes (loads exceeding it measure exactly the reuse forgone).
        report.unique_clusters = routes
            .iter()
            .flatten()
            .copied()
            .collect::<std::collections::HashSet<u32>>()
            .len();

        // Per query: fetch its clusters with individual reads, then
        // deserialize and search them immediately. Buffers are dropped
        // after each query — the naive scheme has no reuse to exploit, so
        // memory stays O(b × cluster) regardless of batch size. Network
        // time and compute time are split via clock deltas per query;
        // compute fans out over the instance's worker threads in stripes
        // to keep that split exact.
        let threads = self.config.effective_search_threads();
        let stats0 = self.qp.stats().snapshot();
        let mut results = Vec::with_capacity(queries.len());
        let mut coverage = Vec::with_capacity(queries.len());
        let mut sub_us = 0.0f64;
        let mut net_us = 0.0f64;
        let stripe = threads.max(1) * 4;
        for (chunk_idx, route_chunk) in routes.chunks(stripe).enumerate() {
            let base = chunk_idx * stripe;
            // Network phase for this stripe.
            let s_net = trace.begin_span("network", "engine", root);
            let clock0 = self.qp.clock().now_us();
            let mut buffers: Vec<Vec<Option<Vec<u8>>>> = Vec::with_capacity(route_chunk.len());
            {
                let _scope = trace.enter_scope(s_net);
                for route in route_chunk {
                    report.raw_cluster_demand += route.len();
                    let reqs =
                        read_requests_tagged(&self.directory, self.rkey, route, ReadCause::Naive)?;
                    let mut per_query = Vec::with_capacity(reqs.len());
                    for (&p, r) in route.iter().zip(&reqs) {
                        match self.read_naive_with_retry(
                            p,
                            r,
                            trace,
                            s_net,
                            &mut report.read_retries,
                        )? {
                            Some(buf) => {
                                report.clusters_loaded += 1;
                                if heat {
                                    self.heatmap.record_load(p, buf.len() as u64);
                                }
                                per_query.push(Some(buf));
                            }
                            None => per_query.push(None),
                        }
                    }
                    buffers.push(per_query);
                }
            }
            let stripe_net_us = self.qp.clock().now_us() - clock0;
            net_us += stripe_net_us;
            trace.set_vt(s_net, clock0, stripe_net_us);
            trace.end_span_with(s_net, &[("stripe", ArgValue::U64(chunk_idx as u64))]);

            // Compute phase for this stripe.
            let s_search = trace.begin_span("sub_hnsw_search", "engine", root);
            let t_sub = Instant::now();
            let directory = &self.directory;
            let stripe_results = run_indexed(route_chunk.len(), threads, |j| {
                let q = queries.get(base + j);
                let mut top = TopK::new(k);
                let mut seen = std::collections::HashSet::new();
                let mut searched = 0usize;
                for (&p, buf) in route_chunk[j].iter().zip(&buffers[j]) {
                    let Some(buf) = buf else { continue };
                    let loc = directory.location(p)?;
                    let (cluster_bytes, overflow) = loc.split(buf)?;
                    let loaded = LoadedCluster::from_remote(cluster_bytes, overflow)?;
                    searched += 1;
                    for n in loaded.search(q, k, ef) {
                        if seen.insert(n.id) {
                            top.push(n.id, n.dist);
                        }
                    }
                }
                let total = route_chunk[j].len();
                let cov = if total == 0 {
                    1.0
                } else {
                    searched as f64 / total as f64
                };
                Ok((top.into_sorted_vec(), cov))
            })?;
            for (r, cov) in stripe_results {
                coverage.push(cov);
                results.push(r);
            }
            sub_us += t_sub.elapsed().as_secs_f64() * 1e6;
            trace.end_span_with(s_search, &[("stripe", ArgValue::U64(chunk_idx as u64))]);
        }
        report.breakdown.network_us = net_us;
        report.breakdown.sub_hnsw_us = sub_us;
        let delta = self.qp.stats().snapshot() - stats0;
        report.round_trips = delta.round_trips;
        report.bytes_read = delta.bytes_read;
        report.ledger = CostLedger::from_delta(&delta);
        if coverage.iter().any(|&c| c < 1.0) {
            report.degraded_queries = coverage.iter().filter(|&&c| c < 1.0).count();
            report.coverage = coverage;
        }
        Ok((results, report))
    }

    /// One naive-mode cluster read with the engine-level retry policy:
    /// substrate retransmission exhaustion is retried with backoff; past
    /// the budget the cluster is skipped (`None`) when degraded results
    /// are allowed, or the batch fails.
    fn read_naive_with_retry(
        &self,
        partition: u32,
        req: &rdma_sim::ReadReq,
        trace: &BatchTrace,
        parent: SpanId,
        retries: &mut u64,
    ) -> Result<Option<Vec<u8>>> {
        let mut attempt = 0u32;
        loop {
            // First attempt keeps the request's own cause (naive fetch);
            // re-sends after a retransmission-budget failure are retries.
            let cause = if attempt == 0 {
                req.cause
            } else {
                ReadCause::Retry
            };
            match self.qp.read_with_cause(req.rkey, req.offset, req.len, cause) {
                Ok(buf) => return Ok(Some(buf)),
                Err(rdma_sim::Error::RetriesExhausted { .. }) => {
                    attempt += 1;
                    *retries += 1;
                    if attempt > self.config.read_retry_limit() {
                        if self.config.degraded_ok() {
                            return Ok(None);
                        }
                        return Err(Error::ReadRetriesExhausted {
                            partition,
                            attempts: attempt,
                        });
                    }
                    self.backoff(attempt, trace, parent, 1);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Inserts a vector: classify via the cached meta-HNSW, allocate a
    /// global id (`FAA` on the directory's id counter), reserve a slot in
    /// the target group's shared overflow area (`FAA` on its `used`
    /// counter), `RDMA_WRITE` the record (commit marker last), and `FAA`
    /// the partition's version slot to publish the mutation — four
    /// one-sided verbs, no memory-node CPU involvement. The local cached
    /// copy of the affected cluster is invalidated so the next load
    /// observes the insert; remote caches observe the version bump.
    ///
    /// Returns the assigned global id.
    ///
    /// # Errors
    ///
    /// - [`Error::DimensionMismatch`] for a wrong-length vector.
    /// - [`Error::OverflowFull`] when the group's overflow area is
    ///   exhausted (the reserved id is burned; re-laying-out the group is
    ///   a rebuild-time operation, as in the paper).
    pub fn insert(&self, v: &[f32]) -> Result<u32> {
        let result = self.insert_impl(v);
        self.metrics.inserts.inc();
        if matches!(result, Err(Error::OverflowFull { .. })) {
            self.metrics.insert_overflow.inc();
        }
        self.flush_telemetry();
        result
    }

    fn insert_impl(&self, v: &[f32]) -> Result<u32> {
        if v.len() != self.directory.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.directory.dim(),
                got: v.len(),
            });
        }
        let partition = self.meta.classify_with_beam(v, self.config.fanout())?;
        let loc = *self.directory.location(partition)?;
        let record_size = self.directory.record_size() as u64;

        let global_id = self.qp.faa(self.rkey, ID_COUNTER_OFFSET, 1)? as u32;
        let used = self
            .qp
            .faa(self.rkey, loc.overflow_counter_off(), record_size)?;
        if used + record_size > loc.overflow_capacity() {
            // Give the reservation back so the remote counter keeps
            // meaning "bytes handed out": without this, health checks
            // could not tell a full area from a corrupt counter.
            self.qp
                .faa(self.rkey, loc.overflow_counter_off(), record_size.wrapping_neg())?;
            return Err(Error::OverflowFull {
                partition,
                capacity: loc.overflow_capacity(),
            });
        }
        let record = OverflowRecord::insert(partition, global_id, v.to_vec());
        self.qp
            .write(self.rkey, loc.overflow_off + 8 + used, &record.to_bytes())?;
        // Publish the mutation *after* the record (with its commit
        // marker) is fully written: readers that observe the new version
        // are guaranteed to decode a committed record, and readers that
        // raced the write see an uncommitted slot and skip it.
        self.bump_version(partition)?;
        self.cache.lock().invalidate(partition);
        Ok(global_id)
    }

    /// FAAs a partition's directory version slot after a committed
    /// mutation (no-op for pre-versioning directories).
    fn bump_version(&self, partition: u32) -> Result<()> {
        if self.directory.has_version_slots() {
            self.qp
                .faa(self.rkey, self.directory.version_slot_off(partition)?, 1)?;
        }
        Ok(())
    }

    /// Batched insertion: the write-path analogue of query-aware batched
    /// loading. For `n` vectors the single-insert path costs `4n` round
    /// trips; this path costs `1 + G + ceil(n / doorbell_limit) + P`
    /// where `G` is the number of distinct overflow areas touched and `P`
    /// the distinct partitions mutated — one `FAA` allocates the whole id
    /// range, one `FAA` per group reserves all of that group's slots at
    /// once, every record travels in one doorbell-batched `RDMA_WRITE`,
    /// and one version `FAA` per partition publishes the batch.
    ///
    /// Returns one entry per input vector, aligned by position:
    /// `Ok(global_id)` or [`Error::OverflowFull`] for vectors whose group
    /// ran out of overflow space (their reserved ids are burned, exactly
    /// as on the single-insert path).
    ///
    /// # Errors
    ///
    /// Whole-batch failures — [`Error::DimensionMismatch`] or a substrate
    /// error — abort the call; per-vector overflow exhaustion is reported
    /// in the returned vector instead.
    pub fn insert_batch(&self, vectors: &Dataset) -> Result<Vec<Result<u32>>> {
        let results = self.insert_batch_impl(vectors)?;
        self.metrics.inserts.add(results.len() as u64);
        let overflowed = results
            .iter()
            .filter(|r| matches!(r, Err(Error::OverflowFull { .. })))
            .count() as u64;
        self.metrics.insert_overflow.add(overflowed);
        self.flush_telemetry();
        Ok(results)
    }

    fn insert_batch_impl(&self, vectors: &Dataset) -> Result<Vec<Result<u32>>> {
        if vectors.is_empty() {
            return Ok(Vec::new());
        }
        if vectors.dim() != self.directory.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.directory.dim(),
                got: vectors.dim(),
            });
        }
        let n = vectors.len();
        let record_size = self.directory.record_size() as u64;

        // Classify everything (local meta-HNSW compute) and group the
        // inserts by the overflow area they land in.
        let mut partitions = Vec::with_capacity(n);
        let mut by_area: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, v) in vectors.iter().enumerate() {
            let p = self.meta.classify_with_beam(v, self.config.fanout())?;
            let loc = self.directory.location(p)?;
            partitions.push(p);
            by_area.entry(loc.overflow_counter_off()).or_default().push(i);
        }

        // One FAA allocates the whole id range.
        let id_base = self.qp.faa(self.rkey, ID_COUNTER_OFFSET, n as u64)?;

        // One FAA per touched overflow area reserves all its slots.
        let mut results: Vec<Option<Result<u32>>> = (0..n).map(|_| None).collect();
        let mut writes = Vec::with_capacity(n);
        let mut touched_partitions = Vec::new();
        let mut areas: Vec<(&u64, &Vec<usize>)> = by_area.iter().collect();
        areas.sort_by_key(|(off, _)| **off); // deterministic order
        for (&area_off, indices) in areas {
            let want = record_size * indices.len() as u64;
            let start = self.qp.faa(self.rkey, area_off, want)?;
            // Representative location for capacity checks (all partners
            // of a group share the same overflow geometry).
            let loc = *self.directory.location(partitions[indices[0]])?;
            let mut rejected = 0u64;
            for (slot, &i) in indices.iter().enumerate() {
                let off = start + record_size * slot as u64;
                let global_id = (id_base + i as u64) as u32;
                if off + record_size > loc.overflow_capacity() {
                    rejected += record_size;
                    results[i] = Some(Err(Error::OverflowFull {
                        partition: partitions[i],
                        capacity: loc.overflow_capacity(),
                    }));
                    continue;
                }
                let record =
                    OverflowRecord::insert(partitions[i], global_id, vectors.get(i).to_vec());
                writes.push(rdma_sim::WriteReq::new(
                    self.rkey,
                    area_off + 8 + off,
                    record.to_bytes(),
                ));
                touched_partitions.push(partitions[i]);
                results[i] = Some(Ok(global_id));
            }
            // Return the over-reservation so the counter tracks bytes
            // actually handed out (see the single-insert path).
            if rejected > 0 {
                self.qp.faa(self.rkey, area_off, rejected.wrapping_neg())?;
            }
        }

        // All accepted records in one doorbell, then one version bump
        // per mutated partition — after the commit markers are in place.
        self.qp.write_doorbell(&writes)?;
        touched_partitions.sort_unstable();
        touched_partitions.dedup();
        for &p in &touched_partitions {
            self.bump_version(p)?;
        }
        {
            let mut cache = self.cache.lock();
            for p in touched_partitions {
                cache.invalidate(p);
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every input index is resolved"))
            .collect())
    }

    /// Deletes a vector by writing a tombstone record into its group's
    /// shared overflow area — the same commit discipline as an insert
    /// (slot `FAA` + record `WRITE` + version `FAA`), no re-layout
    /// required. `v` must be the
    /// deleted vector's value: the meta-HNSW classifies it to the
    /// partition that holds it, exactly as the insert path placed it.
    /// The deletion becomes durable immediately and permanent at the next
    /// [`crate::VectorStore::rebuild`].
    ///
    /// # Errors
    ///
    /// - [`Error::DimensionMismatch`] for a wrong-length vector.
    /// - [`Error::OverflowFull`] when the group's overflow area has no
    ///   slot left for the tombstone.
    pub fn delete(&self, v: &[f32], global_id: u32) -> Result<()> {
        let result = self.delete_impl(v, global_id);
        self.metrics.deletes.inc();
        self.flush_telemetry();
        result
    }

    fn delete_impl(&self, v: &[f32], global_id: u32) -> Result<()> {
        if v.len() != self.directory.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.directory.dim(),
                got: v.len(),
            });
        }
        let partition = self.meta.classify_with_beam(v, self.config.fanout())?;
        let loc = *self.directory.location(partition)?;
        let record_size = self.directory.record_size() as u64;
        let used = self
            .qp
            .faa(self.rkey, loc.overflow_counter_off(), record_size)?;
        if used + record_size > loc.overflow_capacity() {
            self.qp
                .faa(self.rkey, loc.overflow_counter_off(), record_size.wrapping_neg())?;
            return Err(Error::OverflowFull {
                partition,
                capacity: loc.overflow_capacity(),
            });
        }
        let record = OverflowRecord::tombstone(partition, global_id, self.directory.dim());
        self.qp
            .write(self.rkey, loc.overflow_off + 8 + used, &record.to_bytes())?;
        self.bump_version(partition)?;
        self.cache.lock().invalidate(partition);
        Ok(())
    }
}

/// Runs `f(i)` for `i in 0..n` across `threads` workers, preserving
/// output order and propagating the first error.
fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(&f).collect();
    }
    let mut slots: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, slot) in slots.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            let f = &f;
            s.spawn(move || {
                for (off, dst) in slot.iter_mut().enumerate() {
                    *dst = Some(f(start + off));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is produced by its worker"))
        .collect()
}

/// Deserializes freshly fetched cluster buffers in parallel.
fn materialize_parallel(
    directory: &Directory,
    partitions: &[u32],
    buffers: &[Vec<u8>],
    threads: usize,
) -> Result<Vec<Arc<LoadedCluster>>> {
    run_indexed(partitions.len(), threads, |i| {
        let loc = directory.location(partitions[i])?;
        let (cluster_bytes, overflow) = loc.split(&buffers[i])?;
        Ok(Arc::new(LoadedCluster::from_remote(cluster_bytes, overflow)?))
    })
}

/// Deserializes freshly fetched compressed (SQ8) cluster buffers in
/// parallel. Each buffer is the compressed blob, optionally followed by
/// the group's raw overflow area (see [`StableLoads`]); an absent tail
/// means the partition's version slot proved the overflow pristine.
fn materialize_sq_parallel(
    directory: &Directory,
    partitions: &[u32],
    buffers: &[Vec<u8>],
    threads: usize,
) -> Result<Vec<Arc<LoadedCluster>>> {
    run_indexed(partitions.len(), threads, |i| {
        let p = partitions[i];
        let (_, sq_len) = directory
            .sq_span(p)?
            .ok_or_else(|| Error::Corrupt(format!("partition {p} has no sq span")))?;
        let sq_len = sq_len as usize;
        let buf = &buffers[i];
        if buf.len() < sq_len {
            return Err(Error::Corrupt(format!(
                "sq span buffer is {} bytes, expected at least {sq_len}",
                buf.len()
            )));
        }
        let (sq_bytes, rest) = buf.split_at(sq_len);
        let overflow = if rest.is_empty() { None } else { Some(rest) };
        Ok(Arc::new(LoadedCluster::from_remote_sq(sq_bytes, overflow)?))
    })
}

/// Decodes one 8-byte version-slot read.
fn read_version(buf: &[u8]) -> Result<u64> {
    let raw: [u8; 8] = buf
        .try_into()
        .map_err(|_| Error::Corrupt("version slot short read".into()))?;
    Ok(u64::from_le_bytes(raw))
}

/// Searches each query over its routed clusters (in parallel) and merges
/// per-query top-k, deduplicating global ids — a forced representative
/// can appear in two clusters. `routes[i]` belongs to query `base + i`,
/// so pipeline stages can pass a route sub-slice against the full query
/// set. Returns each query's results with the fraction of its routed
/// clusters that were actually searched; with `allow_missing` false an
/// unresolved cluster is a corruption error (every planned load must
/// have landed), with it true the cluster is skipped and the coverage
/// dips below 1 (degraded mode).
#[allow(clippy::too_many_arguments)]
fn search_over(
    routes: &[Vec<u32>],
    queries: &Dataset,
    base: usize,
    resolved: &HashMap<u32, Arc<LoadedCluster>>,
    k: usize,
    ef: usize,
    threads: usize,
    allow_missing: bool,
) -> Result<Vec<(Vec<Neighbor>, f64)>> {
    run_indexed(routes.len(), threads, |i| {
        let q = queries.get(base + i);
        let mut top = TopK::new(k);
        let mut seen = std::collections::HashSet::new();
        let mut searched = 0usize;
        for p in &routes[i] {
            let cluster = match resolved.get(p) {
                Some(c) => c,
                None if allow_missing => continue,
                None => {
                    return Err(Error::Corrupt(format!("cluster {p} missing after load")))
                }
            };
            searched += 1;
            for n in cluster.search(q, k, ef) {
                if seen.insert(n.id) {
                    top.push(n.id, n.dist);
                }
            }
        }
        let total = routes[i].len();
        let cov = if total == 0 {
            1.0
        } else {
            searched as f64 / total as f64
        };
        Ok((top.into_sorted_vec(), cov))
    })
}

/// Quantized analogue of [`search_over`]: each query's routed clusters
/// are scanned with asymmetric distances over the SQ8 codes and merged
/// into a candidate pool of up to `pool_k` (deduplicated by global id,
/// keeping the closest copy). Each candidate carries its rerank address
/// and the worst-case quantization error of its distance; overflow
/// inserts are already exact (error zero, no address). A full-precision
/// cluster encountered in the cache still contributes — its hits enter
/// the pool as exact candidates.
fn search_over_sq(
    routes: &[Vec<u32>],
    queries: &Dataset,
    base: usize,
    resolved: &HashMap<u32, Arc<LoadedCluster>>,
    pool_k: usize,
    threads: usize,
    allow_missing: bool,
) -> Result<Vec<(Vec<SqCand>, f64)>> {
    run_indexed(routes.len(), threads, |i| {
        let q = queries.get(base + i);
        let mut best: HashMap<u32, SqCand> = HashMap::new();
        let upsert = |best: &mut HashMap<u32, SqCand>, cand: SqCand| {
            best.entry(cand.id)
                .and_modify(|c| {
                    if cand.dist < c.dist {
                        *c = cand;
                    }
                })
                .or_insert(cand);
        };
        let mut searched = 0usize;
        for p in &routes[i] {
            let cluster = match resolved.get(p) {
                Some(c) => c,
                None if allow_missing => continue,
                None => {
                    return Err(Error::Corrupt(format!("cluster {p} missing after load")))
                }
            };
            searched += 1;
            if let Some(sq) = cluster.sq() {
                for h in cluster.search_sq(q, pool_k) {
                    let err = if h.local.is_some() {
                        sq.params().l2_error_bound(h.dist)
                    } else {
                        0.0
                    };
                    upsert(
                        &mut best,
                        SqCand {
                            id: h.id,
                            dist: h.dist,
                            partition: *p,
                            local: h.local,
                            err,
                        },
                    );
                }
            } else {
                for n in cluster.search(q, pool_k, pool_k.max(16)) {
                    upsert(
                        &mut best,
                        SqCand {
                            id: n.id,
                            dist: n.dist,
                            partition: *p,
                            local: None,
                            err: 0.0,
                        },
                    );
                }
            }
        }
        let mut pool: Vec<SqCand> = best.into_values().collect();
        pool.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        pool.truncate(pool_k);
        let total = routes[i].len();
        let cov = if total == 0 {
            1.0
        } else {
            searched as f64 / total as f64
        };
        Ok((pool, cov))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsim::{gen, ground_truth, recall, Metric};

    fn setup(n: usize) -> (Dataset, VectorStore) {
        let data = gen::sift_like(n, 77).unwrap();
        let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
        (data, store)
    }

    #[test]
    fn all_modes_answer_k_results() {
        let (data, store) = setup(600);
        let queries = gen::perturbed_queries(&data, 16, 0.02, 78).unwrap();
        for mode in [SearchMode::Full, SearchMode::NoDoorbell, SearchMode::Naive] {
            let node = store.connect(mode).unwrap();
            let (results, report) = node.query_batch(&queries, 10, 32).unwrap();
            assert_eq!(results.len(), 16, "{mode}");
            for r in &results {
                assert_eq!(r.len(), 10, "{mode}");
                for w in r.windows(2) {
                    assert!(w[0].dist <= w[1].dist);
                }
            }
            assert!(report.round_trips > 0);
            assert!(report.bytes_read > 0);
        }
    }

    #[test]
    fn modes_agree_on_results_for_cold_identical_state() {
        // Network strategy must not change *what* is found, only cost.
        let (data, store) = setup(500);
        let queries = gen::perturbed_queries(&data, 8, 0.02, 79).unwrap();
        let full = store.connect(SearchMode::Full).unwrap();
        let nodb = store.connect(SearchMode::NoDoorbell).unwrap();
        let naive = store.connect(SearchMode::Naive).unwrap();
        let (a, _) = full.query_batch(&queries, 5, 32).unwrap();
        let (b, _) = nodb.query_batch(&queries, 5, 32).unwrap();
        let (c, _) = naive.query_batch(&queries, 5, 32).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn recall_is_reasonable_and_improves_with_fanout() {
        let data = gen::sift_like(2_000, 80).unwrap();
        let queries = gen::perturbed_queries(&data, 50, 0.02, 81).unwrap();
        let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
        let recall_with_b = |b: usize| {
            let store =
                VectorStore::build(data.clone(), &DHnswConfig::small().with_fanout(b)).unwrap();
            let node = store.connect(SearchMode::Full).unwrap();
            let (results, _) = node.query_batch(&queries, 10, 48).unwrap();
            let ids: Vec<Vec<u32>> = results
                .iter()
                .map(|r| r.iter().map(|n| n.id).collect())
                .collect();
            recall::mean_recall(&ids, &truth)
        };
        let r1 = recall_with_b(1);
        let r8 = recall_with_b(8);
        assert!(r8 >= r1, "fanout 8 recall {r8} < fanout 1 recall {r1}");
        assert!(r8 > 0.8, "fanout-8 recall too low: {r8}");
    }

    #[test]
    fn ledger_tiles_bytes_and_attributes_causes_per_mode() {
        let (data, store) = setup(600);
        let queries = gen::perturbed_queries(&data, 16, 0.02, 88).unwrap();
        for mode in [SearchMode::Full, SearchMode::NoDoorbell, SearchMode::Naive] {
            let node = store.connect(mode).unwrap();

            // Cold batch: every byte must be accounted to exactly one
            // cause, and the traffic is dominated by first-time fetches.
            let (_, cold) = node.query_batch(&queries, 5, 32).unwrap();
            assert_eq!(
                cold.ledger.total_bytes(),
                cold.bytes_read,
                "{mode}: cause bytes must tile bytes_read"
            );
            let expect = if mode == SearchMode::Naive {
                ReadCause::Naive
            } else {
                ReadCause::StageLoad
            };
            assert_eq!(cold.ledger.dominant_cause(), Some(expect), "{mode}");
            assert_eq!(cold.ledger.bytes_for(ReadCause::Other), 0, "{mode}");

            // Warm batch: tiling must hold whatever mix of reloads and
            // verifies the (fraction-sized) cache leaves behind.
            let (_, warm) = node.query_batch(&queries, 5, 32).unwrap();
            assert_eq!(warm.ledger.total_bytes(), warm.bytes_read, "{mode}");
        }
    }

    fn sq_setup(n: usize) -> (Dataset, VectorStore) {
        let data = gen::sift_like(n, 77).unwrap();
        let store = VectorStore::build(
            data.clone(),
            &DHnswConfig::small().with_quantize_mode(QuantizeMode::Sq8),
        )
        .unwrap();
        (data, store)
    }

    #[test]
    fn sq_mode_reranks_with_tagged_reads_and_tiles_bytes() {
        let (data, store) = sq_setup(600);
        let queries = gen::perturbed_queries(&data, 16, 0.02, 78).unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        assert!(node.is_quantized());
        let (results, report) = node.query_batch(&queries, 10, 32).unwrap();
        assert_eq!(results.len(), 16);
        for r in &results {
            assert_eq!(r.len(), 10);
            for w in r.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
        // Rerank traffic carries its own cause, and the per-cause
        // ledger still tiles bytes_read exactly.
        assert!(report.ledger.bytes_for(ReadCause::Rerank) > 0);
        assert_eq!(report.ledger.total_bytes(), report.bytes_read);
        // A pristine store never pays for overflow bytes: version
        // slots prove every overflow area empty.
        assert_eq!(report.ledger.bytes_for(ReadCause::OverflowScan), 0);

        // The compressed wire format moves far fewer bytes than the
        // uncompressed store answering the same cold batch.
        let full_store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
        let full = full_store.connect(SearchMode::Full).unwrap();
        assert!(!full.is_quantized());
        let (_, full_report) = full.query_batch(&queries, 10, 32).unwrap();
        assert!(
            report.bytes_read * 2 < full_report.bytes_read,
            "sq bytes {} not well under full-precision bytes {}",
            report.bytes_read,
            full_report.bytes_read
        );
    }

    #[test]
    fn sq_rerank_recall_matches_full_precision() {
        let data = gen::sift_like(1_500, 80).unwrap();
        let queries = gen::perturbed_queries(&data, 40, 0.02, 81).unwrap();
        let truth = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
        let run = |mode: QuantizeMode| {
            let store = VectorStore::build(
                data.clone(),
                &DHnswConfig::small().with_quantize_mode(mode),
            )
            .unwrap();
            let node = store.connect(SearchMode::Full).unwrap();
            let (results, _) = node.query_batch(&queries, 10, 48).unwrap();
            let ids: Vec<Vec<u32>> = results
                .iter()
                .map(|r| r.iter().map(|n| n.id).collect())
                .collect();
            recall::mean_recall(&ids, &truth)
        };
        let full = run(QuantizeMode::Off);
        let sq = run(QuantizeMode::Sq8);
        assert!(
            sq + 0.005 >= full,
            "sq recall {sq} fell more than 0.005 below full-precision {full}"
        );
    }

    #[test]
    fn sq_mode_observes_overflow_inserts_and_tombstones() {
        let (data, store) = sq_setup(400);
        let node = store.connect(SearchMode::Full).unwrap();
        let mut v = data.get(3).to_vec();
        v[0] += 0.75;
        let gid = node.insert(&v).unwrap();

        // The mutated partition's nonzero version forces the overflow
        // follow-up read, and the insert is found exactly.
        let batch = Dataset::from_rows(&[&v[..]]).unwrap();
        let (hits, report) = node.query_batch(&batch, 1, 32).unwrap();
        assert_eq!(hits[0][0].id, gid);
        assert!(hits[0][0].dist < 1e-6);
        assert!(report.ledger.bytes_for(ReadCause::OverflowScan) > 0);
        assert_eq!(report.ledger.total_bytes(), report.bytes_read);

        // A tombstone removes it from subsequent quantized answers.
        node.delete(&v, gid).unwrap();
        let hits = node.query(&v, 1, 32).unwrap();
        assert_ne!(hits[0].id, gid);
    }

    #[test]
    fn sq_warm_cache_answers_without_reloading_blobs() {
        let data = gen::sift_like(500, 82).unwrap();
        let store = VectorStore::build(
            data.clone(),
            &DHnswConfig::small()
                .with_quantize_mode(QuantizeMode::Sq8)
                .with_cache_fraction(1.0),
        )
        .unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 12, 0.02, 83).unwrap();
        let (cold_r, cold) = node.query_batch(&queries, 5, 32).unwrap();
        let (warm_r, warm) = node.query_batch(&queries, 5, 32).unwrap();
        assert_eq!(cold_r, warm_r, "cache residency must not change answers");
        assert_eq!(warm.ledger.bytes_for(ReadCause::StageLoad), 0);
        // Second pass still pays only for rerank reads it has not
        // cached — never more than the first.
        assert!(warm.ledger.bytes_for(ReadCause::Rerank) <= cold.ledger.bytes_for(ReadCause::Rerank));
        assert_eq!(warm.ledger.total_bytes(), warm.bytes_read);
    }

    #[test]
    fn health_report_folds_sq_tail_into_layout_accounting() {
        let (_, store) = sq_setup(500);
        let node = store.connect(SearchMode::Full).unwrap();
        let report = node.health_report().unwrap();
        assert!(report.layout.sq_bytes > 0);
        assert!(
            (report.layout.utilization + report.layout.fragmentation - 1.0).abs() < 1e-9,
            "utilization {} + fragmentation {} must cover the quantized region",
            report.layout.utilization,
            report.layout.fragmentation
        );
    }

    #[test]
    fn warm_full_cache_shifts_bytes_to_version_checks() {
        // With the cache sized to hold everything, a repeat batch does no
        // stage loads; after a writer bumps one partition's version the
        // next batch mixes a single reload with 8-byte verifies of the
        // surviving pins — both causes must show up, and tile.
        let data = gen::sift_like(600, 90).unwrap();
        let store = VectorStore::build(
            data.clone(),
            &DHnswConfig::small().with_cache_fraction(1.0),
        )
        .unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 16, 0.02, 91).unwrap();
        node.query_batch(&queries, 5, 32).unwrap();

        // Fully warm: nothing to load, so nothing to verify either.
        let (_, warm) = node.query_batch(&queries, 5, 32).unwrap();
        assert_eq!(warm.clusters_loaded, 0);
        assert_eq!(warm.bytes_read, 0);
        assert_eq!(warm.ledger.total_bytes(), 0);
        assert_eq!(warm.ledger.dominant_cause(), None);

        // One insert invalidates its cluster and bumps its version.
        node.insert(data.get(0)).unwrap();
        let (_, mixed) = node.query_batch(&queries, 5, 32).unwrap();
        assert_eq!(mixed.ledger.total_bytes(), mixed.bytes_read);
        if mixed.clusters_loaded > 0 {
            assert!(mixed.ledger.bytes_for(ReadCause::StageLoad) > 0);
            assert!(mixed.ledger.bytes_for(ReadCause::VersionCheck) > 0);
            assert_eq!(mixed.ledger.bytes_for(ReadCause::Naive), 0);
        }
    }

    #[test]
    fn health_probe_and_prefetch_bytes_carry_their_causes() {
        let (data, store) = setup(600);
        let node = store.connect(SearchMode::Full).unwrap();
        let stats0 = node.queue_pair().stats().snapshot();
        node.health_report().unwrap();
        let probe = node.queue_pair().stats().snapshot() - stats0;
        assert!(probe.bytes_for(ReadCause::HealthProbe) > 0);
        assert_eq!(probe.bytes_for(ReadCause::HealthProbe), probe.bytes_read);

        // Warm the heatmap, then force a prefetch round into an emptied
        // cache: its traffic must land on the prefetch cause.
        let queries = gen::perturbed_queries(&data, 16, 0.02, 89).unwrap();
        node.query_batch(&queries, 5, 32).unwrap();
        node.drop_cache();
        node.set_prefetch_budget_bytes(u64::MAX);
        let stats1 = node.queue_pair().stats().snapshot();
        let admitted = node.prefetch_hot();
        assert!(admitted > 0);
        let pf = node.queue_pair().stats().snapshot() - stats1;
        assert!(pf.bytes_for(ReadCause::Prefetch) > 0);
        assert_eq!(
            pf.bytes_for(ReadCause::Prefetch) + pf.bytes_for(ReadCause::VersionCheck),
            pf.bytes_read
        );
    }

    #[test]
    fn full_mode_loads_each_cluster_once_per_batch() {
        let (data, store) = setup(600);
        let queries = gen::perturbed_queries(&data, 64, 0.02, 82).unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        let (_, report) = node.query_batch(&queries, 5, 16).unwrap();
        assert!(report.raw_cluster_demand >= report.unique_clusters);
        assert_eq!(
            report.clusters_loaded + report.cache_hits,
            report.unique_clusters
        );
        // Loading each unique cluster once means loads <= unique.
        assert!(report.clusters_loaded <= report.unique_clusters);
    }

    #[test]
    fn cache_serves_repeat_batches() {
        let (data, store) = setup(400);
        let queries = gen::perturbed_queries(&data, 8, 0.02, 83).unwrap();
        // Cache big enough to hold everything.
        let store2 = VectorStore::build(data, &DHnswConfig::small().with_cache_fraction(1.0))
            .unwrap();
        let node = store2.connect(SearchMode::Full).unwrap();
        let (_, first) = node.query_batch(&queries, 5, 16).unwrap();
        assert!(first.clusters_loaded > 0);
        let (_, second) = node.query_batch(&queries, 5, 16).unwrap();
        assert_eq!(second.clusters_loaded, 0, "warm batch must be all hits");
        assert_eq!(second.round_trips, 0);
        assert_eq!(second.breakdown.network_us, 0.0);
        let _ = store;
    }

    #[test]
    fn naive_mode_never_reuses() {
        let (data, store) = setup(400);
        let queries = gen::perturbed_queries(&data, 8, 0.02, 84).unwrap();
        let node = store.connect(SearchMode::Naive).unwrap();
        let (_, first) = node.query_batch(&queries, 5, 16).unwrap();
        let (_, second) = node.query_batch(&queries, 5, 16).unwrap();
        assert_eq!(first.round_trips, second.round_trips);
        assert_eq!(
            first.round_trips,
            (queries.len() * store.config().fanout()) as u64
        );
        assert_eq!(first.cache_hits, 0);
    }

    #[test]
    fn doorbell_reduces_round_trips_not_bytes() {
        let (data, store) = setup(600);
        let queries = gen::perturbed_queries(&data, 32, 0.05, 85).unwrap();
        let full = store.connect(SearchMode::Full).unwrap();
        let nodb = store.connect(SearchMode::NoDoorbell).unwrap();
        let (_, rf) = full.query_batch(&queries, 5, 16).unwrap();
        let (_, rn) = nodb.query_batch(&queries, 5, 16).unwrap();
        assert_eq!(rf.bytes_read, rn.bytes_read);
        assert!(rf.round_trips < rn.round_trips);
        assert!(rf.breakdown.network_us < rn.breakdown.network_us);
    }

    #[test]
    fn latency_ordering_matches_the_paper() {
        let (data, store) = setup(800);
        let queries = gen::perturbed_queries(&data, 64, 0.05, 86).unwrap();
        let full = store.connect(SearchMode::Full).unwrap();
        let nodb = store.connect(SearchMode::NoDoorbell).unwrap();
        let naive = store.connect(SearchMode::Naive).unwrap();
        let (_, rf) = full.query_batch(&queries, 10, 32).unwrap();
        let (_, rn) = nodb.query_batch(&queries, 10, 32).unwrap();
        let (_, rv) = naive.query_batch(&queries, 10, 32).unwrap();
        assert!(
            rf.breakdown.network_us <= rn.breakdown.network_us,
            "doorbell must not be slower"
        );
        assert!(
            rn.breakdown.network_us < rv.breakdown.network_us,
            "query-aware loading must beat naive"
        );
    }

    #[test]
    fn fanout_override_changes_demand_without_rebuilding() {
        let (data, store) = setup(600);
        let node = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 16, 0.03, 96).unwrap();
        let (_, narrow) = node
            .query_batch_opts(&queries, &QueryOptions::new(5, 32).with_fanout(1))
            .unwrap();
        node.drop_cache();
        let (_, wide) = node
            .query_batch_opts(&queries, &QueryOptions::new(5, 32).with_fanout(8))
            .unwrap();
        assert_eq!(narrow.raw_cluster_demand, 16);
        assert_eq!(wide.raw_cluster_demand, 16 * 8);
        assert!(wide.bytes_read > narrow.bytes_read);
    }

    #[test]
    fn zero_fanout_override_is_rejected() {
        let (data, store) = setup(200);
        let node = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 2, 0.03, 97).unwrap();
        assert!(node
            .query_batch_opts(&queries, &QueryOptions::new(5, 16).with_fanout(0))
            .is_err());
    }

    #[test]
    fn default_options_match_positional_call() {
        let (data, store) = setup(300);
        let node = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 6, 0.03, 98).unwrap();
        let (a, _) = node.query_batch(&queries, 5, 32).unwrap();
        let (b, _) = node
            .query_batch_opts(&queries, &QueryOptions::new(5, 32))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn query_rejects_wrong_dimension() {
        let (_, store) = setup(200);
        let node = store.connect(SearchMode::Full).unwrap();
        let queries = gen::uniform(64, 2, 0.0, 1.0, 1).unwrap();
        assert!(matches!(
            node.query_batch(&queries, 5, 16).unwrap_err(),
            Error::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn empty_batch_is_a_cheap_noop() {
        let (_, store) = setup(200);
        let node = store.connect(SearchMode::Full).unwrap();
        let (results, report) = node.query_batch(&Dataset::new(128), 5, 16).unwrap();
        assert!(results.is_empty());
        assert_eq!(report, BatchReport::default());
    }

    #[test]
    fn insert_then_query_finds_the_new_vector() {
        let (data, store) = setup(400);
        let node = store.connect(SearchMode::Full).unwrap();
        // Insert a distinctive vector near an existing one.
        let mut v = data.get(5).to_vec();
        v[0] += 0.5;
        let gid = node.insert(&v).unwrap();
        assert_eq!(gid as usize, store.base_len());
        let hits = node.query(&v, 3, 32).unwrap();
        assert_eq!(hits[0].id, gid, "inserted vector must be its own nearest");
        assert!(hits[0].dist < 1e-6);
    }

    #[test]
    fn inserts_allocate_monotonic_global_ids() {
        let (data, store) = setup(300);
        let node = store.connect(SearchMode::Full).unwrap();
        let a = node.insert(data.get(0)).unwrap();
        let b = node.insert(data.get(1)).unwrap();
        assert_eq!(b, a + 1);
    }

    #[test]
    fn insert_uses_four_one_sided_verbs() {
        let (data, store) = setup(300);
        let node = store.connect(SearchMode::Full).unwrap();
        node.reset_measurements();
        node.insert(data.get(0)).unwrap();
        let s = node.queue_pair().stats().snapshot();
        // id FAA + slot FAA + record write + version FAA.
        assert_eq!(s.round_trips, 4);
        assert_eq!(s.atomics, 3);
    }

    #[test]
    fn insert_batch_matches_single_inserts_in_effect() {
        let (data, store) = setup(400);
        let node = store.connect(SearchMode::Full).unwrap();
        let inserts = gen::perturbed_queries(&data, 10, 0.01, 92).unwrap();
        let results = node.insert_batch(&inserts).unwrap();
        assert_eq!(results.len(), 10);
        let ids: Vec<u32> = results.into_iter().map(|r| r.unwrap()).collect();
        // Dense sequential ids from the base length.
        assert_eq!(ids[0] as usize, store.base_len());
        for w in ids.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        // All visible to queries.
        let mut found = 0;
        for (i, v) in inserts.iter().enumerate() {
            let hit = node.query(v, 1, 32).unwrap();
            if hit[0].id == ids[i] {
                found += 1;
            }
        }
        assert!(found >= 8, "only {found}/10 batch inserts retrievable");
    }

    #[test]
    fn insert_batch_uses_far_fewer_round_trips() {
        let (data, store) = setup(400);
        let inserts = gen::perturbed_queries(&data, 32, 0.01, 93).unwrap();

        let single = store.connect(SearchMode::Full).unwrap();
        single.reset_measurements();
        for v in inserts.iter() {
            single.insert(v).unwrap();
        }
        let single_trips = single.queue_pair().stats().round_trips();
        assert_eq!(single_trips, 4 * 32);

        let batched = store.connect(SearchMode::Full).unwrap();
        batched.reset_measurements();
        let results = batched.insert_batch(&inserts).unwrap();
        assert!(results.iter().all(|r| r.is_ok()));
        let batch_trips = batched.queue_pair().stats().round_trips();
        assert!(
            batch_trips * 3 < single_trips,
            "batched {batch_trips} vs single {single_trips}"
        );
    }

    #[test]
    fn insert_batch_reports_overflow_per_vector() {
        let data = gen::sift_like(300, 94).unwrap();
        let cfg = DHnswConfig::small().with_overflow_slots(2);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        // Ten copies of the same vector all route to one group with two
        // slots: exactly two succeed.
        let same = Dataset::from_rows(&[data.get(0); 10]).unwrap();
        let results = node.insert_batch(&same).unwrap();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, 2, "{results:?}");
        assert!(results
            .iter()
            .filter(|r| r.is_err())
            .all(|r| matches!(r.as_ref().unwrap_err(), Error::OverflowFull { .. })));
    }

    #[test]
    fn insert_batch_rejects_wrong_dim_and_handles_empty() {
        let (_, store) = setup(200);
        let node = store.connect(SearchMode::Full).unwrap();
        assert!(node
            .insert_batch(&gen::uniform(64, 3, 0.0, 1.0, 1).unwrap())
            .is_err());
        assert!(node.insert_batch(&Dataset::new(128)).unwrap().is_empty());
    }

    #[test]
    fn insert_overflow_full_is_reported() {
        let data = gen::sift_like(300, 90).unwrap();
        let cfg = DHnswConfig::small().with_overflow_slots(1);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        // Fill the single slot of some group, then the next insert into
        // the same group must fail.
        let v = data.get(0);
        node.insert(v).unwrap();
        let second = node.insert(v);
        assert!(matches!(second.unwrap_err(), Error::OverflowFull { .. }));
    }

    #[test]
    fn delete_removes_a_base_vector_from_results() {
        let (data, store) = setup(400);
        let node = store.connect(SearchMode::Full).unwrap();
        let target = data.get(5).to_vec();
        let before = node.query(&target, 1, 48).unwrap();
        assert_eq!(before[0].dist, 0.0);
        let victim = before[0].id;
        node.delete(&target, victim).unwrap();
        let after = node.query(&target, 5, 48).unwrap();
        assert!(
            after.iter().all(|n| n.id != victim),
            "deleted id still returned: {after:?}"
        );
        assert_eq!(after.len(), 5, "deletion must not shrink the result list");
    }

    #[test]
    fn delete_removes_an_overflow_insert() {
        let (data, store) = setup(300);
        let node = store.connect(SearchMode::Full).unwrap();
        let mut v = data.get(9).to_vec();
        v[0] += 0.5;
        let gid = node.insert(&v).unwrap();
        assert_eq!(node.query(&v, 1, 32).unwrap()[0].id, gid);
        node.delete(&v, gid).unwrap();
        let after = node.query(&v, 3, 32).unwrap();
        assert!(after.iter().all(|n| n.id != gid));
    }

    #[test]
    fn delete_uses_three_one_sided_verbs() {
        let (data, store) = setup(300);
        let node = store.connect(SearchMode::Full).unwrap();
        node.reset_measurements();
        node.delete(data.get(0), 0).unwrap();
        let s = node.queue_pair().stats().snapshot();
        // slot FAA + tombstone write + version FAA.
        assert_eq!(s.round_trips, 3);
        assert_eq!(s.atomics, 2);
    }

    #[test]
    fn delete_visibility_across_nodes_follows_cache_lifetime() {
        let (data, store) = setup(300);
        let writer = store.connect(SearchMode::Full).unwrap();
        let reader = store.connect(SearchMode::Full).unwrap();
        let target = data.get(11).to_vec();
        let victim = reader.query(&target, 1, 48).unwrap()[0].id;
        writer.delete(&target, victim).unwrap();
        // The reader cached the cluster before the delete: it may serve
        // the stale copy (cross-node caches are not coherent — a
        // documented non-goal shared with the paper)...
        let stale = reader.query(&target, 3, 48).unwrap();
        assert!(stale.iter().any(|n| n.id == victim), "unexpectedly fresh");
        // ...but once its cached copy is dropped (eviction, expiry), the
        // next load observes the tombstone.
        reader.drop_cache();
        let fresh = reader.query(&target, 3, 48).unwrap();
        assert!(fresh.iter().all(|n| n.id != victim));
    }

    #[test]
    fn insert_rejects_wrong_dimension() {
        let (_, store) = setup(200);
        let node = store.connect(SearchMode::Full).unwrap();
        assert!(node.insert(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn inserts_are_visible_across_compute_nodes() {
        let (data, store) = setup(400);
        let writer = store.connect(SearchMode::Full).unwrap();
        let reader = store.connect(SearchMode::Full).unwrap();
        let mut v = data.get(10).to_vec();
        v[1] += 0.25;
        let gid = writer.insert(&v).unwrap();
        // The reader never cached the cluster, so its next load sees the
        // overflow record.
        let hits = reader.query(&v, 1, 32).unwrap();
        assert_eq!(hits[0].id, gid);
    }

    #[test]
    fn reset_measurements_zeroes_counters() {
        let (data, store) = setup(200);
        let node = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 4, 0.02, 91).unwrap();
        node.query_batch(&queries, 5, 16).unwrap();
        node.reset_measurements();
        assert_eq!(node.queue_pair().stats().round_trips(), 0);
        assert_eq!(node.queue_pair().clock().now_us(), 0.0);
    }

    #[test]
    fn compute_node_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ComputeNode>();
    }

    #[test]
    fn heatmap_samples_routes_loads_and_cache_hits() {
        let (data, store) = setup(600);
        let telemetry = Arc::new(Telemetry::new());
        let node = store
            .connect_with_telemetry(SearchMode::Full, telemetry)
            .unwrap();
        let queries = gen::perturbed_queries(&data, 8, 0.02, 93).unwrap();
        let b = node.config().fanout();
        node.query_batch(&queries, 5, 16).unwrap();
        let cold = node.heatmap().snapshot();
        let route_hits: u64 = cold.iter().map(|c| c.route_hits).sum();
        let loads: u64 = cold.iter().map(|c| c.loads).sum();
        let bytes: u64 = cold.iter().map(|c| c.bytes_read).sum();
        assert_eq!(route_hits, 8 * b as u64, "every route is sampled");
        assert!(loads > 0, "cold batch loads clusters");
        assert!(bytes > 0, "loads carry their byte size");
        assert!(cold.iter().any(|c| c.hotness > 0.0));
        // Same batch again: the cache now serves what it kept.
        node.query_batch(&queries, 5, 16).unwrap();
        let warm = node.heatmap().snapshot();
        let cache_hits: u64 = warm.iter().map(|c| c.cache_hits).sum();
        assert!(cache_hits > 0, "warm batch hits the cluster cache");
    }

    #[test]
    fn naive_mode_samples_routes_and_per_query_loads() {
        let (data, store) = setup(400);
        let node = store.connect(SearchMode::Naive).unwrap();
        let queries = gen::perturbed_queries(&data, 4, 0.02, 94).unwrap();
        let b = node.config().fanout();
        node.query_batch(&queries, 5, 16).unwrap();
        let snap = node.heatmap().snapshot();
        let route_hits: u64 = snap.iter().map(|c| c.route_hits).sum();
        let loads: u64 = snap.iter().map(|c| c.loads).sum();
        assert_eq!(route_hits, 4 * b as u64);
        assert_eq!(loads, route_hits, "naive reloads every routed cluster");
    }

    #[test]
    fn disabled_heatmap_adds_nothing_on_the_query_path() {
        // The acceptance bound: with sampling off, the hot loop pays
        // one relaxed load per batch and the record calls are no-ops.
        let (data, store) = setup(400);
        let node = store.connect(SearchMode::Full).unwrap();
        node.heatmap().set_enabled(false);
        let queries = gen::perturbed_queries(&data, 6, 0.02, 95).unwrap();
        let (results, _) = node.query_batch(&queries, 5, 16).unwrap();
        assert_eq!(results.len(), 6, "queries still answered");
        for cell in node.heatmap().snapshot() {
            assert_eq!(cell.route_hits, 0);
            assert_eq!(cell.loads, 0);
            assert_eq!(cell.cache_hits, 0);
            assert_eq!(cell.evictions, 0);
            assert_eq!(cell.bytes_read, 0);
            assert_eq!(cell.hotness, 0.0);
        }
    }

    #[test]
    fn health_report_accounts_layout_occupancy_and_latency() {
        let (data, store) = setup(600);
        let telemetry = Arc::new(Telemetry::new());
        let node = store
            .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
            .unwrap();
        let queries = gen::perturbed_queries(&data, 8, 0.02, 96).unwrap();
        node.query_batch(&queries, 5, 16).unwrap();

        // Before any insert every overflow area is empty.
        let fresh = node.health_report().unwrap();
        assert_eq!(fresh.partitions, store.partitions());
        assert!(fresh.groups.iter().all(|g| g.overflow_used_bytes == 0));
        assert_eq!(fresh.layout.overflow_used_bytes, 0);

        // One insert shows up as live overflow bytes in exactly one
        // group, and occupancy/slack stay consistent.
        let mut v = data.get(0).to_vec();
        v[0] += 0.5;
        node.insert(&v).unwrap();
        let report = node.health_report().unwrap();
        let used: Vec<&GroupHealth> = report
            .groups
            .iter()
            .filter(|g| g.overflow_used_bytes > 0)
            .collect();
        assert_eq!(used.len(), 1, "one group absorbed the insert");
        let g = used[0];
        assert!(g.occupancy > 0.0 && g.occupancy <= 1.0);
        assert_eq!(
            g.overflow_used_bytes + g.overflow_slack_bytes,
            g.overflow_capacity_bytes
        );
        // Live + dead bytes tile the registered region.
        assert!(
            (report.layout.utilization + report.layout.fragmentation - 1.0).abs() < 1e-9,
            "utilization {} + fragmentation {} must cover the region",
            report.layout.utilization,
            report.layout.fragmentation
        );
        // Query traffic is reflected in skew, cache, and latency.
        assert!(report.route_skew.total > 0);
        assert!(report.degree_skew.count > 0);
        assert_eq!(report.partition_skew.count, report.partitions);
        assert!(report.cache.capacity > 0);
        // Plan-time hit rate: the cold pass loaded clusters, so the
        // rate must stay strictly below the vacuous 100%.
        assert!(report.cache.misses > 0);
        assert!(report.cache.hit_rate < 1.0);
        assert!(report.latency.queries >= 8);
        assert!(report.latency.p99_us >= report.latency.p50_us);
        assert!(report.violations.is_empty());

        // The JSON rendering carries every section; publish() exposed
        // the series through the telemetry registry.
        let json = report.to_json();
        for key in ["\"groups\":", "\"heatmap\":", "\"route_skew\":", "\"latency\":"] {
            assert!(json.contains(key), "missing {key}");
        }
        let prom = telemetry.render_prometheus();
        for series in [
            "dhnsw_heat_route_hits",
            "dhnsw_health_overflow_occupancy_milli",
            "dhnsw_health_route_gini_milli",
            "dhnsw_health_region_utilization_milli",
        ] {
            assert!(prom.contains(series), "missing {series}");
        }
        assert!(telemetry.snapshot_json().contains("dhnsw_health_overflow_occupancy_milli"));
    }

    #[test]
    fn health_report_feeds_the_watchdog_end_to_end() {
        let (data, store) = setup(400);
        let telemetry = Arc::new(Telemetry::new());
        telemetry.spans().set_enabled(true);
        let node = store
            .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
            .unwrap();
        let queries = gen::perturbed_queries(&data, 4, 0.02, 97).unwrap();
        node.query_batch(&queries, 5, 16).unwrap();
        let mut report = node.health_report().unwrap();
        // An impossible hit-rate budget must trip.
        let budgets = crate::health::SloBudgets {
            min_cache_hit_rate: Some(2.0),
            ..Default::default()
        };
        report.violations = crate::health::evaluate(&report, &budgets);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].budget, "cache_hit_rate");
        crate::health::watchdog::emit(&telemetry, &report.violations);
        assert!(telemetry
            .render_prometheus()
            .contains("dhnsw_slo_violations_total{budget=\"cache_hit_rate\"} 1"));
        let traces = telemetry.spans().recent();
        assert!(traces
            .iter()
            .any(|t| t.label == "watchdog"
                && t.spans.iter().any(|s| s.name == "slo_violation")));
        assert!(report.to_json().contains("\"budget\": \"cache_hit_rate\""));
    }

    #[test]
    fn torn_insert_is_skipped_and_the_slot_stays_burned() {
        let (data, store) = setup(400);
        let writer = store.connect(SearchMode::Full).unwrap();
        let reader = store.connect(SearchMode::Full).unwrap();
        let mut v = data.get(3).to_vec();
        v[0] += 0.5;
        // Insert verbs in order: id FAA, slot FAA, record write, version
        // FAA. Let the two FAAs through and kill the record write with no
        // retransmissions left: the slot is reserved but the record never
        // lands — a torn insert.
        writer.queue_pair().set_retry_limit(0);
        writer.queue_pair().fail_nth(2, 1);
        let err = writer.insert(&v).unwrap_err();
        assert!(matches!(
            err,
            Error::Rdma(rdma_sim::Error::RetriesExhausted { .. })
        ));
        writer
            .queue_pair()
            .set_retry_limit(rdma_sim::DEFAULT_RETRY_LIMIT);
        // A fresh reader decodes the overflow area without tripping on
        // the uncommitted slot: no Corrupt, no phantom vector.
        let base = store.base_len() as u32;
        let hits = reader.query(&v, 3, 48).unwrap();
        assert!(hits.iter().all(|n| n.id < base), "torn record surfaced");
        // The next insert commits after the burned slot and is found.
        let gid = writer.insert(&v).unwrap();
        reader.drop_cache();
        let hits = reader.query(&v, 1, 48).unwrap();
        assert_eq!(hits[0].id, gid);
    }

    #[test]
    fn version_mismatch_refreshes_stale_cache_without_drop() {
        let data = gen::sift_like(400, 77).unwrap();
        let store =
            VectorStore::build(data.clone(), &DHnswConfig::small().with_cache_fraction(1.0))
                .unwrap();
        let writer = store.connect(SearchMode::Full).unwrap();
        let reader = store.connect(SearchMode::Full).unwrap();
        let b = store.config().fanout();
        let mut v = data.get(0).to_vec();
        v[1] += 0.25;
        // Reader caches the clusters the new vector routes to.
        reader.query(&v, 1, 32).unwrap();
        let warm: std::collections::HashSet<u32> =
            store.meta().route(&v, b).iter().map(|n| n.id).collect();
        // A probe whose route is disjoint from the warm set forces the
        // next batch onto the wire, so the piggybacked version check runs.
        let probe = (0..data.len())
            .map(|i| data.get(i))
            .find(|r| store.meta().route(r, b).iter().all(|n| !warm.contains(&n.id)))
            .expect("some row routes entirely outside the warm set");
        let gid = writer.insert(&v).unwrap();
        let batch = Dataset::from_rows(&[&v, probe]).unwrap();
        let (results, report) = reader.query_batch(&batch, 1, 32).unwrap();
        // The stale pin was demoted and reloaded — no drop_cache needed.
        assert_eq!(results[0][0].id, gid, "stale cached cluster served");
        assert!(report.cache_hits < warm.len());
        assert!(report.degraded_queries == 0 && report.coverage.is_empty());
    }

    #[test]
    fn degraded_mode_serves_partial_coverage_when_reads_fail() {
        let data = gen::sift_like(400, 77).unwrap();
        let cfg = DHnswConfig::small()
            .with_degraded_ok(true)
            .with_read_retry_limit(1);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 4, 0.02, 88).unwrap();
        node.queue_pair().set_retry_limit(0);
        node.queue_pair().fail_next(u32::MAX);
        let (results, report) = node.query_batch(&queries, 5, 16).unwrap();
        node.queue_pair().fail_next(0);
        // Nothing arrived: every query degrades to zero coverage instead
        // of failing the batch.
        assert!(results.iter().all(|r| r.is_empty()));
        assert_eq!(report.degraded_queries, queries.len());
        assert_eq!(report.coverage.len(), queries.len());
        assert!(report.coverage.iter().all(|&c| c < 1.0));
        assert!(report.read_retries > 0);
        assert!((report.degraded_rate() - 1.0).abs() < 1e-12);
        let prom = node.telemetry().render_prometheus();
        assert!(prom.contains("dhnsw_degraded_queries_total"));
        assert!(prom.contains("dhnsw_read_retries_total"));
    }

    #[test]
    fn exhausted_reads_error_without_degraded_opt_in() {
        let (data, store) = setup(300);
        let node = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 2, 0.02, 89).unwrap();
        node.queue_pair().set_retry_limit(0);
        node.queue_pair().fail_next(u32::MAX);
        let err = node.query_batch(&queries, 5, 16).unwrap_err();
        node.queue_pair().fail_next(0);
        assert!(matches!(err, Error::ReadRetriesExhausted { .. }));
    }

    #[test]
    fn naive_unique_clusters_is_the_batch_wide_union() {
        let (data, store) = setup(400);
        let node = store.connect(SearchMode::Naive).unwrap();
        let b = store.config().fanout();
        // Two identical queries route identically: the distinct-cluster
        // count must not double just because naive mode reloads.
        let batch = Dataset::from_rows(&[data.get(0), data.get(0)]).unwrap();
        let (_, report) = node.query_batch(&batch, 5, 16).unwrap();
        assert_eq!(report.unique_clusters, b);
        assert_eq!(report.raw_cluster_demand, 2 * b);
        assert_eq!(report.clusters_loaded, 2 * b);
    }

    #[test]
    fn health_report_rejects_corrupt_overflow_counter() {
        let (_, store) = setup(300);
        let node = store.connect(SearchMode::Full).unwrap();
        // Scribble an impossible value into one group's used counter:
        // the report must call it corruption, not clamp it away.
        let loc = *node.directory.location(0).unwrap();
        node.qp
            .write(
                node.rkey,
                loc.overflow_counter_off(),
                &(loc.overflow_capacity() + 64).to_le_bytes(),
            )
            .unwrap();
        let err = node.health_report().unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn pipelined_execution_matches_sequential_exactly() {
        // Two connections to the same store, one sequential and one
        // deeply pipelined: across a cold batch, a warm repeat, and a
        // fresh batch, every result and every deterministic counter must
        // agree — pipelining may only change the schedule.
        let (data, store) = setup(900);
        let seq = store.connect(SearchMode::Full).unwrap();
        let pipe = store.connect(SearchMode::Full).unwrap();
        pipe.set_pipeline_depth(3);
        for (i, seed) in [91u64, 91, 92].into_iter().enumerate() {
            let queries = gen::perturbed_queries(&data, 13, 0.02, seed).unwrap();
            let (ra, pa) = seq.query_batch(&queries, 10, 32).unwrap();
            let (rb, pb) = pipe.query_batch(&queries, 10, 32).unwrap();
            assert_eq!(ra, rb, "batch {i}: pipelining changed the results");
            assert_eq!(pa.unique_clusters, pb.unique_clusters, "batch {i}");
            assert_eq!(pa.cache_hits, pb.cache_hits, "batch {i}");
            assert_eq!(pa.clusters_loaded, pb.clusters_loaded, "batch {i}");
            assert_eq!(pa.bytes_read, pb.bytes_read, "batch {i}");
            // Round trips may grow: each non-empty stage rings its own
            // doorbell, but never shrink below the sequential schedule.
            assert!(pb.round_trips >= pa.round_trips, "batch {i}");
        }
    }

    #[test]
    fn depth_one_pipeline_is_the_identity() {
        // set_pipeline_depth(1) after a deeper setting restores the
        // strict sequential execution (and 0 clamps to 1).
        let (data, store) = setup(500);
        let node = store.connect(SearchMode::Full).unwrap();
        node.set_pipeline_depth(4);
        node.set_pipeline_depth(0);
        assert_eq!(node.pipeline_depth(), 1);
        let queries = gen::perturbed_queries(&data, 6, 0.02, 93).unwrap();
        let (_, report) = node.query_batch(&queries, 5, 32).unwrap();
        // Depth 1 means one network stage: exposed time is the whole
        // virtual transfer time, and one doorbell batch covers the loads.
        assert!(report.breakdown.network_us > 0.0);
        let delta = node.queue_pair().stats().snapshot();
        assert_eq!(delta.doorbell_batches, 1);
    }

    #[test]
    fn deeper_pipelines_hide_network_time_on_cold_batches() {
        let data = gen::sift_like(2_000, 94).unwrap();
        let cfg = DHnswConfig::small().with_representatives(48);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let queries = gen::perturbed_queries(&data, 24, 0.03, 95).unwrap();
        let seq = store.connect(SearchMode::Full).unwrap();
        let (rs_res, rs) = seq.query_batch(&queries, 10, 32).unwrap();
        let pipe = store.connect(SearchMode::Full).unwrap();
        pipe.set_pipeline_depth(4);
        let (rp_res, rp) = pipe.query_batch(&queries, 10, 32).unwrap();
        assert_eq!(rs_res, rp_res);
        assert_eq!(rs.bytes_read, rp.bytes_read);
        // Later stages' loads overlap earlier stages' compute, so the
        // exposed network time strictly shrinks while the virtual bytes
        // moved stay identical.
        assert!(
            rp.breakdown.network_us < rs.breakdown.network_us,
            "pipelined exposed {} !< sequential {}",
            rp.breakdown.network_us,
            rs.breakdown.network_us
        );
    }

    #[test]
    fn a_failed_batch_leaves_the_node_consistent() {
        // A mid-batch substrate failure must release the batch's cache
        // pins and leave no other residue: afterwards the node behaves
        // exactly like a control connection that never saw the fault.
        let (data, store) = setup(600);
        let node = store.connect(SearchMode::Full).unwrap();
        let control = store.connect(SearchMode::Full).unwrap();
        let warm = gen::perturbed_queries(&data, 8, 0.02, 96).unwrap();
        let probe = gen::perturbed_queries(&data, 8, 0.02, 97).unwrap();
        node.query_batch(&warm, 5, 32).unwrap();
        control.query_batch(&warm, 5, 32).unwrap();

        node.queue_pair().set_retry_limit(0);
        node.queue_pair().fail_next(u32::MAX);
        assert!(node.query_batch(&probe, 5, 32).is_err());
        node.queue_pair().fail_next(0);

        let (rn, pn) = node.query_batch(&probe, 5, 32).unwrap();
        let (rc, pc) = control.query_batch(&probe, 5, 32).unwrap();
        assert_eq!(rn, rc);
        assert_eq!(pn.cache_hits, pc.cache_hits);
        assert_eq!(pn.bytes_read, pc.bytes_read);
    }

    #[test]
    fn prefetch_warms_hot_clusters_within_budget() {
        // A thrashing cache (capacity far below the hot set) leaves hot
        // clusters non-resident; the prefetcher pulls them back in,
        // bounded by the byte budget.
        let data = gen::sift_like(1_500, 98).unwrap();
        let cfg = DHnswConfig::small()
            .with_representatives(24)
            .with_cache_fraction(0.2);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let telemetry = Arc::new(Telemetry::new());
        let node = store
            .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
            .unwrap();
        let queries = gen::perturbed_queries(&data, 16, 0.02, 99).unwrap();
        node.query_batch(&queries, 5, 32).unwrap();

        // Budget 0 disables the prefetcher entirely.
        assert_eq!(node.prefetch_hot(), 0);
        // A budget smaller than any cluster span admits nothing.
        node.set_prefetch_budget_bytes(1);
        assert_eq!(node.prefetch_hot(), 0);
        // A generous budget warms the hottest non-resident clusters.
        node.set_prefetch_budget_bytes(u64::MAX);
        let admitted = node.prefetch_hot();
        assert!(admitted > 0, "nothing prefetched");
        let bytes0 = node.queue_pair().stats().snapshot().bytes_read;
        // The warmed clusters are resident now: an immediate re-run
        // finds them cached and loads nothing new.
        assert_eq!(node.prefetch_hot(), 0);
        assert_eq!(node.queue_pair().stats().snapshot().bytes_read, bytes0);
        let prom = telemetry.render_prometheus();
        assert!(
            prom.contains(&format!(
                "dhnsw_prefetch_clusters_total{{mode=\"full\"}} {admitted}"
            )),
            "prefetch counters missing:\n{prom}"
        );
        assert!(prom.contains("dhnsw_prefetch_rounds_total{mode=\"full\"} 1"));
    }

    #[test]
    fn prefetch_runs_automatically_after_batches_when_budgeted() {
        let data = gen::sift_like(1_500, 100).unwrap();
        let cfg = DHnswConfig::small()
            .with_representatives(24)
            .with_cache_fraction(0.2)
            .with_prefetch_budget_bytes(u64::MAX);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let telemetry = Arc::new(Telemetry::new());
        let node = store
            .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
            .unwrap();
        assert_eq!(node.prefetch_budget_bytes(), u64::MAX);
        let queries = gen::perturbed_queries(&data, 16, 0.02, 101).unwrap();
        node.query_batch(&queries, 5, 32).unwrap();
        let prom = telemetry.render_prometheus();
        assert!(
            prom.contains("dhnsw_prefetch_rounds_total{mode=\"full\"} 1"),
            "query_batch did not trigger the prefetcher:\n{prom}"
        );
    }
}
