//! The RDMA-friendly remote memory layout of §3.2.
//!
//! One contiguous registered region holds everything:
//!
//! ```text
//! ┌────────────┬──────────────────────────── group 0 ───────────────────────────┬── group 1 ──┬─ ...
//! │ directory  │ cluster A │ shared overflow (used u64, records…) │ cluster B   │             │
//! └────────────┴───────────┴──────────────────────────────────────┴─────────────┴─────────────┴─ ...
//! ```
//!
//! The *directory* (global metadata block) records the offset and length
//! of every serialized sub-HNSW cluster, and — since format v2 — carries
//! one aligned `u64` *version slot* per cluster at its tail. Writers
//! `FAA` a cluster's version slot after committing a mutation; readers
//! bracket their cluster fetch with version reads (version → bytes →
//! version, folded into the same doorbell batch) and retry on mismatch,
//! which is the §3.2 optimistic-read protocol. Each *group* packs two
//! clusters at its two ends with a shared overflow area between them, so
//! that
//!
//! - cluster A plus the overflow is one contiguous span, and
//! - the overflow plus cluster B is one contiguous span,
//!
//! meaning any cluster together with every vector later inserted into it
//! is fetched by a **single** `RDMA_READ` ([`ClusterLocation::read_span`]).
//! The overflow area starts with an 8-byte `used` counter that compute
//! nodes bump with remote atomics when reserving insert slots.
//!
//! All offsets and lengths are kept 8-byte aligned so the counter (and
//! every overflow record) is a legal target for `CAS`/`FAA`.

use crate::cluster::OverflowRecord;
use crate::{Error, Result};

/// Magic tag of a serialized directory.
pub const DIRECTORY_MAGIC: u32 = 0x3144_4844; // "DHD1"
/// The original directory format: no version slots, v1 overflow
/// framing. Still accepted by [`Directory::from_bytes`].
pub const DIRECTORY_VERSION_V1: u32 = 1;
/// v2 appends one aligned `u64` version slot per cluster after the
/// location entries (and pairs with the v2 overflow-record framing:
/// length prefix, checksum, commit marker). This is what
/// [`Directory::plan`] emits for uncompressed stores.
pub const DIRECTORY_VERSION: u32 = 2;
/// v3 appends a per-cluster SQ8 span table (`sq_off`/`sq_len` `u64`
/// pairs) after the version slots; the spans point at scalar-quantized
/// cluster blobs in a tail region after the groups. Emitted by
/// [`Directory::plan_with_sq`] when quantization is on.
pub const DIRECTORY_VERSION_V3: u32 = 3;

const HEADER_BYTES: usize = 4 + 4 + 4 + 4 + 4 + 4 + 8 + 8 + 8;

/// Absolute region offset of the live global-id counter: an aligned `u64`
/// inside the directory that compute nodes `FAA` to allocate ids for
/// inserted vectors.
pub const ID_COUNTER_OFFSET: u64 = 40;
const ENTRY_BYTES: usize = 4 + 1 + 3 + 8 + 8 + 8 + 8;
const SQ_SPAN_BYTES: usize = 8 + 8;
/// Bytes a reader must fetch to learn a directory's version and
/// partition count — enough for [`Directory::peek_size`].
pub const DIRECTORY_PEEK_BYTES: usize = HEADER_BYTES;

fn pad8(n: u64) -> u64 {
    (n + 7) & !7
}

/// Which end of its group a cluster occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupSlot {
    /// The front of the group (cluster, then overflow).
    Front,
    /// The back of the group (overflow, then cluster).
    Back,
}

/// Where one partition's cluster lives in remote memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterLocation {
    /// Partition id.
    pub partition: u32,
    /// Group index.
    pub group: u32,
    /// Position within the group.
    pub slot: GroupSlot,
    /// Absolute byte offset of the serialized cluster.
    pub cluster_off: u64,
    /// Length of the serialized cluster in bytes.
    pub cluster_len: u64,
    /// Absolute byte offset of the group's shared overflow area
    /// (including its 8-byte `used` header).
    pub overflow_off: u64,
    /// Total length of the overflow area, header included.
    pub overflow_len: u64,
}

impl ClusterLocation {
    /// The single contiguous `(offset, len)` span covering this cluster
    /// *and* its overflow area — what one `RDMA_READ` fetches.
    pub fn read_span(&self) -> (u64, u64) {
        match self.slot {
            GroupSlot::Front => (
                self.cluster_off,
                self.overflow_off + self.overflow_len - self.cluster_off,
            ),
            GroupSlot::Back => (
                self.overflow_off,
                self.cluster_off + self.cluster_len - self.overflow_off,
            ),
        }
    }

    /// Splits a buffer fetched via [`ClusterLocation::read_span`] into
    /// `(cluster_bytes, overflow_area)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when the buffer does not match the
    /// span's length.
    pub fn split<'a>(&self, buf: &'a [u8]) -> Result<(&'a [u8], &'a [u8])> {
        let (_, span_len) = self.read_span();
        if buf.len() as u64 != span_len {
            return Err(Error::Corrupt(format!(
                "span buffer is {} bytes, expected {span_len}",
                buf.len()
            )));
        }
        match self.slot {
            GroupSlot::Front => {
                let cluster = &buf[..self.cluster_len as usize];
                let ovf_start = (self.overflow_off - self.cluster_off) as usize;
                Ok((cluster, &buf[ovf_start..]))
            }
            GroupSlot::Back => {
                let overflow = &buf[..self.overflow_len as usize];
                let c_start = (self.cluster_off - self.overflow_off) as usize;
                Ok((
                    &buf[c_start..c_start + self.cluster_len as usize],
                    overflow,
                ))
            }
        }
    }

    /// Absolute offset of the overflow `used` counter (an aligned `u64`).
    pub fn overflow_counter_off(&self) -> u64 {
        self.overflow_off
    }

    /// Bytes of record payload the overflow area can hold.
    pub fn overflow_capacity(&self) -> u64 {
        self.overflow_len - 8
    }

    /// Alignment padding after this cluster's serialized bytes (in
    /// front of the overflow area for the front slot, at the group's
    /// tail for the back slot) — dead bytes the layout spends on
    /// 8-byte alignment.
    pub fn padding_bytes(&self) -> u64 {
        pad8(self.cluster_len) - self.cluster_len
    }
}

/// Layout accounting for one §3.2 group: up to two clusters sharing an
/// overflow area. Produced by [`Directory::groups`] for health
/// reporting — the group's live `used` counter sits at
/// [`GroupLayout::overflow_off`] and can be read with one 8-byte
/// `RDMA_READ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLayout {
    /// Group index.
    pub group: u32,
    /// Partition in the front slot.
    pub front: u32,
    /// Partition in the back slot (`None` for a trailing odd group).
    pub back: Option<u32>,
    /// Serialized cluster bytes across the group's members.
    pub cluster_bytes: u64,
    /// Alignment padding across the group's members.
    pub padding_bytes: u64,
    /// Absolute offset of the shared overflow area (== its 8-byte
    /// `used` counter).
    pub overflow_off: u64,
    /// Insert capacity of the overflow area in bytes, header excluded.
    pub overflow_capacity: u64,
}

/// The global metadata block: every cluster's location, plus enough
/// geometry for a compute node to plan reads and inserts.
///
/// # Example
///
/// ```rust
/// use dhnsw::layout::Directory;
///
/// # fn main() -> Result<(), dhnsw::Error> {
/// // Three clusters of 100/220/60 bytes, dim-4 vectors, 8 overflow slots.
/// let dir = Directory::plan(&[100, 220, 60], 4, 8)?;
/// assert_eq!(dir.partitions(), 3);
/// let back = Directory::from_bytes(&dir.to_bytes())?;
/// assert_eq!(back, dir);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    format_version: u32,
    dim: u32,
    epoch: u64,
    total_len: u64,
    record_size: u32,
    next_id: u64,
    locations: Vec<ClusterLocation>,
    /// Per-partition `(offset, len)` of the SQ8 cluster blob in the
    /// tail region; empty unless `format_version >= 3`.
    sq_spans: Vec<(u64, u64)>,
}

impl Directory {
    /// Plans the layout for clusters of the given serialized sizes
    /// (indexed by partition id), with `overflow_slots` insert records of
    /// dimensionality `dim` per group.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `cluster_sizes` is empty
    /// or `dim` is zero.
    pub fn plan(cluster_sizes: &[u64], dim: usize, overflow_slots: usize) -> Result<Self> {
        Self::plan_inner(cluster_sizes, None, dim, overflow_slots)
    }

    /// Plans a v3 layout: the v2 group geometry, plus one SQ8 blob per
    /// cluster (serialized sizes in `sq_sizes`, indexed by partition)
    /// packed into an 8-aligned tail region after the last group.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on the same degenerate
    /// inputs as [`Directory::plan`], or when `sq_sizes` and
    /// `cluster_sizes` disagree in length.
    pub fn plan_with_sq(
        cluster_sizes: &[u64],
        sq_sizes: &[u64],
        dim: usize,
        overflow_slots: usize,
    ) -> Result<Self> {
        if sq_sizes.len() != cluster_sizes.len() {
            return Err(Error::InvalidParameter(format!(
                "{} sq blob sizes for {} clusters",
                sq_sizes.len(),
                cluster_sizes.len()
            )));
        }
        Self::plan_inner(cluster_sizes, Some(sq_sizes), dim, overflow_slots)
    }

    fn plan_inner(
        cluster_sizes: &[u64],
        sq_sizes: Option<&[u64]>,
        dim: usize,
        overflow_slots: usize,
    ) -> Result<Self> {
        if cluster_sizes.is_empty() {
            return Err(Error::InvalidParameter(
                "layout needs at least one cluster".into(),
            ));
        }
        if dim == 0 {
            return Err(Error::InvalidParameter("dim must be non-zero".into()));
        }
        let record_size = OverflowRecord::wire_size(dim) as u64;
        let overflow_len = 8 + record_size * overflow_slots as u64;

        let n = cluster_sizes.len();
        let dir_len = if sq_sizes.is_some() {
            pad8(Self::byte_size_v3(n) as u64)
        } else {
            pad8(Self::byte_size(n) as u64)
        };
        let mut cursor = dir_len;
        let mut locations = Vec::with_capacity(n);

        let mut p = 0usize;
        let mut group = 0u32;
        while p < n {
            let a_len = cluster_sizes[p];
            let a_off = cursor;
            let ovf_off = a_off + pad8(a_len);
            let after_ovf = ovf_off + overflow_len;
            locations.push(ClusterLocation {
                partition: p as u32,
                group,
                slot: GroupSlot::Front,
                cluster_off: a_off,
                cluster_len: a_len,
                overflow_off: ovf_off,
                overflow_len,
            });
            cursor = after_ovf;
            if p + 1 < n {
                let b_len = cluster_sizes[p + 1];
                locations.push(ClusterLocation {
                    partition: (p + 1) as u32,
                    group,
                    slot: GroupSlot::Back,
                    cluster_off: after_ovf,
                    cluster_len: b_len,
                    overflow_off: ovf_off,
                    overflow_len,
                });
                cursor = after_ovf + pad8(b_len);
            }
            p += 2;
            group += 1;
        }

        // SQ8 blobs live in one tail region after the last group, so
        // the group geometry (and every v2 offset) is untouched by
        // quantization being on or off.
        let mut sq_spans = Vec::new();
        if let Some(sq) = sq_sizes {
            sq_spans.reserve(n);
            for &len in sq {
                sq_spans.push((cursor, len));
                cursor += pad8(len);
            }
        }

        Ok(Directory {
            format_version: if sq_sizes.is_some() {
                DIRECTORY_VERSION_V3
            } else {
                DIRECTORY_VERSION
            },
            dim: dim as u32,
            epoch: 0,
            total_len: cursor,
            record_size: record_size as u32,
            next_id: 0,
            locations,
            sq_spans,
        })
    }

    /// Format version this directory was planned/decoded at. Version
    /// slots only exist for [`DIRECTORY_VERSION`] (v2) directories.
    pub fn format_version(&self) -> u32 {
        self.format_version
    }

    /// Whether the directory carries per-cluster version slots.
    pub fn has_version_slots(&self) -> bool {
        self.format_version >= DIRECTORY_VERSION
    }

    /// Number of partitions described.
    pub fn partitions(&self) -> usize {
        self.locations.len()
    }

    /// Vector dimensionality of the store.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Bytes one overflow record occupies.
    pub fn record_size(&self) -> usize {
        self.record_size as usize
    }

    /// Total region bytes the layout requires (directory + all groups).
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Directory epoch (bumped when the layout is rebuilt).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The global-id counter value as of serialization/fetch time. The
    /// *live* counter is the `u64` at [`ID_COUNTER_OFFSET`] in remote
    /// memory, advanced with `FAA` on every insert.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Sets the initial global-id counter (store build time: the number
    /// of base vectors).
    pub fn set_next_id(&mut self, id: u64) {
        self.next_id = id;
    }

    /// Sets the directory epoch (bumped by every rebuild so compute
    /// nodes can detect a re-layout).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The location of partition `p`'s cluster.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for an out-of-range id.
    pub fn location(&self, p: u32) -> Result<&ClusterLocation> {
        self.locations
            .get(p as usize)
            .ok_or(Error::UnknownPartition(p))
    }

    /// All locations, indexed by partition id.
    pub fn locations(&self) -> &[ClusterLocation] {
        &self.locations
    }

    /// Serialized size of a directory over `n` partitions: header,
    /// location entries, alignment padding, then `n` version slots.
    pub fn byte_size(n: usize) -> usize {
        Self::version_slots_off(n) + n * 8
    }

    /// Serialized size under the v1 format (no version slots).
    pub fn byte_size_v1(n: usize) -> usize {
        HEADER_BYTES + n * ENTRY_BYTES
    }

    /// Serialized size under the v3 format: the v2 layout plus one
    /// `(sq_off, sq_len)` pair per cluster.
    pub fn byte_size_v3(n: usize) -> usize {
        Self::byte_size(n) + n * SQ_SPAN_BYTES
    }

    /// Serialized directory size, computed from a header prefix of at
    /// least [`DIRECTORY_PEEK_BYTES`] bytes — lets a reader size the
    /// full directory fetch without knowing the format in advance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on a short prefix, a bad magic, or
    /// an unknown format version.
    pub fn peek_size(header: &[u8]) -> Result<usize> {
        if header.len() < HEADER_BYTES {
            return Err(Error::Corrupt("truncated directory header".into()));
        }
        let u32_at = |off: usize| {
            u32::from_le_bytes(header[off..off + 4].try_into().expect("4"))
        };
        if u32_at(0) != DIRECTORY_MAGIC {
            return Err(Error::Corrupt("bad directory magic".into()));
        }
        let n = u32_at(12) as usize;
        match u32_at(4) {
            DIRECTORY_VERSION_V1 => Ok(Self::byte_size_v1(n)),
            DIRECTORY_VERSION => Ok(Self::byte_size(n)),
            DIRECTORY_VERSION_V3 => Ok(Self::byte_size_v3(n)),
            _ => Err(Error::Corrupt("unsupported directory version".into())),
        }
    }

    /// Byte offset of the first version slot, 8-aligned so every slot is
    /// a legal `FAA` target.
    fn version_slots_off(n: usize) -> usize {
        pad8((HEADER_BYTES + n * ENTRY_BYTES) as u64) as usize
    }

    /// Absolute region offset of partition `p`'s version slot (an
    /// aligned `u64` that writers `FAA` after committing a mutation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for an out-of-range id, or
    /// [`Error::Corrupt`] for a v1 directory, which has no slots.
    pub fn version_slot_off(&self, p: u32) -> Result<u64> {
        if !self.has_version_slots() {
            return Err(Error::Corrupt(
                "v1 directory carries no version slots".into(),
            ));
        }
        if p as usize >= self.locations.len() {
            return Err(Error::UnknownPartition(p));
        }
        Ok(Self::version_slots_off(self.locations.len()) as u64 + 8 * u64::from(p))
    }

    /// Serialized size of *this* directory at the head of the region.
    pub fn directory_bytes(&self) -> u64 {
        let n = self.locations.len();
        (match self.format_version {
            DIRECTORY_VERSION_V1 => Self::byte_size_v1(n),
            DIRECTORY_VERSION => Self::byte_size(n),
            _ => Self::byte_size_v3(n),
        }) as u64
    }

    /// Whether the directory carries SQ8 blob spans (format v3).
    pub fn has_sq_spans(&self) -> bool {
        self.format_version >= DIRECTORY_VERSION_V3
    }

    /// The `(offset, len)` of partition `p`'s SQ8 blob, or `None` on a
    /// pre-v3 directory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for an out-of-range id.
    pub fn sq_span(&self, p: u32) -> Result<Option<(u64, u64)>> {
        if p as usize >= self.locations.len() {
            return Err(Error::UnknownPartition(p));
        }
        Ok(self.sq_spans.get(p as usize).copied())
    }

    /// Live SQ8 blob bytes across the tail region (zero pre-v3).
    pub fn sq_live_bytes(&self) -> u64 {
        self.sq_spans.iter().map(|&(_, len)| len).sum()
    }

    /// Alignment padding spent between SQ8 blobs in the tail region.
    pub fn sq_padding_bytes(&self) -> u64 {
        self.sq_spans.iter().map(|&(_, len)| pad8(len) - len).sum()
    }

    /// Alignment padding between the directory and the first group.
    pub fn directory_padding(&self) -> u64 {
        pad8(self.directory_bytes()) - self.directory_bytes()
    }

    /// Per-group layout accounting, in group order. Locations are laid
    /// out front-slot first, so every group's shared overflow geometry
    /// is taken from its front member.
    pub fn groups(&self) -> Vec<GroupLayout> {
        let mut groups: Vec<GroupLayout> = Vec::new();
        for loc in &self.locations {
            let g = loc.group as usize;
            if g == groups.len() {
                groups.push(GroupLayout {
                    group: loc.group,
                    front: loc.partition,
                    back: None,
                    cluster_bytes: 0,
                    padding_bytes: 0,
                    overflow_off: loc.overflow_off,
                    overflow_capacity: loc.overflow_capacity(),
                });
            }
            let entry = &mut groups[g];
            if loc.slot == GroupSlot::Back {
                entry.back = Some(loc.partition);
            }
            entry.cluster_bytes += loc.cluster_len;
            entry.padding_bytes += loc.padding_bytes();
        }
        groups
    }

    /// Serializes the directory (what gets written at region offset 0).
    /// The version slots at the tail are serialized as zero — the live
    /// values exist only in remote memory, advanced by writer `FAA`s.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::byte_size(self.locations.len()));
        out.extend_from_slice(&DIRECTORY_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.format_version.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.extend_from_slice(&(self.locations.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.record_size.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.total_len.to_le_bytes());
        out.extend_from_slice(&self.next_id.to_le_bytes());
        for loc in &self.locations {
            out.extend_from_slice(&loc.group.to_le_bytes());
            out.push(match loc.slot {
                GroupSlot::Front => 0,
                GroupSlot::Back => 1,
            });
            out.extend_from_slice(&[0, 0, 0]);
            out.extend_from_slice(&loc.cluster_off.to_le_bytes());
            out.extend_from_slice(&loc.cluster_len.to_le_bytes());
            out.extend_from_slice(&loc.overflow_off.to_le_bytes());
            out.extend_from_slice(&loc.overflow_len.to_le_bytes());
        }
        if self.has_version_slots() {
            out.resize(Self::byte_size(self.locations.len()), 0);
        }
        if self.has_sq_spans() {
            for &(off, len) in &self.sq_spans {
                out.extend_from_slice(&off.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a directory blob.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on a bad magic/version or truncation.
    pub fn from_bytes(blob: &[u8]) -> Result<Self> {
        let take = |off: usize, n: usize| -> Result<&[u8]> {
            blob.get(off..off + n)
                .ok_or_else(|| Error::Corrupt("truncated directory".into()))
        };
        let u32_at = |off: usize| -> Result<u32> {
            Ok(u32::from_le_bytes(take(off, 4)?.try_into().expect("4")))
        };
        let u64_at = |off: usize| -> Result<u64> {
            Ok(u64::from_le_bytes(take(off, 8)?.try_into().expect("8")))
        };
        if u32_at(0)? != DIRECTORY_MAGIC {
            return Err(Error::Corrupt("bad directory magic".into()));
        }
        let format_version = u32_at(4)?;
        if !(DIRECTORY_VERSION_V1..=DIRECTORY_VERSION_V3).contains(&format_version) {
            return Err(Error::Corrupt("unsupported directory version".into()));
        }
        let dim = u32_at(8)?;
        let n = u32_at(12)? as usize;
        let record_size = u32_at(16)?;
        let epoch = u64_at(24)?;
        let total_len = u64_at(32)?;
        let next_id = u64_at(ID_COUNTER_OFFSET as usize)?;
        let mut locations = Vec::with_capacity(n);
        for i in 0..n {
            let base = HEADER_BYTES + i * ENTRY_BYTES;
            let group = u32_at(base)?;
            let slot = match take(base + 4, 1)?[0] {
                0 => GroupSlot::Front,
                1 => GroupSlot::Back,
                other => {
                    return Err(Error::Corrupt(format!("bad slot tag {other}")));
                }
            };
            locations.push(ClusterLocation {
                partition: i as u32,
                group,
                slot,
                cluster_off: u64_at(base + 8)?,
                cluster_len: u64_at(base + 16)?,
                overflow_off: u64_at(base + 24)?,
                overflow_len: u64_at(base + 32)?,
            });
        }
        let mut sq_spans = Vec::new();
        if format_version >= DIRECTORY_VERSION_V3 {
            sq_spans.reserve(n);
            for i in 0..n {
                let base = Self::byte_size(n) + i * SQ_SPAN_BYTES;
                sq_spans.push((u64_at(base)?, u64_at(base + 8)?));
            }
        }
        Ok(Directory {
            format_version,
            dim,
            epoch,
            total_len,
            record_size,
            next_id,
            locations,
            sq_spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lays_out_pairs_with_shared_overflow() {
        let dir = Directory::plan(&[100, 200, 300, 400], 4, 8).unwrap();
        assert_eq!(dir.partitions(), 4);
        let a = *dir.location(0).unwrap();
        let b = *dir.location(1).unwrap();
        assert_eq!(a.group, 0);
        assert_eq!(b.group, 0);
        assert_eq!(a.slot, GroupSlot::Front);
        assert_eq!(b.slot, GroupSlot::Back);
        // Shared overflow: identical area for both partners.
        assert_eq!(a.overflow_off, b.overflow_off);
        assert_eq!(a.overflow_len, b.overflow_len);
        // Geometry: A | overflow | B, contiguous.
        assert_eq!(a.overflow_off, a.cluster_off + 104); // 100 padded to 8
        assert_eq!(b.cluster_off, a.overflow_off + a.overflow_len);
    }

    #[test]
    fn odd_cluster_count_leaves_last_group_half_full() {
        let dir = Directory::plan(&[100, 200, 300], 4, 8).unwrap();
        let last = *dir.location(2).unwrap();
        assert_eq!(last.group, 1);
        assert_eq!(last.slot, GroupSlot::Front);
        assert!(last.overflow_off > last.cluster_off);
    }

    #[test]
    fn spans_are_contiguous_and_cover_cluster_plus_overflow() {
        let dir = Directory::plan(&[64, 128], 2, 4).unwrap();
        for p in 0..2u32 {
            let loc = *dir.location(p).unwrap();
            let (off, len) = loc.read_span();
            // Span contains the cluster...
            assert!(off <= loc.cluster_off);
            assert!(off + len >= loc.cluster_off + loc.cluster_len);
            // ...and the whole overflow area.
            assert!(off <= loc.overflow_off);
            assert!(off + len >= loc.overflow_off + loc.overflow_len);
        }
    }

    #[test]
    fn split_recovers_cluster_and_overflow_slices() {
        let dir = Directory::plan(&[16, 24], 2, 2).unwrap();
        for p in 0..2u32 {
            let loc = *dir.location(p).unwrap();
            let (off, len) = loc.read_span();
            // Build a fake region where every byte is its absolute offset
            // modulo 251, so slices betray any misalignment.
            let buf: Vec<u8> = (off..off + len).map(|i| (i % 251) as u8).collect();
            let (cluster, overflow) = loc.split(&buf).unwrap();
            assert_eq!(cluster.len() as u64, loc.cluster_len);
            assert_eq!(overflow.len() as u64, loc.overflow_len);
            assert_eq!(cluster[0], (loc.cluster_off % 251) as u8);
            assert_eq!(overflow[0], (loc.overflow_off % 251) as u8);
        }
    }

    #[test]
    fn split_rejects_wrong_length_buffers() {
        let dir = Directory::plan(&[16], 2, 2).unwrap();
        let loc = *dir.location(0).unwrap();
        assert!(loc.split(&[0u8; 3]).is_err());
    }

    #[test]
    fn offsets_are_8_aligned_for_atomics() {
        let dir = Directory::plan(&[13, 27, 55, 101, 7], 3, 5).unwrap();
        for loc in dir.locations() {
            assert_eq!(loc.cluster_off % 8, 0, "{loc:?}");
            assert_eq!(loc.overflow_off % 8, 0, "{loc:?}");
        }
    }

    #[test]
    fn total_len_bounds_every_location() {
        let sizes = [100u64, 1, 999, 64, 31];
        let dir = Directory::plan(&sizes, 6, 3).unwrap();
        for loc in dir.locations() {
            let (off, len) = loc.read_span();
            assert!(off + len <= dir.total_len());
        }
    }

    #[test]
    fn id_counter_slot_is_aligned_and_inside_header() {
        assert_eq!(ID_COUNTER_OFFSET % 8, 0);
        assert!((ID_COUNTER_OFFSET as usize) + 8 <= HEADER_BYTES);
    }

    #[test]
    fn epoch_round_trips() {
        let mut dir = Directory::plan(&[50], 4, 2).unwrap();
        dir.set_epoch(9);
        let back = Directory::from_bytes(&dir.to_bytes()).unwrap();
        assert_eq!(back.epoch(), 9);
    }

    #[test]
    fn next_id_round_trips() {
        let mut dir = Directory::plan(&[100], 4, 4).unwrap();
        dir.set_next_id(12_345);
        let back = Directory::from_bytes(&dir.to_bytes()).unwrap();
        assert_eq!(back.next_id(), 12_345);
    }

    #[test]
    fn directory_round_trips_through_bytes() {
        let dir = Directory::plan(&[100, 200, 300], 8, 16).unwrap();
        let blob = dir.to_bytes();
        assert_eq!(blob.len(), Directory::byte_size(3));
        let back = Directory::from_bytes(&blob).unwrap();
        assert_eq!(back, dir);
    }

    #[test]
    fn corrupt_directories_are_rejected() {
        let dir = Directory::plan(&[100], 4, 4).unwrap();
        let blob = dir.to_bytes();
        assert!(Directory::from_bytes(&blob[..10]).is_err());
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(Directory::from_bytes(&bad).is_err());
        let mut bad_slot = blob.clone();
        bad_slot[HEADER_BYTES + 4] = 9;
        assert!(Directory::from_bytes(&bad_slot).is_err());
    }

    #[test]
    fn plan_rejects_degenerate_input() {
        assert!(Directory::plan(&[], 4, 4).is_err());
        assert!(Directory::plan(&[10], 0, 4).is_err());
    }

    #[test]
    fn version_slots_are_aligned_and_inside_the_directory() {
        let dir = Directory::plan(&[100, 200, 300], 4, 8).unwrap();
        assert!(dir.has_version_slots());
        assert_eq!(dir.format_version(), DIRECTORY_VERSION);
        for p in 0..3u32 {
            let off = dir.version_slot_off(p).unwrap();
            assert_eq!(off % 8, 0, "slot {p} must be FAA-able");
            // Slots live between the entries and the first group.
            assert!(off >= (HEADER_BYTES + 3 * ENTRY_BYTES) as u64);
            assert!(off + 8 <= Directory::byte_size(3) as u64);
            assert!(off + 8 <= dir.location(0).unwrap().cluster_off);
        }
        // Slots are distinct and consecutive.
        assert_eq!(
            dir.version_slot_off(1).unwrap(),
            dir.version_slot_off(0).unwrap() + 8
        );
        assert!(dir.version_slot_off(3).is_err());
        // Serialization covers the slots (zeroed at build time).
        assert_eq!(dir.to_bytes().len(), Directory::byte_size(3));
    }

    #[test]
    fn v1_directories_still_decode() {
        // A v1 blob is the v2 blob minus the version-slot tail, with the
        // version field rewound.
        let dir = Directory::plan(&[100, 200], 4, 8).unwrap();
        let mut blob = dir.to_bytes();
        blob.truncate(Directory::byte_size_v1(2));
        blob[4..8].copy_from_slice(&DIRECTORY_VERSION_V1.to_le_bytes());
        let back = Directory::from_bytes(&blob).unwrap();
        assert_eq!(back.format_version(), DIRECTORY_VERSION_V1);
        assert!(!back.has_version_slots());
        assert_eq!(back.locations(), dir.locations());
        assert!(back.version_slot_off(0).is_err());
        // v1 round-trips at the v1 size.
        assert_eq!(back.to_bytes().len(), Directory::byte_size_v1(2));
        assert_eq!(Directory::from_bytes(&back.to_bytes()).unwrap(), back);
    }

    #[test]
    fn v3_plan_appends_sq_tail_after_the_groups() {
        let plain = Directory::plan(&[100, 220, 60], 4, 8).unwrap();
        let dir = Directory::plan_with_sq(&[100, 220, 60], &[40, 90, 25], 4, 8).unwrap();
        assert!(dir.has_sq_spans());
        assert!(dir.has_version_slots());
        assert_eq!(dir.format_version(), DIRECTORY_VERSION_V3);
        // The larger v3 directory shifts the groups, but the group
        // *shape* (pairing, shared overflow, relative geometry) matches
        // the v2 plan, and every sq span sits after every group span.
        let group_end = dir
            .locations()
            .iter()
            .map(|l| {
                let (off, len) = l.read_span();
                off + len
            })
            .max()
            .unwrap();
        for p in 0..3u32 {
            let (off, len) = dir.sq_span(p).unwrap().unwrap();
            assert_eq!(off % 8, 0);
            assert!(off >= group_end);
            assert!(off + len <= dir.total_len());
            assert_eq!(len, [40, 90, 25][p as usize]);
        }
        // Spans are packed back to back (40 is already 8-aligned, 90
        // pads to 96).
        let (off0, _) = dir.sq_span(0).unwrap().unwrap();
        assert_eq!(dir.sq_span(1).unwrap().unwrap().0, off0 + 40);
        assert_eq!(dir.sq_span(2).unwrap().unwrap().0, off0 + 40 + 96);
        assert!(dir.sq_span(3).is_err());
        // v2 plans report no spans.
        assert_eq!(plain.sq_span(0).unwrap(), None);
        assert_eq!(plain.sq_live_bytes(), 0);
        // Accounting: sq live + padding is exactly the tail.
        assert_eq!(dir.sq_live_bytes(), 40 + 90 + 25);
        assert_eq!(
            dir.sq_span(0).unwrap().unwrap().0 + dir.sq_live_bytes() + dir.sq_padding_bytes(),
            dir.total_len()
        );
    }

    #[test]
    fn v3_directory_round_trips_through_bytes() {
        let mut dir = Directory::plan_with_sq(&[100, 200], &[30, 70], 4, 8).unwrap();
        dir.set_next_id(77);
        dir.set_epoch(3);
        let blob = dir.to_bytes();
        assert_eq!(blob.len(), Directory::byte_size_v3(2));
        assert_eq!(blob.len() as u64, dir.directory_bytes());
        let back = Directory::from_bytes(&blob).unwrap();
        assert_eq!(back, dir);
    }

    #[test]
    fn peek_size_reports_every_format() {
        let v2 = Directory::plan(&[100, 200], 4, 8).unwrap();
        let v3 = Directory::plan_with_sq(&[100, 200], &[30, 70], 4, 8).unwrap();
        let v2_blob = v2.to_bytes();
        let v3_blob = v3.to_bytes();
        assert_eq!(Directory::peek_size(&v2_blob).unwrap(), v2_blob.len());
        assert_eq!(Directory::peek_size(&v3_blob).unwrap(), v3_blob.len());
        assert_eq!(
            Directory::peek_size(&v3_blob[..DIRECTORY_PEEK_BYTES]).unwrap(),
            v3_blob.len()
        );
        let mut v1_blob = v2_blob.clone();
        v1_blob.truncate(Directory::byte_size_v1(2));
        v1_blob[4..8].copy_from_slice(&DIRECTORY_VERSION_V1.to_le_bytes());
        assert_eq!(Directory::peek_size(&v1_blob).unwrap(), v1_blob.len());
        assert!(Directory::peek_size(&v2_blob[..10]).is_err());
        let mut bad = v2_blob.clone();
        bad[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(Directory::peek_size(&bad).is_err());
    }

    #[test]
    fn plan_with_sq_rejects_mismatched_span_counts() {
        assert!(Directory::plan_with_sq(&[100, 200], &[30], 4, 8).is_err());
    }

    #[test]
    fn overflow_capacity_counts_only_payload() {
        let dir = Directory::plan(&[10, 20], 4, 3).unwrap();
        let loc = dir.location(0).unwrap();
        let rec = OverflowRecord::wire_size(4) as u64;
        assert_eq!(loc.overflow_capacity(), 3 * rec);
    }

    #[test]
    fn padding_accounts_for_alignment() {
        let dir = Directory::plan(&[100, 64], 4, 2).unwrap();
        // 100 pads to 104; 64 is already aligned.
        assert_eq!(dir.location(0).unwrap().padding_bytes(), 4);
        assert_eq!(dir.location(1).unwrap().padding_bytes(), 0);
        assert_eq!(
            dir.directory_padding(),
            pad8(dir.directory_bytes()) - dir.directory_bytes()
        );
    }

    #[test]
    fn groups_pair_members_and_share_overflow_geometry() {
        let dir = Directory::plan(&[100, 220, 60], 4, 8).unwrap();
        let groups = dir.groups();
        assert_eq!(groups.len(), 2);
        let g0 = &groups[0];
        assert_eq!((g0.front, g0.back), (0, Some(1)));
        assert_eq!(g0.cluster_bytes, 320);
        assert_eq!(g0.padding_bytes, (104 - 100) + (224 - 220));
        let front = dir.location(0).unwrap();
        assert_eq!(g0.overflow_off, front.overflow_off);
        assert_eq!(g0.overflow_capacity, front.overflow_capacity());
        // Trailing odd group has a single member.
        let g1 = &groups[1];
        assert_eq!((g1.front, g1.back), (2, None));
        assert_eq!(g1.cluster_bytes, 60);
        assert_eq!(g1.padding_bytes, 64 - 60);
    }

    #[test]
    fn group_accounting_tiles_the_region() {
        // directory + Σ(cluster + padding) + Σ(overflow area) == total.
        let dir = Directory::plan(&[100, 220, 60, 31, 57], 4, 8).unwrap();
        let groups = dir.groups();
        let covered: u64 = pad8(dir.directory_bytes())
            + groups
                .iter()
                .map(|g| g.cluster_bytes + g.padding_bytes + 8 + g.overflow_capacity)
                .sum::<u64>();
        assert_eq!(covered, dir.total_len());
    }
}
