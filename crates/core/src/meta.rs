//! The representative index (meta-HNSW) of §3.1.
//!
//! A [`MetaIndex`] is a three-layer HNSW built over a uniform sample of
//! the dataset. Every bottom-layer (L0) node — i.e. every representative —
//! defines one partition; the meta index doubles as the cluster classifier
//! that routes vectors (for insertion) and queries (for search) to
//! partitions. It is small enough (~0.4 MB for SIFT1M in the paper) to be
//! cached on every compute instance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hnsw::HnswIndex;
use vecsim::{Dataset, Neighbor};

use crate::{DHnswConfig, Error, Result};

/// The cached representative index: a level-capped HNSW over sampled
/// vectors, where representative `i` *is* partition `i`.
///
/// # Example
///
/// ```rust
/// use dhnsw::{DHnswConfig, MetaIndex};
/// use vecsim::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = gen::sift_like(1_000, 3)?;
/// let meta = MetaIndex::build(&data, &DHnswConfig::small())?;
/// assert_eq!(meta.partitions(), 32);
/// let route = meta.route(data.get(0), 4);
/// assert_eq!(route.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MetaIndex {
    index: HnswIndex,
    /// For each representative (= partition), the id of the dataset vector
    /// it was sampled from. Purely diagnostic.
    sample_ids: Vec<u32>,
}

impl MetaIndex {
    /// Builds the meta index by uniformly sampling
    /// [`DHnswConfig::representatives`] vectors from `data` (without
    /// replacement) and building a level-capped HNSW over them.
    ///
    /// When the dataset holds fewer vectors than the configured
    /// representative count, every vector becomes a representative.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an empty dataset or an
    /// invalid configuration.
    pub fn build(data: &Dataset, config: &DHnswConfig) -> Result<Self> {
        config.validate()?;
        if data.is_empty() {
            return Err(Error::InvalidParameter(
                "cannot build a meta index over an empty dataset".into(),
            ));
        }
        let want = config.representatives().min(data.len());

        // Uniform sample without replacement (partial Fisher–Yates over
        // the id space).
        let mut rng = StdRng::seed_from_u64(config.seed());
        let mut ids: Vec<u32> = (0..data.len() as u32).collect();
        for i in 0..want {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        let mut sample_ids = ids[..want].to_vec();
        // Deterministic partition numbering independent of shuffle order.
        sample_ids.sort_unstable();

        let reps = data.select(&sample_ids);
        let index = HnswIndex::build(reps, &config.meta_params())?;
        Ok(MetaIndex { index, sample_ids })
    }

    /// Number of partitions (= representatives).
    pub fn partitions(&self) -> usize {
        self.index.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.index.dim()
    }

    /// Routes a query to its `b` closest partitions (greedy descent
    /// through the pyramid, then a beam of width `b` on the bottom
    /// layer), ordered by ascending distance to the representative.
    ///
    /// Returns fewer than `b` entries when the index has fewer partitions.
    /// The `id` of each returned [`Neighbor`] is a **partition id**.
    pub fn route(&self, query: &[f32], b: usize) -> Vec<Neighbor> {
        self.index.descend(query, b)
    }

    /// Classifies a vector into its single nearest partition (the
    /// insertion path).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for a wrong-length vector.
    pub fn classify(&self, v: &[f32]) -> Result<u32> {
        self.classify_with_beam(v, 1)
    }

    /// Like [`MetaIndex::classify`], but descends with a beam of width
    /// `beam` before taking the top-1. Insertion must use the same beam
    /// width queries route with: beam-1 greedy descent can terminate in a
    /// local optimum that a wider query route never visits, making the
    /// inserted vector unreachable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for a wrong-length vector.
    pub fn classify_with_beam(&self, v: &[f32], beam: usize) -> Result<u32> {
        if v.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                got: v.len(),
            });
        }
        self.route(v, beam.max(1))
            .first()
            .map(|n| n.id)
            .ok_or_else(|| Error::InvalidParameter("meta index is empty".into()))
    }

    /// The representative vector of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn representative(&self, p: u32) -> &[f32] {
        self.index.vector(p)
    }

    /// The dataset id each representative was sampled from, indexed by
    /// partition id.
    pub fn sample_ids(&self) -> &[u32] {
        &self.sample_ids
    }

    /// In-memory footprint in bytes — the quantity the paper reports as
    /// 0.373 MB (SIFT1M) / 1.960 MB (GIST1M).
    pub fn footprint_bytes(&self) -> usize {
        self.index.memory_footprint() + self.sample_ids.len() * 4
    }

    /// Height of the pyramid (should be ≤ the configured cap).
    pub fn max_level(&self) -> usize {
        self.index.max_level()
    }

    /// Direct access to the underlying HNSW (for diagnostics and tests).
    pub fn hnsw(&self) -> &HnswIndex {
        &self.index
    }

    /// Structural report of the routing graph (connectivity, per-layer
    /// degrees, edge symmetry) — the meta-HNSW side of a health check.
    pub fn graph_report(&self) -> hnsw::diagnostics::GraphReport {
        hnsw::diagnostics::analyze(&self.index)
    }

    /// Serializes the meta index (graph + representatives + sample-id
    /// map) for snapshots.
    pub fn to_bytes(&self) -> Vec<u8> {
        let hnsw_blob = hnsw::serialize::to_bytes(&self.index);
        let mut out = Vec::with_capacity(12 + 4 * self.sample_ids.len() + hnsw_blob.len());
        out.extend_from_slice(&(self.sample_ids.len() as u32).to_le_bytes());
        for &id in &self.sample_ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&(hnsw_blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&hnsw_blob);
        out
    }

    /// Deserializes a blob produced by [`MetaIndex::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation or an invalid embedded
    /// HNSW blob.
    pub fn from_bytes(blob: &[u8]) -> Result<Self> {
        let take = |off: usize, n: usize| -> Result<&[u8]> {
            blob.get(off..off + n)
                .ok_or_else(|| Error::Corrupt("truncated meta blob".into()))
        };
        let n = u32::from_le_bytes(take(0, 4)?.try_into().expect("4")) as usize;
        let mut sample_ids = Vec::with_capacity(n);
        for i in 0..n {
            sample_ids.push(u32::from_le_bytes(
                take(4 + 4 * i, 4)?.try_into().expect("4"),
            ));
        }
        let len_off = 4 + 4 * n;
        let hnsw_len = u64::from_le_bytes(take(len_off, 8)?.try_into().expect("8")) as usize;
        let hnsw_blob = take(len_off + 8, hnsw_len)?;
        let index = hnsw::serialize::from_bytes(hnsw_blob)
            .map_err(|e| Error::Corrupt(format!("embedded meta hnsw: {e}")))?;
        if index.len() != n {
            return Err(Error::Corrupt(format!(
                "meta blob: {n} sample ids but {} representatives",
                index.len()
            )));
        }
        Ok(MetaIndex { index, sample_ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsim::gen;

    fn build_small(n: usize) -> (Dataset, MetaIndex) {
        let data = gen::sift_like(n, 5).unwrap();
        let meta = MetaIndex::build(&data, &DHnswConfig::small()).unwrap();
        (data, meta)
    }

    #[test]
    fn partition_count_matches_config() {
        let (_, meta) = build_small(1_000);
        assert_eq!(meta.partitions(), 32);
        assert_eq!(meta.sample_ids().len(), 32);
    }

    #[test]
    fn small_dataset_uses_every_vector() {
        let data = gen::sift_like(10, 5).unwrap();
        let meta = MetaIndex::build(&data, &DHnswConfig::small()).unwrap();
        assert_eq!(meta.partitions(), 10);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let data = Dataset::new(8);
        assert!(MetaIndex::build(&data, &DHnswConfig::small()).is_err());
    }

    #[test]
    fn pyramid_height_is_capped_at_three_layers() {
        let (_, meta) = build_small(2_000);
        assert!(meta.max_level() <= 2, "meta-HNSW must have <= 3 layers");
    }

    #[test]
    fn sample_ids_are_unique_and_in_range() {
        let (data, meta) = build_small(1_000);
        let mut ids = meta.sample_ids().to_vec();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate sample ids");
        assert!(ids.iter().all(|&i| (i as usize) < data.len()));
    }

    #[test]
    fn representatives_match_sampled_vectors() {
        let (data, meta) = build_small(500);
        for p in 0..meta.partitions() as u32 {
            let src = meta.sample_ids()[p as usize] as usize;
            assert_eq!(meta.representative(p), data.get(src));
        }
    }

    #[test]
    fn route_returns_b_distinct_partitions_sorted() {
        let (data, meta) = build_small(1_000);
        let out = meta.route(data.get(17), 5);
        assert_eq!(out.len(), 5);
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        let mut ids: Vec<u32> = out.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn classify_picks_the_nearest_representative() {
        let (data, meta) = build_small(1_000);
        // A representative classifies to itself (distance 0 beats all).
        for p in (0..meta.partitions() as u32).step_by(7) {
            let rep_vec = meta.representative(p).to_vec();
            let got = meta.classify(&rep_vec).unwrap();
            assert_eq!(
                meta.representative(got),
                &rep_vec[..],
                "partition {p} misclassified to {got}"
            );
        }
        let _ = data;
    }

    #[test]
    fn classify_rejects_wrong_dim() {
        let (_, meta) = build_small(200);
        assert!(matches!(
            meta.classify(&[0.0; 4]).unwrap_err(),
            Error::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn builds_are_deterministic() {
        let data = gen::sift_like(600, 5).unwrap();
        let a = MetaIndex::build(&data, &DHnswConfig::small()).unwrap();
        let b = MetaIndex::build(&data, &DHnswConfig::small()).unwrap();
        assert_eq!(a.sample_ids(), b.sample_ids());
        let c = MetaIndex::build(&data, &DHnswConfig::small().with_seed(9)).unwrap();
        assert_ne!(a.sample_ids(), c.sample_ids());
    }

    #[test]
    fn meta_round_trips_through_bytes() {
        let (_, meta) = build_small(600);
        let back = MetaIndex::from_bytes(&meta.to_bytes()).unwrap();
        assert_eq!(back.partitions(), meta.partitions());
        assert_eq!(back.sample_ids(), meta.sample_ids());
        let q = meta.representative(3).to_vec();
        assert_eq!(back.route(&q, 4), meta.route(&q, 4));
    }

    #[test]
    fn corrupt_meta_blob_is_rejected() {
        let (_, meta) = build_small(100);
        let blob = meta.to_bytes();
        assert!(MetaIndex::from_bytes(&blob[..8]).is_err());
        let mut bad = blob.clone();
        let off = bad.len() - 1;
        bad.truncate(off);
        assert!(MetaIndex::from_bytes(&bad).is_err());
    }

    #[test]
    fn footprint_is_small_relative_to_data() {
        let data = gen::sift_like(2_000, 5).unwrap();
        let meta = MetaIndex::build(&data, &DHnswConfig::small()).unwrap();
        assert!(meta.footprint_bytes() < data.byte_len() / 10);
    }
}
