//! Building the remote store: partitioning, cluster construction, and
//! placement into registered memory.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rdma_sim::{MemoryNode, QueuePair, RegionHandle, WriteReq};
use vecsim::Dataset;

use crate::cluster::{SqCluster, SubCluster};
use crate::config::QuantizeMode;
use crate::engine::{ComputeNode, SearchMode};
use crate::layout::Directory;
use crate::meta::MetaIndex;
use crate::telemetry::Telemetry;
use crate::{DHnswConfig, Error, Result};

/// A fully built d-HNSW store: the memory-pool side plus the shared
/// artifacts every compute node caches (meta-HNSW, directory).
///
/// Build once with [`VectorStore::build`], then open any number of
/// compute-side sessions with [`VectorStore::connect`] — each gets its
/// own queue pair, virtual clock, and LRU cluster cache, like the
/// independent compute instances of the paper's testbed.
///
/// # Example
///
/// ```rust
/// use dhnsw::{DHnswConfig, SearchMode, VectorStore};
/// use vecsim::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = gen::sift_like(1_000, 11)?;
/// let store = VectorStore::build(data, &DHnswConfig::small())?;
/// assert_eq!(store.partitions(), 32);
/// let node = store.connect(SearchMode::Full)?;
/// let q = vec![100.0; 128];
/// let hits = node.query(&q, 5, 32)?;
/// assert_eq!(hits.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VectorStore {
    config: DHnswConfig,
    node: Arc<MemoryNode>,
    region: RegionHandle,
    meta: Arc<MetaIndex>,
    directory: Arc<Directory>,
    base_len: usize,
    partition_sizes: Vec<usize>,
}

impl VectorStore {
    /// Builds the store: samples representatives, partitions `data` via
    /// the meta-HNSW classifier, constructs one sub-HNSW per partition
    /// (in parallel), plans the grouped layout, and writes everything
    /// into a freshly registered remote region.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on an invalid configuration or
    /// an empty dataset, plus any substrate error.
    pub fn build(data: Dataset, config: &DHnswConfig) -> Result<Self> {
        let ids: Vec<u32> = (0..data.len() as u32).collect();
        Self::build_inner(data, ids, config, 0)
    }

    /// Shared implementation behind [`VectorStore::build`] and
    /// [`VectorStore::rebuild`]: `global_ids[row]` is the id of `data`'s
    /// `row`-th vector (fresh builds use the identity; rebuilds preserve
    /// the ids of compacted overflow inserts).
    fn build_inner(
        data: Dataset,
        global_ids: Vec<u32>,
        config: &DHnswConfig,
        epoch: u64,
    ) -> Result<Self> {
        // Same env knob `connect` honors: DHNSW_QUANTIZE_MODE flips the
        // wire format for builds whose config the caller cannot reach
        // (repro sweeps, the fault smoke). The resolved mode is stored
        // on the result, so later connects see what was actually built.
        let env_config = std::env::var("DHNSW_QUANTIZE_MODE")
            .ok()
            .and_then(|v| QuantizeMode::parse(&v).ok())
            .map(|m| config.clone().with_quantize_mode(m));
        let config = env_config.as_ref().unwrap_or(config);
        config.validate()?;
        if data.is_empty() {
            return Err(Error::InvalidParameter(
                "cannot build a store over an empty dataset".into(),
            ));
        }
        debug_assert_eq!(data.len(), global_ids.len());
        let meta = Arc::new(MetaIndex::build(&data, config)?);
        let parts = meta.partitions();

        // Classify every vector (parallel over row ranges), routing with
        // the same beam width queries use so a vector's home partition is
        // always on its own query route.
        let assignments = classify_all(&data, &meta, config.fanout());
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); parts];
        for (i, &p) in assignments.iter().enumerate() {
            members[p as usize].push(i as u32);
        }
        // Greedy routing can in principle leave a partition empty; its
        // representative is guaranteed to belong there, so force it in.
        for (p, m) in members.iter_mut().enumerate() {
            if m.is_empty() {
                m.push(meta.sample_ids()[p]);
            }
        }

        // Build and serialize every sub-HNSW in parallel (plus, when
        // quantization is on, the SQ8 copy of every cluster).
        let quantize = config.quantize_mode() != QuantizeMode::Off;
        let blobs = build_clusters(&data, &global_ids, &members, config, quantize)?;
        let partition_sizes: Vec<usize> = members.iter().map(Vec::len).collect();
        let sizes: Vec<u64> = blobs.iter().map(|(b, _)| b.len() as u64).collect();

        let mut directory = if quantize {
            let sq_sizes: Vec<u64> = blobs
                .iter()
                .map(|(_, s)| s.as_ref().expect("quantized build emits sq blobs").len() as u64)
                .collect();
            Directory::plan_with_sq(&sizes, &sq_sizes, data.dim(), config.overflow_slots())?
        } else {
            Directory::plan(&sizes, data.dim(), config.overflow_slots())?
        };
        directory.set_next_id(
            global_ids.iter().map(|&g| u64::from(g) + 1).max().unwrap_or(0),
        );
        directory.set_epoch(epoch);

        // Register the region and place everything. Setup traffic flows
        // through a throwaway queue pair; its virtual time is not part of
        // any query measurement.
        let node = MemoryNode::new("memory-pool");
        let region = node.register(directory.total_len() as usize)?;
        let setup_qp = QueuePair::connect(&node, config.network());
        let mut writes = Vec::with_capacity(1 + 2 * blobs.len());
        writes.push(WriteReq::new(region.rkey(), 0, directory.to_bytes()));
        for (p, (blob, sq_blob)) in blobs.into_iter().enumerate() {
            let loc = directory.location(p as u32)?;
            writes.push(WriteReq::new(region.rkey(), loc.cluster_off, blob));
            if let Some(sq) = sq_blob {
                let (sq_off, _) = directory
                    .sq_span(p as u32)?
                    .expect("v3 plan carries an sq span per cluster");
                writes.push(WriteReq::new(region.rkey(), sq_off, sq));
            }
        }
        setup_qp.write_doorbell(&writes)?;

        Ok(VectorStore {
            config: config.clone(),
            node,
            region,
            meta,
            directory: Arc::new(directory),
            base_len: data.len(),
            partition_sizes,
        })
    }

    /// Reassembles a store from snapshot parts (see [`crate::snapshot`]).
    pub(crate) fn from_parts(
        config: DHnswConfig,
        node: Arc<MemoryNode>,
        region: RegionHandle,
        meta: Arc<MetaIndex>,
        directory: Arc<Directory>,
        base_len: usize,
        partition_sizes: Vec<usize>,
    ) -> Self {
        VectorStore {
            config,
            node,
            region,
            meta,
            directory,
            base_len,
            partition_sizes,
        }
    }

    /// Opens a compute-instance session in the given [`SearchMode`],
    /// reporting to the process-wide [`Telemetry::global`] registry.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors from fetching the remote directory.
    pub fn connect(&self, mode: SearchMode) -> Result<ComputeNode> {
        ComputeNode::connect(self, mode, Telemetry::global())
    }

    /// Opens a compute-instance session that reports to a specific
    /// [`Telemetry`] registry instead of the global one — useful for
    /// tests and for benchmarks that want isolated counters.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors from fetching the remote directory.
    pub fn connect_with_telemetry(
        &self,
        mode: SearchMode,
        telemetry: Arc<Telemetry>,
    ) -> Result<ComputeNode> {
        ComputeNode::connect(self, mode, telemetry)
    }

    /// Rebuilds the store from its current remote state, folding every
    /// overflow insert into the base clusters and re-planning the layout
    /// with empty overflow areas.
    ///
    /// This is the re-layout step §3.2 defers to rebuild time: saturated
    /// groups ([`Error::OverflowFull`]) become writable again, oversized
    /// clusters get right-sized slots, and the directory epoch is bumped
    /// so compute nodes can detect the new layout. Global ids are
    /// preserved — results on the new store name the same vectors.
    ///
    /// Returns a fresh store on a fresh memory node; the old store stays
    /// queryable until dropped (a real deployment would swap them behind
    /// the load balancer).
    ///
    /// # Errors
    ///
    /// Propagates substrate and corruption errors from reading the old
    /// remote state.
    pub fn rebuild(&self) -> Result<VectorStore> {
        let qp = QueuePair::connect(&self.node, self.config.network());
        let rkey = self.region.rkey();
        let mut pairs: Vec<(u32, Vec<f32>)> = Vec::with_capacity(self.base_len);
        let mut seen = std::collections::HashSet::new();
        for loc in self.directory.locations() {
            let (off, len) = loc.read_span();
            let buf = qp.read_with_cause(rkey, off, len, rdma_sim::ReadCause::OverflowScan)?;
            let (cluster_bytes, overflow) = loc.split(&buf)?;
            let loaded = crate::cluster::LoadedCluster::from_remote(cluster_bytes, overflow)?;
            for (local, &gid) in loaded.sub().global_ids().iter().enumerate() {
                // Forced representatives live in two clusters; keep one.
                // Tombstoned ids are dropped for good — this is where a
                // delete becomes permanent.
                if !loaded.deleted().contains(&gid) && seen.insert(gid) {
                    pairs.push((gid, loaded.sub().hnsw().vector(local as u32).to_vec()));
                }
            }
            for rec in crate::cluster::parse_overflow(overflow, self.dim())? {
                if rec.partition == loc.partition
                    && !rec.tombstone
                    && !loaded.deleted().contains(&rec.global_id)
                    && seen.insert(rec.global_id)
                {
                    pairs.push((rec.global_id, rec.vector));
                }
            }
        }
        pairs.sort_by_key(|(gid, _)| *gid);
        let mut data = Dataset::with_capacity(self.dim(), pairs.len());
        let mut ids = Vec::with_capacity(pairs.len());
        for (gid, v) in pairs {
            data.push(&v)?;
            ids.push(gid);
        }
        Self::build_inner(data, ids, &self.config, self.directory.epoch() + 1)
    }

    /// The store configuration.
    pub fn config(&self) -> &DHnswConfig {
        &self.config
    }

    /// The memory-pool node.
    pub fn memory_node(&self) -> &Arc<MemoryNode> {
        &self.node
    }

    /// The registered region holding directory, clusters, and overflow.
    pub fn region(&self) -> RegionHandle {
        self.region
    }

    /// The shared meta-HNSW (cached by every compute node).
    pub fn meta(&self) -> &Arc<MetaIndex> {
        &self.meta
    }

    /// The layout directory as planned at build time.
    pub fn directory(&self) -> &Arc<Directory> {
        &self.directory
    }

    /// Number of partitions / sub-HNSW clusters.
    pub fn partitions(&self) -> usize {
        self.directory.partitions()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.directory.dim()
    }

    /// Vectors in the base build (excluding later inserts).
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Base vectors assigned to partition `p`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPartition`] for an out-of-range id.
    pub fn partition_size(&self, p: u32) -> Result<usize> {
        self.partition_sizes
            .get(p as usize)
            .copied()
            .ok_or(Error::UnknownPartition(p))
    }

    /// Vector counts for every partition (index == partition id), for
    /// build-time balance/skew analysis.
    pub fn partition_sizes(&self) -> &[usize] {
        &self.partition_sizes
    }

    /// Total remote bytes the store occupies (directory + clusters +
    /// overflow areas).
    pub fn remote_bytes(&self) -> u64 {
        self.directory.total_len()
    }
}

/// Classifies every row of `data` with the meta index, fanned out over
/// available cores. `beam` must match the query-routing fanout: a
/// narrower greedy descent can park a vector in a local-optimum
/// partition that query routes never visit.
fn classify_all(data: &Dataset, meta: &MetaIndex, beam: usize) -> Vec<u32> {
    let n = data.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    let chunk = n.div_ceil(threads);
    let mut out = vec![0u32; n];
    std::thread::scope(|s| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            s.spawn(move || {
                for (off, dst) in slot.iter_mut().enumerate() {
                    let route = meta.route(data.get(start + off), beam.max(1));
                    *dst = route.first().map(|n| n.id).unwrap_or(0);
                }
            });
        }
    });
    out
}

/// A partition's serialized sub-HNSW blob plus, on quantized builds,
/// its serialized SQ8 companion.
type ClusterBlobs = (Vec<u8>, Option<Vec<u8>>);

/// Builds and serializes one sub-HNSW per partition, in parallel over a
/// shared work queue (partition sizes are skewed, so static chunking
/// would straggle). With `quantize` set, each slot also carries the
/// partition's serialized SQ8 blob.
fn build_clusters(
    data: &Dataset,
    global_ids: &[u32],
    members: &[Vec<u32>],
    config: &DHnswConfig,
    quantize: bool,
) -> Result<Vec<ClusterBlobs>> {
    let parts = members.len();
    let slots: Vec<Mutex<Option<Result<ClusterBlobs>>>> =
        (0..parts).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(parts);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let p = next.fetch_add(1, Ordering::Relaxed);
                if p >= parts {
                    break;
                }
                let rows = &members[p];
                let vectors = data.select(rows);
                let gids: Vec<u32> = rows.iter().map(|&r| global_ids[r as usize]).collect();
                let sq = if quantize {
                    Some(SqCluster::build(p as u32, &vectors, gids.clone()).map(|c| c.to_bytes()))
                } else {
                    None
                };
                let built = SubCluster::build(p as u32, vectors, gids, &config.sub_params())
                    .map(|c| c.to_bytes());
                *slots[p].lock() = Some(match (built, sq) {
                    (Ok(blob), None) => Ok((blob, None)),
                    (Ok(blob), Some(Ok(sq_blob))) => Ok((blob, Some(sq_blob))),
                    (Err(e), _) | (_, Some(Err(e))) => Err(e),
                });
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every partition slot is filled by the work queue")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LoadedCluster;
    use vecsim::gen;

    fn small_store(n: usize) -> (Dataset, VectorStore) {
        let data = gen::sift_like(n, 21).unwrap();
        let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
        (data, store)
    }

    #[test]
    fn build_covers_every_vector_exactly_once_or_more() {
        let (data, store) = small_store(800);
        let total: usize = (0..store.partitions() as u32)
            .map(|p| store.partition_size(p).unwrap())
            .sum();
        // Forced representatives can duplicate a vector, never drop one.
        assert!(total >= data.len());
        assert_eq!(store.base_len(), data.len());
    }

    #[test]
    fn no_partition_is_empty() {
        let (_, store) = small_store(500);
        for p in 0..store.partitions() as u32 {
            assert!(store.partition_size(p).unwrap() > 0, "partition {p} empty");
        }
    }

    #[test]
    fn remote_region_matches_directory_plan() {
        let (_, store) = small_store(400);
        assert_eq!(
            store.memory_node().region_len(store.region().rkey()).unwrap(),
            store.directory().total_len()
        );
        assert_eq!(store.remote_bytes(), store.directory().total_len());
    }

    #[test]
    fn remote_clusters_deserialize_and_search() {
        let (data, store) = small_store(400);
        let qp = QueuePair::connect(store.memory_node(), store.config().network());
        let dir = store.directory();
        for p in (0..store.partitions() as u32).step_by(5) {
            let loc = dir.location(p).unwrap();
            let (off, len) = loc.read_span();
            let buf = qp.read(store.region().rkey(), off, len).unwrap();
            let (cluster_bytes, overflow) = loc.split(&buf).unwrap();
            let loaded = LoadedCluster::from_remote(cluster_bytes, overflow).unwrap();
            assert_eq!(loaded.partition(), p);
            assert_eq!(loaded.overflow_len(), 0);
            assert_eq!(loaded.sub().len(), store.partition_size(p).unwrap());
            // Every member vector finds itself.
            let gid = loaded.sub().global_ids()[0];
            let hit = loaded.search(data.get(gid as usize), 1, 8);
            assert_eq!(hit[0].dist, 0.0);
        }
    }

    #[test]
    fn remote_directory_matches_planned_directory() {
        let (_, store) = small_store(300);
        let qp = QueuePair::connect(store.memory_node(), store.config().network());
        let bytes = qp
            .read(
                store.region().rkey(),
                0,
                Directory::byte_size(store.partitions()) as u64,
            )
            .unwrap();
        let fetched = Directory::from_bytes(&bytes).unwrap();
        assert_eq!(&fetched, store.directory().as_ref());
        assert_eq!(fetched.next_id(), store.base_len() as u64);
    }

    #[test]
    fn quantized_build_places_sq_blobs_in_the_tail() {
        let data = gen::sift_like(400, 21).unwrap();
        let cfg = DHnswConfig::small().with_quantize_mode(QuantizeMode::Sq8);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let dir = store.directory();
        assert!(dir.has_sq_spans());
        assert_eq!(
            store.memory_node().region_len(store.region().rkey()).unwrap(),
            dir.total_len()
        );
        let qp = QueuePair::connect(store.memory_node(), store.config().network());
        for p in (0..store.partitions() as u32).step_by(7) {
            let (off, len) = dir.sq_span(p).unwrap().unwrap();
            let buf = qp.read(store.region().rkey(), off, len).unwrap();
            let sq = SqCluster::from_bytes(&buf).unwrap();
            assert_eq!(sq.partition(), p);
            assert_eq!(sq.len(), store.partition_size(p).unwrap());
            // A member vector finds itself via the quantized scan.
            let gid = sq.global_ids()[0];
            let loaded = crate::cluster::LoadedCluster::from_remote_sq(&buf, None).unwrap();
            let hit = loaded.search_sq(data.get(gid as usize), 1);
            assert_eq!(hit[0].id, gid);
        }
        // The compressed copies cost well under half of the f32 regions.
        let sq_total = dir.sq_live_bytes();
        let cluster_total: u64 = dir.locations().iter().map(|l| l.cluster_len).sum();
        assert!(sq_total * 2 < cluster_total, "{sq_total} vs {cluster_total}");
    }

    #[test]
    fn quantized_builds_are_deterministic() {
        let data = gen::sift_like(300, 33).unwrap();
        let cfg = DHnswConfig::small().with_quantize_mode(QuantizeMode::Sq8);
        let a = VectorStore::build(data.clone(), &cfg).unwrap();
        let b = VectorStore::build(data, &cfg).unwrap();
        assert_eq!(a.directory().as_ref(), b.directory().as_ref());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let data = Dataset::new(8);
        assert!(VectorStore::build(data, &DHnswConfig::small()).is_err());
    }

    #[test]
    fn builds_are_deterministic() {
        let data = gen::sift_like(300, 33).unwrap();
        let a = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
        let b = VectorStore::build(data, &DHnswConfig::small()).unwrap();
        assert_eq!(a.directory().as_ref(), b.directory().as_ref());
        assert_eq!(a.partition_sizes, b.partition_sizes);
    }

    #[test]
    fn rebuild_without_inserts_preserves_content() {
        let (data, store) = small_store(400);
        let rebuilt = store.rebuild().unwrap();
        assert_eq!(rebuilt.base_len(), data.len());
        assert_eq!(rebuilt.directory().epoch(), 1);
        // Same answers through a fresh compute node.
        let q = data.get(7);
        let a = store
            .connect(crate::SearchMode::Full)
            .unwrap()
            .query(q, 5, 32)
            .unwrap();
        let b = rebuilt
            .connect(crate::SearchMode::Full)
            .unwrap()
            .query(q, 5, 32)
            .unwrap();
        assert_eq!(a[0].id, b[0].id);
        assert_eq!(a[0].dist, b[0].dist);
    }

    #[test]
    fn rebuild_folds_overflow_into_base_clusters() {
        use vecsim::gen as vgen;
        let (data, store) = small_store(300);
        let node = store.connect(crate::SearchMode::Full).unwrap();
        let inserts = vgen::perturbed_queries(&data, 12, 0.01, 99).unwrap();
        let mut gids = Vec::new();
        for v in inserts.iter() {
            gids.push(node.insert(v).unwrap());
        }
        let rebuilt = store.rebuild().unwrap();
        assert_eq!(rebuilt.base_len(), data.len() + 12);
        // Inserted ids survive the rebuild as base vectors.
        let fresh = rebuilt.connect(crate::SearchMode::Full).unwrap();
        for (i, v) in inserts.iter().enumerate() {
            let hit = fresh.query(v, 1, 32).unwrap();
            assert_eq!(hit[0].id, gids[i], "insert {i} lost by rebuild");
            assert_eq!(hit[0].dist, 0.0);
        }
        // Overflow areas are empty again: inserts into a previously
        // saturated group succeed on the rebuilt store.
        let again = fresh.insert(inserts.get(0)).unwrap();
        assert!(u64::from(again) >= rebuilt.base_len() as u64);
    }

    #[test]
    fn rebuild_makes_deletions_permanent() {
        let (data, store) = small_store(300);
        let node = store.connect(crate::SearchMode::Full).unwrap();
        let target = data.get(4).to_vec();
        let victim = node.query(&target, 1, 48).unwrap()[0].id;
        node.delete(&target, victim).unwrap();
        let rebuilt = store.rebuild().unwrap();
        assert_eq!(rebuilt.base_len(), data.len() - 1);
        let fresh = rebuilt.connect(crate::SearchMode::Full).unwrap();
        let after = fresh.query(&target, 5, 48).unwrap();
        assert!(after.iter().all(|n| n.id != victim));
    }

    #[test]
    fn rebuild_unclogs_a_saturated_group() {
        let data = vecsim::gen::sift_like(200, 55).unwrap();
        let cfg = DHnswConfig::small().with_overflow_slots(1);
        let store = VectorStore::build(data.clone(), &cfg).unwrap();
        let node = store.connect(crate::SearchMode::Full).unwrap();
        let v = data.get(0);
        node.insert(v).unwrap();
        assert!(matches!(
            node.insert(v).unwrap_err(),
            crate::Error::OverflowFull { .. }
        ));
        let rebuilt = store.rebuild().unwrap();
        let fresh = rebuilt.connect(crate::SearchMode::Full).unwrap();
        fresh.insert(v).unwrap();
    }

    #[test]
    fn unknown_partition_size_is_an_error() {
        let (_, store) = small_store(200);
        assert!(store.partition_size(10_000).is_err());
    }
}
