use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value was out of range.
    InvalidParameter(String),
    /// A query or inserted vector did not match the store dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Supplied dimensionality.
        got: usize,
    },
    /// A partition id outside the partition table.
    UnknownPartition(u32),
    /// The shared overflow area of a group is full; the inserted vector
    /// cannot be placed without re-laying-out the group.
    OverflowFull {
        /// Partition the insert was routed to.
        partition: u32,
        /// Bytes available in the group's overflow area.
        capacity: u64,
    },
    /// A serialized cluster or directory blob failed validation.
    Corrupt(String),
    /// A cluster read kept observing concurrent mutation (or substrate
    /// faults) past the engine-level retry budget, and the session does
    /// not permit degraded results.
    ReadRetriesExhausted {
        /// Partition whose read never stabilized.
        partition: u32,
        /// Engine-level attempts made (each on top of rdma-sim's own
        /// retransmission budget).
        attempts: u32,
    },
    /// An error from the RDMA substrate.
    Rdma(rdma_sim::Error),
    /// An error from the HNSW layer.
    Hnsw(hnsw::Error),
    /// An error from the vector layer.
    Vecsim(vecsim::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Error::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Error::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            Error::OverflowFull {
                partition,
                capacity,
            } => write!(
                f,
                "overflow area serving partition {partition} is full ({capacity} bytes)"
            ),
            Error::Corrupt(what) => write!(f, "corrupt remote data: {what}"),
            Error::ReadRetriesExhausted {
                partition,
                attempts,
            } => write!(
                f,
                "cluster {partition} read did not stabilize after {attempts} attempts"
            ),
            Error::Rdma(e) => write!(f, "rdma error: {e}"),
            Error::Hnsw(e) => write!(f, "hnsw error: {e}"),
            Error::Vecsim(e) => write!(f, "vector error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Rdma(e) => Some(e),
            Error::Hnsw(e) => Some(e),
            Error::Vecsim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rdma_sim::Error> for Error {
    fn from(e: rdma_sim::Error) -> Self {
        Error::Rdma(e)
    }
}

impl From<hnsw::Error> for Error {
    fn from(e: hnsw::Error) -> Self {
        Error::Hnsw(e)
    }
}

impl From<vecsim::Error> for Error {
    fn from(e: vecsim::Error) -> Self {
        Error::Vecsim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_concise() {
        assert_eq!(
            Error::UnknownPartition(7).to_string(),
            "unknown partition 7"
        );
        let e = Error::OverflowFull {
            partition: 3,
            capacity: 1024,
        };
        assert!(e.to_string().contains("partition 3"));
        let e = Error::ReadRetriesExhausted {
            partition: 5,
            attempts: 4,
        };
        assert!(e.to_string().contains("cluster 5"));
        assert!(e.to_string().contains("4 attempts"));
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error as _;
        let e = Error::from(rdma_sim::Error::UnknownRegion(1));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
