//! Per-partition sub-HNSW clusters and their wire format.
//!
//! A [`SubCluster`] is the unit d-HNSW moves over the network: a complete
//! HNSW index over one partition's vectors, together with the mapping from
//! partition-local ids back to global dataset ids. Serialized clusters are
//! fully self-contained byte blobs (§3.2), so a compute node can fetch one
//! with a single contiguous `RDMA_READ` and search it immediately.
//!
//! Newly inserted vectors do not rewrite the serialized cluster; they are
//! appended to the group's shared *overflow area* as fixed-size
//! [`OverflowRecord`]s. A [`LoadedCluster`] combines both: sub-HNSW search
//! over the base vectors plus an exact scan over the (small) overflow
//! tail, merged into one result.

use hnsw::{HnswIndex, HnswParams, SearchStats};
use vecsim::quantize::SqParams;
use vecsim::{Dataset, Neighbor, TopK};

use crate::{Error, Result};

/// Magic tag of a serialized cluster.
pub const CLUSTER_MAGIC: u32 = 0x3143_4844; // "DHC1"
/// Magic tag of a serialized SQ8 cluster blob.
pub const SQ_CLUSTER_MAGIC: u32 = 0x3243_4844; // "DHC2"

/// A sub-HNSW over one partition.
///
/// # Example
///
/// ```rust
/// use dhnsw::cluster::SubCluster;
/// use hnsw::HnswParams;
/// use vecsim::Dataset;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let vectors = Dataset::from_rows(&[[0.0f32, 0.0], [1.0, 1.0]])?;
/// let cluster = SubCluster::build(7, vectors, vec![100, 200], &HnswParams::new(4, 16))?;
/// let hits = cluster.search(&[0.1, 0.1], 1, 8);
/// assert_eq!(hits[0].id, 100); // global id, not local
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SubCluster {
    partition: u32,
    hnsw: HnswIndex,
    global_ids: Vec<u32>,
}

impl SubCluster {
    /// Builds the sub-HNSW for `partition` over `vectors`, which map
    /// position-wise onto `global_ids`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `vectors` and
    /// `global_ids` disagree in length or the partition is empty.
    pub fn build(
        partition: u32,
        vectors: Dataset,
        global_ids: Vec<u32>,
        params: &HnswParams,
    ) -> Result<Self> {
        if vectors.len() != global_ids.len() {
            return Err(Error::InvalidParameter(format!(
                "{} vectors but {} global ids",
                vectors.len(),
                global_ids.len()
            )));
        }
        if vectors.is_empty() {
            return Err(Error::InvalidParameter(format!(
                "partition {partition} is empty"
            )));
        }
        let hnsw = HnswIndex::build(vectors, params)?;
        Ok(SubCluster {
            partition,
            hnsw,
            global_ids,
        })
    }

    /// The partition this cluster serves.
    pub fn partition(&self) -> u32 {
        self.partition
    }

    /// Number of base vectors (excluding overflow inserts).
    pub fn len(&self) -> usize {
        self.hnsw.len()
    }

    /// Whether the cluster holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.hnsw.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.hnsw.dim()
    }

    /// Searches the sub-HNSW; results carry **global** ids.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        let mut stats = SearchStats::default();
        self.search_with_stats(query, k, ef, &mut stats)
    }

    /// Like [`SubCluster::search`], accumulating work counters.
    pub fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.hnsw
            .search_with_stats(query, k, ef, stats)
            .into_iter()
            .map(|n| Neighbor::new(self.global_ids[n.id as usize], n.dist))
            .collect()
    }

    /// The global ids of the base vectors, indexed by local id.
    pub fn global_ids(&self) -> &[u32] {
        &self.global_ids
    }

    /// The underlying HNSW.
    pub fn hnsw(&self) -> &HnswIndex {
        &self.hnsw
    }

    /// Serializes into the wire format: magic, partition, id map, then
    /// the HNSW blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let hnsw_blob = hnsw::serialize::to_bytes(&self.hnsw);
        let mut out = Vec::with_capacity(self.serialized_size());
        out.extend_from_slice(&CLUSTER_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.partition.to_le_bytes());
        out.extend_from_slice(&(self.global_ids.len() as u32).to_le_bytes());
        out.extend_from_slice(&(hnsw_blob.len() as u64).to_le_bytes());
        for &id in &self.global_ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&hnsw_blob);
        out
    }

    /// Exact size [`SubCluster::to_bytes`] produces.
    pub fn serialized_size(&self) -> usize {
        4 + 4 + 4 + 8 + 4 * self.global_ids.len() + hnsw::serialize::serialized_size(&self.hnsw)
    }

    /// Deserializes a blob produced by [`SubCluster::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on bad magic, truncation, or an invalid
    /// embedded HNSW blob.
    pub fn from_bytes(blob: &[u8]) -> Result<Self> {
        let take = |off: usize, n: usize| -> Result<&[u8]> {
            blob.get(off..off + n)
                .ok_or_else(|| Error::Corrupt("truncated cluster blob".into()))
        };
        let magic = u32::from_le_bytes(take(0, 4)?.try_into().expect("4 bytes"));
        if magic != CLUSTER_MAGIC {
            return Err(Error::Corrupt(format!("bad cluster magic {magic:#x}")));
        }
        let partition = u32::from_le_bytes(take(4, 4)?.try_into().expect("4 bytes"));
        let n = u32::from_le_bytes(take(8, 4)?.try_into().expect("4 bytes")) as usize;
        let hnsw_len = u64::from_le_bytes(take(12, 8)?.try_into().expect("8 bytes")) as usize;
        let ids_off = 20;
        let mut global_ids = Vec::with_capacity(n);
        for i in 0..n {
            let b = take(ids_off + 4 * i, 4)?;
            global_ids.push(u32::from_le_bytes(b.try_into().expect("4 bytes")));
        }
        let hnsw_off = ids_off + 4 * n;
        let hnsw_blob = take(hnsw_off, hnsw_len)?;
        let hnsw = hnsw::serialize::from_bytes(hnsw_blob)
            .map_err(|e| Error::Corrupt(format!("embedded hnsw: {e}")))?;
        if hnsw.len() != n {
            return Err(Error::Corrupt(format!(
                "id map has {n} entries but hnsw holds {}",
                hnsw.len()
            )));
        }
        Ok(SubCluster {
            partition,
            hnsw,
            global_ids,
        })
    }
}

/// The scalar-quantized copy of one partition's base vectors, as written
/// into the layout-v3 tail region and fetched by quantized queries.
///
/// Unlike [`SubCluster`] this blob carries **no graph**: at SQ8 rates
/// the cluster is small enough that an exhaustive asymmetric scan over
/// the codes is cheaper than shipping the adjacency lists, and the scan
/// result is a superset of what a graph search over the same codes
/// could return. Exact distances for the survivors come from the
/// engine's targeted full-vector rerank reads against the
/// full-precision cluster.
///
/// # Wire format
///
/// ```text
/// magic u32 | partition u32 | n u32 | dim u32
/// min   dim × f32
/// scale dim × f32
/// ids   n × u32
/// codes n × dim × u8
/// ```
#[derive(Debug)]
pub struct SqCluster {
    partition: u32,
    params: SqParams,
    global_ids: Vec<u32>,
    codes: Vec<u8>,
    index: std::collections::HashMap<u32, u32>,
}

impl SqCluster {
    /// Trains per-cluster quantization parameters over `vectors` and
    /// encodes every row. `global_ids` maps rows to dataset ids, as in
    /// [`SubCluster::build`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on an empty partition or a
    /// row-count/id-count mismatch.
    pub fn build(partition: u32, vectors: &Dataset, global_ids: Vec<u32>) -> Result<Self> {
        if vectors.len() != global_ids.len() {
            return Err(Error::InvalidParameter(format!(
                "{} vectors but {} global ids",
                vectors.len(),
                global_ids.len()
            )));
        }
        if vectors.is_empty() {
            return Err(Error::InvalidParameter(format!(
                "partition {partition} is empty"
            )));
        }
        let params = SqParams::train(vectors.dim(), vectors.iter())
            .map_err(|e| Error::InvalidParameter(format!("sq train: {e}")))?;
        let mut codes = Vec::with_capacity(vectors.len() * vectors.dim());
        for row in vectors.iter() {
            codes.extend_from_slice(&params.encode(row));
        }
        let index = global_ids
            .iter()
            .enumerate()
            .map(|(i, &gid)| (gid, i as u32))
            .collect();
        Ok(SqCluster {
            partition,
            params,
            global_ids,
            codes,
            index,
        })
    }

    /// The partition this blob serves.
    pub fn partition(&self) -> u32 {
        self.partition
    }

    /// Number of encoded base vectors.
    pub fn len(&self) -> usize {
        self.global_ids.len()
    }

    /// Whether the blob holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.global_ids.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.params.dim()
    }

    /// The per-cluster quantization parameters.
    pub fn params(&self) -> &SqParams {
        &self.params
    }

    /// The global ids of the encoded vectors, indexed by local row.
    pub fn global_ids(&self) -> &[u32] {
        &self.global_ids
    }

    /// The local row index of global id `gid`, if it is a base vector
    /// of this cluster — what the rerank read path uses to address the
    /// full-precision vector inside the uncompressed cluster blob.
    pub fn local_of(&self, gid: u32) -> Option<u32> {
        self.index.get(&gid).copied()
    }

    /// The codes of local row `local`.
    pub fn codes_of(&self, local: u32) -> &[u8] {
        let dim = self.dim();
        let start = local as usize * dim;
        &self.codes[start..start + dim]
    }

    /// Asymmetric squared-L2 distance between `query` and row `local`.
    pub fn distance_to(&self, query: &[f32], local: u32) -> f32 {
        self.params.asymmetric_l2(query, self.codes_of(local))
    }

    /// Serializes into the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_size());
        out.extend_from_slice(&SQ_CLUSTER_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.partition.to_le_bytes());
        out.extend_from_slice(&(self.global_ids.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.dim() as u32).to_le_bytes());
        for &m in self.params.min() {
            out.extend_from_slice(&m.to_le_bytes());
        }
        for &s in self.params.scale() {
            out.extend_from_slice(&s.to_le_bytes());
        }
        for &id in &self.global_ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&self.codes);
        out
    }

    /// Exact size [`SqCluster::to_bytes`] produces.
    pub fn serialized_size(&self) -> usize {
        Self::wire_size(self.global_ids.len(), self.dim())
    }

    /// Wire size of an SQ8 blob over `n` vectors of dimensionality
    /// `dim`.
    pub fn wire_size(n: usize, dim: usize) -> usize {
        4 + 4 + 4 + 4 + 8 * dim + 4 * n + n * dim
    }

    /// Deserializes a blob produced by [`SqCluster::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on bad magic or truncation.
    pub fn from_bytes(blob: &[u8]) -> Result<Self> {
        let take = |off: usize, n: usize| -> Result<&[u8]> {
            blob.get(off..off + n)
                .ok_or_else(|| Error::Corrupt("truncated sq cluster blob".into()))
        };
        let u32_at = |off: usize| -> Result<u32> {
            Ok(u32::from_le_bytes(take(off, 4)?.try_into().expect("4")))
        };
        if u32_at(0)? != SQ_CLUSTER_MAGIC {
            return Err(Error::Corrupt("bad sq cluster magic".into()));
        }
        let partition = u32_at(4)?;
        let n = u32_at(8)? as usize;
        let dim = u32_at(12)? as usize;
        if n == 0 || dim == 0 {
            return Err(Error::Corrupt("empty sq cluster blob".into()));
        }
        let f32s_at = |off: usize, count: usize| -> Result<Vec<f32>> {
            let raw = take(off, 4 * count)?;
            Ok(raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
                .collect())
        };
        let min = f32s_at(16, dim)?;
        let scale = f32s_at(16 + 4 * dim, dim)?;
        let params = SqParams::from_parts(min, scale)
            .map_err(|e| Error::Corrupt(format!("sq params: {e}")))?;
        let ids_off = 16 + 8 * dim;
        let mut global_ids = Vec::with_capacity(n);
        for i in 0..n {
            global_ids.push(u32_at(ids_off + 4 * i)?);
        }
        let codes = take(ids_off + 4 * n, n * dim)?.to_vec();
        let index = global_ids
            .iter()
            .enumerate()
            .map(|(i, &gid)| (gid, i as u32))
            .collect();
        Ok(SqCluster {
            partition,
            params,
            global_ids,
            codes,
            index,
        })
    }
}

/// High bit of the on-wire partition field: set for tombstones (deletes),
/// clear for inserted vectors. Partition ids therefore must stay below
/// `2^31`, which the representative counts in play never approach.
pub const TOMBSTONE_BIT: u32 = 1 << 31;

/// Value of the commit marker word that ends every *committed* overflow
/// slot. A slot whose final word differs (the all-zero value of a
/// reserved-but-never-written slot, most importantly) is treated as
/// uncommitted and skipped at materialization.
pub const OVERFLOW_COMMIT: u32 = 0x3256_4F44; // "DOV2"

/// 32-bit FNV-1a over `bytes` — dependency-free record checksum.
fn fnv1a(seed: u32, bytes: &[u8]) -> u32 {
    let mut h = seed;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// FNV-1a offset basis (the conventional starting seed).
const FNV_OFFSET: u32 = 0x811c_9dc5;

/// A record appended after the cluster was serialized, living in the
/// group's shared overflow area. Two kinds share one fixed-size slot
/// format:
///
/// - an **insert** carries a new vector under a fresh global id;
/// - a **tombstone** marks an existing global id (base or inserted) as
///   deleted; its vector payload is ignored.
///
/// # Wire format (v2)
///
/// ```text
/// offset  size  field
/// 0       4     tag        (partition | TOMBSTONE_BIT)
/// 4       4     global_id
/// 8       4     len        (payload bytes = 4 * dim, length prefix)
/// 12      4     checksum   (FNV-1a over tag..len + payload)
/// 16      4*dim payload    (f32 little-endian)
/// ...           zero padding to 8-byte alignment
/// end-4   4     commit     (OVERFLOW_COMMIT, written last)
/// ```
///
/// The commit marker occupies the *final* word of the slot, so a slot is
/// only ever observed committed after every preceding byte of the record
/// landed. A fault between the slot-reserving FAA and the RDMA_WRITE
/// leaves the slot all-zero: no commit marker, skipped on read. The
/// checksum additionally rejects slots whose bytes were damaged after
/// commit.
#[derive(Debug, Clone, PartialEq)]
pub struct OverflowRecord {
    /// Partition the record belongs to (either cluster of the group).
    pub partition: u32,
    /// Global id: the inserted vector's id, or the deleted target's id.
    pub global_id: u32,
    /// The vector itself (zeroed and ignored for tombstones).
    pub vector: Vec<f32>,
    /// Whether this record deletes `global_id` instead of inserting it.
    pub tombstone: bool,
}

impl OverflowRecord {
    /// An insert record.
    pub fn insert(partition: u32, global_id: u32, vector: Vec<f32>) -> Self {
        OverflowRecord {
            partition,
            global_id,
            vector,
            tombstone: false,
        }
    }

    /// A tombstone deleting `global_id` from `partition`.
    pub fn tombstone(partition: u32, global_id: u32, dim: usize) -> Self {
        OverflowRecord {
            partition,
            global_id,
            vector: vec![0.0; dim],
            tombstone: true,
        }
    }

    /// On-wire size of one record for dimensionality `dim`: 16-byte
    /// header, payload, trailing commit word, padded to an 8-byte
    /// multiple so records never straddle the alignment the FAA bump
    /// allocator guarantees.
    pub fn wire_size(dim: usize) -> usize {
        (16 + 4 * dim + 4 + 7) & !7
    }

    /// On-wire size under the v1 framing (no length prefix, checksum, or
    /// commit marker). Kept for decoding pre-v2 snapshots.
    pub fn wire_size_legacy(dim: usize) -> usize {
        (8 + 4 * dim + 7) & !7
    }

    /// Encodes the record into exactly [`OverflowRecord::wire_size`]
    /// bytes, commit marker in the slot's final word.
    pub fn to_bytes(&self) -> Vec<u8> {
        let dim = self.vector.len();
        let size = Self::wire_size(dim);
        let mut out = Vec::with_capacity(size);
        let tag = self.partition | if self.tombstone { TOMBSTONE_BIT } else { 0 };
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&self.global_id.to_le_bytes());
        out.extend_from_slice(&((4 * dim) as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // checksum backfilled below
        for &x in &self.vector {
            out.extend_from_slice(&x.to_le_bytes());
        }
        let sum = fnv1a(fnv1a(FNV_OFFSET, &out[0..12]), &out[16..16 + 4 * dim]);
        out[12..16].copy_from_slice(&sum.to_le_bytes());
        out.resize(size - 4, 0);
        out.extend_from_slice(&OVERFLOW_COMMIT.to_le_bytes());
        out
    }

    /// Decodes one committed record of dimensionality `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when `bytes` is shorter than the wire
    /// size, the commit marker is absent (torn or never-completed
    /// insert), the length prefix disagrees with `dim`, or the checksum
    /// does not match.
    pub fn from_bytes(bytes: &[u8], dim: usize) -> Result<Self> {
        let size = Self::wire_size(dim);
        if bytes.len() < size {
            return Err(Error::Corrupt("truncated overflow record".into()));
        }
        let word = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        if word(size - 4) != OVERFLOW_COMMIT {
            return Err(Error::Corrupt("uncommitted overflow record".into()));
        }
        let tag = word(0);
        let global_id = word(4);
        let len = word(8) as usize;
        if len != 4 * dim {
            return Err(Error::Corrupt(format!(
                "overflow record length prefix {len} does not match dim {dim}"
            )));
        }
        let sum = fnv1a(fnv1a(FNV_OFFSET, &bytes[0..12]), &bytes[16..16 + len]);
        if sum != word(12) {
            return Err(Error::Corrupt("overflow record checksum mismatch".into()));
        }
        let mut vector = Vec::with_capacity(dim);
        for i in 0..dim {
            vector.push(f32::from_le_bytes(
                bytes[16 + 4 * i..20 + 4 * i].try_into().expect("4 bytes"),
            ));
        }
        Ok(OverflowRecord {
            partition: tag & !TOMBSTONE_BIT,
            global_id,
            vector,
            tombstone: tag & TOMBSTONE_BIT != 0,
        })
    }

    /// Decodes one record under the v1 framing (tag, global id, payload;
    /// no integrity fields). Pre-v2 snapshots use this layout.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when `bytes` is shorter than
    /// [`OverflowRecord::wire_size_legacy`].
    pub fn from_bytes_legacy(bytes: &[u8], dim: usize) -> Result<Self> {
        if bytes.len() < Self::wire_size_legacy(dim) {
            return Err(Error::Corrupt("truncated overflow record".into()));
        }
        let tag = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        let global_id = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let mut vector = Vec::with_capacity(dim);
        for i in 0..dim {
            let off = 8 + 4 * i;
            vector.push(f32::from_le_bytes(
                bytes[off..off + 4].try_into().expect("4 bytes"),
            ));
        }
        Ok(OverflowRecord {
            partition: tag & !TOMBSTONE_BIT,
            global_id,
            vector,
            tombstone: tag & TOMBSTONE_BIT != 0,
        })
    }
}

/// Parses a raw overflow area: an 8-byte little-endian `used` counter
/// followed by `used` bytes of fixed-size record slots.
///
/// Slots without a valid commit marker or whose checksum fails — torn or
/// never-completed inserts — are *skipped*, not errors: a crashed writer
/// must never poison every subsequent read of its group.
///
/// # Errors
///
/// Returns [`Error::Corrupt`] only when the area is shorter than its own
/// `used` counter header.
pub fn parse_overflow(area: &[u8], dim: usize) -> Result<Vec<OverflowRecord>> {
    Ok(parse_overflow_detailed(area, dim)?.0)
}

/// Like [`parse_overflow`], additionally reporting how many slots inside
/// the committed range were skipped as uncommitted or damaged.
///
/// # Errors
///
/// Same as [`parse_overflow`].
pub fn parse_overflow_detailed(
    area: &[u8],
    dim: usize,
) -> Result<(Vec<OverflowRecord>, usize)> {
    if area.len() < 8 {
        return Err(Error::Corrupt("overflow area shorter than header".into()));
    }
    let used = u64::from_le_bytes(area[0..8].try_into().expect("8 bytes")) as usize;
    let rec = OverflowRecord::wire_size(dim);
    // A concurrent reservation may have bumped `used` past capacity (the
    // failed insert writes nothing); only whole records within the area
    // can be live.
    let usable = used.min(area.len() - 8);
    let count = usable / rec;
    let mut out = Vec::with_capacity(count);
    let mut skipped = 0usize;
    for i in 0..count {
        let off = 8 + i * rec;
        match OverflowRecord::from_bytes(&area[off..off + rec], dim) {
            Ok(r) => out.push(r),
            Err(_) => skipped += 1,
        }
    }
    Ok((out, skipped))
}

/// [`parse_overflow`] under the v1 framing, for pre-v2 snapshots. v1
/// slots carry no commit marker, so a torn insert is indistinguishable
/// from a record of zeros — exactly the defect the v2 framing removes.
///
/// # Errors
///
/// Returns [`Error::Corrupt`] when the area is shorter than its counter
/// header or a record is truncated.
pub fn parse_overflow_legacy(area: &[u8], dim: usize) -> Result<Vec<OverflowRecord>> {
    if area.len() < 8 {
        return Err(Error::Corrupt("overflow area shorter than header".into()));
    }
    let used = u64::from_le_bytes(area[0..8].try_into().expect("8 bytes")) as usize;
    let rec = OverflowRecord::wire_size_legacy(dim);
    let usable = used.min(area.len() - 8);
    let count = usable / rec;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let off = 8 + i * rec;
        out.push(OverflowRecord::from_bytes_legacy(&area[off..off + rec], dim)?);
    }
    Ok(out)
}

/// The searchable body of a [`LoadedCluster`]: the full-precision
/// sub-HNSW, or its scalar-quantized copy when the engine fetched the
/// compressed wire format.
#[derive(Debug)]
enum Payload {
    Full(SubCluster),
    Sq(SqCluster),
}

/// One approximate hit from a quantized cluster scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqHit {
    /// Global id of the candidate.
    pub id: u32,
    /// Asymmetric squared-L2 distance for base vectors; exact distance
    /// for overflow inserts.
    pub dist: f32,
    /// Local base row (for rerank addressing into the full-precision
    /// cluster blob), or `None` for an overflow insert, whose distance
    /// is already exact.
    pub local: Option<u32>,
}

/// A cluster as materialized on a compute node: the deserialized base
/// sub-HNSW plus the overflow inserts belonging to its partition, minus
/// anything its tombstones deleted.
///
/// When the engine runs in SQ8 mode the base payload is the compressed
/// [`SqCluster`] instead; searches then return asymmetric distances
/// and the engine reranks the survivors with exact reads.
#[derive(Debug)]
pub struct LoadedCluster {
    payload: Payload,
    extra: Vec<(u32, Vec<f32>)>,
    deleted: std::collections::HashSet<u32>,
    skipped_slots: usize,
}

/// Splits a parsed overflow area into this partition's inserts and
/// tombstones, dropping inserts that a later tombstone killed.
fn fold_overflow(
    partition: u32,
    records: Vec<OverflowRecord>,
) -> (Vec<(u32, Vec<f32>)>, std::collections::HashSet<u32>) {
    let mut extra: Vec<(u32, Vec<f32>)> = Vec::new();
    let mut deleted = std::collections::HashSet::new();
    for r in records {
        if r.partition != partition {
            continue;
        }
        if r.tombstone {
            deleted.insert(r.global_id);
        } else {
            extra.push((r.global_id, r.vector));
        }
    }
    extra.retain(|(gid, _)| !deleted.contains(gid));
    (extra, deleted)
}

impl LoadedCluster {
    /// Materializes a cluster from the two slices a contiguous group read
    /// yields: the serialized cluster and its group's raw overflow area.
    /// Overflow records belonging to the *other* cluster of the group are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Corrupt`] from either parse.
    pub fn from_remote(cluster_bytes: &[u8], overflow_area: &[u8]) -> Result<Self> {
        let sub = SubCluster::from_bytes(cluster_bytes)?;
        let (records, skipped_slots) = parse_overflow_detailed(overflow_area, sub.dim())?;
        let (extra, deleted) = fold_overflow(sub.partition(), records);
        Ok(LoadedCluster {
            payload: Payload::Full(sub),
            extra,
            deleted,
            skipped_slots,
        })
    }

    /// Materializes a cluster from its SQ8 blob. `overflow_area` is the
    /// group's raw overflow area when one was read; `None` means the
    /// cluster's version slot proved the overflow pristine (version 0,
    /// nothing ever inserted), so no overflow bytes were fetched.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Corrupt`] from either parse.
    pub fn from_remote_sq(sq_bytes: &[u8], overflow_area: Option<&[u8]>) -> Result<Self> {
        let sq = SqCluster::from_bytes(sq_bytes)?;
        let (extra, deleted, skipped_slots) = match overflow_area {
            Some(area) => {
                let (records, skipped) = parse_overflow_detailed(area, sq.dim())?;
                let (extra, deleted) = fold_overflow(sq.partition(), records);
                (extra, deleted, skipped)
            }
            None => (Vec::new(), std::collections::HashSet::new(), 0),
        };
        Ok(LoadedCluster {
            payload: Payload::Sq(sq),
            extra,
            deleted,
            skipped_slots,
        })
    }

    /// Wraps a freshly built cluster with no overflow (used at store-build
    /// time and in tests).
    pub fn from_sub(sub: SubCluster) -> Self {
        LoadedCluster {
            payload: Payload::Full(sub),
            extra: Vec::new(),
            deleted: std::collections::HashSet::new(),
            skipped_slots: 0,
        }
    }

    /// Overflow slots inside the committed range that were skipped as
    /// uncommitted or damaged (torn inserts survived).
    pub fn skipped_slots(&self) -> usize {
        self.skipped_slots
    }

    /// Global ids tombstoned in this cluster's overflow.
    pub fn deleted(&self) -> &std::collections::HashSet<u32> {
        &self.deleted
    }

    /// The base sub-cluster.
    ///
    /// # Panics
    ///
    /// Panics when the cluster was materialized from its SQ8 blob — a
    /// compressed load carries no graph. Callers on the full-precision
    /// path (store rebuild, uncompressed query flow) are the only ones
    /// that reach this.
    pub fn sub(&self) -> &SubCluster {
        match &self.payload {
            Payload::Full(sub) => sub,
            Payload::Sq(_) => panic!("sq-loaded cluster has no sub-HNSW"),
        }
    }

    /// The SQ8 payload, when this cluster was loaded compressed.
    pub fn sq(&self) -> Option<&SqCluster> {
        match &self.payload {
            Payload::Sq(sq) => Some(sq),
            Payload::Full(_) => None,
        }
    }

    /// Whether the base payload is the compressed (SQ8) form.
    pub fn is_quantized(&self) -> bool {
        matches!(self.payload, Payload::Sq(_))
    }

    /// The partition this cluster serves.
    pub fn partition(&self) -> u32 {
        match &self.payload {
            Payload::Full(sub) => sub.partition(),
            Payload::Sq(sq) => sq.partition(),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        match &self.payload {
            Payload::Full(sub) => sub.dim(),
            Payload::Sq(sq) => sq.dim(),
        }
    }

    /// Base vectors plus overflow inserts.
    pub fn total_vectors(&self) -> usize {
        let base = match &self.payload {
            Payload::Full(sub) => sub.len(),
            Payload::Sq(sq) => sq.len(),
        };
        base + self.extra.len()
    }

    /// Number of overflow inserts materialized.
    pub fn overflow_len(&self) -> usize {
        self.extra.len()
    }

    /// Top-`k` search over base + overflow vectors, global ids, ascending
    /// distance. Overflow vectors are scanned exactly — the tail is small
    /// by construction (bounded by the group's overflow capacity).
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        let mut stats = SearchStats::default();
        self.search_with_stats(query, k, ef, &mut stats)
    }

    /// Like [`LoadedCluster::search`], accumulating work counters.
    pub fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let sub = match &self.payload {
            Payload::Full(sub) => sub,
            Payload::Sq(_) => {
                return self
                    .search_sq_with_stats(query, k, stats)
                    .into_iter()
                    .map(|h| Neighbor::new(h.id, h.dist))
                    .collect();
            }
        };
        let metric = sub.hnsw().params().metric_kind();
        let mut top = TopK::new(k);
        // When tombstones exist, ask the base graph for that many extra
        // candidates (and widen the beam accordingly) so filtering the
        // deleted ids still leaves k survivors.
        let extra_needed = self.deleted.len().min(k);
        let want = k + extra_needed;
        let ef_eff = if extra_needed == 0 { ef } else { ef + extra_needed };
        for n in sub.search_with_stats(query, want, ef_eff, stats) {
            if !self.deleted.contains(&n.id) {
                top.push(n.id, n.dist);
            }
        }
        for (gid, v) in &self.extra {
            stats.dist_evals += 1;
            top.push(*gid, metric.distance(query, v));
        }
        top.into_sorted_vec()
    }

    /// Top-`k` scan of a quantized cluster: exhaustive asymmetric L2
    /// over the codes plus an exact scan of the overflow tail, with
    /// tombstone filtering. Hits keep enough addressing information for
    /// the exact-rerank read path.
    ///
    /// # Panics
    ///
    /// Panics when the cluster was loaded full-precision; callers
    /// dispatch on [`LoadedCluster::is_quantized`].
    pub fn search_sq(&self, query: &[f32], k: usize) -> Vec<SqHit> {
        let mut stats = SearchStats::default();
        self.search_sq_with_stats(query, k, &mut stats)
    }

    /// Like [`LoadedCluster::search_sq`], accumulating work counters.
    pub fn search_sq_with_stats(
        &self,
        query: &[f32],
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<SqHit> {
        let sq = match &self.payload {
            Payload::Sq(sq) => sq,
            Payload::Full(_) => panic!("full-precision cluster has no sq payload"),
        };
        // TopK carries plain (id, dist), so select over pseudo-ids:
        // base row i -> i, overflow insert j -> n + j.
        let n = sq.len() as u32;
        let mut top = TopK::new(k);
        for local in 0..n {
            if self.deleted.contains(&sq.global_ids()[local as usize]) {
                continue;
            }
            stats.dist_evals += 1;
            top.push(local, sq.distance_to(query, local));
        }
        for (j, (_, v)) in self.extra.iter().enumerate() {
            stats.dist_evals += 1;
            top.push(n + j as u32, vecsim::l2_sq(query, v));
        }
        top.into_sorted_vec()
            .into_iter()
            .map(|h| {
                if h.id < n {
                    SqHit {
                        id: sq.global_ids()[h.id as usize],
                        dist: h.dist,
                        local: Some(h.id),
                    }
                } else {
                    SqHit {
                        id: self.extra[(h.id - n) as usize].0,
                        dist: h.dist,
                        local: None,
                    }
                }
            })
            .collect()
    }

    /// Approximate resident size in bytes (for cache accounting).
    pub fn resident_bytes(&self) -> usize {
        let base = match &self.payload {
            Payload::Full(sub) => sub.serialized_size(),
            Payload::Sq(sq) => sq.serialized_size(),
        };
        base + self
            .extra
            .iter()
            .map(|(_, v)| 8 + 4 * v.len())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsim::gen;

    fn params() -> HnswParams {
        HnswParams::new(6, 32).seed(3)
    }

    fn build_cluster(n: usize) -> SubCluster {
        let data = gen::uniform(8, n, 0.0, 1.0, 9).unwrap();
        let ids: Vec<u32> = (0..n as u32).map(|i| i * 10 + 1).collect();
        SubCluster::build(3, data, ids, &params()).unwrap()
    }

    #[test]
    fn search_returns_global_ids() {
        let c = build_cluster(50);
        let out = c.search(c.hnsw().vector(7), 1, 16);
        assert_eq!(out[0].id, 71); // local 7 -> global 7*10+1
        assert_eq!(out[0].dist, 0.0);
    }

    #[test]
    fn build_rejects_mismatched_ids() {
        let data = gen::uniform(4, 10, 0.0, 1.0, 1).unwrap();
        assert!(SubCluster::build(0, data, vec![1, 2], &params()).is_err());
    }

    #[test]
    fn build_rejects_empty_partition() {
        let data = Dataset::new(4);
        assert!(SubCluster::build(0, data, vec![], &params()).is_err());
    }

    #[test]
    fn cluster_round_trips_through_bytes() {
        let c = build_cluster(40);
        let blob = c.to_bytes();
        assert_eq!(blob.len(), c.serialized_size());
        let back = SubCluster::from_bytes(&blob).unwrap();
        assert_eq!(back.partition(), c.partition());
        assert_eq!(back.global_ids(), c.global_ids());
        let q = [0.5f32; 8];
        assert_eq!(back.search(&q, 5, 16), c.search(&q, 5, 16));
    }

    #[test]
    fn corrupt_cluster_blobs_are_rejected() {
        let c = build_cluster(10);
        let blob = c.to_bytes();
        assert!(SubCluster::from_bytes(&blob[..10]).is_err());
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(SubCluster::from_bytes(&bad).is_err());
    }

    #[test]
    fn overflow_record_round_trips_with_padding() {
        for dim in [1usize, 2, 3, 8, 128] {
            let r = OverflowRecord {
                partition: 5,
                global_id: 999,
                vector: (0..dim).map(|i| i as f32 * 0.5).collect(),
                tombstone: false,
            };
            let bytes = r.to_bytes();
            assert_eq!(bytes.len(), OverflowRecord::wire_size(dim));
            assert_eq!(bytes.len() % 8, 0, "records must stay 8-aligned");
            // Commit marker sits in the slot's final word.
            let tail = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
            assert_eq!(tail, OVERFLOW_COMMIT);
            let back = OverflowRecord::from_bytes(&bytes, dim).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn uncommitted_slot_is_rejected_by_decode() {
        let dim = 4;
        // A reserved-but-never-written slot reads as all zeros.
        let zeros = vec![0u8; OverflowRecord::wire_size(dim)];
        let err = OverflowRecord::from_bytes(&zeros, dim).unwrap_err();
        assert!(err.to_string().contains("uncommitted"), "{err}");
        // A committed slot with a cleared marker is also uncommitted.
        let mut torn = OverflowRecord::insert(1, 7, vec![1.0; dim]).to_bytes();
        let n = torn.len();
        torn[n - 4..].fill(0);
        assert!(OverflowRecord::from_bytes(&torn, dim).is_err());
    }

    #[test]
    fn damaged_payload_fails_the_checksum() {
        let dim = 3;
        let mut bytes = OverflowRecord::insert(2, 42, vec![0.25; dim]).to_bytes();
        bytes[17] ^= 0x01; // flip a payload bit, marker intact
        let err = OverflowRecord::from_bytes(&bytes, dim).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn legacy_framing_still_decodes() {
        // Hand-packed v1 slot: tag, global id, payload, pad — no header
        // extensions, no commit marker.
        let dim = 3;
        let rec = OverflowRecord::wire_size_legacy(dim);
        assert_eq!(rec, (8 + 4 * dim + 7) & !7);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(6u32 | TOMBSTONE_BIT).to_le_bytes());
        bytes.extend_from_slice(&123u32.to_le_bytes());
        for x in [1.0f32, 2.0, 3.0] {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        bytes.resize(rec, 0);
        let r = OverflowRecord::from_bytes_legacy(&bytes, dim).unwrap();
        assert_eq!(r.partition, 6);
        assert_eq!(r.global_id, 123);
        assert!(r.tombstone);
        assert_eq!(r.vector, vec![1.0, 2.0, 3.0]);

        let mut area = vec![0u8; 8 + rec];
        area[0..8].copy_from_slice(&(rec as u64).to_le_bytes());
        area[8..].copy_from_slice(&bytes);
        let got = parse_overflow_legacy(&area, dim).unwrap();
        assert_eq!(got, vec![r]);
    }

    #[test]
    fn parse_overflow_reads_only_used_records() {
        let dim = 4;
        let rec = OverflowRecord::wire_size(dim);
        let mut area = vec![0u8; 8 + 3 * rec];
        let r0 = OverflowRecord {
            partition: 1,
            global_id: 10,
            vector: vec![1.0; dim],
            tombstone: false,
        };
        let r1 = OverflowRecord {
            partition: 2,
            global_id: 20,
            vector: vec![2.0; dim],
            tombstone: false,
        };
        area[8..8 + rec].copy_from_slice(&r0.to_bytes());
        area[8 + rec..8 + 2 * rec].copy_from_slice(&r1.to_bytes());
        area[0..8].copy_from_slice(&(2 * rec as u64).to_le_bytes());
        let got = parse_overflow(&area, dim).unwrap();
        assert_eq!(got, vec![r0, r1]);
    }

    #[test]
    fn parse_overflow_tolerates_overcommitted_counter() {
        // A failed insert can leave `used` past capacity; parsing must
        // clamp, not error.
        let dim = 2;
        let rec = OverflowRecord::wire_size(dim);
        let mut area = vec![0u8; 8 + rec];
        let r = OverflowRecord::insert(0, 5, vec![0.5; dim]);
        area[8..8 + rec].copy_from_slice(&r.to_bytes());
        area[0..8].copy_from_slice(&(10_000u64).to_le_bytes());
        let got = parse_overflow(&area, dim).unwrap();
        assert_eq!(got, vec![r]); // only the one whole record that fits
    }

    #[test]
    fn parse_overflow_skips_torn_slots() {
        // Committed, torn (reserved-but-unwritten, all zeros), committed:
        // parse yields the two committed records and counts one skip.
        let dim = 2;
        let rec = OverflowRecord::wire_size(dim);
        let mut area = vec![0u8; 8 + 3 * rec];
        let r0 = OverflowRecord::insert(0, 1, vec![1.0; dim]);
        let r2 = OverflowRecord::insert(0, 3, vec![3.0; dim]);
        area[8..8 + rec].copy_from_slice(&r0.to_bytes());
        area[8 + 2 * rec..8 + 3 * rec].copy_from_slice(&r2.to_bytes());
        area[0..8].copy_from_slice(&((3 * rec) as u64).to_le_bytes());
        let (got, skipped) = parse_overflow_detailed(&area, dim).unwrap();
        assert_eq!(got, vec![r0, r2]);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn parse_overflow_rejects_headerless_area() {
        assert!(parse_overflow(&[0u8; 4], 2).is_err());
    }

    #[test]
    fn loaded_cluster_filters_overflow_by_partition() {
        let c = build_cluster(20);
        let dim = c.dim();
        let rec = OverflowRecord::wire_size(dim);
        let mut area = vec![0u8; 8 + 2 * rec];
        let mine = OverflowRecord {
            partition: 3,
            global_id: 7_000,
            vector: vec![0.5; dim],
            tombstone: false,
        };
        let other = OverflowRecord {
            partition: 4,
            global_id: 8_000,
            vector: vec![0.5; dim],
            tombstone: false,
        };
        area[8..8 + rec].copy_from_slice(&mine.to_bytes());
        area[8 + rec..8 + 2 * rec].copy_from_slice(&other.to_bytes());
        area[0..8].copy_from_slice(&((2 * rec) as u64).to_le_bytes());

        let loaded = LoadedCluster::from_remote(&c.to_bytes(), &area).unwrap();
        assert_eq!(loaded.overflow_len(), 1);
        assert_eq!(loaded.total_vectors(), 21);
        // The inserted vector is findable.
        let out = loaded.search(&vec![0.5; dim], 1, 16);
        assert_eq!(out[0].id, 7_000);
    }

    fn build_sq(n: usize) -> (Dataset, SqCluster) {
        let data = gen::uniform(8, n, 0.0, 1.0, 9).unwrap();
        let ids: Vec<u32> = (0..n as u32).map(|i| i * 10 + 1).collect();
        let sq = SqCluster::build(3, &data, ids).unwrap();
        (data, sq)
    }

    #[test]
    fn sq_cluster_round_trips_through_bytes() {
        let (_, sq) = build_sq(40);
        let blob = sq.to_bytes();
        assert_eq!(blob.len(), sq.serialized_size());
        assert_eq!(blob.len(), SqCluster::wire_size(40, 8));
        let back = SqCluster::from_bytes(&blob).unwrap();
        assert_eq!(back.partition(), 3);
        assert_eq!(back.global_ids(), sq.global_ids());
        assert_eq!(back.params(), sq.params());
        assert_eq!(back.codes_of(17), sq.codes_of(17));
        assert_eq!(back.local_of(171), Some(17));
        assert_eq!(back.local_of(9999), None);
    }

    #[test]
    fn corrupt_sq_blobs_are_rejected() {
        let (_, sq) = build_sq(10);
        let blob = sq.to_bytes();
        assert!(SqCluster::from_bytes(&blob[..10]).is_err());
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(SqCluster::from_bytes(&bad).is_err());
        assert!(SqCluster::from_bytes(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn sq_blob_is_roughly_a_quarter_of_f32_payload() {
        let (_, sq) = build_sq(200);
        // 200 vectors at dim 8: f32 payload alone is 6400 bytes; the sq
        // blob (codes + ids + params) must come in well under half.
        assert!(sq.serialized_size() < 200 * 8 * 4 / 2);
    }

    #[test]
    fn sq_scan_finds_the_encoded_vector_and_orders_like_exact_l2() {
        let (data, sq) = build_sq(60);
        let loaded = LoadedCluster::from_remote_sq(&sq.to_bytes(), None).unwrap();
        assert!(loaded.is_quantized());
        assert!(loaded.sq().is_some());
        assert_eq!(loaded.dim(), 8);
        let q = data.get(7);
        let hits = loaded.search_sq(q, 5);
        // The query is itself a member: the asymmetric distance to its
        // own codes is bounded by the quantization error, far below the
        // distance to any other uniform random vector.
        assert_eq!(hits[0].id, 71);
        assert_eq!(hits[0].local, Some(7));
        assert!(hits[0].dist < 0.01, "self distance {}", hits[0].dist);
        // Hits come back ascending.
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        // And the generic search() entry point agrees.
        let plain = loaded.search(q, 5, 16);
        let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        let plain_ids: Vec<u32> = plain.iter().map(|n| n.id).collect();
        assert_eq!(ids, plain_ids);
    }

    #[test]
    fn sq_scan_merges_overflow_exactly_and_respects_tombstones() {
        let (data, sq) = build_sq(20);
        let dim = 8;
        let rec = OverflowRecord::wire_size(dim);
        let mut area = vec![0u8; 8 + 3 * rec];
        // An insert right on top of the query, an insert for the other
        // partition, and a tombstone killing base id 51 (local 5).
        let q = data.get(5).to_vec();
        let mine = OverflowRecord::insert(3, 7_000, q.clone());
        let other = OverflowRecord::insert(4, 8_000, q.clone());
        let kill = OverflowRecord::tombstone(3, 51, dim);
        area[8..8 + rec].copy_from_slice(&mine.to_bytes());
        area[8 + rec..8 + 2 * rec].copy_from_slice(&other.to_bytes());
        area[8 + 2 * rec..8 + 3 * rec].copy_from_slice(&kill.to_bytes());
        area[0..8].copy_from_slice(&((3 * rec) as u64).to_le_bytes());

        let loaded = LoadedCluster::from_remote_sq(&sq.to_bytes(), Some(&area)).unwrap();
        assert_eq!(loaded.overflow_len(), 1);
        assert!(loaded.deleted().contains(&51));
        let hits = loaded.search_sq(&q, 3);
        // The overflow insert sits at distance exactly 0 (exact scan)
        // and carries no local row; the tombstoned base id is gone.
        assert_eq!(hits[0].id, 7_000);
        assert_eq!(hits[0].dist, 0.0);
        assert_eq!(hits[0].local, None);
        assert!(hits.iter().all(|h| h.id != 51));
        assert!(hits.iter().all(|h| h.id != 8_000));
    }

    #[test]
    fn sq_build_rejects_degenerate_partitions() {
        let data = Dataset::new(4);
        assert!(SqCluster::build(0, &data, vec![]).is_err());
        let data = gen::uniform(4, 3, 0.0, 1.0, 1).unwrap();
        assert!(SqCluster::build(0, &data, vec![1]).is_err());
    }

    #[test]
    fn loaded_cluster_merges_base_and_overflow_by_distance() {
        let data = Dataset::from_rows(&[[0.0f32, 0.0], [10.0, 10.0]]).unwrap();
        let sub = SubCluster::build(0, data, vec![1, 2], &params()).unwrap();
        let dim = 2;
        let rec = OverflowRecord::wire_size(dim);
        let mut area = vec![0u8; 8 + rec];
        let inserted = OverflowRecord {
            partition: 0,
            global_id: 99,
            vector: vec![0.2, 0.2],
            tombstone: false,
        };
        area[8..8 + rec].copy_from_slice(&inserted.to_bytes());
        area[0..8].copy_from_slice(&(rec as u64).to_le_bytes());
        let loaded = LoadedCluster::from_remote(&sub.to_bytes(), &area).unwrap();
        let out = loaded.search(&[0.1, 0.1], 3, 8);
        let ids: Vec<u32> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 99, 2]);
    }
}
