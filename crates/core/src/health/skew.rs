//! Skew statistics: Gini coefficient and top-k share.
//!
//! d-HNSW's partitioning (§3.1) assumes queries spread across the
//! meta-HNSW's partitions; real workloads concentrate. The same
//! summary works for partition sizes (build-time imbalance), route
//! frequencies (query-time imbalance), and meta-graph degrees
//! (structural imbalance), so the report computes all three with one
//! helper.

/// Distribution summary of a non-negative counter vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SkewStats {
    /// Number of values summarized.
    pub count: usize,
    /// Sum of all values.
    pub total: u64,
    /// Arithmetic mean (0 for an empty input).
    pub mean: f64,
    /// Largest value.
    pub max: u64,
    /// Gini coefficient in `[0, 1)`: 0 = perfectly uniform, → 1 =
    /// fully concentrated. 0 when the total is zero.
    pub gini: f64,
    /// Share of the total held by the single largest value.
    pub top1_share: f64,
    /// Share of the total held by the `topk` largest values.
    pub topk_share: f64,
    /// The `k` used for [`SkewStats::topk_share`] (clamped to `count`).
    pub topk: usize,
}

/// Computes [`SkewStats`] over `values` with a top-`k` share.
///
/// `k` is clamped to `values.len()`; an empty input yields the zero
/// summary. The Gini uses the standard sorted formulation
/// `(2·Σ i·xᵢ)/(n·Σx) − (n+1)/n` with 1-based ranks over ascending
/// values, which is exact for populations (no sampling correction).
pub fn skew_of(values: &[u64], k: usize) -> SkewStats {
    let count = values.len();
    if count == 0 {
        return SkewStats::default();
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let total: u64 = sorted.iter().sum();
    let max = *sorted.last().expect("non-empty");
    let topk = k.clamp(1, count);
    let mut stats = SkewStats {
        count,
        total,
        mean: total as f64 / count as f64,
        max,
        topk,
        ..SkewStats::default()
    };
    if total == 0 {
        return stats;
    }
    let n = count as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    stats.gini = ((2.0 * weighted) / (n * total as f64) - (n + 1.0) / n).max(0.0);
    let topk_sum: u64 = sorted.iter().rev().take(topk).sum();
    stats.top1_share = max as f64 / total as f64;
    stats.topk_share = topk_sum as f64 / total as f64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_zero_summary() {
        assert_eq!(skew_of(&[], 5), SkewStats::default());
    }

    #[test]
    fn uniform_values_have_zero_gini() {
        let s = skew_of(&[7, 7, 7, 7], 2);
        assert_eq!(s.count, 4);
        assert_eq!(s.total, 28);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.max, 7);
        assert!(s.gini.abs() < 1e-12);
        assert!((s.top1_share - 0.25).abs() < 1e-12);
        assert!((s.topk_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_concentration_approaches_one() {
        // One value holds everything: gini = (n-1)/n.
        let s = skew_of(&[0, 0, 0, 100], 1);
        assert!((s.gini - 0.75).abs() < 1e-12);
        assert_eq!(s.top1_share, 1.0);
        assert_eq!(s.topk_share, 1.0);
    }

    #[test]
    fn moderate_skew_lands_in_between() {
        let s = skew_of(&[1, 2, 3, 4], 2);
        // Hand-computed: (2·(1+4+9+16))/(4·10) − 5/4 = 0.25.
        assert!((s.gini - 0.25).abs() < 1e-12);
        assert!((s.top1_share - 0.4).abs() < 1e-12);
        assert!((s.topk_share - 0.7).abs() < 1e-12);
    }

    #[test]
    fn all_zero_values_have_zero_gini() {
        let s = skew_of(&[0, 0, 0], 2);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.total, 0);
        assert_eq!(s.topk, 2);
    }

    #[test]
    fn topk_clamps_to_the_population() {
        let s = skew_of(&[5, 5], 10);
        assert_eq!(s.topk, 2);
        assert_eq!(s.topk_share, 1.0);
    }

    #[test]
    fn order_does_not_matter() {
        let a = skew_of(&[9, 1, 4, 2], 2);
        let b = skew_of(&[1, 2, 4, 9], 2);
        assert_eq!(a, b);
    }
}
