//! Threshold-based SLO watchdog.
//!
//! Budgets come from the environment (`DHNSW_SLO_P99_US`,
//! `DHNSW_SLO_MIN_HIT_RATE`, `DHNSW_SLO_MAX_OVERFLOW`,
//! `DHNSW_SLO_MAX_ROUTE_GINI`, `DHNSW_SLO_MAX_DEGRADED_RATE`) or CLI
//! flags; [`evaluate`] checks a
//! [`HealthReport`] against them and [`emit`] publishes the violations
//! as a `dhnsw_slo_violations_total` counter plus structured
//! `slo_violation` instant events in the span-trace ring (when span
//! capture is enabled), so a dashboard or a `doctor --check` script
//! sees the same verdict.

use crate::health::report::HealthReport;
use crate::telemetry::series::SeriesPoint;
use crate::telemetry::span::{ArgValue, SpanId};
use crate::telemetry::Telemetry;

/// Configurable health budgets; `None` disables a check.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloBudgets {
    /// Largest acceptable p99 per-query latency, microseconds.
    pub max_p99_us: Option<f64>,
    /// Smallest acceptable cluster-cache hit rate in `[0, 1]`.
    pub min_cache_hit_rate: Option<f64>,
    /// Largest acceptable per-group overflow occupancy in `[0, 1]`
    /// (checked against the fullest group).
    pub max_overflow_occupancy: Option<f64>,
    /// Largest acceptable route-frequency Gini coefficient.
    pub max_route_gini: Option<f64>,
    /// Largest acceptable fraction of queries answered degraded
    /// (incomplete cluster coverage), in `[0, 1]`.
    pub max_degraded_rate: Option<f64>,
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok()?.parse().ok()
}

impl SloBudgets {
    /// Reads budgets from the `DHNSW_SLO_*` environment variables;
    /// unset or unparsable variables leave the check disabled.
    pub fn from_env() -> Self {
        SloBudgets {
            max_p99_us: env_f64("DHNSW_SLO_P99_US"),
            min_cache_hit_rate: env_f64("DHNSW_SLO_MIN_HIT_RATE"),
            max_overflow_occupancy: env_f64("DHNSW_SLO_MAX_OVERFLOW"),
            max_route_gini: env_f64("DHNSW_SLO_MAX_ROUTE_GINI"),
            max_degraded_rate: env_f64("DHNSW_SLO_MAX_DEGRADED_RATE"),
        }
    }

    /// Whether every check is disabled.
    pub fn is_empty(&self) -> bool {
        self.max_p99_us.is_none()
            && self.min_cache_hit_rate.is_none()
            && self.max_overflow_occupancy.is_none()
            && self.max_route_gini.is_none()
            && self.max_degraded_rate.is_none()
    }
}

/// One budget the report violated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloViolation {
    /// Budget name (`p99_latency_us`, `cache_hit_rate`, …).
    pub budget: &'static str,
    /// Observed value.
    pub actual: f64,
    /// Configured limit.
    pub limit: f64,
    /// Trace id of the slowest retained tail exemplar at evaluation
    /// time — feed it to `/whyslow/<id>` for a ranked diagnosis of
    /// the breach. `None` when the node has answered no batches.
    pub exemplar: Option<u64>,
}

impl SloViolation {
    /// Renders the violation as a JSON object fragment.
    pub fn to_json(&self) -> String {
        let exemplar = self
            .exemplar
            .map_or("null".to_string(), |id| id.to_string());
        format!(
            "{{\"budget\": \"{}\", \"actual\": {:.6}, \"limit\": {:.6}, \"exemplar\": {exemplar}}}",
            self.budget, self.actual, self.limit
        )
    }
}

/// Checks `report` against `budgets`, returning every violated budget
/// in a fixed order (latency, hit rate, occupancy, skew, degradation).
pub fn evaluate(report: &HealthReport, budgets: &SloBudgets) -> Vec<SloViolation> {
    let mut out = Vec::new();
    // Every violation links to the slowest retained exemplar so a
    // breach comes with a concrete batch to interrogate via
    // `/whyslow/<id>` rather than just a number over a limit.
    let exemplar = report.tail.slowest_trace_id;
    // Latency and hit rate are judged over the report's *window* (the
    // interval since the previous health report), not lifetime
    // aggregates: a cold-start spike must age out once recent traffic
    // is healthy. An empty window (no queries / no cache activity since
    // the last report) skips the check entirely rather than falling
    // back to lifetime values, which would re-fire stale violations on
    // every idle tick.
    if let Some(limit) = budgets.max_p99_us {
        if report.latency.window_queries > 0 && report.latency.window_p99_us > limit {
            out.push(SloViolation {
                budget: "p99_latency_us",
                actual: report.latency.window_p99_us,
                limit,
                exemplar,
            });
        }
    }
    if let Some(limit) = budgets.min_cache_hit_rate {
        let observed = report.cache.window_hits + report.cache.window_misses;
        if observed > 0 && report.cache.window_hit_rate < limit {
            out.push(SloViolation {
                budget: "cache_hit_rate",
                actual: report.cache.window_hit_rate,
                limit,
                exemplar,
            });
        }
    }
    if let Some(limit) = budgets.max_overflow_occupancy {
        if report.layout.max_group_occupancy > limit {
            out.push(SloViolation {
                budget: "overflow_occupancy",
                actual: report.layout.max_group_occupancy,
                limit,
                exemplar,
            });
        }
    }
    if let Some(limit) = budgets.max_route_gini {
        if report.route_skew.gini > limit {
            out.push(SloViolation {
                budget: "route_gini",
                actual: report.route_skew.gini,
                limit,
                exemplar,
            });
        }
    }
    if let Some(limit) = budgets.max_degraded_rate {
        if report.reliability.degraded_rate > limit {
            out.push(SloViolation {
                budget: "degraded_rate",
                actual: report.reliability.degraded_rate,
                limit,
                exemplar,
            });
        }
    }
    out
}

/// Checks one recorder-derived [`SeriesPoint`] against the windowed
/// budgets (latency p99 and cache hit rate — the two that are
/// meaningful per sampling window). This lets a continuously ticking
/// sampler evaluate SLOs over every recorder window instead of the
/// one-off baseline a [`HealthReport`] advances: same empty-window
/// semantics (an idle window skips the check), same budget names, so
/// `dhnsw_slo_violations_total{budget=…}` aggregates across both
/// paths. `exemplar` should be the slowest retained tail exemplar's
/// trace id at evaluation time, if any.
pub fn evaluate_point(
    point: &SeriesPoint,
    budgets: &SloBudgets,
    exemplar: Option<u64>,
) -> Vec<SloViolation> {
    let mut out = Vec::new();
    if let Some(limit) = budgets.max_p99_us {
        if point.window_queries > 0 && point.p99_us > limit {
            out.push(SloViolation {
                budget: "p99_latency_us",
                actual: point.p99_us,
                limit,
                exemplar,
            });
        }
    }
    if let Some(limit) = budgets.min_cache_hit_rate {
        if point.window_cache_ops > 0 && point.hit_rate < limit {
            out.push(SloViolation {
                budget: "cache_hit_rate",
                actual: point.hit_rate,
                limit,
                exemplar,
            });
        }
    }
    out
}

/// Publishes violations: bumps `dhnsw_slo_violations_total{budget=…}`
/// and, when span capture is enabled, records one `slo_watchdog` trace
/// in the ring with a structured `slo_violation` instant per breach.
pub fn emit(telemetry: &Telemetry, violations: &[SloViolation]) {
    if violations.is_empty() {
        return;
    }
    for v in violations {
        telemetry
            .counter(
                "dhnsw_slo_violations_total",
                "SLO budget violations flagged by the health watchdog",
                &[("budget", v.budget)],
            )
            .inc();
    }
    let trace = telemetry.spans().begin("watchdog");
    if trace.is_enabled() {
        let root = trace.begin_span("slo_watchdog", "health", SpanId::NONE);
        for v in violations {
            let mut args = vec![
                ("budget", ArgValue::Str(v.budget)),
                ("actual", ArgValue::F64(v.actual)),
                ("limit", ArgValue::F64(v.limit)),
            ];
            if let Some(id) = v.exemplar {
                args.push(("exemplar", ArgValue::U64(id)));
            }
            trace.instant("slo_violation", "health", root, &args);
        }
        trace.end_span(root);
    }
    telemetry.spans().finish(trace);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::heatmap::PartitionHeat;
    use crate::health::report::{
        CacheHealth, GroupHealth, LatencyHealth, LayoutSummary, ReliabilityHealth, TailHealth,
    };
    use crate::health::skew::skew_of;

    fn report() -> HealthReport {
        HealthReport {
            mode: "full",
            partitions: 2,
            groups: vec![GroupHealth {
                group: 0,
                front: 0,
                back: Some(1),
                cluster_bytes: 100,
                padding_bytes: 0,
                overflow_capacity_bytes: 100,
                overflow_used_bytes: 90,
                overflow_slack_bytes: 10,
                occupancy: 0.9,
            }],
            layout: LayoutSummary {
                max_group_occupancy: 0.9,
                ..LayoutSummary::default()
            },
            heatmap: vec![PartitionHeat {
                partition: 0,
                route_hits: 10,
                loads: 1,
                cache_hits: 9,
                evictions: 0,
                bytes_read: 100,
                hotness: 1.0,
            }],
            partition_skew: skew_of(&[50, 50], 1),
            route_skew: skew_of(&[10, 0], 1),
            degree_skew: SkewStats::default(),
            cache: CacheHealth {
                hit_rate: 0.5,
                hits: 1,
                misses: 1,
                window_hit_rate: 0.5,
                window_hits: 1,
                window_misses: 1,
                ..CacheHealth::default()
            },
            latency: LatencyHealth {
                queries: 10,
                p99_us: 900.0,
                window_queries: 10,
                window_p99_us: 900.0,
                ..LatencyHealth::default()
            },
            reliability: ReliabilityHealth {
                queries: 10,
                degraded_queries: 2,
                read_retries: 3,
                degraded_rate: 0.2,
            },
            tail: TailHealth {
                slowest_trace_id: Some(7),
                slowest_total_us: 900.0,
                ..TailHealth::default()
            },
            violations: Vec::new(),
        }
    }
    use crate::health::skew::SkewStats;

    #[test]
    fn empty_budgets_never_fire() {
        let b = SloBudgets::default();
        assert!(b.is_empty());
        assert!(evaluate(&report(), &b).is_empty());
    }

    #[test]
    fn each_budget_trips_on_its_own_dimension() {
        let r = report();
        let b = SloBudgets {
            max_p99_us: Some(500.0),
            min_cache_hit_rate: Some(0.8),
            max_overflow_occupancy: Some(0.75),
            max_route_gini: Some(0.25),
            max_degraded_rate: Some(0.1),
        };
        let v = evaluate(&r, &b);
        let names: Vec<&str> = v.iter().map(|x| x.budget).collect();
        assert_eq!(
            names,
            vec![
                "p99_latency_us",
                "cache_hit_rate",
                "overflow_occupancy",
                "route_gini",
                "degraded_rate"
            ]
        );
        assert_eq!(v[0].actual, 900.0);
        assert_eq!(v[0].limit, 500.0);
        // Every breach carries the slowest exemplar's trace id so the
        // violation can be interrogated through `/whyslow/<id>`.
        assert!(v.iter().all(|x| x.exemplar == Some(7)));
    }

    #[test]
    fn empty_window_skips_latency_and_hit_rate_checks() {
        // Lifetime aggregates are terrible (cold-start spike) but the
        // window since the last report saw no traffic: latency and
        // hit-rate budgets must stay quiet instead of re-firing the
        // stale violation on every idle report.
        let mut r = report();
        r.latency.window_queries = 0;
        r.latency.window_p99_us = 0.0;
        r.cache.window_hits = 0;
        r.cache.window_misses = 0;
        r.cache.window_hit_rate = 0.0;
        let b = SloBudgets {
            max_p99_us: Some(500.0),
            min_cache_hit_rate: Some(0.8),
            ..SloBudgets::default()
        };
        assert!(evaluate(&r, &b).is_empty());

        // A healthy window clears a bad lifetime aggregate outright.
        r.latency.window_queries = 5;
        r.latency.window_p99_us = 100.0;
        r.cache.window_hits = 9;
        r.cache.window_misses = 1;
        r.cache.window_hit_rate = 0.9;
        assert!(evaluate(&r, &b).is_empty());

        // And a bad window trips even though only the window is bad.
        r.latency.window_p99_us = 900.0;
        r.cache.window_hit_rate = 0.5;
        let names: Vec<&str> = evaluate(&r, &b).iter().map(|x| x.budget).collect();
        assert_eq!(names, vec!["p99_latency_us", "cache_hit_rate"]);
    }

    #[test]
    fn satisfied_budgets_stay_quiet() {
        let b = SloBudgets {
            max_p99_us: Some(1_000.0),
            min_cache_hit_rate: Some(0.4),
            max_overflow_occupancy: Some(0.95),
            max_route_gini: Some(0.6),
            max_degraded_rate: Some(0.5),
        };
        assert!(evaluate(&report(), &b).is_empty());
    }

    #[test]
    fn emit_lands_counter_and_trace_events() {
        let telemetry = Telemetry::new();
        telemetry.spans().set_enabled(true);
        let violations = vec![SloViolation {
            budget: "overflow_occupancy",
            actual: 0.9,
            limit: 0.75,
            exemplar: Some(31),
        }];
        emit(&telemetry, &violations);
        assert!(telemetry
            .render_prometheus()
            .contains("dhnsw_slo_violations_total{budget=\"overflow_occupancy\"} 1"));
        let traces = telemetry.spans().recent();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].label, "watchdog");
        let instant = traces[0]
            .spans
            .iter()
            .find(|s| s.name == "slo_violation")
            .expect("structured warning event recorded");
        assert!(instant
            .args
            .contains(&("budget", ArgValue::Str("overflow_occupancy"))));
        assert!(instant.args.contains(&("limit", ArgValue::F64(0.75))));
        assert!(instant.args.contains(&("exemplar", ArgValue::U64(31))));
    }

    #[test]
    fn emit_without_violations_is_silent() {
        let telemetry = Telemetry::new();
        telemetry.spans().set_enabled(true);
        emit(&telemetry, &[]);
        assert!(telemetry.spans().recent().is_empty());
        assert!(!telemetry
            .render_prometheus()
            .contains("dhnsw_slo_violations_total"));
    }

    #[test]
    fn violation_json_is_structured() {
        let mut v = SloViolation {
            budget: "route_gini",
            actual: 0.5,
            limit: 0.25,
            exemplar: None,
        };
        assert_eq!(
            v.to_json(),
            "{\"budget\": \"route_gini\", \"actual\": 0.500000, \"limit\": 0.250000, \"exemplar\": null}"
        );
        v.exemplar = Some(12);
        assert_eq!(
            v.to_json(),
            "{\"budget\": \"route_gini\", \"actual\": 0.500000, \"limit\": 0.250000, \"exemplar\": 12}"
        );
    }
}
