//! Per-cluster access heatmap.
//!
//! One [`ClusterHeatmap`] lives on each compute node, sized to the
//! partition count at connect time. The query path records into it
//! with **relaxed atomics only and no allocation**; when sampling is
//! disabled the engine pays a single relaxed load per batch and every
//! `record_*` call returns after one more. Counter races under
//! concurrent batches can drop an occasional increment — the heatmap
//! is a sampling instrument, not an audit log, and that trade keeps it
//! off the latency critical path.
//!
//! Hotness is an exponentially-weighted moving average over *batches*:
//! each route hit adds one unit, and a cell's score decays by
//! [`DECAY_PER_BATCH`] for every batch that elapsed since the cell was
//! last touched. The decay is applied lazily at touch/snapshot time
//! (fixed-point, per-cell last-batch stamp), so idle partitions cost
//! nothing per batch and a snapshot still sees them correctly decayed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-batch EWMA decay factor for the hotness score.
pub const DECAY_PER_BATCH: f64 = 0.875;

/// Fixed-point scale for the stored hotness (1.0 == `HOT_ONE`).
const HOT_ONE: f64 = 1_000_000.0;

/// Decay exponents beyond this flush the score to zero anyway; capping
/// keeps the `powi` argument well inside `i32`.
const MAX_DECAY_STEPS: u64 = 64;

#[derive(Debug, Default)]
struct HeatCell {
    route_hits: AtomicU64,
    loads: AtomicU64,
    cache_hits: AtomicU64,
    evictions: AtomicU64,
    bytes_read: AtomicU64,
    /// EWMA hotness, fixed-point (`HOT_ONE` == 1.0).
    hot_fp: AtomicU64,
    /// Batch sequence at which `hot_fp` was last decayed.
    last_batch: AtomicU64,
}

/// One partition's row in a heatmap snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionHeat {
    /// Partition (cluster) id.
    pub partition: u32,
    /// Times the meta-HNSW routed a query to this partition.
    pub route_hits: u64,
    /// Times the partition's cluster was fetched from the memory pool.
    pub loads: u64,
    /// Times a route was served from the compute-side cluster cache.
    pub cache_hits: u64,
    /// Times the partition was evicted from the cluster cache.
    pub evictions: u64,
    /// Bytes fetched for this partition across all loads.
    pub bytes_read: u64,
    /// EWMA hotness (route hits, decayed per batch), at snapshot time.
    pub hotness: f64,
}

/// Lock-free per-partition access counters with EWMA hotness.
#[derive(Debug)]
pub struct ClusterHeatmap {
    enabled: AtomicBool,
    batch_seq: AtomicU64,
    cells: Vec<HeatCell>,
}

impl ClusterHeatmap {
    /// A heatmap with one cell per partition, enabled by default.
    pub fn new(partitions: usize) -> Self {
        let mut cells = Vec::with_capacity(partitions);
        cells.resize_with(partitions, HeatCell::default);
        ClusterHeatmap {
            enabled: AtomicBool::new(true),
            batch_seq: AtomicU64::new(0),
            cells,
        }
    }

    /// Number of partitions tracked.
    pub fn partitions(&self) -> usize {
        self.cells.len()
    }

    /// Turns query-path sampling on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the query path samples into this heatmap. The engine
    /// checks this once per batch; it is the *only* cost a disabled
    /// heatmap adds to the hot loop.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Advances the batch clock that drives EWMA decay. Called once
    /// per sampled batch, before the batch's `record_route` calls.
    pub fn begin_batch(&self) -> u64 {
        self.batch_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records one meta-HNSW route to `partition` and bumps its EWMA
    /// hotness. Out-of-range ids are ignored.
    pub fn record_route(&self, partition: u32) {
        if !self.is_enabled() {
            return;
        }
        let Some(cell) = self.cells.get(partition as usize) else {
            return;
        };
        cell.route_hits.fetch_add(1, Ordering::Relaxed);
        let seq = self.batch_seq.load(Ordering::Relaxed);
        let hot = Self::decayed(cell, seq);
        cell.last_batch.store(seq, Ordering::Relaxed);
        cell.hot_fp.store((hot + HOT_ONE) as u64, Ordering::Relaxed);
    }

    /// Records a cluster-cache hit for `partition`.
    pub fn record_cache_hit(&self, partition: u32) {
        if !self.is_enabled() {
            return;
        }
        if let Some(cell) = self.cells.get(partition as usize) {
            cell.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a remote load of `bytes` for `partition`.
    pub fn record_load(&self, partition: u32, bytes: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(cell) = self.cells.get(partition as usize) {
            cell.loads.fetch_add(1, Ordering::Relaxed);
            cell.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Records a cache eviction of `partition`.
    pub fn record_eviction(&self, partition: u32) {
        if !self.is_enabled() {
            return;
        }
        if let Some(cell) = self.cells.get(partition as usize) {
            cell.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The hotness of `cell` decayed forward to batch `seq`, in EWMA
    /// units (not fixed-point).
    fn decayed(cell: &HeatCell, seq: u64) -> f64 {
        let last = cell.last_batch.load(Ordering::Relaxed);
        let hot = cell.hot_fp.load(Ordering::Relaxed) as f64;
        let steps = seq.saturating_sub(last).min(MAX_DECAY_STEPS);
        if steps == 0 {
            hot
        } else {
            hot * DECAY_PER_BATCH.powi(steps as i32)
        }
    }

    /// A point-in-time copy of every cell, with hotness decayed to the
    /// current batch clock. Allocates — intended for reports, not the
    /// query path.
    pub fn snapshot(&self) -> Vec<PartitionHeat> {
        let seq = self.batch_seq.load(Ordering::Relaxed);
        self.cells
            .iter()
            .enumerate()
            .map(|(p, cell)| PartitionHeat {
                partition: p as u32,
                route_hits: cell.route_hits.load(Ordering::Relaxed),
                loads: cell.loads.load(Ordering::Relaxed),
                cache_hits: cell.cache_hits.load(Ordering::Relaxed),
                evictions: cell.evictions.load(Ordering::Relaxed),
                bytes_read: cell.bytes_read.load(Ordering::Relaxed),
                hotness: Self::decayed(cell, seq) / HOT_ONE,
            })
            .collect()
    }

    /// Cumulative route-hit count per partition (index == partition).
    pub fn route_hit_counts(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.route_hits.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_partition() {
        let h = ClusterHeatmap::new(4);
        h.begin_batch();
        h.record_route(1);
        h.record_route(1);
        h.record_route(3);
        h.record_cache_hit(1);
        h.record_load(3, 640);
        h.record_load(3, 360);
        h.record_eviction(0);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[1].route_hits, 2);
        assert_eq!(snap[1].cache_hits, 1);
        assert_eq!(snap[3].route_hits, 1);
        assert_eq!(snap[3].loads, 2);
        assert_eq!(snap[3].bytes_read, 1000);
        assert_eq!(snap[0].evictions, 1);
        assert_eq!(h.route_hit_counts(), vec![0, 2, 0, 1]);
    }

    #[test]
    fn out_of_range_partition_is_ignored() {
        let h = ClusterHeatmap::new(2);
        h.begin_batch();
        h.record_route(9);
        h.record_load(9, 64);
        h.record_cache_hit(9);
        h.record_eviction(9);
        assert!(h.snapshot().iter().all(|c| c.route_hits == 0
            && c.loads == 0
            && c.cache_hits == 0
            && c.evictions == 0));
    }

    #[test]
    fn hotness_decays_per_batch_and_rewards_recency() {
        let h = ClusterHeatmap::new(2);
        h.begin_batch();
        h.record_route(0);
        let hot0 = h.snapshot()[0].hotness;
        assert!((hot0 - 1.0).abs() < 1e-9, "one hit in the current batch");
        // Partition 0 goes idle for three batches; partition 1 is hit
        // in the last one. Recency must dominate raw counts.
        for _ in 0..3 {
            h.begin_batch();
        }
        h.record_route(1);
        let snap = h.snapshot();
        let expected = DECAY_PER_BATCH.powi(3);
        assert!(
            (snap[0].hotness - expected).abs() < 1e-6,
            "idle cell decayed: {} vs {expected}",
            snap[0].hotness
        );
        assert!(snap[1].hotness > snap[0].hotness);
        // Raw counters never decay.
        assert_eq!(snap[0].route_hits, 1);
    }

    #[test]
    fn long_idle_flushes_hotness_to_zero() {
        let h = ClusterHeatmap::new(1);
        h.begin_batch();
        h.record_route(0);
        for _ in 0..200 {
            h.begin_batch();
        }
        assert!(h.snapshot()[0].hotness < 1e-3);
    }

    #[test]
    fn disabled_heatmap_records_nothing() {
        // The acceptance bound for the disabled hot path: record calls
        // must be no-ops (one relaxed load, no counter writes, no
        // allocation — the methods take no owned arguments and return
        // before touching any cell).
        let h = ClusterHeatmap::new(3);
        h.set_enabled(false);
        assert!(!h.is_enabled());
        h.record_route(0);
        h.record_cache_hit(1);
        h.record_load(2, 4096);
        h.record_eviction(0);
        for cell in h.snapshot() {
            assert_eq!(cell.route_hits, 0);
            assert_eq!(cell.cache_hits, 0);
            assert_eq!(cell.loads, 0);
            assert_eq!(cell.bytes_read, 0);
            assert_eq!(cell.evictions, 0);
            assert_eq!(cell.hotness, 0.0);
        }
        // Re-enabling resumes sampling on the same cells.
        h.set_enabled(true);
        h.begin_batch();
        h.record_route(0);
        assert_eq!(h.snapshot()[0].route_hits, 1);
    }
}
