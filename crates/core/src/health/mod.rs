//! Memory-pool health introspection.
//!
//! PRs 1–2 made the *query path* observable; this module makes the
//! *state* of the system observable — which partitions are hot, how
//! full each group's overflow area is (§3.2's layout is exactly where
//! d-HNSW degrades silently as inserts accumulate), and how skewed the
//! meta-HNSW routing is (§3.1's partitioning under non-uniform query
//! load). Four pieces:
//!
//! - [`heatmap`] — per-cluster access counters (route hits, loads,
//!   cache hits, evictions, bytes read) plus an EWMA hotness score,
//!   sampled on the query path with relaxed atomics only and **zero
//!   allocation**, so the always-on cost is a handful of counter
//!   increments per batch and a single atomic load when disabled.
//! - [`report`] — the machine-readable [`HealthReport`]: per-group
//!   overflow occupancy / slack / fragmentation from the layout
//!   directory plus live `used` counters (one doorbell batch of 8-byte
//!   reads), the heatmap snapshot, routing-skew statistics, cache and
//!   latency summaries, rendered as deterministic JSON and published
//!   as telemetry gauges.
//! - [`skew`] — Gini coefficient and top-k share over any counter
//!   vector (partition bytes, route frequencies, meta-graph degrees).
//! - [`watchdog`] — threshold budgets ([`SloBudgets`], configurable
//!   via environment or CLI flags) evaluated against a report;
//!   violations land in the span-trace ring as structured warning
//!   events and drive `dhnsw_cli doctor --check`'s non-zero exit.
//!
//! The subsystem is read-only: producing a report costs one doorbell
//! batch of overflow-counter reads and never mutates the store, so it
//! is safe to run against a live deployment.

pub mod heatmap;
pub mod report;
pub mod skew;
pub mod watchdog;

pub use heatmap::{ClusterHeatmap, PartitionHeat};
pub use report::{CacheHealth, GroupHealth, HealthReport, LatencyHealth, LayoutSummary, TailHealth};
pub use skew::{skew_of, SkewStats};
pub use watchdog::{evaluate, evaluate_point, SloBudgets, SloViolation};
