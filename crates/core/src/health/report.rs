//! The machine-readable health report.
//!
//! A [`HealthReport`] is a point-in-time summary of one compute node's
//! view of the memory pool: the §3.2 layout with live overflow
//! occupancy, the access heatmap, routing-skew statistics, and cache /
//! latency summaries. It renders as deterministic JSON (fixed field
//! order, arrays in partition/group order) so `dhnsw_cli doctor`
//! output can be diffed and parsed by scripts, and it publishes its
//! headline numbers as telemetry gauges so the same data shows up in
//! Prometheus / JSON expositions.

use crate::health::heatmap::PartitionHeat;
use crate::health::skew::SkewStats;
use crate::health::watchdog::SloViolation;
use crate::telemetry::Telemetry;

/// Health of one §3.2 group: two clusters sharing an overflow area.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupHealth {
    /// Group index.
    pub group: u32,
    /// Partition stored in the group's front slot.
    pub front: u32,
    /// Partition stored in the back slot (`None` for a trailing
    /// odd group with a single cluster).
    pub back: Option<u32>,
    /// Serialized bytes of the group's clusters (excluding padding).
    pub cluster_bytes: u64,
    /// Alignment padding after the group's clusters.
    pub padding_bytes: u64,
    /// Insert capacity of the shared overflow area, in bytes
    /// (excluding its 8-byte `used` counter).
    pub overflow_capacity_bytes: u64,
    /// Bytes of the overflow area consumed by inserts (the live
    /// remote `used` counter).
    pub overflow_used_bytes: u64,
    /// Unused overflow bytes (`capacity − used`).
    pub overflow_slack_bytes: u64,
    /// `used / capacity` in `[0, 1]` (0 for a zero-capacity area).
    pub occupancy: f64,
}

/// Whole-region layout accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LayoutSummary {
    /// Registered-region size in bytes.
    pub total_bytes: u64,
    /// Serialized directory bytes at the head of the region.
    pub directory_bytes: u64,
    /// Serialized cluster bytes across all groups.
    pub cluster_bytes: u64,
    /// Compressed (SQ8) cluster bytes in the layout-v3 tail region;
    /// zero on uncompressed layouts.
    pub sq_bytes: u64,
    /// Alignment padding (directory + clusters + SQ tail).
    pub padding_bytes: u64,
    /// Total overflow insert capacity across groups.
    pub overflow_capacity_bytes: u64,
    /// Total overflow bytes consumed by inserts.
    pub overflow_used_bytes: u64,
    /// Largest per-group occupancy — the first group to fill rejects
    /// inserts, so this is the number that matters for resize planning.
    pub max_group_occupancy: f64,
    /// Mean per-group occupancy.
    pub mean_group_occupancy: f64,
    /// Fraction of the region carrying live data (directory, clusters,
    /// overflow counters, used overflow bytes).
    pub utilization: f64,
    /// Fraction of the region that is padding or unused overflow
    /// slack.
    pub fragmentation: f64,
}

/// Cluster-cache summary at report time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheHealth {
    /// Configured capacity in clusters.
    pub capacity: usize,
    /// Resident clusters.
    pub resident: usize,
    /// Resident bytes (serialized size of cached clusters).
    pub resident_bytes: u64,
    /// Lifetime plan-time hits: cluster loads avoided by residency.
    pub hits: u64,
    /// Lifetime plan-time misses: clusters fetched from remote memory.
    pub misses: u64,
    /// Lifetime evictions.
    pub evictions: u64,
    /// `hits / (hits + misses)`, 0 with no lookups.
    pub hit_rate: f64,
    /// Plan-time hits since the previous health report (the window).
    pub window_hits: u64,
    /// Plan-time misses since the previous health report.
    pub window_misses: u64,
    /// Hit rate over the window alone, 0 with an empty window. This —
    /// not the lifetime `hit_rate` — is what the SLO watchdog checks,
    /// so a cold-start miss burst ages out after one report interval.
    pub window_hit_rate: f64,
}

/// Query-latency summary from the node's telemetry histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyHealth {
    /// Queries observed.
    pub queries: u64,
    /// Median per-query latency, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Largest observed value, microseconds.
    pub max_us: u64,
    /// Queries observed since the previous health report (the window).
    pub window_queries: u64,
    /// Median over the window alone, microseconds (0 when idle).
    pub window_p50_us: f64,
    /// 95th percentile over the window, microseconds.
    pub window_p95_us: f64,
    /// 99th percentile over the window, microseconds. This — not the
    /// lifetime `p99_us` — is what the SLO watchdog checks.
    pub window_p99_us: f64,
}

/// Degraded-service and retry accounting since connect.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReliabilityHealth {
    /// Queries answered since connect.
    pub queries: u64,
    /// Queries answered from an incomplete cluster set (read retries
    /// exhausted with degraded results allowed).
    pub degraded_queries: u64,
    /// Engine-level cluster read retries (version mismatches plus
    /// exhausted substrate retransmission budgets).
    pub read_retries: u64,
    /// `degraded_queries / queries` in `[0, 1]`, 0 with no queries.
    pub degraded_rate: f64,
}

/// Tail-anatomy summary: the exemplar store and folded profile that
/// back `/profile/folded`, `/exemplars`, and `doctor --why-slow`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TailHealth {
    /// Exemplars currently retained (reservoir + K-slowest slots).
    pub exemplar_occupancy: u64,
    /// Batches offered to the exemplar store since connect.
    pub exemplars_recorded: u64,
    /// Exemplars evicted or not retained by the bounded store.
    pub exemplars_dropped: u64,
    /// Distinct span paths in the always-on folded profile.
    pub profile_paths: u64,
    /// Trace id of the slowest retained batch, if any. SLO violations
    /// link here so `/whyslow/<id>` can explain the breach.
    pub slowest_trace_id: Option<u64>,
    /// Wall time of that slowest batch, microseconds (0 when empty).
    pub slowest_total_us: f64,
}

/// A point-in-time health summary of one compute node's memory pool.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Search-mode label of the reporting node.
    pub mode: &'static str,
    /// Partition count.
    pub partitions: usize,
    /// Per-group layout and overflow occupancy.
    pub groups: Vec<GroupHealth>,
    /// Whole-region accounting.
    pub layout: LayoutSummary,
    /// Per-partition access heatmap.
    pub heatmap: Vec<PartitionHeat>,
    /// Skew of serialized cluster sizes (build-time imbalance).
    pub partition_skew: SkewStats,
    /// Skew of route frequencies (query-time imbalance).
    pub route_skew: SkewStats,
    /// Skew of meta-HNSW layer-0 out-degrees (structural imbalance).
    pub degree_skew: SkewStats,
    /// Cluster-cache summary.
    pub cache: CacheHealth,
    /// Query-latency summary.
    pub latency: LatencyHealth,
    /// Degraded-service and retry accounting.
    pub reliability: ReliabilityHealth,
    /// Tail-anatomy summary (exemplar store + folded profile).
    pub tail: TailHealth,
    /// SLO budget violations (empty until a watchdog evaluates the
    /// report).
    pub violations: Vec<SloViolation>,
}

/// Fixed-precision float for deterministic JSON.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

impl HealthReport {
    /// Renders the report as deterministic JSON (stable field order,
    /// arrays in partition/group order, floats at fixed precision).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.heatmap.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"partitions\": {},\n", self.partitions));
        let l = &self.layout;
        out.push_str(&format!(
            "  \"layout\": {{\"total_bytes\": {}, \"directory_bytes\": {}, \"cluster_bytes\": {}, \"sq_bytes\": {}, \"padding_bytes\": {}, \"overflow_capacity_bytes\": {}, \"overflow_used_bytes\": {}, \"max_group_occupancy\": {}, \"mean_group_occupancy\": {}, \"utilization\": {}, \"fragmentation\": {}}},\n",
            l.total_bytes,
            l.directory_bytes,
            l.cluster_bytes,
            l.sq_bytes,
            l.padding_bytes,
            l.overflow_capacity_bytes,
            l.overflow_used_bytes,
            num(l.max_group_occupancy),
            num(l.mean_group_occupancy),
            num(l.utilization),
            num(l.fragmentation),
        ));
        out.push_str("  \"groups\": [\n");
        for (i, g) in self.groups.iter().enumerate() {
            let back = g.back.map_or("null".to_string(), |b| b.to_string());
            out.push_str(&format!(
                "    {{\"group\": {}, \"front\": {}, \"back\": {}, \"cluster_bytes\": {}, \"padding_bytes\": {}, \"overflow_capacity_bytes\": {}, \"overflow_used_bytes\": {}, \"overflow_slack_bytes\": {}, \"occupancy\": {}}}{}\n",
                g.group,
                g.front,
                back,
                g.cluster_bytes,
                g.padding_bytes,
                g.overflow_capacity_bytes,
                g.overflow_used_bytes,
                g.overflow_slack_bytes,
                num(g.occupancy),
                if i + 1 < self.groups.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"heatmap\": [\n");
        for (i, h) in self.heatmap.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"partition\": {}, \"route_hits\": {}, \"loads\": {}, \"cache_hits\": {}, \"evictions\": {}, \"bytes_read\": {}, \"hotness\": {}}}{}\n",
                h.partition,
                h.route_hits,
                h.loads,
                h.cache_hits,
                h.evictions,
                h.bytes_read,
                num(h.hotness),
                if i + 1 < self.heatmap.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        for (key, s) in [
            ("partition_skew", &self.partition_skew),
            ("route_skew", &self.route_skew),
            ("degree_skew", &self.degree_skew),
        ] {
            out.push_str(&format!(
                "  \"{}\": {{\"count\": {}, \"total\": {}, \"mean\": {}, \"max\": {}, \"gini\": {}, \"top1_share\": {}, \"topk_share\": {}, \"topk\": {}}},\n",
                key,
                s.count,
                s.total,
                num(s.mean),
                s.max,
                num(s.gini),
                num(s.top1_share),
                num(s.topk_share),
                s.topk,
            ));
        }
        let c = &self.cache;
        out.push_str(&format!(
            "  \"cache\": {{\"capacity\": {}, \"resident\": {}, \"resident_bytes\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {}, \"window_hits\": {}, \"window_misses\": {}, \"window_hit_rate\": {}}},\n",
            c.capacity, c.resident, c.resident_bytes, c.hits, c.misses, c.evictions, num(c.hit_rate),
            c.window_hits, c.window_misses, num(c.window_hit_rate),
        ));
        let t = &self.latency;
        out.push_str(&format!(
            "  \"latency\": {{\"queries\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"window_queries\": {}, \"window_p50_us\": {}, \"window_p95_us\": {}, \"window_p99_us\": {}}},\n",
            t.queries,
            num(t.p50_us),
            num(t.p95_us),
            num(t.p99_us),
            t.max_us,
            t.window_queries,
            num(t.window_p50_us),
            num(t.window_p95_us),
            num(t.window_p99_us),
        ));
        let r = &self.reliability;
        out.push_str(&format!(
            "  \"reliability\": {{\"queries\": {}, \"degraded_queries\": {}, \"read_retries\": {}, \"degraded_rate\": {}}},\n",
            r.queries,
            r.degraded_queries,
            r.read_retries,
            num(r.degraded_rate),
        ));
        let tl = &self.tail;
        let slowest_id = tl
            .slowest_trace_id
            .map_or("null".to_string(), |id| id.to_string());
        out.push_str(&format!(
            "  \"tail\": {{\"exemplar_occupancy\": {}, \"exemplars_recorded\": {}, \"exemplars_dropped\": {}, \"profile_paths\": {}, \"slowest_trace_id\": {}, \"slowest_total_us\": {}}},\n",
            tl.exemplar_occupancy,
            tl.exemplars_recorded,
            tl.exemplars_dropped,
            tl.profile_paths,
            slowest_id,
            num(tl.slowest_total_us),
        ));
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                v.to_json(),
                if i + 1 < self.violations.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Publishes the report's headline numbers as telemetry gauges:
    /// per-partition heat series, per-group overflow occupancy, and
    /// the region/skew summary. Ratios are encoded in milli-units
    /// (1000 == 1.0) since gauges are integral.
    pub fn publish(&self, telemetry: &Telemetry) {
        for h in &self.heatmap {
            let p = h.partition.to_string();
            let labels: &[(&str, &str)] = &[("partition", &p)];
            telemetry
                .gauge(
                    "dhnsw_heat_route_hits",
                    "Meta-HNSW routes to this partition (heatmap snapshot)",
                    labels,
                )
                .set(h.route_hits);
            telemetry
                .gauge(
                    "dhnsw_heat_loads",
                    "Remote cluster loads for this partition (heatmap snapshot)",
                    labels,
                )
                .set(h.loads);
            telemetry
                .gauge(
                    "dhnsw_heat_hotness_milli",
                    "EWMA hotness of this partition, milli-units",
                    labels,
                )
                .set_milli(h.hotness);
        }
        for g in &self.groups {
            let gl = g.group.to_string();
            let labels: &[(&str, &str)] = &[("group", &gl)];
            telemetry
                .gauge(
                    "dhnsw_health_overflow_occupancy_milli",
                    "Overflow-area occupancy of this group, milli-units (1000 = full)",
                    labels,
                )
                .set_milli(g.occupancy);
            telemetry
                .gauge(
                    "dhnsw_health_overflow_slack_bytes",
                    "Unused overflow bytes in this group",
                    labels,
                )
                .set(g.overflow_slack_bytes);
        }
        telemetry
            .gauge(
                "dhnsw_health_region_utilization_milli",
                "Fraction of the registered region carrying live data, milli-units",
                &[],
            )
            .set_milli(self.layout.utilization);
        telemetry
            .gauge(
                "dhnsw_health_fragmentation_milli",
                "Fraction of the registered region lost to padding/slack, milli-units",
                &[],
            )
            .set_milli(self.layout.fragmentation);
        telemetry
            .gauge(
                "dhnsw_health_partition_gini_milli",
                "Gini coefficient of serialized cluster sizes, milli-units",
                &[],
            )
            .set_milli(self.partition_skew.gini);
        telemetry
            .gauge(
                "dhnsw_health_route_gini_milli",
                "Gini coefficient of route frequencies, milli-units",
                &[],
            )
            .set_milli(self.route_skew.gini);
        telemetry
            .gauge(
                "dhnsw_health_degree_gini_milli",
                "Gini coefficient of meta-HNSW layer-0 out-degrees, milli-units",
                &[],
            )
            .set_milli(self.degree_skew.gini);
        telemetry
            .gauge(
                "dhnsw_health_cache_hit_rate_milli",
                "Cluster-cache hit rate at report time, milli-units",
                &[],
            )
            .set_milli(self.cache.hit_rate);
        telemetry
            .gauge(
                "dhnsw_health_p99_us",
                "p99 per-query latency at report time, microseconds",
                &[],
            )
            .set(self.latency.p99_us as u64);
        telemetry
            .gauge(
                "dhnsw_health_window_cache_hit_rate_milli",
                "Cluster-cache hit rate over the window since the previous report, milli-units",
                &[],
            )
            .set_milli(self.cache.window_hit_rate);
        telemetry
            .gauge(
                "dhnsw_health_window_p99_us",
                "p99 per-query latency over the window since the previous report, microseconds",
                &[],
            )
            .set(self.latency.window_p99_us as u64);
        telemetry
            .gauge(
                "dhnsw_health_window_queries",
                "Queries observed in the window since the previous report",
                &[],
            )
            .set(self.latency.window_queries);
        telemetry
            .gauge(
                "dhnsw_health_degraded_rate_milli",
                "Fraction of queries answered degraded since connect, milli-units",
                &[],
            )
            .set_milli(self.reliability.degraded_rate);
        telemetry
            .gauge(
                "dhnsw_health_read_retries",
                "Engine-level cluster read retries since connect",
                &[],
            )
            .set(self.reliability.read_retries);
        telemetry
            .gauge(
                "dhnsw_health_tail_slowest_us",
                "Wall time of the slowest retained tail exemplar, microseconds",
                &[],
            )
            .set(self.tail.slowest_total_us as u64);
        telemetry
            .gauge(
                "dhnsw_health_tail_slowest_trace_id",
                "Trace id of the slowest retained tail exemplar (0 when empty)",
                &[],
            )
            .set(self.tail.slowest_trace_id.unwrap_or(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::skew::skew_of;

    fn sample() -> HealthReport {
        HealthReport {
            mode: "full",
            partitions: 2,
            groups: vec![GroupHealth {
                group: 0,
                front: 0,
                back: Some(1),
                cluster_bytes: 1000,
                padding_bytes: 4,
                overflow_capacity_bytes: 512,
                overflow_used_bytes: 128,
                overflow_slack_bytes: 384,
                occupancy: 0.25,
            }],
            layout: LayoutSummary {
                total_bytes: 2048,
                directory_bytes: 100,
                cluster_bytes: 1000,
                sq_bytes: 0,
                padding_bytes: 8,
                overflow_capacity_bytes: 512,
                overflow_used_bytes: 128,
                max_group_occupancy: 0.25,
                mean_group_occupancy: 0.25,
                utilization: 0.6,
                fragmentation: 0.2,
            },
            heatmap: vec![
                PartitionHeat {
                    partition: 0,
                    route_hits: 10,
                    loads: 2,
                    cache_hits: 8,
                    evictions: 1,
                    bytes_read: 2048,
                    hotness: 1.5,
                },
                PartitionHeat {
                    partition: 1,
                    route_hits: 0,
                    loads: 0,
                    cache_hits: 0,
                    evictions: 0,
                    bytes_read: 0,
                    hotness: 0.0,
                },
            ],
            partition_skew: skew_of(&[500, 500], 1),
            route_skew: skew_of(&[10, 0], 1),
            degree_skew: skew_of(&[3, 5], 1),
            cache: CacheHealth {
                capacity: 4,
                resident: 2,
                resident_bytes: 1000,
                hits: 8,
                misses: 2,
                evictions: 1,
                hit_rate: 0.8,
                window_hits: 8,
                window_misses: 2,
                window_hit_rate: 0.8,
            },
            latency: LatencyHealth {
                queries: 10,
                p50_us: 100.0,
                p95_us: 200.0,
                p99_us: 250.0,
                max_us: 300,
                window_queries: 10,
                window_p50_us: 100.0,
                window_p95_us: 200.0,
                window_p99_us: 250.0,
            },
            reliability: ReliabilityHealth {
                queries: 10,
                degraded_queries: 2,
                read_retries: 3,
                degraded_rate: 0.2,
            },
            tail: TailHealth {
                exemplar_occupancy: 5,
                exemplars_recorded: 12,
                exemplars_dropped: 7,
                profile_paths: 9,
                slowest_trace_id: Some(42),
                slowest_total_us: 900.0,
            },
            violations: Vec::new(),
        }
    }

    #[test]
    fn json_is_deterministic_and_carries_every_section() {
        let r = sample();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        for key in [
            "\"mode\": \"full\"",
            "\"layout\":",
            "\"groups\":",
            "\"heatmap\":",
            "\"partition_skew\":",
            "\"route_skew\":",
            "\"degree_skew\":",
            "\"cache\":",
            "\"latency\":",
            "\"reliability\":",
            "\"degraded_rate\": 0.200000",
            "\"tail\":",
            "\"slowest_trace_id\": 42",
            "\"violations\":",
            "\"occupancy\": 0.250000",
            "\"hotness\": 1.500000",
            "\"back\": 1",
        ] {
            assert!(a.contains(key), "missing {key} in:\n{a}");
        }
    }

    #[test]
    fn odd_trailing_group_renders_null_back() {
        let mut r = sample();
        r.groups[0].back = None;
        assert!(r.to_json().contains("\"back\": null"));
        r.tail.slowest_trace_id = None;
        assert!(r.to_json().contains("\"slowest_trace_id\": null"));
    }

    #[test]
    fn publish_exposes_heat_occupancy_and_skew_series() {
        let telemetry = Telemetry::new();
        sample().publish(&telemetry);
        let prom = telemetry.render_prometheus();
        for series in [
            "dhnsw_heat_route_hits{partition=\"0\"} 10",
            "dhnsw_heat_loads{partition=\"0\"} 2",
            "dhnsw_heat_hotness_milli{partition=\"0\"} 1500",
            "dhnsw_health_overflow_occupancy_milli{group=\"0\"} 250",
            "dhnsw_health_overflow_slack_bytes{group=\"0\"} 384",
            "dhnsw_health_region_utilization_milli 600",
            "dhnsw_health_fragmentation_milli 200",
            "dhnsw_health_route_gini_milli 500",
            "dhnsw_health_cache_hit_rate_milli 800",
            "dhnsw_health_p99_us 250",
            "dhnsw_health_window_cache_hit_rate_milli 800",
            "dhnsw_health_window_p99_us 250",
            "dhnsw_health_window_queries 10",
            "dhnsw_health_degraded_rate_milli 200",
            "dhnsw_health_read_retries 3",
            "dhnsw_health_tail_slowest_us 900",
            "dhnsw_health_tail_slowest_trace_id 42",
        ] {
            assert!(prom.contains(series), "missing {series} in:\n{prom}");
        }
        let json = telemetry.snapshot_json();
        for key in [
            "dhnsw_heat_route_hits",
            "dhnsw_health_overflow_occupancy_milli",
            "dhnsw_health_route_gini_milli",
        ] {
            assert!(json.contains(key), "missing {key} in JSON snapshot");
        }
    }
}
