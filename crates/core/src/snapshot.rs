//! Store snapshots: persist the entire remote state to any writer and
//! restore it into a fresh memory node.
//!
//! A snapshot captures everything the memory pool holds — directory,
//! serialized clusters, and overflow areas with every insert — plus the
//! compute-side meta-HNSW, so a restored store answers queries
//! identically without re-partitioning or re-building graphs. The runtime
//! configuration (network model, cache sizing, fan-out) is *not*
//! persisted: it describes the deployment, not the data, and is supplied
//! again at restore time.
//!
//! Format (little-endian):
//!
//! ```text
//! magic     u32   "DHSS"
//! version   u32   1
//! base_len  u64
//! parts     u32
//! sizes     parts × u32       (base vectors per partition)
//! meta_len  u64, meta blob    (MetaIndex::to_bytes)
//! region_len u64, region bytes (verbatim remote memory image)
//! ```

use std::io::{Read, Write};
use std::sync::Arc;

use rdma_sim::{MemoryNode, QueuePair};

use crate::layout::{Directory, DIRECTORY_PEEK_BYTES};
use crate::meta::MetaIndex;
use crate::store::VectorStore;
use crate::{DHnswConfig, Error, Result};

/// Magic tag of a snapshot stream.
pub const SNAPSHOT_MAGIC: u32 = 0x5353_4844; // "DHSS"
/// Snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Writes a snapshot of `store` to `w` (pass `&mut w` to keep the
/// writer). The remote region is read back through a dedicated queue
/// pair, so the snapshot observes exactly what compute nodes would.
///
/// # Errors
///
/// Propagates I/O and substrate errors.
pub fn write_snapshot<W: Write>(store: &VectorStore, mut w: W) -> Result<()> {
    let qp = QueuePair::connect(store.memory_node(), store.config().network());
    let region_len = store.directory().total_len();
    let region = qp.read(store.region().rkey(), 0, region_len)?;
    let meta_blob = store.meta().to_bytes();

    let io_err = |e: std::io::Error| Error::Corrupt(format!("snapshot write failed: {e}"));
    w.write_all(&SNAPSHOT_MAGIC.to_le_bytes()).map_err(io_err)?;
    w.write_all(&SNAPSHOT_VERSION.to_le_bytes()).map_err(io_err)?;
    w.write_all(&(store.base_len() as u64).to_le_bytes())
        .map_err(io_err)?;
    w.write_all(&(store.partitions() as u32).to_le_bytes())
        .map_err(io_err)?;
    for p in 0..store.partitions() as u32 {
        let size = store.partition_size(p)? as u32;
        w.write_all(&size.to_le_bytes()).map_err(io_err)?;
    }
    w.write_all(&(meta_blob.len() as u64).to_le_bytes())
        .map_err(io_err)?;
    w.write_all(&meta_blob).map_err(io_err)?;
    w.write_all(&region_len.to_le_bytes()).map_err(io_err)?;
    w.write_all(&region).map_err(io_err)?;
    Ok(())
}

/// Restores a snapshot from `r` into a brand-new memory node, under the
/// supplied runtime configuration.
///
/// # Errors
///
/// Returns [`Error::Corrupt`] on a malformed stream and propagates
/// substrate errors.
pub fn read_snapshot<R: Read>(mut r: R, config: &DHnswConfig) -> Result<VectorStore> {
    config.validate()?;
    let io_err = |e: std::io::Error| Error::Corrupt(format!("snapshot read failed: {e}"));
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];

    r.read_exact(&mut u32buf).map_err(io_err)?;
    if u32::from_le_bytes(u32buf) != SNAPSHOT_MAGIC {
        return Err(Error::Corrupt("bad snapshot magic".into()));
    }
    r.read_exact(&mut u32buf).map_err(io_err)?;
    if u32::from_le_bytes(u32buf) != SNAPSHOT_VERSION {
        return Err(Error::Corrupt("unsupported snapshot version".into()));
    }
    r.read_exact(&mut u64buf).map_err(io_err)?;
    let base_len = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u32buf).map_err(io_err)?;
    let parts = u32::from_le_bytes(u32buf) as usize;
    let mut partition_sizes = Vec::with_capacity(parts);
    for _ in 0..parts {
        r.read_exact(&mut u32buf).map_err(io_err)?;
        partition_sizes.push(u32::from_le_bytes(u32buf) as usize);
    }
    r.read_exact(&mut u64buf).map_err(io_err)?;
    let meta_len = u64::from_le_bytes(u64buf) as usize;
    let mut meta_blob = vec![0u8; meta_len];
    r.read_exact(&mut meta_blob).map_err(io_err)?;
    let meta = MetaIndex::from_bytes(&meta_blob)?;

    r.read_exact(&mut u64buf).map_err(io_err)?;
    let region_len = u64::from_le_bytes(u64buf) as usize;
    let mut region_bytes = vec![0u8; region_len];
    r.read_exact(&mut region_bytes).map_err(io_err)?;

    // Validate the embedded directory before committing to a region.
    // Size it via the header: a v3 region carries an SQ span table.
    let dir_len = Directory::peek_size(
        region_bytes
            .get(..DIRECTORY_PEEK_BYTES)
            .ok_or_else(|| Error::Corrupt("region shorter than its directory".into()))?,
    )?;
    let directory = Directory::from_bytes(
        region_bytes
            .get(..dir_len)
            .ok_or_else(|| Error::Corrupt("region shorter than its directory".into()))?,
    )?;
    if directory.partitions() != parts {
        return Err(Error::Corrupt(format!(
            "snapshot header says {parts} partitions, directory says {}",
            directory.partitions()
        )));
    }
    if directory.total_len() != region_len as u64 {
        return Err(Error::Corrupt(format!(
            "directory expects {} region bytes, snapshot carries {region_len}",
            directory.total_len()
        )));
    }

    let node = MemoryNode::new("memory-pool-restored");
    let region = node.register(region_len)?;
    let setup_qp = QueuePair::connect(&node, config.network());
    setup_qp.write(region.rkey(), 0, &region_bytes)?;

    Ok(VectorStore::from_parts(
        config.clone(),
        node,
        region,
        Arc::new(meta),
        Arc::new(directory),
        base_len,
        partition_sizes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchMode;
    use vecsim::gen;

    fn snap_and_restore(store: &VectorStore) -> VectorStore {
        let mut buf = Vec::new();
        write_snapshot(store, &mut buf).unwrap();
        read_snapshot(&buf[..], store.config()).unwrap()
    }

    #[test]
    fn restored_store_answers_identically() {
        let data = gen::sift_like(500, 41).unwrap();
        let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
        let restored = snap_and_restore(&store);
        assert_eq!(restored.base_len(), store.base_len());
        assert_eq!(restored.partitions(), store.partitions());
        assert_eq!(restored.directory().as_ref(), store.directory().as_ref());

        let queries = gen::perturbed_queries(&data, 12, 0.03, 42).unwrap();
        let a = store.connect(SearchMode::Full).unwrap();
        let b = restored.connect(SearchMode::Full).unwrap();
        let (ra, _) = a.query_batch(&queries, 5, 32).unwrap();
        let (rb, _) = b.query_batch(&queries, 5, 32).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn snapshot_carries_overflow_inserts() {
        let data = gen::sift_like(300, 43).unwrap();
        let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
        let node = store.connect(SearchMode::Full).unwrap();
        let mut v = data.get(2).to_vec();
        v[0] += 0.75;
        let gid = node.insert(&v).unwrap();

        let restored = snap_and_restore(&store);
        let fresh = restored.connect(SearchMode::Full).unwrap();
        let hit = fresh.query(&v, 1, 32).unwrap();
        assert_eq!(hit[0].id, gid);
        assert!(hit[0].dist < 1e-6);
        // And the id counter continues past the insert.
        let next = fresh.insert(&v).unwrap();
        assert_eq!(next, gid + 1);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let data = gen::sift_like(200, 44).unwrap();
        let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
        let mut buf = Vec::new();
        write_snapshot(&store, &mut buf).unwrap();

        assert!(read_snapshot(&buf[..10], store.config()).is_err());
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xff;
        assert!(read_snapshot(&bad_magic[..], store.config()).is_err());
        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 5);
        assert!(read_snapshot(&truncated[..], store.config()).is_err());
    }

    #[test]
    fn restore_lives_on_a_fresh_memory_node() {
        let data = gen::sift_like(200, 45).unwrap();
        let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
        let restored = snap_and_restore(&store);
        assert!(!Arc::ptr_eq(store.memory_node(), restored.memory_node()));
        // Writing to the restored store does not affect the original.
        let w = restored.connect(SearchMode::Full).unwrap();
        let v = vec![1.0f32; 128];
        w.insert(&v).unwrap();
        let orig_counter = QueuePair::connect(store.memory_node(), store.config().network())
            .faa(store.region().rkey(), crate::layout::ID_COUNTER_OFFSET, 0)
            .unwrap();
        assert_eq!(orig_counter, store.base_len() as u64);
    }
}
