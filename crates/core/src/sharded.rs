//! Scale-out across multiple memory nodes.
//!
//! The paper evaluates a single memory instance; its introduction,
//! though, motivates datasets that outgrow one machine. This module
//! provides the natural scale-out: the dataset is split across `M`
//! independent memory nodes, each carrying a full d-HNSW store (its own
//! meta-HNSW, layout, and overflow areas) over its slice, and a sharded
//! compute session fans every query batch out to all shards and merges
//! the per-shard top-k. This is the Pyramid-style deployment the paper's
//! §3.1 cites as its inspiration.
//!
//! Global ids are `shard * SHARD_STRIDE + local_id`, so results from
//! different shards never collide and inserts (which allocate local ids
//! via each shard's remote counter) stay globally unique.

use std::sync::Arc;

use vecsim::{Dataset, Neighbor, TopK};

use crate::breakdown::BatchReport;
use crate::engine::{ComputeNode, SearchMode};
use crate::health::report::HealthReport;
use crate::store::VectorStore;
use crate::telemetry::{Counter, Telemetry};
use crate::{DHnswConfig, Error, Result};

/// Id stride between shards: local ids live below it, the shard index
/// above it. Allows up to 16 shards of ~268M vectors each within `u32`.
pub const SHARD_STRIDE: u32 = 1 << 28;

/// Maximum shard count representable in the global id scheme.
pub const MAX_SHARDS: usize = (u32::MAX / SHARD_STRIDE) as usize;

/// Splits a global id into `(shard, local)`.
pub fn split_id(global: u32) -> (usize, u32) {
    ((global / SHARD_STRIDE) as usize, global % SHARD_STRIDE)
}

/// Combines `(shard, local)` into a global id.
pub fn join_id(shard: usize, local: u32) -> u32 {
    shard as u32 * SHARD_STRIDE + local
}

/// A d-HNSW deployment sharded over several memory nodes.
///
/// # Example
///
/// ```rust
/// use dhnsw::{DHnswConfig, SearchMode, ShardedStore};
/// use vecsim::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = gen::sift_like(1_200, 5)?;
/// let store = ShardedStore::build(&data, &DHnswConfig::small(), 3)?;
/// assert_eq!(store.shards(), 3);
/// let session = store.connect(SearchMode::Full)?;
/// let hits = session.query(data.get(7), 5, 32)?;
/// assert_eq!(hits.len(), 5);
/// assert_eq!(hits[0].dist, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedStore {
    stores: Vec<VectorStore>,
    shard_rows: Vec<Vec<u32>>,
}

impl ShardedStore {
    /// Builds `shards` independent stores, distributing `data` round-robin
    /// (so every shard sees the same distribution and partitions stay
    /// balanced).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for zero/too-many shards, a
    /// dataset smaller than the shard count, or an invalid configuration.
    pub fn build(data: &Dataset, config: &DHnswConfig, shards: usize) -> Result<Self> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(Error::InvalidParameter(format!(
                "shard count must be in 1..={MAX_SHARDS}, got {shards}"
            )));
        }
        if data.len() < shards {
            return Err(Error::InvalidParameter(format!(
                "cannot split {} vectors across {shards} shards",
                data.len()
            )));
        }
        let mut shard_rows: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for row in 0..data.len() as u32 {
            shard_rows[row as usize % shards].push(row);
        }
        let stores = shard_rows
            .iter()
            .map(|rows| VectorStore::build(data.select(rows), config))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedStore { stores, shard_rows })
    }

    /// Number of shards (= memory nodes).
    pub fn shards(&self) -> usize {
        self.stores.len()
    }

    /// The per-shard store.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shards()`.
    pub fn shard(&self, i: usize) -> &VectorStore {
        &self.stores[i]
    }

    /// Maps a global result id back to the original dataset row, when the
    /// id names a base vector (inserted vectors have no original row).
    pub fn original_row(&self, global: u32) -> Option<u32> {
        let (shard, local) = split_id(global);
        self.shard_rows
            .get(shard)?
            .get(local as usize)
            .copied()
    }

    /// Total remote bytes across all shards.
    pub fn remote_bytes(&self) -> u64 {
        self.stores.iter().map(|s| s.remote_bytes()).sum()
    }

    /// Opens a sharded compute session: one [`ComputeNode`] per shard.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(&self, mode: SearchMode) -> Result<ShardedSession> {
        self.connect_with_telemetry(mode, Telemetry::global())
    }

    /// Opens a sharded compute session reporting to a specific
    /// [`Telemetry`] registry instead of the global one.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect_with_telemetry(
        &self,
        mode: SearchMode,
        telemetry: Arc<Telemetry>,
    ) -> Result<ShardedSession> {
        let nodes = self
            .stores
            .iter()
            .map(|s| s.connect_with_telemetry(mode, Arc::clone(&telemetry)))
            .collect::<Result<Vec<_>>>()?;
        let shard_metrics = (0..nodes.len())
            .map(|i| ShardCounters::new(&telemetry, i))
            .collect();
        Ok(ShardedSession {
            nodes,
            shard_metrics,
        })
    }
}

/// Pre-resolved per-shard counter handles, labeled `{shard="i"}`.
#[derive(Debug)]
struct ShardCounters {
    queries: Arc<Counter>,
    inserts: Arc<Counter>,
}

impl ShardCounters {
    fn new(telemetry: &Telemetry, shard: usize) -> Self {
        let shard = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard)];
        ShardCounters {
            queries: telemetry.counter(
                "dhnsw_shard_queries_total",
                "Queries fanned out to this shard by sharded sessions.",
                labels,
            ),
            inserts: telemetry.counter(
                "dhnsw_shard_inserts_total",
                "Inserts routed to this shard by sharded sessions.",
                labels,
            ),
        }
    }
}

/// Per-query coverage across shards: the unweighted mean of each
/// shard's coverage for that query. Every shard routes the same fanout,
/// so shards weigh equally; a shard that degraded (lost clusters to
/// exhausted read retries) pulls the merged coverage below `1.0` while
/// the healthy shards keep answering. An empty coverage vector stands
/// for full coverage, exactly as in [`BatchReport`]; the merged vector
/// is empty when every shard had full coverage.
pub fn merged_coverage(reports: &[BatchReport], queries: usize) -> Vec<f64> {
    if reports.is_empty() || reports.iter().all(|r| r.coverage.is_empty()) {
        return Vec::new();
    }
    let mut out = vec![0.0; queries];
    for r in reports {
        for (q, slot) in out.iter_mut().enumerate() {
            *slot += r.coverage.get(q).copied().unwrap_or(1.0);
        }
    }
    for slot in &mut out {
        *slot /= reports.len() as f64;
    }
    out
}

/// A compute session spanning every shard.
#[derive(Debug)]
pub struct ShardedSession {
    nodes: Vec<ComputeNode>,
    shard_metrics: Vec<ShardCounters>,
}

impl ShardedSession {
    /// Number of shard connections.
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// The per-shard compute node.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shards()`.
    pub fn node(&self, i: usize) -> &ComputeNode {
        &self.nodes[i]
    }

    /// Answers a batch by querying every shard (concurrently) and merging
    /// the per-shard top-k per query. Returned ids are global
    /// (`shard * SHARD_STRIDE + local`). Reports come back per shard —
    /// in a real deployment the shards are independent machines, so their
    /// network times overlap rather than add.
    ///
    /// # Errors
    ///
    /// Propagates the first shard error.
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
        ef: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, Vec<BatchReport>)> {
        if queries.is_empty() {
            return Ok((Vec::new(), Vec::new()));
        }
        let shard_outputs: Vec<Result<(Vec<Vec<Neighbor>>, BatchReport)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .nodes
                    .iter()
                    .map(|node| scope.spawn(move || node.query_batch(queries, k, ef)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker does not panic"))
                    .collect()
            });

        let mut per_shard = Vec::with_capacity(self.nodes.len());
        let mut reports = Vec::with_capacity(self.nodes.len());
        for (shard, out) in shard_outputs.into_iter().enumerate() {
            let (results, report) = out?;
            self.shard_metrics[shard].queries.add(queries.len() as u64);
            per_shard.push(results);
            reports.push(report);
        }

        let mut merged = Vec::with_capacity(queries.len());
        for q in 0..queries.len() {
            let mut top = TopK::new(k);
            for (shard, results) in per_shard.iter().enumerate() {
                for n in &results[q] {
                    top.push(join_id(shard, n.id), n.dist);
                }
            }
            merged.push(top.into_sorted_vec());
        }
        Ok((merged, reports))
    }

    /// Sets the micro-batch pipeline depth on every shard connection
    /// (values are clamped to at least 1 per node).
    pub fn set_pipeline_depth(&self, depth: usize) {
        for node in &self.nodes {
            node.set_pipeline_depth(depth);
        }
    }

    /// Sets the background-prefetch byte budget on every shard
    /// connection; `0` disables prefetching.
    pub fn set_prefetch_budget_bytes(&self, budget: u64) {
        for node in &self.nodes {
            node.set_prefetch_budget_bytes(budget);
        }
    }

    /// Runs one heatmap-driven prefetch round on every shard, returning
    /// the total clusters admitted across shards.
    pub fn prefetch_hot(&self) -> usize {
        self.nodes.iter().map(|n| n.prefetch_hot()).sum()
    }

    /// Collects one [`HealthReport`] per shard, in shard order. Each
    /// shard is an independent memory node with its own layout and
    /// overflow areas, so the reports do not aggregate — rebalancing
    /// decisions are per shard.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's report error.
    pub fn health_reports(&self) -> Result<Vec<HealthReport>> {
        self.nodes.iter().map(|n| n.health_report()).collect()
    }

    /// Single-query convenience wrapper.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedSession::query_batch`].
    pub fn query(&self, query: &[f32], k: usize, ef: usize) -> Result<Vec<Neighbor>> {
        let batch = Dataset::from_rows(&[query])?;
        let (mut results, _) = self.query_batch(&batch, k, ef)?;
        Ok(results.pop().unwrap_or_default())
    }

    /// Inserts into the least-full shard (by base size plus a local
    /// round-robin of this session's inserts), returning the global id.
    ///
    /// # Errors
    ///
    /// Same as [`ComputeNode::insert`].
    pub fn insert(&self, v: &[f32]) -> Result<u32> {
        // Balance by the shards' current insert pressure as this session
        // sees it: rotate deterministically on the remote id counters.
        let mut best = 0usize;
        let mut best_key = u64::MAX;
        for (i, node) in self.nodes.iter().enumerate() {
            let key = node.queue_pair().stats().atomics();
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        let local = self.nodes[best].insert(v)?;
        self.shard_metrics[best].inserts.inc();
        if u64::from(local) >= u64::from(SHARD_STRIDE) {
            return Err(Error::InvalidParameter(format!(
                "shard {best} exceeded the id stride ({local} local ids)"
            )));
        }
        Ok(join_id(best, local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsim::{gen, ground_truth, recall, Metric};

    fn setup(n: usize, shards: usize) -> (Dataset, ShardedStore) {
        let data = gen::sift_like(n, 61).unwrap();
        let store = ShardedStore::build(&data, &DHnswConfig::small(), shards).unwrap();
        (data, store)
    }

    #[test]
    fn id_scheme_round_trips() {
        for (shard, local) in [(0usize, 0u32), (3, 42), (15, SHARD_STRIDE - 1)] {
            let g = join_id(shard, local);
            assert_eq!(split_id(g), (shard, local));
        }
    }

    #[test]
    fn build_rejects_bad_shard_counts() {
        let data = gen::sift_like(100, 1).unwrap();
        assert!(ShardedStore::build(&data, &DHnswConfig::small(), 0).is_err());
        assert!(ShardedStore::build(&data, &DHnswConfig::small(), MAX_SHARDS + 1).is_err());
        let tiny = gen::sift_like(2, 1).unwrap();
        assert!(ShardedStore::build(&tiny, &DHnswConfig::small(), 3).is_err());
    }

    #[test]
    fn shards_cover_the_dataset_disjointly() {
        let (data, store) = setup(601, 3);
        let total: usize = (0..3).map(|i| store.shard(i).base_len()).sum();
        assert_eq!(total, data.len());
        // Round-robin split: sizes differ by at most one.
        let sizes: Vec<usize> = (0..3).map(|i| store.shard(i).base_len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn original_row_maps_back() {
        let (data, store) = setup(100, 4);
        // Row 6 went to shard 6 % 4 = 2, local position 1 (rows 2, 6, ...).
        let g = join_id(2, 1);
        assert_eq!(store.original_row(g), Some(6));
        let session = store.connect(SearchMode::Full).unwrap();
        let hits = session.query(data.get(6), 1, 32).unwrap();
        assert_eq!(store.original_row(hits[0].id), Some(6));
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn sharded_recall_matches_single_store() {
        let data = gen::sift_like(1_500, 62).unwrap();
        let queries = gen::perturbed_queries(&data, 30, 0.02, 63).unwrap();
        let truth = ground_truth::exact_batch(&data, &queries, 5, Metric::L2);

        let sharded = ShardedStore::build(&data, &DHnswConfig::small(), 3).unwrap();
        let session = sharded.connect(SearchMode::Full).unwrap();
        let (results, reports) = session.query_batch(&queries, 5, 48).unwrap();
        assert_eq!(reports.len(), 3);
        let ids: Vec<Vec<u32>> = results
            .iter()
            .map(|r| {
                r.iter()
                    .filter_map(|n| sharded.original_row(n.id))
                    .collect()
            })
            .collect();
        let r = recall::mean_recall(&ids, &truth);
        assert!(r > 0.7, "sharded recall {r}");
    }

    #[test]
    fn merged_results_are_sorted_and_unique() {
        let (data, store) = setup(900, 3);
        let session = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 10, 0.03, 64).unwrap();
        let (results, _) = session.query_batch(&queries, 8, 32).unwrap();
        for r in &results {
            assert_eq!(r.len(), 8);
            for w in r.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
            let mut ids: Vec<u32> = r.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 8);
        }
    }

    #[test]
    fn inserts_get_globally_unique_ids_and_are_findable() {
        let (data, store) = setup(300, 2);
        let session = store.connect(SearchMode::Full).unwrap();
        let inserts = gen::perturbed_queries(&data, 6, 0.01, 65).unwrap();
        let mut gids = Vec::new();
        for v in inserts.iter() {
            gids.push(session.insert(v).unwrap());
        }
        let mut unique = gids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), gids.len());
        for (i, v) in inserts.iter().enumerate() {
            let hit = session.query(v, 1, 32).unwrap();
            assert_eq!(hit[0].id, gids[i], "insert {i} not found");
        }
    }

    #[test]
    fn health_reports_cover_every_shard() {
        let (data, store) = setup(400, 2);
        let session = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 4, 0.02, 66).unwrap();
        session.query_batch(&queries, 5, 16).unwrap();
        let reports = session.health_reports().unwrap();
        assert_eq!(reports.len(), 2);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.partitions, store.shard(i).partitions());
            assert!(r.route_skew.total > 0, "shard {i} saw the fan-out");
        }
    }

    #[test]
    fn one_degraded_shard_leaves_the_others_answering() {
        let data = gen::sift_like(600, 67).unwrap();
        let cfg = DHnswConfig::small()
            .with_degraded_ok(true)
            .with_read_retry_limit(1);
        let store = ShardedStore::build(&data, &cfg, 2).unwrap();
        let session = store.connect(SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 4, 0.02, 68).unwrap();
        // Shard 1's substrate eats every verb: its reads exhaust the
        // retry budget and its queries degrade to zero coverage.
        session.node(1).queue_pair().set_retry_limit(0);
        session.node(1).queue_pair().fail_next(u32::MAX);
        let (results, reports) = session.query_batch(&queries, 5, 32).unwrap();
        session.node(1).queue_pair().fail_next(0);
        assert!(results.iter().all(|r| !r.is_empty()), "healthy shard answers");
        assert_eq!(reports[0].degraded_queries, 0);
        assert_eq!(reports[1].degraded_queries, queries.len());
        let merged = merged_coverage(&reports, queries.len());
        assert_eq!(merged.len(), queries.len());
        for &c in &merged {
            assert!(c > 0.0 && c < 1.0, "merged coverage {c} must be partial");
        }
        // All-healthy reports keep the compact empty form.
        assert!(merged_coverage(&[reports[0].clone()], queries.len()).is_empty());
    }

    #[test]
    fn shard_error_propagates_without_poisoning_metrics() {
        // One shard's substrate fails hard with degraded mode OFF: the
        // session must surface the first shard error, bump only the
        // shards drained before it, and stay fully usable afterwards.
        let data = gen::sift_like(400, 69).unwrap();
        let cfg = DHnswConfig::small().with_read_retry_limit(0);
        let store = ShardedStore::build(&data, &cfg, 2).unwrap();
        let telemetry = Arc::new(Telemetry::new());
        let session = store
            .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
            .unwrap();
        let queries = gen::perturbed_queries(&data, 3, 0.02, 70).unwrap();

        session.node(1).queue_pair().set_retry_limit(0);
        session.node(1).queue_pair().fail_next(u32::MAX);
        let err = session.query_batch(&queries, 5, 16).unwrap_err();
        assert!(
            matches!(err, Error::ReadRetriesExhausted { .. }),
            "unexpected error: {err:?}"
        );
        // Shard 0 was drained before the failure, shard 1 never counted.
        let prom = telemetry.render_prometheus();
        assert!(
            prom.contains("dhnsw_shard_queries_total{shard=\"0\"} 3"),
            "healthy shard counter missing:\n{prom}"
        );
        assert!(
            prom.contains("dhnsw_shard_queries_total{shard=\"1\"} 0"),
            "failed shard must not count the aborted batch:\n{prom}"
        );

        // Clear the fault: the same session answers and both shards count.
        session.node(1).queue_pair().fail_next(0);
        let (results, reports) = session.query_batch(&queries, 5, 16).unwrap();
        assert_eq!(results.len(), queries.len());
        assert_eq!(reports.len(), 2);
        let prom = telemetry.render_prometheus();
        assert!(prom.contains("dhnsw_shard_queries_total{shard=\"0\"} 6"));
        assert!(prom.contains("dhnsw_shard_queries_total{shard=\"1\"} 3"));
    }

    #[test]
    fn degraded_coverage_merges_per_query_means() {
        // Pure merge semantics: one shard reports partial coverage, the
        // other full (compact empty form); the merge is the per-query
        // unweighted mean, expanded to explicit values.
        let full = BatchReport {
            queries: 3,
            ..Default::default()
        };
        let degraded = BatchReport {
            queries: 3,
            degraded_queries: 2,
            coverage: vec![0.5, 1.0, 0.0],
            ..Default::default()
        };
        let merged = merged_coverage(&[full, degraded], 3);
        assert_eq!(merged, vec![0.75, 1.0, 0.5]);
    }

    #[test]
    fn pipeline_knobs_fan_out_to_every_shard() {
        let (data, store) = setup(400, 2);
        let session = store.connect(SearchMode::Full).unwrap();
        session.set_pipeline_depth(3);
        session.set_prefetch_budget_bytes(1 << 20);
        for s in 0..session.shards() {
            assert_eq!(session.node(s).pipeline_depth(), 3);
            assert_eq!(session.node(s).prefetch_budget_bytes(), 1 << 20);
        }
        // Pipelined sharded answers match the sequential session's.
        let queries = gen::perturbed_queries(&data, 6, 0.02, 71).unwrap();
        let seq = store.connect(SearchMode::Full).unwrap();
        let (a, _) = session.query_batch(&queries, 5, 32).unwrap();
        let (b, _) = seq.query_batch(&queries, 5, 32).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_batch_is_noop() {
        let (_, store) = setup(100, 2);
        let session = store.connect(SearchMode::Full).unwrap();
        let (results, reports) = session
            .query_batch(&Dataset::new(128), 5, 16)
            .unwrap();
        assert!(results.is_empty());
        assert!(reports.is_empty());
    }
}
