//! Unified telemetry: metrics registry, per-query traces, exposition.
//!
//! Everything the query path wants to record flows through a
//! [`Telemetry`] instance — counters, gauges, and fixed-bucket
//! log-scale histograms, plus a bounded ring of structured
//! [`QueryTrace`] records. One process-wide instance
//! ([`Telemetry::global`]) backs every [`crate::ComputeNode`] unless a
//! caller supplies its own (tests isolate themselves this way).
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cheapness.** Recording a metric is a handful of
//!    relaxed atomic RMWs on pre-resolved [`Counter`] / [`Histogram`]
//!    handles. The registry lock is touched only at registration time
//!    (node connect) and at exposition time.
//! 2. **No allocation per query.** Handles are `Arc`s resolved once;
//!    histograms are fixed arrays; the trace ring is preallocated and
//!    traces are `Copy`. With tracing disabled the per-batch overhead
//!    is a single atomic load.
//! 3. **No dependencies.** Exposition renders Prometheus text format
//!    0.0.4 and JSON by hand; ordering is made deterministic with
//!    `BTreeMap`s so output is diffable and testable.
//!
//! Metric naming follows Prometheus conventions: `dhnsw_` prefix,
//! `_total` suffix on counters, base units in the name (`_us`,
//! `_bytes`). Labels are attached at registration (`mode`, `stage`,
//! `shard`) and become part of the handle, never a per-sample cost.

pub mod chrome;
pub mod exemplar;
pub mod profile;
pub mod series;
pub mod span;

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use exemplar::ExemplarStore;
use profile::ProfileAccumulator;
use series::{SeriesPoint, SeriesRecorder};
use span::{SpanTracer, DEFAULT_SPAN_TRACE_CAPACITY};

/// Number of histogram buckets: upper bounds `2^0 .. 2^31`, then +Inf.
/// Shared with the exemplar store, whose per-bucket exemplars mirror
/// the latency histogram's bucket layout.
pub const HIST_BUCKETS: usize = 33;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (occupancy, resident bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Stores a ratio-like float in milli-units (1000 == 1.0), the
    /// convention health gauges use since gauges are integral.
    /// Negative or non-finite values clamp to zero.
    pub fn set_milli(&self, v: f64) {
        let milli = if v.is_finite() && v > 0.0 {
            (v * 1000.0).round() as u64
        } else {
            0
        };
        self.set(milli);
    }
}

/// A fixed-bucket log-scale histogram of non-negative integer samples.
///
/// Buckets have upper bounds `1, 2, 4, …, 2^31, +Inf` — 33 in total,
/// which spans sub-microsecond latencies to half-hour outliers when
/// samples are microseconds, and single-element to billion-element
/// sizes when they are counts. Quantiles are read as the upper bound
/// of the bucket holding the target rank, clamped to the observed
/// max, so a histogram with one sample reports that sample exactly.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the first bucket whose upper bound is `>= v` — the
/// bucket a sample of value `v` lands in. Public so histogram
/// exemplars (and gates over them) can be filed under exactly the
/// bucket the histogram counted.
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        let i = 64 - (v - 1).leading_zeros() as usize;
        i.min(HIST_BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` (`f64::INFINITY` for the last).
pub fn bucket_bound(i: usize) -> f64 {
    if i + 1 == HIST_BUCKETS {
        f64::INFINITY
    } else {
        (1u64 << i) as f64
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.observe_n(v, 1);
    }

    /// Records `count` samples of value `v` (used when merging
    /// pre-bucketed counts from a substrate snapshot).
    pub fn observe_n(&self, v: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(count), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The quantile `q` in `[0, 1]`: the upper bound of the bucket that
    /// holds the sample of rank `ceil(q × count)`, clamped to the
    /// observed max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bound(i).min(self.max() as f64);
            }
        }
        self.max() as f64
    }

    /// Cumulative `(upper_bound, count)` pairs, Prometheus-style.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        (0..HIST_BUCKETS)
            .map(|i| {
                cum += self.buckets[i].load(Ordering::Relaxed);
                (bucket_bound(i), cum)
            })
            .collect()
    }

    /// A point-in-time copy of the buckets, for windowed evaluation:
    /// subtract an earlier snapshot from a later one and read
    /// quantiles over just the samples recorded in between.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max(),
        }
    }
}

/// A frozen copy of a [`Histogram`]'s buckets.
///
/// Subtraction yields the *window* between two snapshots, which is how
/// the SLO watchdog and the health report evaluate recent p99 instead
/// of lifetime aggregates: a cold-start latency spike ages out of the
/// window as soon as a report interval passes without one, instead of
/// pinning the lifetime quantile (and the watchdog) forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HIST_BUCKETS],
    sum: u64,
    /// Largest sample observed up to snapshot time. A window's exact
    /// max is unknowable from bucket deltas; quantiles clamp to this
    /// lifetime max, which can only overstate a window quantile within
    /// its bucket, never past any observed sample.
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Samples in this snapshot (or window).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of samples in this snapshot (or window).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Quantile over this snapshot's (or window's) samples, with the
    /// same bucket-upper-bound semantics as [`Histogram::quantile`].
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bound(i).min(self.max as f64);
            }
        }
        self.max as f64
    }
}

impl std::ops::Sub for HistogramSnapshot {
    type Output = HistogramSnapshot;

    /// The window between two snapshots. Saturating per bucket so a
    /// racing in-between reset yields an empty window rather than a
    /// wrapped one; `max` keeps the later (lifetime) value.
    fn sub(self, rhs: HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(rhs.buckets[i])),
            sum: self.sum.saturating_sub(rhs.sum),
            max: self.max,
        }
    }
}

/// What a registered metric is, for exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// All instruments sharing one metric name (one per label set).
#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: Kind,
    /// Keyed by the rendered label set (`{a="x",b="y"}` or "").
    series: BTreeMap<String, Instrument>,
}

/// Renders a label slice as `{k="v",…}`, keys sorted, or `""` if empty.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Escapes a label value for both exposition formats.
pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// A structured record of one `query_batch` call.
///
/// `Copy` on purpose: recording a trace moves a fixed-size value into
/// a preallocated ring — no heap allocation on the query path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTrace {
    /// Search-mode label (`full`, `no_doorbell`, `naive`).
    pub mode: &'static str,
    /// Queries in the batch.
    pub queries: u32,
    /// Requested neighbors per query.
    pub k: u32,
    /// Sub-HNSW beam width.
    pub ef: u32,
    /// Partitions routed per query.
    pub fanout: u32,
    /// Total partition demand before dedup (queries × fanout).
    pub raw_cluster_demand: u32,
    /// Distinct clusters the batch touched.
    pub unique_clusters: u32,
    /// Clusters already resident in the cache.
    pub cache_hits: u32,
    /// Clusters fetched from remote memory.
    pub clusters_loaded: u32,
    /// Doorbell batches the loads issued.
    pub doorbell_batches: u32,
    /// Network round trips charged to the batch.
    pub round_trips: u64,
    /// Bytes read from remote memory.
    pub bytes_read: u64,
    /// Meta-HNSW routing stage, microseconds.
    pub meta_us: f64,
    /// Network stage (virtual clock), microseconds.
    pub network_us: f64,
    /// Sub-HNSW search stage, microseconds.
    pub sub_us: f64,
    /// Cluster materialization (decode) stage, microseconds.
    pub materialize_us: f64,
    /// Whole call, wall clock, microseconds.
    pub total_us: f64,
    /// Bytes read per [`rdma_sim::ReadCause`], indexed by
    /// `ReadCause::index()` — the batch's byte provenance. Sums to
    /// `bytes_read`.
    pub cause_bytes: [u64; rdma_sim::READ_CAUSES],
}

/// Bounded ring of the most recent [`QueryTrace`]s.
///
/// Disabled by default; when disabled, recording costs one atomic
/// load. A fixed-slot ring: the slot vector grows to capacity once
/// and is then overwritten in place, so steady-state recording never
/// allocates or shifts elements.
#[derive(Debug)]
pub struct TraceRing {
    enabled: AtomicBool,
    capacity: usize,
    buf: Mutex<RingBuf>,
}

/// Fixed-capacity slot storage: `slots[head]` is the oldest retained
/// trace, `len` of the slots are live, writes wrap modulo capacity.
#[derive(Debug)]
struct RingBuf {
    slots: Vec<QueryTrace>,
    head: usize,
    len: usize,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            enabled: AtomicBool::new(false),
            capacity,
            buf: Mutex::new(RingBuf {
                slots: Vec::with_capacity(capacity),
                head: 0,
                len: 0,
            }),
        }
    }

    /// Turns per-query tracing on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether traces are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records a trace if enabled, evicting the oldest at capacity.
    pub fn record(&self, trace: QueryTrace) {
        if !self.is_enabled() {
            return;
        }
        let mut buf = self.buf.lock();
        if buf.len < self.capacity {
            // Still filling: the write index is past the live window.
            let idx = (buf.head + buf.len) % self.capacity;
            if idx == buf.slots.len() {
                buf.slots.push(trace);
            } else {
                buf.slots[idx] = trace;
            }
            buf.len += 1;
        } else {
            // Full: overwrite the oldest slot and advance the head.
            let idx = buf.head;
            buf.slots[idx] = trace;
            buf.head = (buf.head + 1) % self.capacity;
        }
    }

    /// The retained traces, strictly oldest first — stable across
    /// wraparound. Allocates; exposition-path only.
    pub fn recent(&self) -> Vec<QueryTrace> {
        let buf = self.buf.lock();
        (0..buf.len)
            .map(|i| buf.slots[(buf.head + i) % self.capacity])
            .collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.buf.lock().len
    }

    /// Whether no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained traces (capacity is kept reserved).
    pub fn clear(&self) {
        let mut buf = self.buf.lock();
        buf.slots.clear();
        buf.head = 0;
        buf.len = 0;
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Default number of traces the ring retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// The telemetry hub: a metrics registry, a trace ring, a span
/// tracer, the always-on flame-profile accumulator, and the bounded
/// tail-exemplar store.
#[derive(Debug)]
pub struct Telemetry {
    families: Mutex<BTreeMap<&'static str, Family>>,
    traces: TraceRing,
    spans: SpanTracer,
    profile: ProfileAccumulator,
    exemplars: ExemplarStore,
    series: SeriesRecorder,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// An empty telemetry hub with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty telemetry hub retaining up to `capacity` traces.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Telemetry {
            families: Mutex::new(BTreeMap::new()),
            traces: TraceRing::new(capacity),
            spans: SpanTracer::new(DEFAULT_SPAN_TRACE_CAPACITY),
            profile: ProfileAccumulator::new(),
            exemplars: ExemplarStore::default(),
            series: SeriesRecorder::new(),
        }
    }

    /// The process-wide instance every node uses unless told otherwise.
    pub fn global() -> Arc<Telemetry> {
        static GLOBAL: OnceLock<Arc<Telemetry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(Telemetry::new())))
    }

    /// The per-query trace ring.
    pub fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// The span tracer (per-batch span trees, slow-query log).
    pub fn spans(&self) -> &SpanTracer {
        &self.spans
    }

    /// The cumulative flame-profile accumulator (always on: every
    /// batch folds either its span tree or its phase breakdown).
    pub fn profile(&self) -> &ProfileAccumulator {
        &self.profile
    }

    /// The bounded tail-exemplar store behind `/exemplars`,
    /// `/whyslow/<id>`, and the histogram bucket exemplars.
    pub fn exemplars(&self) -> &ExemplarStore {
        &self.exemplars
    }

    /// The time-series recorder behind `/timeseries`, `/anomalies`,
    /// and `dhnsw_cli top`.
    pub fn series(&self) -> &SeriesRecorder {
        &self.series
    }

    /// Ticks the embedded series recorder against this hub at
    /// `now_us` (caller-supplied; the recorder never reads the wall
    /// clock). Prefer [`crate::ComputeNode::sample_series`], which
    /// flushes the engine's substrate counters first.
    pub fn tick_series(&self, now_us: u64) -> Option<SeriesPoint> {
        self.series.tick(self, now_us)
    }

    /// Gets or registers the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        match self.instrument(name, help, labels, Kind::Counter, || {
            Instrument::Counter(Arc::new(Counter::default()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// Gets or registers the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        match self.instrument(name, help, labels, Kind::Gauge, || {
            Instrument::Gauge(Arc::new(Gauge::default()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// Gets or registers the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.instrument(name, help, labels, Kind::Histogram, || {
            Instrument::Histogram(Arc::new(Histogram::default()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    fn instrument(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let key = render_labels(labels);
        let mut families = self.families.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered as {:?}, requested as {kind:?}",
            family.kind
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Renders every metric in Prometheus text format 0.0.4, families
    /// and series in lexicographic order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock();
        for (name, family) in families.iter() {
            let kind = match family.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "histogram",
            };
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, inst) in &family.series {
                match inst {
                    Instrument::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Instrument::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Instrument::Histogram(h) => {
                        for (bound, cum) in h.cumulative_buckets() {
                            let le = if bound.is_infinite() {
                                "+Inf".to_string()
                            } else {
                                format!("{bound}")
                            };
                            let with_le = merge_label(labels, &format!("le=\"{le}\""));
                            out.push_str(&format!("{name}_bucket{with_le} {cum}\n"));
                        }
                        out.push_str(&format!("{name}_sum{labels} {}\n", h.sum()));
                        out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
                    }
                }
            }
        }
        out
    }

    /// Renders every metric (and histogram quantiles) as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`,
    /// keys in lexicographic order.
    pub fn snapshot_json(&self) -> String {
        let mut counters: BTreeMap<String, String> = BTreeMap::new();
        let mut gauges: BTreeMap<String, String> = BTreeMap::new();
        let mut hists: BTreeMap<String, String> = BTreeMap::new();
        let families = self.families.lock();
        for (name, family) in families.iter() {
            for (labels, inst) in &family.series {
                let key = format!("{name}{labels}");
                match inst {
                    Instrument::Counter(c) => {
                        counters.insert(key, c.get().to_string());
                    }
                    Instrument::Gauge(g) => {
                        gauges.insert(key, g.get().to_string());
                    }
                    Instrument::Histogram(h) => {
                        let buckets: Vec<String> = h
                            .cumulative_buckets()
                            .into_iter()
                            .map(|(bound, cum)| {
                                let le = if bound.is_infinite() {
                                    "\"+Inf\"".to_string()
                                } else {
                                    format!("{bound}")
                                };
                                format!("[{le},{cum}]")
                            })
                            .collect();
                        hists.insert(
                            key,
                            format!(
                                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                                 \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                                h.count(),
                                h.sum(),
                                h.min(),
                                h.max(),
                                json_f64(h.quantile(0.50)),
                                json_f64(h.quantile(0.95)),
                                json_f64(h.quantile(0.99)),
                                buckets.join(",")
                            ),
                        );
                    }
                }
            }
        }
        let join = |m: &BTreeMap<String, String>| {
            m.iter()
                .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            join(&counters),
            join(&gauges),
            join(&hists)
        )
    }
}

/// Inserts an extra label into an already-rendered label set.
fn merge_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        // `{a="x"}` → `{a="x",extra}`
        format!("{},{extra}}}", &labels[..labels.len() - 1])
    }
}

/// Formats an f64 as JSON (no NaN/Inf — clamp to a string if ever hit).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "\"+Inf\"".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let t = Telemetry::new();
        let c = t.counter("dhnsw_test_total", "help", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name+labels returns the same instrument.
        assert_eq!(t.counter("dhnsw_test_total", "help", &[]).get(), 5);

        let g = t.gauge("dhnsw_test_gauge", "help", &[("mode", "full")]);
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge sub saturates at zero");
    }

    #[test]
    fn gauge_set_milli_encodes_ratios() {
        let t = Telemetry::new();
        let g = t.gauge("dhnsw_test_ratio_milli", "help", &[]);
        g.set_milli(0.25);
        assert_eq!(g.get(), 250);
        g.set_milli(1.0);
        assert_eq!(g.get(), 1000);
        g.set_milli(0.0004);
        assert_eq!(g.get(), 0, "rounds to nearest milli");
        g.set_milli(-1.0);
        assert_eq!(g.get(), 0, "negative clamps to zero");
        g.set_milli(f64::NAN);
        assert_eq!(g.get(), 0, "non-finite clamps to zero");
    }

    #[test]
    #[should_panic(expected = "registered as Counter")]
    fn kind_mismatch_panics() {
        let t = Telemetry::new();
        t.counter("dhnsw_x", "help", &[]);
        t.gauge("dhnsw_x", "help", &[]);
    }

    #[test]
    fn histogram_empty_reports_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn histogram_single_sample_is_exact_at_every_quantile() {
        let h = Histogram::default();
        h.observe(37);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 37.0, "q={q}");
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 37);
        assert_eq!(h.min(), 37);
        assert_eq!(h.max(), 37);
    }

    #[test]
    fn histogram_bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 31), 31);
        assert_eq!(bucket_index((1 << 31) + 1), 32);
        assert_eq!(bucket_index(u64::MAX), 32);
    }

    #[test]
    fn histogram_quantiles_walk_buckets() {
        let h = Histogram::default();
        // 90 fast samples, 10 slow ones.
        h.observe_n(10, 90);
        h.observe_n(1000, 10);
        // p50 lands in the bucket of 10 (upper bound 16).
        assert_eq!(h.quantile(0.5), 16.0);
        // p95 lands in the bucket of 1000 (upper bound 1024, clamped to
        // observed max 1000).
        assert_eq!(h.quantile(0.95), 1000.0);
        assert_eq!(h.quantile(0.99), 1000.0);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 10 + 10 * 1000);
    }

    #[test]
    fn histogram_snapshot_window_isolates_recent_samples() {
        let h = Histogram::default();
        // Cold start: 10 slow samples dominate lifetime quantiles.
        h.observe_n(1000, 10);
        let baseline = h.snapshot();
        assert_eq!(baseline.count(), 10);
        assert_eq!(baseline.quantile(0.99), 1000.0);
        // Steady state: 90 fast samples arrive after the baseline.
        h.observe_n(10, 90);
        let window = h.snapshot() - baseline;
        assert_eq!(window.count(), 90);
        assert_eq!(window.sum(), 900);
        // The window sees only fast traffic even though lifetime p99
        // is still pinned by the cold spike.
        assert_eq!(window.quantile(0.99), 16.0);
        assert_eq!(h.quantile(0.99), 1000.0);
    }

    #[test]
    fn histogram_snapshot_empty_window_reads_zero() {
        let h = Histogram::default();
        h.observe_n(500, 4);
        let a = h.snapshot();
        let window = h.snapshot() - a;
        assert_eq!(window.count(), 0);
        assert_eq!(window.sum(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(window.quantile(q), 0.0);
        }
        // Default snapshot is an empty window too.
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0.0);
    }

    #[test]
    fn histogram_snapshot_quantile_clamps_to_lifetime_max() {
        let h = Histogram::default();
        h.observe(1000);
        let snap = h.snapshot();
        // Bucket upper bound is 1024; the snapshot clamps to the
        // observed max like the live histogram does.
        assert_eq!(snap.quantile(1.0), 1000.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn histogram_snapshot_sub_saturates_across_a_reset() {
        // A racing reset between two snapshots makes the "later"
        // snapshot smaller than the baseline in some buckets. The
        // window must saturate to empty, never wrap.
        let before = Histogram::default();
        before.observe_n(100, 8);
        before.observe_n(10_000, 2);
        let baseline = before.snapshot();
        let after_reset = Histogram::default();
        after_reset.observe_n(100, 3);
        let window = after_reset.snapshot() - baseline;
        assert_eq!(window.count(), 0, "every bucket saturated to zero");
        assert_eq!(window.sum(), 0);
        for q in [0.5, 0.99, 1.0] {
            assert_eq!(window.quantile(q), 0.0);
        }
    }

    #[test]
    fn histogram_snapshot_sub_partial_wrap_keeps_surviving_buckets() {
        // Only one bucket wraps (the reset lost the slow samples);
        // the fast bucket's surviving delta must still be exact and
        // the window quantile clamps to the later lifetime max.
        let before = Histogram::default();
        before.observe_n(10_000, 5);
        let baseline = before.snapshot();
        let after_reset = Histogram::default();
        after_reset.observe_n(100, 7);
        let window = after_reset.snapshot() - baseline;
        assert_eq!(window.count(), 7, "fast bucket survives the wrap");
        // `max` keeps the later snapshot's lifetime value (100), so
        // the quantile clamp cannot resurrect the lost 10k samples.
        assert_eq!(window.quantile(1.0), 100.0);
        assert!(window.quantile(0.99) <= 128.0);
    }

    #[test]
    fn histogram_overflow_bucket_catches_huge_samples() {
        let h = Histogram::default();
        h.observe(u64::MAX / 2);
        let buckets = h.cumulative_buckets();
        assert!(buckets[HIST_BUCKETS - 1].0.is_infinite());
        assert_eq!(buckets[HIST_BUCKETS - 1].1, 1);
        assert_eq!(buckets[HIST_BUCKETS - 2].1, 0);
    }

    #[test]
    fn prometheus_output_is_well_formed_and_ordered() {
        let t = Telemetry::new();
        t.counter("dhnsw_b_total", "second family", &[("mode", "full")])
            .add(2);
        t.counter("dhnsw_b_total", "second family", &[("mode", "naive")])
            .add(3);
        t.counter("dhnsw_a_total", "first family", &[]).inc();
        let h = t.histogram("dhnsw_lat_us", "latency", &[]);
        h.observe(3);
        h.observe(100);

        let text = t.render_prometheus();
        let lines: Vec<&str> = text.lines().collect();

        // Families appear in name order; series in label order.
        let a = lines.iter().position(|l| l.starts_with("dhnsw_a_total")).unwrap();
        let b_full = lines
            .iter()
            .position(|l| l.starts_with("dhnsw_b_total{mode=\"full\"}"))
            .unwrap();
        let b_naive = lines
            .iter()
            .position(|l| l.starts_with("dhnsw_b_total{mode=\"naive\"}"))
            .unwrap();
        assert!(a < b_full && b_full < b_naive);

        // Every family has HELP and TYPE lines before its samples.
        assert!(lines.contains(&"# HELP dhnsw_a_total first family"));
        assert!(lines.contains(&"# TYPE dhnsw_a_total counter"));
        assert!(lines.contains(&"# TYPE dhnsw_lat_us histogram"));

        // Histogram exposition: cumulative buckets end at +Inf = count.
        assert!(text.contains("dhnsw_lat_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("dhnsw_lat_us_bucket{le=\"128\"} 2\n"));
        assert!(text.contains("dhnsw_lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("dhnsw_lat_us_sum 103\n"));
        assert!(text.contains("dhnsw_lat_us_count 2\n"));

        // Every non-comment line is `name{labels}? value`.
        for l in &lines {
            if l.starts_with('#') || l.is_empty() {
                continue;
            }
            let (name_part, value) = l.rsplit_once(' ').expect("sample line");
            assert!(!name_part.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {l}");
        }

        // Rendering twice with no new samples is byte-identical.
        assert_eq!(text, t.render_prometheus());
    }

    /// Prometheus metric/label name rule: `[a-zA-Z_:][a-zA-Z0-9_:]*`
    /// (labels additionally may not use `:`).
    fn valid_name(name: &str, allow_colon: bool) -> bool {
        let mut chars = name.chars();
        let head_ok = matches!(
            chars.next(),
            Some(c) if c.is_ascii_alphabetic() || c == '_' || (allow_colon && c == ':')
        );
        head_ok
            && name
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':'))
    }

    /// Walks a `{k="v",...}` label block, honoring `\"` escapes inside
    /// values; panics on any malformation, returns the label names.
    fn parse_label_block(block: &str) -> Vec<String> {
        assert!(block.starts_with('{') && block.ends_with('}'), "{block}");
        let mut names = Vec::new();
        let mut rest = &block[1..block.len() - 1];
        while !rest.is_empty() {
            let eq = rest.find('=').expect("label missing '='");
            let name = &rest[..eq];
            assert!(valid_name(name, false), "bad label name {name:?}");
            names.push(name.to_string());
            rest = rest[eq + 1..].strip_prefix('"').expect("unquoted value");
            // Find the closing quote, skipping escaped characters.
            let mut end = None;
            let mut skip = false;
            for (i, c) in rest.char_indices() {
                if skip {
                    skip = false;
                } else if c == '\\' {
                    skip = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.expect("unterminated label value");
            assert!(!rest[..end].contains('\n'), "raw newline in label value");
            rest = &rest[end + 1..];
            rest = rest.strip_prefix(',').unwrap_or(rest);
        }
        names
    }

    /// Asserts `text` is conformant Prometheus exposition 0.0.4: valid
    /// metric and label names, every family introduced by a HELP line
    /// immediately followed by its TYPE line, every sample belonging to
    /// the family declared above it (histograms via `_bucket`/`_sum`/
    /// `_count`), and parseable sample values.
    fn assert_prometheus_conformant(text: &str) {
        let mut declared: Option<(String, String)> = None;
        let mut pending_help: Option<String> = None;
        let mut families = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().expect("HELP name");
                assert!(valid_name(name, true), "bad family name {name:?}");
                assert!(families.insert(name.to_string()), "duplicate HELP {name}");
                pending_help = Some(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("TYPE name");
                let kind = it.next().expect("TYPE kind");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown TYPE {kind}"
                );
                assert_eq!(
                    pending_help.take().as_deref(),
                    Some(name),
                    "TYPE {name} not immediately after its HELP"
                );
                declared = Some((name.to_string(), kind.to_string()));
            } else if !line.is_empty() {
                assert!(pending_help.is_none(), "HELP without TYPE before {line}");
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
                let name_end = series.find('{').unwrap_or(series.len());
                let name = &series[..name_end];
                assert!(valid_name(name, true), "bad metric name {name:?}");
                let (family, kind) = declared.as_ref().expect("sample before any TYPE");
                if kind == "histogram" {
                    assert!(
                        ["_bucket", "_sum", "_count"]
                            .iter()
                            .any(|s| name == format!("{family}{s}")),
                        "{name} is not a series of histogram {family}"
                    );
                } else {
                    assert_eq!(name, family, "sample under the wrong family");
                }
                if name_end < series.len() {
                    parse_label_block(&series[name_end..]);
                }
            }
        }
        assert!(pending_help.is_none(), "trailing HELP without TYPE");
        assert!(!families.is_empty(), "no families rendered");
    }

    #[test]
    fn prometheus_exposition_is_conformant() {
        let t = Telemetry::new();
        // A representative registry: labeled counters (including the
        // per-cause byte family), gauges, and a labeled histogram.
        for cause in rdma_sim::ReadCause::ALL {
            t.counter(
                "dhnsw_rdma_read_bytes_by_cause_total",
                "Bytes read, by cause",
                &[("cause", cause.as_str())],
            )
            .add(1024);
        }
        t.gauge("dhnsw_health_p99_us", "p99 latency", &[]).set(250);
        t.counter("dhnsw_queries_total", "Queries", &[("mode", "full")])
            .add(7);
        let h = t.histogram("dhnsw_query_latency_us", "latency", &[("mode", "full")]);
        h.observe_n(8, 90);
        h.observe_n(4096, 10);
        assert_prometheus_conformant(&t.render_prometheus());
    }

    #[test]
    fn prometheus_label_escaping_round_trips() {
        let t = Telemetry::new();
        let hairy = "a\\b\"c\nd";
        t.counter("dhnsw_esc_total", "escape probe", &[("path", hairy)])
            .add(5);
        let text = t.render_prometheus();
        assert_prometheus_conformant(&text);
        // The escaped form on the wire...
        let line = text
            .lines()
            .find(|l| l.starts_with("dhnsw_esc_total{"))
            .expect("escaped series rendered");
        let start = line.find("path=\"").unwrap() + "path=\"".len();
        let end = line.rfind('"').unwrap();
        let wire = &line[start..end];
        assert_eq!(wire, "a\\\\b\\\"c\\nd");
        // ...un-escapes back to the original value.
        let mut out = String::new();
        let mut chars = wire.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('n') => out.push('\n'),
                    other => panic!("unknown escape \\{other:?}"),
                }
            } else {
                out.push(c);
            }
        }
        assert_eq!(out, hairy);
    }

    #[test]
    fn json_snapshot_contains_quantiles() {
        let t = Telemetry::new();
        t.counter("dhnsw_q_total", "queries", &[("mode", "full")]).add(7);
        let h = t.histogram("dhnsw_lat_us", "latency", &[]);
        h.observe_n(8, 90);
        h.observe_n(4096, 10);
        let json = t.snapshot_json();
        assert!(json.contains("\"dhnsw_q_total{mode=\\\"full\\\"}\":7"));
        assert!(json.contains("\"count\":100"));
        assert!(json.contains("\"p50\":8"));
        assert!(json.contains("\"p99\":4096"));
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn trace_ring_respects_capacity_and_toggle() {
        let t = Telemetry::with_trace_capacity(3);
        let mk = |i: u32| QueryTrace {
            mode: "full",
            queries: i,
            k: 10,
            ef: 32,
            fanout: 4,
            raw_cluster_demand: 4,
            unique_clusters: 4,
            cache_hits: 0,
            clusters_loaded: 4,
            doorbell_batches: 1,
            round_trips: 2,
            bytes_read: 4096,
            meta_us: 1.0,
            network_us: 2.0,
            sub_us: 3.0,
            materialize_us: 0.0,
            total_us: 6.0,
            cause_bytes: [0; rdma_sim::READ_CAUSES],
        };

        // Disabled by default: nothing is recorded.
        t.traces().record(mk(0));
        assert!(t.traces().is_empty());

        t.traces().set_enabled(true);
        for i in 1..=5 {
            t.traces().record(mk(i));
        }
        let got = t.traces().recent();
        assert_eq!(got.len(), 3, "ring keeps only the newest N");
        assert_eq!(
            got.iter().map(|tr| tr.queries).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );

        t.traces().set_enabled(false);
        t.traces().record(mk(9));
        assert_eq!(t.traces().len(), 3);
        t.traces().clear();
        assert!(t.traces().is_empty());
    }

    #[test]
    fn trace_ring_recent_is_oldest_first_across_wraparound() {
        let t = Telemetry::with_trace_capacity(4);
        t.traces().set_enabled(true);
        let mk = |i: u32| QueryTrace {
            mode: "full",
            queries: i,
            k: 10,
            ef: 32,
            fanout: 4,
            raw_cluster_demand: 4,
            unique_clusters: 4,
            cache_hits: 0,
            clusters_loaded: 4,
            doorbell_batches: 1,
            round_trips: 2,
            bytes_read: 4096,
            meta_us: 1.0,
            network_us: 2.0,
            sub_us: 3.0,
            materialize_us: 0.0,
            total_us: 6.0,
            cause_bytes: [0; rdma_sim::READ_CAUSES],
        };
        // Wrap the ring two and a half times; after every record the
        // retained window must be the most recent traces, strictly
        // oldest→newest, regardless of where the head sits.
        for i in 1..=10u32 {
            t.traces().record(mk(i));
            let got: Vec<u32> = t.traces().recent().iter().map(|tr| tr.queries).collect();
            let lo = i.saturating_sub(3).max(1);
            let want: Vec<u32> = (lo..=i).collect();
            assert_eq!(got, want, "after recording {i}");
        }
        assert_eq!(t.traces().len(), 4);
        // Clearing resets the window and recording restarts cleanly.
        t.traces().clear();
        assert!(t.traces().is_empty());
        t.traces().record(mk(99));
        assert_eq!(t.traces().recent()[0].queries, 99);
    }

    #[test]
    fn merge_label_handles_both_shapes() {
        assert_eq!(merge_label("", "le=\"1\""), "{le=\"1\"}");
        assert_eq!(
            merge_label("{mode=\"full\"}", "le=\"1\""),
            "{mode=\"full\",le=\"1\"}"
        );
    }
}
