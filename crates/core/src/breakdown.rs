//! Latency breakdown and per-batch reports — the measurement plane behind
//! the paper's Tables 1 and 2 and the Fig. 6 latency axes.

/// Latency of one batch split into its pipeline components.
///
/// *Network* time is virtual (from the RDMA cost model); the compute
/// components are measured wall-clock on the host. Tables 1 and 2 of the
/// paper report three columns — network, sub-HNSW, meta-HNSW — and this
/// struct additionally separates cluster materialization (decoding raw
/// bytes into searchable clusters) out of the search column the paper
/// folds it into.
///
/// Under pipelined execution (`pipeline_depth > 1`) `network_us` is the
/// *exposed* transfer time: the portion of the virtual network time not
/// hidden behind compute by the micro-batch overlap. The four components
/// therefore always tile `total_us` exactly, pipelined or not.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Data transfer over the (simulated) network, µs. Exposed (i.e.
    /// non-overlapped) time when the batch was pipelined.
    pub network_us: f64,
    /// Sub-HNSW search over materialized cluster data, µs.
    pub sub_hnsw_us: f64,
    /// Meta-HNSW (cached representative index) routing, µs.
    pub meta_hnsw_us: f64,
    /// Decoding raw cluster bytes into searchable sub-HNSW graphs, µs.
    pub materialize_us: f64,
}

impl LatencyBreakdown {
    /// Total latency across the four components.
    pub fn total_us(&self) -> f64 {
        self.network_us + self.sub_hnsw_us + self.meta_hnsw_us + self.materialize_us
    }
}

impl std::ops::Add for LatencyBreakdown {
    type Output = LatencyBreakdown;

    fn add(self, rhs: LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            network_us: self.network_us + rhs.network_us,
            sub_hnsw_us: self.sub_hnsw_us + rhs.sub_hnsw_us,
            meta_hnsw_us: self.meta_hnsw_us + rhs.meta_hnsw_us,
            materialize_us: self.materialize_us + rhs.materialize_us,
        }
    }
}

impl std::ops::AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: LatencyBreakdown) {
        *self = *self + rhs;
    }
}

/// Everything one [`crate::ComputeNode::query_batch`] call did.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct BatchReport {
    /// Queries answered in the batch.
    pub queries: usize,
    /// Latency breakdown for the whole batch.
    pub breakdown: LatencyBreakdown,
    /// Network round trips issued.
    pub round_trips: u64,
    /// Bytes read from the memory pool.
    pub bytes_read: u64,
    /// Distinct clusters the batch required (after query-aware dedup).
    pub unique_clusters: usize,
    /// Clusters served from the local LRU cache.
    pub cache_hits: usize,
    /// Clusters actually loaded over the network.
    pub clusters_loaded: usize,
    /// Total cluster demand before dedup (`b × s`).
    pub raw_cluster_demand: usize,
    /// Queries answered from an incomplete cluster set because a read
    /// exhausted the engine retry budget (degraded mode).
    pub degraded_queries: usize,
    /// Engine-level read retries this batch performed (version-mismatch
    /// reloads plus post-retransmission verb retries).
    pub read_retries: u64,
    /// Per-query coverage: the fraction of the query's routed clusters
    /// actually searched, in query order. `1.0` everywhere unless the
    /// batch degraded; empty when the engine skipped per-query
    /// attribution (no degradation and no loads failed).
    pub coverage: Vec<f64>,
}

impl BatchReport {
    /// Mean per-query latency in microseconds.
    pub fn per_query_latency_us(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.breakdown.total_us() / self.queries as f64
        }
    }

    /// Network round trips per query — the quantity the paper quotes as
    /// 3.547 (naive), 0.896 (no doorbell), and 4.75 × 10⁻³ (d-HNSW).
    pub fn round_trips_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.round_trips as f64 / self.queries as f64
        }
    }

    /// Fraction of cluster demand absorbed by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.unique_clusters == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.unique_clusters as f64
        }
    }

    /// Fraction of queries served degraded (incomplete cluster
    /// coverage), in `[0, 1]`.
    pub fn degraded_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.degraded_queries as f64 / self.queries as f64
        }
    }

    /// Merges another batch's counters into this one (for aggregating a
    /// run of batches). Coverage vectors concatenate in batch order;
    /// an empty coverage vector stands for full coverage and is expanded
    /// when the other side carries per-query values.
    pub fn merge(&mut self, other: &BatchReport) {
        if !self.coverage.is_empty() || !other.coverage.is_empty() {
            if self.coverage.is_empty() {
                self.coverage = vec![1.0; self.queries];
            }
            if other.coverage.is_empty() {
                self.coverage
                    .extend(std::iter::repeat_n(1.0, other.queries));
            } else {
                self.coverage.extend_from_slice(&other.coverage);
            }
        }
        self.queries += other.queries;
        self.breakdown += other.breakdown;
        self.round_trips += other.round_trips;
        self.bytes_read += other.bytes_read;
        self.unique_clusters += other.unique_clusters;
        self.cache_hits += other.cache_hits;
        self.clusters_loaded += other.clusters_loaded;
        self.raw_cluster_demand += other.raw_cluster_demand;
        self.degraded_queries += other.degraded_queries;
        self.read_retries += other.read_retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let b = LatencyBreakdown {
            network_us: 1.0,
            sub_hnsw_us: 2.0,
            meta_hnsw_us: 3.0,
            materialize_us: 4.0,
        };
        assert_eq!(b.total_us(), 10.0);
    }

    #[test]
    fn add_accumulates_componentwise() {
        let a = LatencyBreakdown {
            network_us: 1.0,
            sub_hnsw_us: 2.0,
            meta_hnsw_us: 3.0,
            materialize_us: 4.0,
        };
        let mut c = a;
        c += a;
        assert_eq!(c.network_us, 2.0);
        assert_eq!(c.materialize_us, 8.0);
        assert_eq!(c.total_us(), 20.0);
    }

    #[test]
    fn components_tile_the_total_exactly() {
        // The four components partition the batch latency: no component
        // overlaps another, and nothing is double-counted. In particular
        // materialization is NOT folded into sub_hnsw_us any more.
        let b = LatencyBreakdown {
            network_us: 40.0,
            sub_hnsw_us: 25.0,
            meta_hnsw_us: 5.0,
            materialize_us: 30.0,
        };
        let tiles = [
            b.network_us,
            b.sub_hnsw_us,
            b.meta_hnsw_us,
            b.materialize_us,
        ];
        assert!((tiles.iter().sum::<f64>() - b.total_us()).abs() < 1e-12);
        // Dropping any one tile leaves a strictly smaller total: each
        // component carries its own share.
        for skip in 0..tiles.len() {
            let partial: f64 = tiles
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, v)| v)
                .sum();
            assert!(partial < b.total_us());
        }
    }

    #[test]
    fn per_query_metrics_divide_by_batch_size() {
        let r = BatchReport {
            queries: 10,
            breakdown: LatencyBreakdown {
                network_us: 95.0,
                sub_hnsw_us: 20.0,
                meta_hnsw_us: 5.0,
                materialize_us: 5.0,
            },
            round_trips: 5,
            ..Default::default()
        };
        assert!((r.per_query_latency_us() - 12.5).abs() < 1e-12);
        assert!((r.round_trips_per_query() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_yields_zero_rates() {
        let r = BatchReport::default();
        assert_eq!(r.per_query_latency_us(), 0.0);
        assert_eq!(r.round_trips_per_query(), 0.0);
        assert_eq!(r.cache_hit_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates_counters() {
        let mut a = BatchReport {
            queries: 5,
            round_trips: 2,
            cache_hits: 1,
            unique_clusters: 4,
            ..Default::default()
        };
        let b = BatchReport {
            queries: 5,
            round_trips: 3,
            cache_hits: 3,
            unique_clusters: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 10);
        assert_eq!(a.round_trips, 5);
        assert_eq!(a.cache_hit_rate(), 0.5);
    }

    #[test]
    fn merge_expands_missing_coverage() {
        // Full-coverage batch (empty vector) + degraded batch: the
        // merged coverage is per-query, padded with 1.0 for the former.
        let mut a = BatchReport {
            queries: 2,
            ..Default::default()
        };
        let b = BatchReport {
            queries: 2,
            degraded_queries: 1,
            read_retries: 3,
            coverage: vec![0.5, 1.0],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.coverage, vec![1.0, 1.0, 0.5, 1.0]);
        assert_eq!(a.degraded_queries, 1);
        assert_eq!(a.read_retries, 3);
        assert!((a.degraded_rate() - 0.25).abs() < 1e-12);
        // Two full-coverage batches keep the compact empty form.
        let mut c = BatchReport::default();
        c.merge(&BatchReport::default());
        assert!(c.coverage.is_empty());
        assert_eq!(c.degraded_rate(), 0.0);
    }
}
