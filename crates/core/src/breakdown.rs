//! Latency breakdown and per-batch reports — the measurement plane behind
//! the paper's Tables 1 and 2 and the Fig. 6 latency axes.

use rdma_sim::{ReadCause, StatsSnapshot, READ_CAUSES};

/// Latency of one batch split into its pipeline components.
///
/// *Network* time is virtual (from the RDMA cost model); the compute
/// components are measured wall-clock on the host. Tables 1 and 2 of the
/// paper report three columns — network, sub-HNSW, meta-HNSW — and this
/// struct additionally separates cluster materialization (decoding raw
/// bytes into searchable clusters) out of the search column the paper
/// folds it into.
///
/// Under pipelined execution (`pipeline_depth > 1`) `network_us` is the
/// *exposed* transfer time: the portion of the virtual network time not
/// hidden behind compute by the micro-batch overlap. The four components
/// therefore always tile `total_us` exactly, pipelined or not.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Data transfer over the (simulated) network, µs. Exposed (i.e.
    /// non-overlapped) time when the batch was pipelined.
    pub network_us: f64,
    /// Sub-HNSW search over materialized cluster data, µs.
    pub sub_hnsw_us: f64,
    /// Meta-HNSW (cached representative index) routing, µs.
    pub meta_hnsw_us: f64,
    /// Decoding raw cluster bytes into searchable sub-HNSW graphs, µs.
    pub materialize_us: f64,
}

impl LatencyBreakdown {
    /// Total latency across the four components.
    pub fn total_us(&self) -> f64 {
        self.network_us + self.sub_hnsw_us + self.meta_hnsw_us + self.materialize_us
    }
}

impl std::ops::Add for LatencyBreakdown {
    type Output = LatencyBreakdown;

    fn add(self, rhs: LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            network_us: self.network_us + rhs.network_us,
            sub_hnsw_us: self.sub_hnsw_us + rhs.sub_hnsw_us,
            meta_hnsw_us: self.meta_hnsw_us + rhs.meta_hnsw_us,
            materialize_us: self.materialize_us + rhs.materialize_us,
        }
    }
}

impl std::ops::AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: LatencyBreakdown) {
        *self = *self + rhs;
    }
}

/// Where a batch's bytes and round trips went, by [`ReadCause`].
///
/// Built from a [`StatsSnapshot`] delta bracketing the batch, so the
/// per-cause byte counters tile the batch's `bytes_read` exactly: the
/// substrate attributes every read byte to exactly one cause, and
/// `record_read_cause` is the only path that moves `bytes_read`.
/// Round trips are attributed to each doorbell chunk's dominant-bytes
/// cause, so `total_trips()` covers *read* trips only (write and
/// atomic trips carry no cause).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostLedger {
    /// Bytes read per cause, indexed by [`ReadCause::index`].
    pub cause_bytes: [u64; READ_CAUSES],
    /// Read work requests per cause, indexed by [`ReadCause::index`].
    pub cause_wrs: [u64; READ_CAUSES],
    /// Read round trips per cause (doorbell chunks count once, under
    /// the chunk's dominant-bytes cause), indexed by
    /// [`ReadCause::index`].
    pub cause_trips: [u64; READ_CAUSES],
}

impl CostLedger {
    /// Ledger from a substrate counter delta bracketing one batch.
    pub fn from_delta(delta: &StatsSnapshot) -> Self {
        CostLedger {
            cause_bytes: delta.cause_bytes,
            cause_wrs: delta.cause_wrs,
            cause_trips: delta.cause_trips,
        }
    }

    /// Bytes attributed to `cause`.
    pub fn bytes_for(&self, cause: ReadCause) -> u64 {
        self.cause_bytes[cause.index()]
    }

    /// Read round trips attributed to `cause`.
    pub fn trips_for(&self, cause: ReadCause) -> u64 {
        self.cause_trips[cause.index()]
    }

    /// Total bytes across all causes — equals the bracketing delta's
    /// `bytes_read` by construction.
    pub fn total_bytes(&self) -> u64 {
        self.cause_bytes.iter().sum()
    }

    /// Total read round trips across all causes.
    pub fn total_trips(&self) -> u64 {
        self.cause_trips.iter().sum()
    }

    /// The cause that moved the most bytes, or `None` on an empty
    /// ledger. Ties break toward the lowest cause index, matching the
    /// substrate's doorbell-trip attribution.
    pub fn dominant_cause(&self) -> Option<ReadCause> {
        let (i, &max) = self
            .cause_bytes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        if max == 0 {
            None
        } else {
            Some(ReadCause::ALL[i])
        }
    }

    /// Accumulates another ledger into this one, elementwise.
    pub fn merge(&mut self, other: &CostLedger) {
        for i in 0..READ_CAUSES {
            self.cause_bytes[i] += other.cause_bytes[i];
            self.cause_wrs[i] += other.cause_wrs[i];
            self.cause_trips[i] += other.cause_trips[i];
        }
    }

    /// Human-readable "where did the bytes go" table: one line per
    /// nonzero cause with its byte share, work requests, and trips.
    /// Used by the CLI `explain` report and the `/explain/last`
    /// endpoint.
    pub fn render(&self) -> String {
        let total = self.total_bytes();
        if total == 0 {
            return "  (no read traffic)\n".to_string();
        }
        let mut out = String::new();
        for cause in ReadCause::ALL {
            let bytes = self.bytes_for(cause);
            if bytes == 0 {
                continue;
            }
            let i = cause.index();
            out.push_str(&format!(
                "  {:<14} {:>12} B ({:>5.1}%)  {:>6} wrs  {:>5} trips\n",
                cause.as_str(),
                bytes,
                bytes as f64 / total as f64 * 100.0,
                self.cause_wrs[i],
                self.cause_trips[i],
            ));
        }
        out
    }
}

/// Everything one [`crate::ComputeNode::query_batch`] call did.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct BatchReport {
    /// Queries answered in the batch.
    pub queries: usize,
    /// Latency breakdown for the whole batch.
    pub breakdown: LatencyBreakdown,
    /// Network round trips issued.
    pub round_trips: u64,
    /// Bytes read from the memory pool.
    pub bytes_read: u64,
    /// Distinct clusters the batch required (after query-aware dedup).
    pub unique_clusters: usize,
    /// Clusters served from the local LRU cache.
    pub cache_hits: usize,
    /// Clusters actually loaded over the network.
    pub clusters_loaded: usize,
    /// Total cluster demand before dedup (`b × s`).
    pub raw_cluster_demand: usize,
    /// Queries answered from an incomplete cluster set because a read
    /// exhausted the engine retry budget (degraded mode).
    pub degraded_queries: usize,
    /// Engine-level read retries this batch performed (version-mismatch
    /// reloads plus post-retransmission verb retries).
    pub read_retries: u64,
    /// Byte/trip provenance: where this batch's read traffic went, by
    /// cause. `ledger.total_bytes() == bytes_read` on every batch.
    pub ledger: CostLedger,
    /// Per-query coverage: the fraction of the query's routed clusters
    /// actually searched, in query order. `1.0` everywhere unless the
    /// batch degraded; empty when the engine skipped per-query
    /// attribution (no degradation and no loads failed).
    pub coverage: Vec<f64>,
}

impl BatchReport {
    /// Mean per-query latency in microseconds.
    pub fn per_query_latency_us(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.breakdown.total_us() / self.queries as f64
        }
    }

    /// Network round trips per query — the quantity the paper quotes as
    /// 3.547 (naive), 0.896 (no doorbell), and 4.75 × 10⁻³ (d-HNSW).
    pub fn round_trips_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.round_trips as f64 / self.queries as f64
        }
    }

    /// Fraction of cluster demand absorbed by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.unique_clusters == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.unique_clusters as f64
        }
    }

    /// Fraction of queries served degraded (incomplete cluster
    /// coverage), in `[0, 1]`.
    pub fn degraded_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.degraded_queries as f64 / self.queries as f64
        }
    }

    /// Merges another batch's counters into this one (for aggregating a
    /// run of batches). Coverage vectors concatenate in batch order;
    /// an empty coverage vector stands for full coverage and is expanded
    /// when the other side carries per-query values.
    pub fn merge(&mut self, other: &BatchReport) {
        if !self.coverage.is_empty() || !other.coverage.is_empty() {
            if self.coverage.is_empty() {
                self.coverage = vec![1.0; self.queries];
            }
            if other.coverage.is_empty() {
                self.coverage
                    .extend(std::iter::repeat_n(1.0, other.queries));
            } else {
                self.coverage.extend_from_slice(&other.coverage);
            }
        }
        self.queries += other.queries;
        self.breakdown += other.breakdown;
        self.round_trips += other.round_trips;
        self.bytes_read += other.bytes_read;
        self.unique_clusters += other.unique_clusters;
        self.cache_hits += other.cache_hits;
        self.clusters_loaded += other.clusters_loaded;
        self.raw_cluster_demand += other.raw_cluster_demand;
        self.degraded_queries += other.degraded_queries;
        self.read_retries += other.read_retries;
        self.ledger.merge(&other.ledger);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let b = LatencyBreakdown {
            network_us: 1.0,
            sub_hnsw_us: 2.0,
            meta_hnsw_us: 3.0,
            materialize_us: 4.0,
        };
        assert_eq!(b.total_us(), 10.0);
    }

    #[test]
    fn add_accumulates_componentwise() {
        let a = LatencyBreakdown {
            network_us: 1.0,
            sub_hnsw_us: 2.0,
            meta_hnsw_us: 3.0,
            materialize_us: 4.0,
        };
        let mut c = a;
        c += a;
        assert_eq!(c.network_us, 2.0);
        assert_eq!(c.materialize_us, 8.0);
        assert_eq!(c.total_us(), 20.0);
    }

    #[test]
    fn components_tile_the_total_exactly() {
        // The four components partition the batch latency: no component
        // overlaps another, and nothing is double-counted. In particular
        // materialization is NOT folded into sub_hnsw_us any more.
        let b = LatencyBreakdown {
            network_us: 40.0,
            sub_hnsw_us: 25.0,
            meta_hnsw_us: 5.0,
            materialize_us: 30.0,
        };
        let tiles = [
            b.network_us,
            b.sub_hnsw_us,
            b.meta_hnsw_us,
            b.materialize_us,
        ];
        assert!((tiles.iter().sum::<f64>() - b.total_us()).abs() < 1e-12);
        // Dropping any one tile leaves a strictly smaller total: each
        // component carries its own share.
        for skip in 0..tiles.len() {
            let partial: f64 = tiles
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, v)| v)
                .sum();
            assert!(partial < b.total_us());
        }
    }

    #[test]
    fn per_query_metrics_divide_by_batch_size() {
        let r = BatchReport {
            queries: 10,
            breakdown: LatencyBreakdown {
                network_us: 95.0,
                sub_hnsw_us: 20.0,
                meta_hnsw_us: 5.0,
                materialize_us: 5.0,
            },
            round_trips: 5,
            ..Default::default()
        };
        assert!((r.per_query_latency_us() - 12.5).abs() < 1e-12);
        assert!((r.round_trips_per_query() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_yields_zero_rates() {
        let r = BatchReport::default();
        assert_eq!(r.per_query_latency_us(), 0.0);
        assert_eq!(r.round_trips_per_query(), 0.0);
        assert_eq!(r.cache_hit_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates_counters() {
        let mut a = BatchReport {
            queries: 5,
            round_trips: 2,
            cache_hits: 1,
            unique_clusters: 4,
            ..Default::default()
        };
        let b = BatchReport {
            queries: 5,
            round_trips: 3,
            cache_hits: 3,
            unique_clusters: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 10);
        assert_eq!(a.round_trips, 5);
        assert_eq!(a.cache_hit_rate(), 0.5);
    }

    #[test]
    fn ledger_totals_and_dominance() {
        let mut l = CostLedger::default();
        assert_eq!(l.total_bytes(), 0);
        assert_eq!(l.dominant_cause(), None);
        l.cause_bytes[ReadCause::StageLoad.index()] = 900;
        l.cause_bytes[ReadCause::VersionCheck.index()] = 100;
        l.cause_trips[ReadCause::StageLoad.index()] = 2;
        assert_eq!(l.total_bytes(), 1000);
        assert_eq!(l.total_trips(), 2);
        assert_eq!(l.bytes_for(ReadCause::StageLoad), 900);
        assert_eq!(l.dominant_cause(), Some(ReadCause::StageLoad));
        // Ties break toward the lowest cause index, like doorbell-trip
        // attribution in the substrate.
        l.cause_bytes[ReadCause::VersionCheck.index()] = 900;
        assert_eq!(l.dominant_cause(), Some(ReadCause::StageLoad));
    }

    #[test]
    fn ledger_merge_accumulates_elementwise() {
        let mut a = CostLedger::default();
        a.cause_bytes[ReadCause::Prefetch.index()] = 10;
        a.cause_wrs[ReadCause::Prefetch.index()] = 1;
        let mut b = CostLedger::default();
        b.cause_bytes[ReadCause::Prefetch.index()] = 5;
        b.cause_bytes[ReadCause::Retry.index()] = 7;
        b.cause_trips[ReadCause::Retry.index()] = 1;
        a.merge(&b);
        assert_eq!(a.bytes_for(ReadCause::Prefetch), 15);
        assert_eq!(a.bytes_for(ReadCause::Retry), 7);
        assert_eq!(a.total_trips(), 1);
        assert_eq!(a.cause_wrs[ReadCause::Prefetch.index()], 1);
    }

    #[test]
    fn ledger_render_lists_nonzero_causes_with_shares() {
        let mut l = CostLedger::default();
        assert!(l.render().contains("no read traffic"));
        l.cause_bytes[ReadCause::StageLoad.index()] = 750;
        l.cause_bytes[ReadCause::VersionCheck.index()] = 250;
        let text = l.render();
        assert!(text.contains("stage_load"));
        assert!(text.contains("75.0%"));
        assert!(text.contains("version_check"));
        assert!(text.contains("25.0%"));
        assert!(!text.contains("naive"));
    }

    #[test]
    fn report_merge_accumulates_ledgers() {
        let mut a = BatchReport::default();
        a.ledger.cause_bytes[ReadCause::StageLoad.index()] = 4;
        let mut b = BatchReport::default();
        b.ledger.cause_bytes[ReadCause::StageLoad.index()] = 6;
        a.merge(&b);
        assert_eq!(a.ledger.bytes_for(ReadCause::StageLoad), 10);
    }

    #[test]
    fn merge_expands_missing_coverage() {
        // Full-coverage batch (empty vector) + degraded batch: the
        // merged coverage is per-query, padded with 1.0 for the former.
        let mut a = BatchReport {
            queries: 2,
            ..Default::default()
        };
        let b = BatchReport {
            queries: 2,
            degraded_queries: 1,
            read_retries: 3,
            coverage: vec![0.5, 1.0],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.coverage, vec![1.0, 1.0, 0.5, 1.0]);
        assert_eq!(a.degraded_queries, 1);
        assert_eq!(a.read_retries, 3);
        assert!((a.degraded_rate() - 0.25).abs() < 1e-12);
        // Two full-coverage batches keep the compact empty form.
        let mut c = BatchReport::default();
        c.merge(&BatchReport::default());
        assert!(c.coverage.is_empty());
        assert_eq!(c.degraded_rate(), 0.0);
    }
}
