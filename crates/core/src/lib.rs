//! d-HNSW: efficient vector search on disaggregated memory.
//!
//! This crate implements the system described in *"Efficient Vector Search
//! on Disaggregated Memory with d-HNSW"* (HotStorage 2025): an HNSW-based
//! vector search engine whose index and vectors live in a remote memory
//! pool, accessed exclusively through one-sided RDMA verbs (here, the
//! deterministic [`rdma_sim`] substrate).
//!
//! # The three techniques
//!
//! 1. **Representative index caching** ([`meta`]) — a three-layer
//!    *meta-HNSW* over ~500 uniformly sampled vectors is cached on every
//!    compute node. Its bottom-layer nodes define the partitions; each
//!    partition's vectors form a *sub-HNSW* stored remotely.
//! 2. **RDMA-friendly layout** ([`layout`], [`cluster`]) — clusters are
//!    serialized into *groups* of two with a shared overflow area between
//!    them, so any cluster plus its inserted vectors is one contiguous
//!    `RDMA_READ`; discontiguous clusters are fetched with doorbell
//!    batching.
//! 3. **Query-aware batched loading** ([`loader`], [`engine`]) — a batch
//!    of queries is analyzed online so every needed cluster crosses the
//!    network at most once per batch, with an LRU cluster cache
//!    ([`cache`]) carrying reuse across batches.
//!
//! # Quick start
//!
//! ```rust
//! use dhnsw::{DHnswConfig, SearchMode, VectorStore};
//! use vecsim::gen;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 2k SIFT-like vectors, small config so the doc test is quick.
//! let data = gen::sift_like(2_000, 1)?;
//! let queries = gen::perturbed_queries(&data, 32, 0.02, 2)?;
//!
//! let config = DHnswConfig::small();
//! let store = VectorStore::build(data, &config)?;
//! let compute = store.connect(SearchMode::Full)?;
//!
//! let (results, report) = compute.query_batch(&queries, 10, 32)?;
//! assert_eq!(results.len(), 32);
//! assert!(report.round_trips > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balancer;
pub mod breakdown;
pub mod cache;
pub mod cluster;
mod config;
pub mod engine;
mod error;
pub mod health;
pub mod layout;
pub mod loader;
pub mod meta;
pub mod sharded;
pub mod snapshot;
mod store;
pub mod telemetry;

pub use balancer::{DispatchPolicy, LoadBalancer};
pub use breakdown::{BatchReport, CostLedger, LatencyBreakdown};
pub use rdma_sim::{ReadCause, READ_CAUSES};
pub use cache::CacheStats;
pub use config::{DHnswConfig, QuantizeMode};
pub use engine::{ComputeNode, QueryOptions, SearchMode};
pub use error::Error;
pub use health::{
    evaluate as evaluate_slo, evaluate_point as evaluate_slo_point, skew_of, ClusterHeatmap,
    HealthReport, PartitionHeat, SkewStats, SloBudgets, SloViolation,
};
pub use meta::MetaIndex;
pub use sharded::{merged_coverage, ShardedSession, ShardedStore};
pub use store::VectorStore;
pub use telemetry::chrome::chrome_trace_json;
pub use telemetry::exemplar::{
    diagnose, verdict_index, BucketExemplar, Diagnosis, ExemplarStore, TailRecord, VERDICTS,
};
pub use telemetry::profile::{PathStats, ProfileAccumulator};
pub use telemetry::series::{
    AnomalyConfig, AnomalyRecord, Sample, SeriesPoint, SeriesRecorder, TrackedSeries, TRACKED,
    TRACKED_SERIES,
};
pub use telemetry::span::{
    ArgValue, BatchTrace, FinishedTrace, QpSpanSink, SpanId, SpanKind, SpanRecord, SpanTracer,
};
pub use telemetry::{HistogramSnapshot, QueryTrace, Telemetry, HIST_BUCKETS};

/// Convenient result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, Error>;
