//! The client load balancer of Fig. 2.
//!
//! The paper's architecture puts a load balancer in front of the compute
//! pool: clients submit query batches, the balancer spreads them across
//! compute instances, each instance runs the d-HNSW pipeline against the
//! shared memory pool. [`LoadBalancer`] implements that tier: it owns a
//! set of [`ComputeNode`]s and dispatches incoming batches either
//! round-robin or to the least-loaded instance (by modeled time spent),
//! optionally splitting one large batch across all instances.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use vecsim::{Dataset, Neighbor};

use crate::breakdown::BatchReport;
use crate::engine::{ComputeNode, SearchMode};
use crate::store::VectorStore;
use crate::{Error, Result};

/// Dispatch policy for incoming batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Rotate through instances in order.
    #[default]
    RoundRobin,
    /// Send each batch to the instance with the least accumulated modeled
    /// time (virtual network + measured compute).
    LeastLoaded,
}

/// A client-facing load balancer over a pool of compute instances.
///
/// # Example
///
/// ```rust
/// use dhnsw::{DHnswConfig, LoadBalancer, SearchMode, VectorStore};
/// use vecsim::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = gen::sift_like(1_500, 3)?;
/// let store = VectorStore::build(data.clone(), &DHnswConfig::small())?;
/// let lb = LoadBalancer::new(&store, 3, SearchMode::Full)?;
///
/// let queries = gen::perturbed_queries(&data, 30, 0.02, 4)?;
/// let (results, report) = lb.query_batch(&queries, 5, 32)?;
/// assert_eq!(results.len(), 30);
/// assert_eq!(report.queries, 30);
/// assert_eq!(lb.instances(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LoadBalancer {
    nodes: Vec<Arc<ComputeNode>>,
    policy: DispatchPolicy,
    next: AtomicUsize,
    // Accumulated modeled busy-time per instance, in integer µs, for the
    // least-loaded policy.
    busy_us: Vec<AtomicUsize>,
}

impl LoadBalancer {
    /// Connects `instances` compute nodes to `store`, all in `mode`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for zero instances, plus any
    /// connect error.
    pub fn new(store: &VectorStore, instances: usize, mode: SearchMode) -> Result<Self> {
        if instances == 0 {
            return Err(Error::InvalidParameter(
                "load balancer needs at least one compute instance".into(),
            ));
        }
        let nodes = (0..instances)
            .map(|_| store.connect(mode).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        let busy_us = (0..instances).map(|_| AtomicUsize::new(0)).collect();
        Ok(LoadBalancer {
            nodes,
            policy: DispatchPolicy::default(),
            next: AtomicUsize::new(0),
            busy_us,
        })
    }

    /// Sets the dispatch policy (default round-robin).
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of compute instances in the pool.
    pub fn instances(&self) -> usize {
        self.nodes.len()
    }

    /// The dispatch policy in force.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Direct access to an instance (for inspection in tests/benches).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.instances()`.
    pub fn node(&self, i: usize) -> &ComputeNode {
        &self.nodes[i]
    }

    /// Sets the micro-batch pipeline depth on every pooled instance
    /// (values are clamped to at least 1 per node).
    pub fn set_pipeline_depth(&self, depth: usize) {
        for node in &self.nodes {
            node.set_pipeline_depth(depth);
        }
    }

    /// Sets the background-prefetch byte budget on every pooled
    /// instance; `0` disables prefetching.
    pub fn set_prefetch_budget_bytes(&self, budget: u64) {
        for node in &self.nodes {
            node.set_prefetch_budget_bytes(budget);
        }
    }

    /// Runs one heatmap-driven prefetch round on every pooled instance,
    /// returning the total clusters admitted. Each instance has its own
    /// cache, so warming is per instance.
    pub fn prefetch_hot(&self) -> usize {
        self.nodes.iter().map(|n| n.prefetch_hot()).sum()
    }

    fn pick(&self) -> usize {
        match self.policy {
            DispatchPolicy::RoundRobin => {
                self.next.fetch_add(1, Ordering::Relaxed) % self.nodes.len()
            }
            DispatchPolicy::LeastLoaded => self
                .busy_us
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .unwrap_or(0),
        }
    }

    fn charge(&self, i: usize, report: &BatchReport) {
        self.busy_us[i].fetch_add(
            report.breakdown.total_us().max(0.0) as usize,
            Ordering::Relaxed,
        );
    }

    /// Dispatches one batch to a single instance chosen by the policy.
    ///
    /// # Errors
    ///
    /// Same as [`ComputeNode::query_batch`].
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
        ef: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, BatchReport)> {
        let i = self.pick();
        let out = self.nodes[i].query_batch(queries, k, ef)?;
        self.charge(i, &out.1);
        Ok(out)
    }

    /// Splits one large batch into `instances` shards and answers them on
    /// all instances concurrently, preserving query order in the merged
    /// result. Returns the per-instance reports (some may be empty when
    /// there are fewer queries than instances).
    ///
    /// # Errors
    ///
    /// Propagates the first instance error.
    pub fn query_batch_sharded(
        &self,
        queries: &Dataset,
        k: usize,
        ef: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, Vec<BatchReport>)> {
        let n = queries.len();
        if n == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        let shards = self.nodes.len().min(n);
        let chunk = n.div_ceil(shards);
        let mut shard_inputs = Vec::with_capacity(shards);
        for s in 0..shards {
            let start = s * chunk;
            let end = ((s + 1) * chunk).min(n);
            let ids: Vec<u32> = (start..end).map(|i| i as u32).collect();
            shard_inputs.push(queries.select(&ids));
        }

        let outputs: Vec<Result<(Vec<Vec<Neighbor>>, BatchReport)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = shard_inputs
                    .iter()
                    .enumerate()
                    .map(|(s, shard)| {
                        let node = Arc::clone(&self.nodes[s]);
                        scope.spawn(move || node.query_batch(shard, k, ef))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker does not panic"))
                    .collect()
            });

        let mut results = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(shards);
        for (s, out) in outputs.into_iter().enumerate() {
            let (shard_results, report) = out?;
            self.charge(s, &report);
            results.extend(shard_results);
            reports.push(report);
        }
        Ok((results, reports))
    }

    /// Inserts a vector via a policy-chosen instance.
    ///
    /// # Errors
    ///
    /// Same as [`ComputeNode::insert`].
    pub fn insert(&self, v: &[f32]) -> Result<u32> {
        self.nodes[self.pick()].insert(v)
    }

    /// Aggregated modeled busy time per instance, in µs.
    pub fn busy_times_us(&self) -> Vec<u64> {
        self.busy_us
            .iter()
            .map(|b| b.load(Ordering::Relaxed) as u64)
            .collect()
    }

    /// Gini coefficient of the per-instance busy time — 0 when the
    /// dispatch policy spreads load evenly, approaching 1 when one
    /// instance absorbs everything. A health-check companion to
    /// [`LoadBalancer::busy_times_us`].
    pub fn busy_gini(&self) -> f64 {
        crate::health::skew_of(&self.busy_times_us(), 1).gini
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DHnswConfig;
    use vecsim::gen;

    fn setup() -> (Dataset, VectorStore) {
        let data = gen::sift_like(800, 3).unwrap();
        let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
        (data, store)
    }

    #[test]
    fn zero_instances_is_rejected() {
        let (_, store) = setup();
        assert!(LoadBalancer::new(&store, 0, SearchMode::Full).is_err());
    }

    #[test]
    fn round_robin_rotates_instances() {
        let (data, store) = setup();
        let lb = LoadBalancer::new(&store, 3, SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 4, 0.02, 5).unwrap();
        for _ in 0..3 {
            lb.query_batch(&queries, 5, 16).unwrap();
        }
        // Every instance must have seen traffic.
        for i in 0..3 {
            assert!(
                lb.node(i).queue_pair().stats().round_trips() > 0,
                "instance {i} idle"
            );
        }
    }

    #[test]
    fn least_loaded_prefers_idle_instances() {
        let (data, store) = setup();
        let lb = LoadBalancer::new(&store, 2, SearchMode::Full)
            .unwrap()
            .with_policy(DispatchPolicy::LeastLoaded);
        let queries = gen::perturbed_queries(&data, 8, 0.02, 6).unwrap();
        for _ in 0..4 {
            lb.query_batch(&queries, 5, 16).unwrap();
        }
        let busy = lb.busy_times_us();
        assert!(busy[0] > 0 && busy[1] > 0, "one instance starved: {busy:?}");
    }

    #[test]
    fn sharded_batch_preserves_query_order() {
        let (data, store) = setup();
        let lb = LoadBalancer::new(&store, 3, SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 20, 0.02, 7).unwrap();
        let (sharded, reports) = lb.query_batch_sharded(&queries, 5, 32).unwrap();
        assert_eq!(sharded.len(), 20);
        assert_eq!(reports.len(), 3);
        // Same answers as a single instance.
        let solo = store.connect(SearchMode::Full).unwrap();
        let (single, _) = solo.query_batch(&queries, 5, 32).unwrap();
        assert_eq!(sharded, single);
    }

    #[test]
    fn sharded_with_fewer_queries_than_instances() {
        let (data, store) = setup();
        let lb = LoadBalancer::new(&store, 4, SearchMode::Full).unwrap();
        let queries = gen::perturbed_queries(&data, 2, 0.02, 8).unwrap();
        let (results, reports) = lb.query_batch_sharded(&queries, 3, 16).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn sharded_empty_batch_is_noop() {
        let (_, store) = setup();
        let lb = LoadBalancer::new(&store, 2, SearchMode::Full).unwrap();
        let (results, reports) = lb
            .query_batch_sharded(&Dataset::new(128), 3, 16)
            .unwrap();
        assert!(results.is_empty());
        assert!(reports.is_empty());
    }

    #[test]
    fn busy_gini_tracks_dispatch_imbalance() {
        let (data, store) = setup();
        let lb = LoadBalancer::new(&store, 2, SearchMode::Full).unwrap();
        assert_eq!(lb.busy_gini(), 0.0, "idle pool is perfectly balanced");
        let queries = gen::perturbed_queries(&data, 8, 0.02, 9).unwrap();
        for _ in 0..4 {
            lb.query_batch(&queries, 5, 16).unwrap();
        }
        // Round-robin over identical batches stays close to balanced.
        assert!(lb.busy_gini() < 0.5, "gini {} too skewed", lb.busy_gini());
    }

    #[test]
    fn pipeline_knobs_fan_out_across_the_pool() {
        let (_, store) = setup();
        let lb = LoadBalancer::new(&store, 3, SearchMode::Full).unwrap();
        lb.set_pipeline_depth(2);
        lb.set_prefetch_budget_bytes(4096);
        for i in 0..lb.instances() {
            assert_eq!(lb.node(i).pipeline_depth(), 2);
            assert_eq!(lb.node(i).prefetch_budget_bytes(), 4096);
        }
        // Depth 0 clamps to 1 rather than disabling the executor.
        lb.set_pipeline_depth(0);
        assert_eq!(lb.node(0).pipeline_depth(), 1);
    }

    #[test]
    fn inserts_go_through_the_pool_and_stay_visible() {
        let (data, store) = setup();
        let lb = LoadBalancer::new(&store, 2, SearchMode::Full).unwrap();
        let mut v = data.get(3).to_vec();
        v[0] += 1.0;
        let gid = lb.insert(&v).unwrap();
        // Whichever instance answers, the insert is in remote memory.
        for _ in 0..2 {
            let (results, _) = lb
                .query_batch(&Dataset::from_rows(&[&v[..]]).unwrap(), 1, 32)
                .unwrap();
            assert_eq!(results[0][0].id, gid);
        }
    }
}
