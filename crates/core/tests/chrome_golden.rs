//! Golden-file test for the Chrome trace-event exporter.
//!
//! A hand-built, fully deterministic two-level span tree is exported and
//! compared byte-for-byte against `tests/golden/chrome_trace.json` (the
//! file a contributor would load into Perfetto / chrome://tracing).
//! Structural properties — monotone timestamps, complete events only,
//! parent intervals containing children — are asserted independently of
//! the golden bytes so a failure pinpoints *what* changed.
//!
//! Regenerate the golden after an intentional format change with:
//! `BLESS=1 cargo test -p dhnsw --test chrome_golden`

use dhnsw::{chrome_trace_json, ArgValue, FinishedTrace, SpanKind, SpanRecord};

fn span(
    name: &'static str,
    cat: &'static str,
    parent: u32,
    wall: (f64, f64),
    vt: (f64, f64),
    args: Vec<(&'static str, ArgValue)>,
) -> SpanRecord {
    SpanRecord {
        name,
        cat,
        parent,
        kind: SpanKind::Span,
        wall_start_us: wall.0,
        wall_dur_us: wall.1,
        vt_start_us: vt.0,
        vt_dur_us: vt.1,
        args,
    }
}

/// A miniature but representative batch: root → {routing, network →
/// {doorbell verb → implied WQEs as grandchildren}, search}, plus one
/// cache instant.
fn sample_trace() -> FinishedTrace {
    let spans = vec![
        // 1: root
        span(
            "query_batch",
            "engine",
            0,
            (0.0, 1000.0),
            (0.0, 0.0),
            vec![
                ("mode", ArgValue::Str("full")),
                ("queries", ArgValue::U64(32)),
            ],
        ),
        // 2: routing under root
        span(
            "meta_route",
            "engine",
            1,
            (10.0, 90.0),
            (0.0, 0.0),
            vec![("fanout", ArgValue::U64(4))],
        ),
        // 3: network under root
        span(
            "network",
            "engine",
            1,
            (100.0, 600.0),
            (0.0, 450.0),
            vec![("round_trips", ArgValue::U64(1))],
        ),
        // 4: doorbell verb under network
        span(
            "read_doorbell",
            "rdma",
            3,
            (120.0, 500.0),
            (0.0, 450.0),
            vec![("wqes", ArgValue::U64(2)), ("bytes", ArgValue::U64(8192))],
        ),
        // 5, 6: per-WQE cluster reads under the verb
        span(
            "cluster_read",
            "rdma",
            4,
            (120.0, 250.0),
            (0.0, 225.0),
            vec![("offset", ArgValue::U64(0)), ("bytes", ArgValue::U64(4096))],
        ),
        span(
            "cluster_read",
            "rdma",
            4,
            (370.0, 250.0),
            (225.0, 225.0),
            vec![
                ("offset", ArgValue::U64(4096)),
                ("bytes", ArgValue::U64(4096)),
            ],
        ),
        // 7: a cache instant inside the network phase
        SpanRecord {
            name: "cache_hit",
            cat: "cache",
            parent: 3,
            kind: SpanKind::Instant,
            wall_start_us: 110.0,
            wall_dur_us: 0.0,
            vt_start_us: 0.0,
            vt_dur_us: 0.0,
            args: vec![("cluster", ArgValue::U64(7))],
        },
        // 8: search under root
        span(
            "sub_hnsw_search",
            "engine",
            1,
            (700.0, 290.0),
            (0.0, 0.0),
            vec![("ef", ArgValue::U64(32))],
        ),
    ];
    FinishedTrace {
        label: "full",
        seq: 1,
        total_us: 1000.0,
        spans,
    }
}

#[test]
fn exporter_matches_golden_file() {
    let json = chrome_trace_json(&[sample_trace()]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_trace.json");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        json, golden,
        "exporter output diverged from tests/golden/chrome_trace.json; \
         rerun with BLESS=1 if the change is intentional"
    );
}

#[test]
fn exporter_output_is_structurally_valid() {
    let json = chrome_trace_json(&[sample_trace()]);

    // Envelope.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));

    // Event lines, skipping the metadata record.
    let body = &json["{\"traceEvents\":[\n".len()..json.len() - "],\"displayTimeUnit\":\"ms\"}".len()];
    let lines: Vec<&str> = body
        .lines()
        .map(|l| l.trim_end_matches(','))
        .filter(|l| !l.is_empty())
        .collect();
    assert!(lines[0].contains("\"ph\":\"M\""), "first event is metadata");
    let events = &lines[1..];
    assert_eq!(events.len(), sample_trace().spans.len());

    // Complete ("X") or instant ("i") events only — no unmatched B/E
    // pairs are possible. Timestamps are monotone non-decreasing, which
    // trace viewers require for stable rendering.
    let mut last_ts = f64::NEG_INFINITY;
    for e in events {
        let is_complete = e.contains("\"ph\":\"X\"");
        let is_instant = e.contains("\"ph\":\"i\"");
        assert!(is_complete || is_instant, "unexpected phase in {e}");
        if is_complete {
            assert!(e.contains("\"dur\":"), "complete event without dur: {e}");
        }
        let ts: f64 = e
            .split("\"ts\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|v| v.parse().ok())
            .expect("every event has a numeric ts");
        assert!(ts >= last_ts, "ts went backwards at {e}");
        last_ts = ts;
    }

    // The doorbell verb's children tile its wall interval.
    assert!(json.contains("\"name\":\"read_doorbell\""));
    assert_eq!(json.matches("\"name\":\"cluster_read\"").count(), 2);
}

#[test]
fn two_level_tree_nests_by_containment() {
    // Chrome infers nesting from interval containment per (pid, tid):
    // every child interval must sit inside its parent's.
    let trace = sample_trace();
    for s in &trace.spans {
        if s.parent == 0 || s.kind == SpanKind::Instant {
            continue;
        }
        let p = &trace.spans[(s.parent - 1) as usize];
        assert!(
            s.wall_start_us >= p.wall_start_us
                && s.wall_start_us + s.wall_dur_us <= p.wall_start_us + p.wall_dur_us + 1e-9,
            "span {} escapes parent {}",
            s.name,
            p.name
        );
    }
}
