//! Golden-file test for the collapsed-stack ("folded") profile exporter.
//!
//! A hand-built, fully deterministic span tree — the same shape the
//! engine produces for a routed batch — is folded through the
//! always-on [`ProfileAccumulator`] and the rendered output is
//! compared byte-for-byte against `tests/golden/folded.txt`, the file
//! a contributor would feed to `flamegraph.pl` or paste into
//! speedscope. Format invariants (one `path count` pair per line,
//! `;`-separated frames, integer sample weights) are asserted
//! independently of the golden bytes so a failure pinpoints *what*
//! changed.
//!
//! Regenerate the golden after an intentional format change with:
//! `BLESS=1 cargo test -p dhnsw --test folded_golden`

use dhnsw::{
    ArgValue, FinishedTrace, LatencyBreakdown, ProfileAccumulator, SpanKind, SpanRecord,
};

fn span(
    name: &'static str,
    cat: &'static str,
    parent: u32,
    wall: (f64, f64),
    vt: (f64, f64),
) -> SpanRecord {
    SpanRecord {
        name,
        cat,
        parent,
        kind: SpanKind::Span,
        wall_start_us: wall.0,
        wall_dur_us: wall.1,
        vt_start_us: vt.0,
        vt_dur_us: vt.1,
        args: Vec::new(),
    }
}

/// A miniature routed batch: root → {routing, network → doorbell verb
/// → two cluster reads, search}, plus one cache instant that must NOT
/// contribute a frame (instants carry no duration).
fn sample_trace() -> FinishedTrace {
    let spans = vec![
        // 1: root
        span("query_batch", "engine", 0, (0.0, 1000.0), (0.0, 0.0)),
        // 2: routing under root
        span("meta_route", "engine", 1, (10.0, 90.0), (0.0, 0.0)),
        // 3: network under root
        span("network", "engine", 1, (100.0, 600.0), (0.0, 450.0)),
        // 4: doorbell verb under network
        span("read_doorbell", "rdma", 3, (120.0, 500.0), (0.0, 450.0)),
        // 5, 6: per-WQE cluster reads under the verb
        span("cluster_read", "rdma", 4, (120.0, 250.0), (0.0, 225.0)),
        span("cluster_read", "rdma", 4, (370.0, 250.0), (225.0, 225.0)),
        // 7: a cache instant inside the network phase (ignored by fold)
        SpanRecord {
            name: "cache_hit",
            cat: "cache",
            parent: 3,
            kind: SpanKind::Instant,
            wall_start_us: 110.0,
            wall_dur_us: 0.0,
            vt_start_us: 0.0,
            vt_dur_us: 0.0,
            args: vec![("cluster", ArgValue::U64(7))],
        },
        // 8: search under root
        span("sub_hnsw_search", "engine", 1, (700.0, 290.0), (0.0, 0.0)),
    ];
    FinishedTrace {
        label: "full",
        seq: 1,
        total_us: 1000.0,
        spans,
    }
}

/// Fold the sample trace twice plus one traced-off batch (phase
/// fallback) so the golden covers both ingestion paths and weight
/// accumulation in a single artifact.
fn accumulate() -> ProfileAccumulator {
    let acc = ProfileAccumulator::new();
    acc.fold_trace(&sample_trace());
    acc.fold_trace(&sample_trace());
    acc.fold_phases(
        &LatencyBreakdown {
            network_us: 300.0,
            sub_hnsw_us: 150.0,
            meta_hnsw_us: 40.0,
            materialize_us: 10.0,
        },
        520.0,
    );
    acc
}

#[test]
fn folded_output_matches_golden_file() {
    let folded = accumulate().render_folded();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/folded.txt");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(path, &folded).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        folded, golden,
        "folded exporter output diverged from tests/golden/folded.txt; \
         rerun with BLESS=1 if the change is intentional"
    );
}

#[test]
fn folded_output_is_flamegraph_parseable() {
    let folded = accumulate().render_folded();
    assert!(!folded.is_empty(), "accumulator rendered nothing");
    for line in folded.lines() {
        // flamegraph.pl / speedscope grammar: `frame(;frame)* weight`.
        let (path, weight) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("line missing weight separator: {line:?}"));
        assert!(!path.is_empty(), "empty frame path in {line:?}");
        for frame in path.split(';') {
            assert!(!frame.is_empty(), "empty frame in {line:?}");
            assert!(
                !frame.contains(' '),
                "frame contains a space (breaks collapsed format): {line:?}"
            );
        }
        let _w: u64 = weight
            .parse()
            .unwrap_or_else(|_| panic!("non-integer weight in {line:?}"));
    }
    // Every frame path starts at the batch root.
    assert!(folded.lines().all(|l| l.starts_with("query_batch")));
    // Instants never become frames.
    assert!(!folded.contains("cache_hit"));
}

#[test]
fn fold_is_weight_additive() {
    // Folding the same trace twice doubles every weight relative to
    // folding it once — the accumulator is a pure sum over batches.
    let once = ProfileAccumulator::new();
    once.fold_trace(&sample_trace());
    let twice = ProfileAccumulator::new();
    twice.fold_trace(&sample_trace());
    twice.fold_trace(&sample_trace());
    let single: Vec<(String, u64)> = once
        .render_folded()
        .lines()
        .map(|l| {
            let (p, w) = l.rsplit_once(' ').unwrap();
            (p.to_string(), w.parse().unwrap())
        })
        .collect();
    let double: Vec<(String, u64)> = twice
        .render_folded()
        .lines()
        .map(|l| {
            let (p, w) = l.rsplit_once(' ').unwrap();
            (p.to_string(), w.parse().unwrap())
        })
        .collect();
    assert_eq!(single.len(), double.len());
    for ((p1, w1), (p2, w2)) in single.iter().zip(&double) {
        assert_eq!(p1, p2, "path set changed between folds");
        assert_eq!(*w2, *w1 * 2, "weight for {p1} not additive");
    }
}
