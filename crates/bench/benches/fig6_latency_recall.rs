//! Criterion companion to Fig. 6: wall-time of the full query-batch path
//! per scheme on both dataset shapes (micro scale; the `repro` binary
//! produces the actual figure at full scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dhnsw::{DHnswConfig, SearchMode, VectorStore};
use dhnsw_bench::{DatasetKind, Workload};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_latency_recall");
    group.sample_size(10);

    for (kind, n, q) in [
        (DatasetKind::SiftLike, 4_000usize, 64usize),
        (DatasetKind::GistLike, 1_200, 32),
    ] {
        let w = Workload::sized(kind, n, q).expect("workload");
        let cfg = DHnswConfig::paper().with_representatives(64);
        let store = VectorStore::build(w.data.clone(), &cfg).expect("store");
        for mode in [SearchMode::Naive, SearchMode::NoDoorbell, SearchMode::Full] {
            let node = store.connect(mode).expect("connect");
            // Warm once, as the sweeps do.
            node.query_batch(&w.queries, 10, 48).expect("warm");
            let label = format!("{:?}/{mode}", kind);
            group.bench_with_input(
                BenchmarkId::new("query_batch_top10_ef48", label),
                &node,
                |b, node| {
                    b.iter(|| {
                        let (results, _) =
                            node.query_batch(&w.queries, 10, 48).expect("query");
                        std::hint::black_box(results)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
