//! Criterion companion to Tables 1 and 2: the top-1 / efSearch-48
//! operating point per scheme, plus the insert path (whose 3-verb cost
//! the layout section motivates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dhnsw::{DHnswConfig, SearchMode, VectorStore};
use dhnsw_bench::{DatasetKind, Workload};

fn bench_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_breakdown");
    group.sample_size(10);

    let w = Workload::sized(DatasetKind::SiftLike, 4_000, 64).expect("workload");
    let cfg = DHnswConfig::paper().with_representatives(64);
    let store = VectorStore::build(w.data.clone(), &cfg).expect("store");

    for mode in [SearchMode::Naive, SearchMode::NoDoorbell, SearchMode::Full] {
        let node = store.connect(mode).expect("connect");
        node.query_batch(&w.queries, 1, 48).expect("warm");
        group.bench_with_input(
            BenchmarkId::new("query_batch_top1_ef48", mode.name()),
            &node,
            |b, node| {
                b.iter(|| {
                    let (results, report) =
                        node.query_batch(&w.queries, 1, 48).expect("query");
                    std::hint::black_box((results, report))
                })
            },
        );
    }

    // The compute side of the insert path (classification via the cached
    // meta-HNSW). The network side is three one-sided verbs whose cost is
    // asserted by unit tests and reported by `repro`; wall-timing remote
    // inserts under Criterion would just exhaust overflow capacity.
    let node = store.connect(SearchMode::Full).expect("connect");
    let v = w.queries.get(0).to_vec();
    group.bench_function("insert_classify", |b| {
        b.iter(|| std::hint::black_box(node.meta().classify(&v).expect("classify")))
    });

    group.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
