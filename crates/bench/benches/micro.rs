//! Micro-benchmarks of the building blocks: distance kernels, top-k
//! collection, HNSW search, meta routing, cluster (de)serialization, and
//! the simulated RDMA verbs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dhnsw::cluster::SubCluster;
use dhnsw::{DHnswConfig, MetaIndex};
use hnsw::{HnswIndex, HnswParams};
use rdma_sim::{MemoryNode, NetworkModel, QueuePair, ReadReq};
use vecsim::{gen, l2_sq, TopK};

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [128usize, 960] {
        let a: Vec<f32> = (0..dim).map(|i| i as f32 * 0.25).collect();
        let b: Vec<f32> = (0..dim).map(|i| 255.0 - i as f32 * 0.5).collect();
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bench, _| {
            bench.iter(|| std::hint::black_box(l2_sq(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bench, _| {
            bench.iter(|| std::hint::black_box(vecsim::cosine_distance(&a, &b)))
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let cands: Vec<(u32, f32)> = (0..10_000u32).map(|i| (i, (i as f32).sin())).collect();
    c.bench_function("topk_10_of_10000", |b| {
        b.iter(|| {
            let mut top = TopK::new(10);
            for &(id, d) in &cands {
                top.push(id, d);
            }
            std::hint::black_box(top.into_sorted_vec())
        })
    });
}

fn bench_hnsw(c: &mut Criterion) {
    let data = gen::sift_like(10_000, 3).unwrap();
    let queries = gen::perturbed_queries(&data, 64, 0.03, 4).unwrap();
    let index = HnswIndex::build(data, &HnswParams::new(16, 100).seed(5)).unwrap();
    let mut group = c.benchmark_group("hnsw");
    for ef in [16usize, 48, 128] {
        group.bench_with_input(BenchmarkId::new("search_top10", ef), &ef, |b, &ef| {
            let mut i = 0;
            b.iter(|| {
                let q = queries.get(i % queries.len());
                i += 1;
                std::hint::black_box(index.search(q, 10, ef))
            })
        });
    }
    group.finish();
}

fn bench_meta(c: &mut Criterion) {
    let data = gen::sift_like(10_000, 7).unwrap();
    let cfg = DHnswConfig::paper().with_representatives(500);
    let meta = MetaIndex::build(&data, &cfg).unwrap();
    let queries = gen::perturbed_queries(&data, 64, 0.03, 8).unwrap();
    c.bench_function("meta_route_b4_500reps", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = queries.get(i % queries.len());
            i += 1;
            std::hint::black_box(meta.route(q, 4))
        })
    });
}

fn bench_cluster_codec(c: &mut Criterion) {
    let data = gen::sift_like(200, 9).unwrap();
    let ids: Vec<u32> = (0..200).collect();
    let cluster = SubCluster::build(0, data, ids, &HnswParams::new(16, 100).seed(1)).unwrap();
    let blob = cluster.to_bytes();
    let mut group = c.benchmark_group("cluster_codec");
    group.throughput(Throughput::Bytes(blob.len() as u64));
    group.bench_function("serialize_200x128d", |b| {
        b.iter(|| std::hint::black_box(cluster.to_bytes()))
    });
    group.bench_function("deserialize_200x128d", |b| {
        b.iter(|| std::hint::black_box(SubCluster::from_bytes(&blob).unwrap()))
    });
    group.finish();
}

fn bench_rdma_verbs(c: &mut Criterion) {
    let node = MemoryNode::new("bench");
    let region = node.register(16 << 20).unwrap();
    let qp = QueuePair::connect(&node, NetworkModel::connectx6());
    let mut group = c.benchmark_group("rdma_sim");
    for kb in [4usize, 128, 1024] {
        let len = kb * 1024;
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::new("read", kb), &len, |b, &len| {
            b.iter(|| std::hint::black_box(qp.read(region.rkey(), 0, len as u64).unwrap()))
        });
    }
    let reqs: Vec<ReadReq> = (0..16u64)
        .map(|i| ReadReq::new(region.rkey(), i * 65_536, 65_536))
        .collect();
    group.bench_function("read_doorbell_16x64k", |b| {
        b.iter(|| std::hint::black_box(qp.read_doorbell(&reqs).unwrap()))
    });
    group.bench_function("faa", |b| {
        b.iter(|| std::hint::black_box(qp.faa(region.rkey(), 0, 1).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_distance,
    bench_topk,
    bench_hnsw,
    bench_meta,
    bench_cluster_codec,
    bench_rdma_verbs
);
criterion_main!(benches);
