//! Criterion companion to the ablation studies in DESIGN.md §5: doorbell
//! limit, cache fraction, and fan-out, each at micro scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dhnsw::{DHnswConfig, SearchMode, VectorStore};
use dhnsw_bench::{DatasetKind, Workload};
use rdma_sim::NetworkModel;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    let w = Workload::sized(DatasetKind::SiftLike, 3_000, 64).expect("workload");
    let base = DHnswConfig::paper().with_representatives(64);

    for limit in [1usize, 16, 64] {
        let cfg = base.clone().with_network(
            NetworkModel::connectx6()
                .with_doorbell_limit(limit)
                .expect("limit"),
        );
        let store = VectorStore::build(w.data.clone(), &cfg).expect("store");
        let node = store.connect(SearchMode::Full).expect("connect");
        node.query_batch(&w.queries, 10, 32).expect("warm");
        group.bench_with_input(
            BenchmarkId::new("doorbell_limit", limit),
            &node,
            |b, node| {
                b.iter(|| {
                    std::hint::black_box(node.query_batch(&w.queries, 10, 32).expect("q"))
                })
            },
        );
    }

    for frac in [0.0f64, 0.1, 1.0] {
        let cfg = base.clone().with_cache_fraction(frac);
        let store = VectorStore::build(w.data.clone(), &cfg).expect("store");
        let node = store.connect(SearchMode::Full).expect("connect");
        node.query_batch(&w.queries, 10, 32).expect("warm");
        group.bench_with_input(
            BenchmarkId::new("cache_fraction_pct", (frac * 100.0) as u64),
            &node,
            |b, node| {
                b.iter(|| {
                    std::hint::black_box(node.query_batch(&w.queries, 10, 32).expect("q"))
                })
            },
        );
    }

    for fanout in [1usize, 4, 8] {
        let cfg = base.clone().with_fanout(fanout);
        let store = VectorStore::build(w.data.clone(), &cfg).expect("store");
        let node = store.connect(SearchMode::Full).expect("connect");
        node.query_batch(&w.queries, 10, 32).expect("warm");
        group.bench_with_input(BenchmarkId::new("fanout_b", fanout), &node, |b, node| {
            b.iter(|| std::hint::black_box(node.query_batch(&w.queries, 10, 32).expect("q")))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
