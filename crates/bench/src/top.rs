//! Live `top`-style dashboard over the serving plane's time-series
//! endpoints.
//!
//! The dashboard is a pure function from two endpoint bodies to a
//! terminal frame: [`http_get`] fetches `/timeseries` and `/anomalies`
//! from a running `dhnsw_cli serve` node, [`parse_snapshot`] lifts the
//! JSON into a [`TopSnapshot`], and [`render_dashboard`] lays the
//! snapshot out as unicode sparklines (QPS, windowed p99, bytes/s by
//! read cause, cache hit rate, pipeline hidden ratio) plus an anomaly
//! banner. The CLI loop merely clears the screen and repeats; with
//! `--once` it prints a single frame, which is what `scripts/check.sh`
//! smoke-tests against a live node.
//!
//! Everything here is deliberately synchronous and dependency-free:
//! one blocking `TcpStream` GET per endpoint per frame, tiny JSON
//! lifted with the bench crate's own [`JsonParser`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::regress::{Json, JsonParser};

/// Glyph ramp used by [`sparkline`], lowest to highest.
pub const SPARK_GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Glyph a constant nonzero window renders at: a flat mid-height bar,
/// visually distinct from both "empty" and "at the window minimum".
pub const SPARK_FLAT: char = SPARK_GLYPHS[3];

/// Renders the last `width` values as a unicode sparkline, scaled to
/// the min..max of the visible window. An empty input renders empty; a
/// constant window has no shape to scale, so it renders as a flat bar
/// ([`SPARK_FLAT`], or the bottom glyph when the constant is zero)
/// instead of dividing by the zero span. Non-finite samples pin to the
/// bottom glyph.
#[must_use]
pub fn sparkline(values: &[f64], width: usize) -> String {
    let tail = &values[values.len().saturating_sub(width)..];
    if tail.is_empty() {
        return String::new();
    }
    let finite = tail.iter().cloned().filter(|v| v.is_finite());
    let min = finite.clone().fold(f64::INFINITY, f64::min);
    let max = finite.fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    tail.iter()
        .map(|&v| {
            if !v.is_finite() || !span.is_finite() {
                SPARK_GLYPHS[0]
            } else if span > 0.0 {
                let idx =
                    (((v - min) / span) * (SPARK_GLYPHS.len() - 1) as f64).round() as usize;
                SPARK_GLYPHS[idx.min(SPARK_GLYPHS.len() - 1)]
            } else if v == 0.0 {
                // A flat zero line genuinely sits at the bottom.
                SPARK_GLYPHS[0]
            } else {
                SPARK_FLAT
            }
        })
        .collect()
}

/// One `/anomalies` record, reduced to what the banner shows.
#[derive(Debug, Clone)]
pub struct AnomalyRow {
    /// Which tracked series fired.
    pub series: String,
    /// The offending windowed value.
    pub value: f64,
    /// Robust z-score at firing time.
    pub zscore: f64,
    /// Trace id of the slowest retained exemplar, if one was linked.
    pub exemplar: Option<u64>,
}

/// Everything one dashboard frame needs, lifted from the two endpoint
/// bodies.
#[derive(Debug, Clone, Default)]
pub struct TopSnapshot {
    /// Retained series points, oldest first (already window/step
    /// thinned by the server).
    pub points: Vec<Json>,
    /// Lifetime anomaly firings reported by `/timeseries`.
    pub anomaly_total: f64,
    /// Retained anomaly records, oldest first.
    pub anomalies: Vec<AnomalyRow>,
}

impl TopSnapshot {
    /// Extracts one numeric column across the retained points.
    #[must_use]
    pub fn column(&self, key: &str) -> Vec<f64> {
        self.points
            .iter()
            .filter_map(|p| p.get(key).and_then(Json::as_f64))
            .collect()
    }

    /// Extracts one per-cause bytes/s column across the retained
    /// points.
    #[must_use]
    pub fn cause_column(&self, cause: &str) -> Vec<f64> {
        self.points
            .iter()
            .filter_map(|p| {
                p.get("cause_bytes_per_s")
                    .and_then(|c| c.get(cause))
                    .and_then(Json::as_f64)
            })
            .collect()
    }
}

/// Lifts the `/timeseries` and `/anomalies` bodies into a snapshot.
///
/// # Errors
///
/// Returns a message when either body is not the JSON shape the serve
/// plane emits.
pub fn parse_snapshot(timeseries: &str, anomalies: &str) -> Result<TopSnapshot, String> {
    let ts = JsonParser::new(timeseries.trim())
        .parse_document()
        .map_err(|e| format!("/timeseries: {e}"))?;
    let an = JsonParser::new(anomalies.trim())
        .parse_document()
        .map_err(|e| format!("/anomalies: {e}"))?;
    let points = ts
        .get("points")
        .ok_or("/timeseries: missing \"points\"")?
        .items()
        .to_vec();
    let anomaly_total = ts
        .get("anomaly_total")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let rows = an
        .get("records")
        .ok_or("/anomalies: missing \"records\"")?
        .items()
        .iter()
        .map(|r| AnomalyRow {
            series: r
                .get("series")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            value: r.get("value").and_then(Json::as_f64).unwrap_or(0.0),
            zscore: r.get("zscore").and_then(Json::as_f64).unwrap_or(0.0),
            exemplar: r
                .get("exemplar")
                .and_then(Json::as_f64)
                .map(|id| id as u64),
        })
        .collect();
    Ok(TopSnapshot {
        points,
        anomaly_total,
        anomalies: rows,
    })
}

/// Formats a rate with an SI-ish unit suffix (`1.2k`, `3.4M`).
fn fmt_rate(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

fn spark_row(out: &mut String, label: &str, values: &[f64], width: usize) {
    let last = values.last().copied().unwrap_or(0.0);
    out.push_str(&format!(
        "  {label:<22} {:<width$}  {}\n",
        sparkline(values, width),
        fmt_rate(last),
        width = width,
    ));
}

/// Lays one snapshot out as a complete terminal frame (no ANSI codes —
/// the caller owns screen clearing so `--once` output stays pipeable).
#[must_use]
pub fn render_dashboard(snap: &TopSnapshot, url: &str, width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "dhnsw top — {url}   points: {}   anomalies: {}\n",
        snap.points.len(),
        snap.anomaly_total,
    ));
    if snap.points.is_empty() {
        out.push_str("  (no series points retained yet — is the sampler running?)\n");
    } else {
        spark_row(&mut out, "qps", &snap.column("qps"), width);
        spark_row(&mut out, "p99 us", &snap.column("p99_us"), width);
        spark_row(&mut out, "bytes/s", &snap.column("bytes_per_s"), width);
        spark_row(&mut out, "hit rate", &snap.column("hit_rate"), width);
        spark_row(&mut out, "hidden ratio", &snap.column("hidden_ratio"), width);
        // One row per read cause that moved bytes anywhere in the
        // window; quiet causes are dropped so the frame stays short.
        for cause in dhnsw::ReadCause::ALL {
            let col = snap.cause_column(cause.as_str());
            if col.iter().any(|&v| v > 0.0) {
                spark_row(&mut out, &format!("bytes/s[{}]", cause.as_str()), &col, width);
            }
        }
    }
    if snap.anomaly_total > 0.0 || !snap.anomalies.is_empty() {
        out.push_str(&format!(
            "  !! {} anomalies fired\n",
            snap.anomaly_total.max(snap.anomalies.len() as f64),
        ));
        for row in snap.anomalies.iter().rev().take(3) {
            let trace = row
                .exemplar
                .map_or_else(|| "-".to_string(), |id| format!("{id:#x}"));
            out.push_str(&format!(
                "     {}: value {} z={:.1} trace {trace}\n",
                row.series,
                fmt_rate(row.value),
                row.zscore,
            ));
        }
    } else {
        out.push_str("  no anomalies\n");
    }
    out
}

/// Fetches `http://host:port/path...` with one blocking GET and
/// returns the response body.
///
/// # Errors
///
/// Returns a message on malformed URLs, connection failures, or
/// non-200 statuses.
pub fn http_get(url: &str, timeout: Duration) -> Result<String, String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("only http:// URLs are supported, got {url}"))?;
    let (authority, path) = match rest.split_once('/') {
        Some((a, p)) => (a, format!("/{p}")),
        None => (rest, "/".to_string()),
    };
    let mut stream = TcpStream::connect(authority).map_err(|e| format!("{authority}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{url}: {status}"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_the_visible_window() {
        let ramp: Vec<f64> = (0..8).map(|i| i as f64).collect();
        assert_eq!(sparkline(&ramp, 10), "▁▂▃▄▅▆▇█");
        // Width clips to the newest values, and the scale follows the
        // clipped window (the dropped 0.0 no longer anchors the min).
        assert_eq!(sparkline(&[0.0, 6.0, 7.0], 2), "▁█");
    }

    #[test]
    fn sparkline_renders_empty_series_as_empty() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[], 1), "");
        // Clipping to a zero-width window is also empty, not a panic.
        assert_eq!(sparkline(&[1.0, 2.0], 0), "");
    }

    #[test]
    fn sparkline_renders_constant_series_as_a_flat_bar() {
        // No spread means no shape: a flat mid-height bar, never a
        // divide-by-zero collapse into garbage glyphs.
        assert_eq!(sparkline(&[5.0], 10), SPARK_FLAT.to_string());
        assert_eq!(sparkline(&[3.0, 3.0, 3.0], 10), "▄▄▄");
        // A constant zero line sits at the bottom, so an idle series
        // still reads as idle.
        assert_eq!(sparkline(&[0.0, 0.0], 10), "▁▁");
        // Non-finite samples pin to the bottom instead of poisoning
        // the scale for their neighbors.
        assert_eq!(sparkline(&[f64::NAN, 1.0, 2.0], 10), "▁▁█");
        assert_eq!(sparkline(&[f64::NAN, f64::INFINITY], 10), "▁▁");
    }

    #[test]
    fn snapshot_parses_the_endpoint_shapes_and_renders() {
        let ts = r#"{"window_s": 0, "step": 1, "retained": 2, "anomaly_total": 1,
            "points": [
              {"t_us": 1000000, "dt_us": 1000000, "window_queries": 8, "qps": 8,
               "p50_us": 10, "p95_us": 20, "p99_us": 30, "bytes_per_s": 4096,
               "retries_per_s": 0, "evictions_per_s": 0, "hit_rate": 0.5,
               "window_cache_ops": 4, "hidden_ratio": 0.25,
               "cause_bytes_per_s": {"stage_load": 4096, "prefetch": 0,
                 "version_check": 0, "retry": 0, "health_probe": 0,
                 "overflow_scan": 0, "naive": 0, "other": 0}},
              {"t_us": 2000000, "dt_us": 1000000, "window_queries": 16, "qps": 16,
               "p50_us": 10, "p95_us": 20, "p99_us": 60, "bytes_per_s": 8192,
               "retries_per_s": 2, "evictions_per_s": 0, "hit_rate": 0.75,
               "window_cache_ops": 8, "hidden_ratio": 0.5,
               "cause_bytes_per_s": {"stage_load": 8192, "prefetch": 0,
                 "version_check": 0, "retry": 0, "health_probe": 0,
                 "overflow_scan": 0, "naive": 0, "other": 0}}
            ]}"#;
        let an = r#"{"fired": 1, "retained": 1, "records": [
              {"t_us": 2000000, "series": "retries_per_s", "value": 2,
               "mean": 0.1, "zscore": 9.5, "deterministic": true,
               "exemplar": 4660}]}"#;
        let snap = parse_snapshot(ts, an).unwrap();
        assert_eq!(snap.points.len(), 2);
        assert_eq!(snap.anomaly_total, 1.0);
        assert_eq!(snap.column("qps"), vec![8.0, 16.0]);
        assert_eq!(snap.cause_column("stage_load"), vec![4096.0, 8192.0]);
        assert_eq!(snap.anomalies.len(), 1);
        assert_eq!(snap.anomalies[0].series, "retries_per_s");
        assert_eq!(snap.anomalies[0].exemplar, Some(4660));

        let frame = render_dashboard(&snap, "http://127.0.0.1:9", 16);
        assert!(frame.contains("points: 2"), "{frame}");
        assert!(frame.contains("qps"), "{frame}");
        assert!(frame.contains("bytes/s[stage_load]"), "{frame}");
        // Quiet causes are dropped from the frame.
        assert!(!frame.contains("bytes/s[naive]"), "{frame}");
        assert!(frame.contains("!! 1 anomalies fired"), "{frame}");
        assert!(frame.contains("retries_per_s"), "{frame}");
        assert!(frame.contains("0x1234"), "{frame}");
    }

    #[test]
    fn empty_snapshot_renders_a_placeholder_not_a_panic() {
        let snap = parse_snapshot(
            r#"{"window_s": 0, "step": 1, "retained": 0, "anomaly_total": 0, "points": []}"#,
            r#"{"fired": 0, "retained": 0, "records": []}"#,
        )
        .unwrap();
        let frame = render_dashboard(&snap, "http://x", 16);
        assert!(frame.contains("no series points"), "{frame}");
        assert!(frame.contains("no anomalies"), "{frame}");
    }

    #[test]
    fn null_exemplars_parse_as_none() {
        let an = r#"{"fired": 1, "retained": 1, "records": [
              {"t_us": 1, "series": "qps", "value": 0, "mean": 5,
               "zscore": 7.0, "deterministic": true, "exemplar": null}]}"#;
        let snap = parse_snapshot(
            r#"{"window_s": 0, "step": 1, "retained": 0, "anomaly_total": 1, "points": []}"#,
            an,
        )
        .unwrap();
        assert_eq!(snap.anomalies[0].exemplar, None);
        let frame = render_dashboard(&snap, "http://x", 16);
        assert!(frame.contains("trace -"), "{frame}");
    }
}
