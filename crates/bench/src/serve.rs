//! Zero-dependency metrics serving plane for `dhnsw_cli serve`.
//!
//! A deliberately tiny HTTP/1.1 responder on `std::net::TcpListener` —
//! no async runtime, no HTTP crate — good enough for a Prometheus
//! scraper or a `curl` loop:
//!
//! | endpoint | payload |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition 0.0.4 |
//! | `GET /health` | `HealthReport` JSON (probes the live node) |
//! | `GET /traces` | chrome://tracing JSON of the recent span ring |
//! | `GET /explain/last` | read-cost ledger of the last query batch |
//! | `GET /profile/folded` | collapsed-stack profile (flamegraph.pl / inferno / speedscope) |
//! | `GET /exemplars` | tail exemplar store JSON (reservoir, K-slowest, bucket exemplars) |
//! | `GET /whyslow/<trace-id>` | ranked why-slow diagnosis for a retained exemplar |
//! | `GET /timeseries?window=<s>&step=<n>` | series-recorder history JSON (rates + windowed quantiles) |
//! | `GET /anomalies` | anomaly records fired by the series recorder |
//! | `GET /shutdown` | acknowledges, then stops the accept loop |
//!
//! The accept loop is bounded by construction: connections are served
//! one at a time, request heads are capped at [`MAX_REQUEST_BYTES`],
//! and every socket gets a read/write timeout, so a stuck or malicious
//! client can delay the next scrape but never wedge or exhaust the
//! process. Shutdown is cooperative through an [`AtomicBool`] the
//! caller shares with the loop (and that `/shutdown` sets). Every
//! response carries `Cache-Control: no-store`: all payloads are live
//! state, and a cached `/timeseries` frame would silently freeze a
//! dashboard.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Largest request head (request line + headers) the server reads.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_millis(1_000);

/// How long the accept loop sleeps when no connection is pending.
const IDLE_POLL: Duration = Duration::from_millis(5);

/// A keyed lookup source: `Some(body)` when the key resolves,
/// `None` renders as a 404.
pub type LookupSource = Box<dyn Fn(&str) -> Option<String> + Send>;

/// Content sources behind the endpoints. Boxed closures so the CLI can
/// capture a live compute node while tests plug in canned strings.
pub struct ServeSources {
    /// Body for `GET /metrics` (Prometheus text exposition).
    pub metrics: Box<dyn Fn() -> String + Send>,
    /// Body for `GET /health`; an `Err` renders as a 500 with the
    /// message so a failed probe is visible to the scraper.
    pub health: Box<dyn Fn() -> Result<String, String> + Send>,
    /// Body for `GET /traces` (chrome trace-event JSON).
    pub traces: Box<dyn Fn() -> String + Send>,
    /// Body for `GET /explain/last` (read-cost ledger text).
    pub explain: Box<dyn Fn() -> String + Send>,
    /// Body for `GET /profile/folded` (collapsed-stack profile text).
    pub profile: Box<dyn Fn() -> String + Send>,
    /// Body for `GET /exemplars` (tail exemplar store JSON).
    pub exemplars: Box<dyn Fn() -> String + Send>,
    /// Body for `GET /whyslow/<trace-id>`: `Some(json)` when the id
    /// parses and resolves to a retained exemplar, `None` renders 404.
    pub whyslow: LookupSource,
    /// Body for `GET /timeseries`; receives the raw query string
    /// (`window=30&step=2`, possibly empty) so the source controls
    /// parameter parsing.
    pub timeseries: Box<dyn Fn(&str) -> String + Send>,
    /// Body for `GET /anomalies` (series-recorder anomaly records).
    pub anomalies: Box<dyn Fn() -> String + Send>,
}

/// Extracts the value of `key` from a raw query string
/// (`a=1&b=2`). Returns `None` when the key is absent; an empty value
/// (`a=`) returns `Some("")`.
pub fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then_some(v)
    })
}

/// A response ready to encode onto the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 404, 405, 500).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    fn new(status: u16, content_type: &'static str, body: String) -> Self {
        Response {
            status,
            content_type,
            body,
        }
    }

    /// Serializes status line, headers, and body.
    pub fn encode(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(self.body.as_bytes());
        out
    }
}

const PROM_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";
const JSON_TYPE: &str = "application/json; charset=utf-8";
const TEXT_TYPE: &str = "text/plain; charset=utf-8";

/// Routes one request. `/shutdown` flips `shutdown` before answering,
/// so the caller's accept loop exits after this response is written.
pub fn handle(method: &str, path: &str, sources: &ServeSources, shutdown: &AtomicBool) -> Response {
    if method != "GET" {
        return Response::new(405, TEXT_TYPE, "only GET is supported\n".to_string());
    }
    // Split the query string off the route: `/metrics?x=y` routes as
    // `/metrics`; `/timeseries` receives its parameters.
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    match path {
        "/metrics" => Response::new(200, PROM_TYPE, (sources.metrics)()),
        "/health" => match (sources.health)() {
            Ok(body) => Response::new(200, JSON_TYPE, body),
            Err(e) => Response::new(500, TEXT_TYPE, format!("health probe failed: {e}\n")),
        },
        "/traces" => Response::new(200, JSON_TYPE, (sources.traces)()),
        "/explain/last" => Response::new(200, TEXT_TYPE, (sources.explain)()),
        "/profile/folded" => Response::new(200, TEXT_TYPE, (sources.profile)()),
        "/exemplars" => Response::new(200, JSON_TYPE, (sources.exemplars)()),
        "/timeseries" => match timeseries_zero_param(query) {
            // An explicit zero is a client error, not an empty result:
            // `step=0` selects no samples (a divide-by-zero in
            // disguise) and `window=0` is an empty window. Absent
            // parameters keep their defaults.
            Some(key) => Response::new(
                400,
                JSON_TYPE,
                format!(
                    "{{\"error\": \"bad parameter\", \"param\": \"{key}\", \
                     \"hint\": \"{key} must be >= 1 when given\"}}\n"
                ),
            ),
            None => Response::new(200, JSON_TYPE, (sources.timeseries)(query)),
        },
        "/anomalies" => Response::new(200, JSON_TYPE, (sources.anomalies)()),
        "/shutdown" => {
            shutdown.store(true, Ordering::SeqCst);
            Response::new(200, TEXT_TYPE, "shutting down\n".to_string())
        }
        _ => {
            if let Some(id) = path.strip_prefix("/whyslow/") {
                if let Some(body) = (sources.whyslow)(id) {
                    return Response::new(200, JSON_TYPE, body);
                }
            }
            not_found(path)
        }
    }
}

/// Returns the name of the first `/timeseries` parameter the client
/// set to an explicit zero, or `None` when the query is acceptable.
fn timeseries_zero_param(query: &str) -> Option<&'static str> {
    ["window", "step"]
        .into_iter()
        .find(|key| query_param(query, key).and_then(|v| v.parse::<u64>().ok()) == Some(0))
}

/// The 404 response: a JSON body naming the endpoints, so a scraper
/// that typos a path gets a machine-readable hint rather than prose.
fn not_found(path: &str) -> Response {
    // The offending path is echoed with quotes/backslashes escaped so
    // the body stays valid JSON whatever the client sent.
    let escaped: String = path
        .chars()
        .filter(|c| !c.is_control())
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect();
    Response::new(
        404,
        JSON_TYPE,
        format!(
            "{{\"error\": \"not found\", \"path\": \"{escaped}\", \"endpoints\": [\"/metrics\", \"/health\", \"/traces\", \"/explain/last\", \"/profile/folded\", \"/exemplars\", \"/whyslow/<trace-id>\", \"/timeseries\", \"/anomalies\", \"/shutdown\"]}}\n",
        ),
    )
}

/// Reads the request head (capped at [`MAX_REQUEST_BYTES`]) and returns
/// `(method, path)` from the request line.
fn read_request(stream: &mut TcpStream) -> std::io::Result<(String, String)> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("/").to_string();
    Ok((method, path))
}

/// Serves requests on `listener` until `shutdown` turns true (set
/// externally or by `GET /shutdown`). Returns the number of requests
/// answered. The listener is switched to non-blocking so the loop can
/// observe an external shutdown signal even when no client connects.
pub fn serve_loop(
    listener: TcpListener,
    sources: &ServeSources,
    shutdown: &AtomicBool,
) -> std::io::Result<u64> {
    listener.set_nonblocking(true)?;
    let mut served = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
                continue;
            }
            Err(e) => return Err(e),
        };
        // The accepted socket inherits non-blocking from the listener
        // on some platforms; force blocking I/O with a timeout instead.
        stream.set_nonblocking(false).ok();
        stream.set_read_timeout(Some(IO_TIMEOUT)).ok();
        stream.set_write_timeout(Some(IO_TIMEOUT)).ok();
        let response = match read_request(&mut stream) {
            Ok((method, path)) => handle(&method, &path, sources, shutdown),
            // A client that hangs or sends garbage costs one timeout,
            // nothing else: drop the connection and keep serving.
            Err(_) => continue,
        };
        if stream.write_all(&response.encode()).is_ok() {
            stream.flush().ok();
        }
        served += 1;
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn canned() -> ServeSources {
        ServeSources {
            metrics: Box::new(|| "# HELP dhnsw_up server liveness\ndhnsw_up 1\n".to_string()),
            health: Box::new(|| Ok("{\"mode\": \"full\"}".to_string())),
            traces: Box::new(|| "{\"traceEvents\": []}".to_string()),
            explain: Box::new(|| "  stage_load  100 B\n".to_string()),
            profile: Box::new(|| "query_batch;network 120\n".to_string()),
            exemplars: Box::new(|| "{\"occupancy\": 1}".to_string()),
            whyslow: Box::new(|id| {
                (id == "7").then(|| "{\"verdict\": \"retry_storm\"}".to_string())
            }),
            timeseries: Box::new(|query| {
                format!("{{\"echo\": \"{query}\", \"points\": []}}")
            }),
            anomalies: Box::new(|| "{\"fired\": 0, \"records\": []}".to_string()),
        }
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn handle_routes_every_endpoint() {
        let sources = canned();
        let shutdown = AtomicBool::new(false);
        let m = handle("GET", "/metrics", &sources, &shutdown);
        assert_eq!(m.status, 200);
        assert!(m.content_type.contains("version=0.0.4"));
        assert!(m.body.contains("dhnsw_up 1"));
        let h = handle("GET", "/health?verbose=1", &sources, &shutdown);
        assert_eq!((h.status, h.body.as_str()), (200, "{\"mode\": \"full\"}"));
        assert_eq!(handle("GET", "/traces", &sources, &shutdown).status, 200);
        assert_eq!(
            handle("GET", "/explain/last", &sources, &shutdown).status,
            200
        );
        let p = handle("GET", "/profile/folded", &sources, &shutdown);
        assert_eq!(p.status, 200);
        assert!(p.body.contains("query_batch;network 120"));
        let e = handle("GET", "/exemplars", &sources, &shutdown);
        assert_eq!((e.status, e.content_type), (200, JSON_TYPE));
        let w = handle("GET", "/whyslow/7", &sources, &shutdown);
        assert_eq!(w.status, 200);
        assert!(w.body.contains("retry_storm"));
        // /timeseries keeps its query string; /anomalies is plain.
        let ts = handle("GET", "/timeseries?window=30&step=2", &sources, &shutdown);
        assert_eq!((ts.status, ts.content_type), (200, JSON_TYPE));
        assert!(ts.body.contains("\"echo\": \"window=30&step=2\""), "{}", ts.body);
        let ts_bare = handle("GET", "/timeseries", &sources, &shutdown);
        assert!(ts_bare.body.contains("\"echo\": \"\""), "{}", ts_bare.body);
        // Explicit zeros are client errors: a 400 JSON body naming the
        // offending parameter, and the source is never consulted.
        for (query, param) in [
            ("step=0", "step"),
            ("window=0", "window"),
            ("window=0&step=2", "window"),
            ("window=30&step=0", "step"),
        ] {
            let bad = handle(
                "GET",
                &format!("/timeseries?{query}"),
                &sources,
                &shutdown,
            );
            assert_eq!((bad.status, bad.content_type), (400, JSON_TYPE), "{query}");
            assert!(
                bad.body.contains(&format!("\"param\": \"{param}\"")),
                "{query}: {}",
                bad.body
            );
            assert!(!bad.body.contains("echo"), "{query} reached the source");
        }
        // Nonzero and absent parameters still pass through untouched.
        assert_eq!(
            handle("GET", "/timeseries?window=1&step=1", &sources, &shutdown).status,
            200
        );
        let an = handle("GET", "/anomalies", &sources, &shutdown);
        assert_eq!((an.status, an.content_type), (200, JSON_TYPE));
        assert!(an.body.contains("\"records\": []"));
        // An unretained or malformed id is a 404, not a 500.
        assert_eq!(handle("GET", "/whyslow/99", &sources, &shutdown).status, 404);
        assert_eq!(handle("GET", "/whyslow/", &sources, &shutdown).status, 404);
        let nope = handle("GET", "/nope", &sources, &shutdown);
        assert_eq!((nope.status, nope.content_type), (404, JSON_TYPE));
        assert!(nope.body.contains("\"path\": \"/nope\""));
        assert!(nope.body.contains("/profile/folded"));
        assert!(nope.body.contains("/timeseries"));
        assert!(nope.body.contains("/anomalies"));
        assert_eq!(handle("POST", "/metrics", &sources, &shutdown).status, 405);
        assert!(!shutdown.load(Ordering::SeqCst));
        let s = handle("GET", "/shutdown", &sources, &shutdown);
        assert_eq!(s.status, 200);
        assert!(shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn query_param_parses_raw_query_strings() {
        assert_eq!(query_param("window=30&step=2", "window"), Some("30"));
        assert_eq!(query_param("window=30&step=2", "step"), Some("2"));
        assert_eq!(query_param("window=30&step=2", "missing"), None);
        assert_eq!(query_param("", "window"), None);
        assert_eq!(query_param("window=", "window"), Some(""));
        assert_eq!(query_param("window", "window"), Some(""));
    }

    #[test]
    fn handle_surfaces_health_errors_as_500() {
        let mut sources = canned();
        sources.health = Box::new(|| Err("qp closed".to_string()));
        let shutdown = AtomicBool::new(false);
        let r = handle("GET", "/health", &sources, &shutdown);
        assert_eq!(r.status, 500);
        assert!(r.body.contains("qp closed"));
    }

    #[test]
    fn response_encoding_carries_length_and_body() {
        let r = Response::new(200, TEXT_TYPE, "hello\n".to_string());
        let wire = String::from_utf8(r.encode()).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(wire.contains("Content-Length: 6\r\n"));
        // Live state must never be cached by an intermediary.
        assert!(wire.contains("Cache-Control: no-store\r\n"));
        assert!(wire.ends_with("\r\n\r\nhello\n"));
        // Content-Length counts bytes, not chars: "µs" is 3 bytes.
        let r = Response::new(200, TEXT_TYPE, "µs\n".to_string());
        let wire = r.encode();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("Content-Length: 4\r\n"), "{text}");
        let body_start = text.find("\r\n\r\n").unwrap() + 4;
        assert_eq!(wire.len() - body_start, 4);
    }

    #[test]
    fn not_found_body_is_json_even_for_hostile_paths() {
        let r = not_found("/a\"b\\c\u{7}");
        assert_eq!(r.status, 404);
        assert!(r.body.contains("\"path\": \"/a\\\"b\\\\c\""), "{}", r.body);
        // Body parses as the JSON it claims to be: balanced quotes,
        // no raw control bytes.
        assert!(!r.body.bytes().any(|b| b < 0x20 && b != b'\n'));
    }

    #[test]
    fn serve_loop_answers_scrapes_and_honors_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let server =
            std::thread::spawn(move || serve_loop(listener, &canned(), &flag).unwrap());

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("dhnsw_up 1"));
        let missing = get(addr, "/does-not-exist");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        assert!(missing.contains("\"error\": \"not found\""), "{missing}");
        let folded = get(addr, "/profile/folded");
        assert!(folded.contains("query_batch;network 120"), "{folded}");
        let why = get(addr, "/whyslow/7");
        assert!(why.contains("retry_storm"), "{why}");
        let ts = get(addr, "/timeseries?window=5");
        assert!(ts.contains("\"points\": []"), "{ts}");
        assert!(ts.contains("Cache-Control: no-store"), "{ts}");
        let ts_zero = get(addr, "/timeseries?step=0");
        assert!(ts_zero.starts_with("HTTP/1.1 400 Bad Request"), "{ts_zero}");
        assert!(ts_zero.contains("\"param\": \"step\""), "{ts_zero}");
        let an = get(addr, "/anomalies");
        assert!(an.contains("\"records\": []"), "{an}");
        let bye = get(addr, "/shutdown");
        assert!(bye.starts_with("HTTP/1.1 200 OK"), "{bye}");
        let served = server.join().unwrap();
        assert_eq!(served, 8);
        assert!(shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn serve_loop_survives_a_garbage_client() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let server =
            std::thread::spawn(move || serve_loop(listener, &canned(), &flag).unwrap());

        // A client that connects and immediately hangs up.
        drop(TcpStream::connect(addr).unwrap());
        // The next real request still gets served.
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        get(addr, "/shutdown");
        server.join().unwrap();
    }
}
