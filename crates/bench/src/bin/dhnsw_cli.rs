//! `dhnsw-cli`: build, persist, and query d-HNSW stores from the command
//! line, against real `.fvecs` files or the synthetic generators.
//!
//! ```text
//! # Build a store from vectors and persist it:
//! dhnsw_cli build --input base.fvecs --out store.dhnsw --reps 500
//! dhnsw_cli build --synthetic sift:20000 --out store.dhnsw
//!
//! # Inspect it:
//! dhnsw_cli info --store store.dhnsw
//!
//! # Query it (prints ids + distances per query):
//! dhnsw_cli query --store store.dhnsw --queries q.fvecs --k 10 --ef 48
//!
//! # Insert more vectors and persist the mutated store:
//! dhnsw_cli insert --store store.dhnsw --input new.fvecs --out store2.dhnsw
//!
//! # Run a workload and dump the telemetry registry:
//! dhnsw_cli metrics --store store.dhnsw --queries q.fvecs --format prom
//! dhnsw_cli query --store store.dhnsw --queries q.fvecs --metrics-out run1
//!
//! # Health check: probe the store, print the HealthReport JSON, and
//! # exit non-zero when an SLO budget is violated:
//! dhnsw_cli doctor --store store.dhnsw --check --slo-max-overflow 0.9
//!
//! # Serve the live telemetry plane (first stdout line is the URL):
//! dhnsw_cli serve --store store.dhnsw --port 0
//! curl http://127.0.0.1:<port>/metrics
//!
//! # Watch a serving node live (sparklines + anomaly banner):
//! dhnsw_cli top --url http://127.0.0.1:<port>
//! dhnsw_cli top --url http://127.0.0.1:<port> --once
//! ```
//!
//! Every subcommand runs on the simulated RDMA fabric and reports what
//! moved (round trips, bytes, virtual network time). `query` and `insert`
//! accept `--metrics-out <base>` to write the process-wide telemetry
//! registry to `<base>.prom` (Prometheus text format) and `<base>.json`;
//! the `metrics` subcommand runs a query workload with per-query tracing
//! on and prints the exposition to stdout.
//!
//! Workload subcommands accept `--trace-spans` and `--slow-query-us <n>`
//! to control span capture from the command line; when the flags are
//! absent the `DHNSW_TRACE_SPANS` / `DHNSW_SLOW_QUERY_US` environment
//! variables (read at connect time) stay in force.
//!
//! Reliability knobs: `--fault-rate <p>` (with `--fault-seed <s>`) arms
//! seeded substrate fault injection on the session's queue pair;
//! `--read-retry-limit <n>` bounds the engine-level retries above the
//! substrate's retransmission budget, and `--degraded-ok` lets queries
//! answer from the clusters that arrived instead of failing the batch.
//!
//! Pipelining knobs: `--pipeline-depth <d>` splits each batch into `d`
//! micro-batches whose cluster loads overlap the previous stage's
//! search, and `--prefetch-budget-bytes <b>` arms the heatmap-driven
//! background prefetcher between batches (0 disables it). Both override
//! the `DHNSW_PIPELINE_DEPTH` / `DHNSW_PREFETCH_BUDGET_BYTES` env knobs.

use std::collections::HashMap;

use dhnsw::{snapshot, DHnswConfig, QuantizeMode, SearchMode, SloBudgets, Telemetry, VectorStore};
use vecsim::Dataset;

type AnyResult<T> = Result<T, Box<dyn std::error::Error>>;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> AnyResult<()> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "build" => cmd_build(&flags),
        "info" => cmd_info(&flags),
        "query" => cmd_query(&flags),
        "insert" => cmd_insert(&flags),
        "metrics" => cmd_metrics(&flags),
        "doctor" => cmd_doctor(&flags),
        "serve" => cmd_serve(&flags),
        "top" => cmd_top(&flags),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(format!("unknown subcommand {other}").into())
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: dhnsw_cli <build|info|query|insert|metrics|doctor|serve|top> [flags]\n\
         build:   --input <fvecs> | --synthetic <sift|gist>:<n>   --out <snapshot> [--reps N] [--fanout B] [--seed S]\n\
                  [--quantize off|sq8] [--rerank-k N]\n\
         info:    --store <snapshot>\n\
         query:   --store <snapshot> --queries <fvecs> [--k K] [--ef EF] [--limit N] [--metrics-out <base>] [--explain]\n\
         insert:  --store <snapshot> --input <fvecs> --out <snapshot> [--limit N] [--metrics-out <base>]\n\
         metrics: --store <snapshot> --queries <fvecs> [--k K] [--ef EF] [--limit N] [--format prom|json] [--out <path>]\n\
         serve:   --store <snapshot> [--queries <fvecs>] [--port P] [--k K] [--ef EF] [--series-tick-ms N]\n\
                  (endpoints: /metrics /health /traces /explain/last /profile/folded /exemplars /whyslow/<id>\n\
                   /timeseries?window=S&step=N /anomalies /shutdown)\n\
         top:     --url http://host:port [--once] [--interval-ms N]\n\
         doctor:  --store <snapshot> [--queries <fvecs>] [--passes N] [--warmup-passes N] [--out <path>] [--check] [--why-slow]\n\
                  [--slo-p99-us X] [--slo-min-hit-rate X] [--slo-max-overflow X] [--slo-max-route-gini X]\n\
                  [--slo-max-degraded-rate X]\n\
         all workload commands: [--quantize off|sq8] [--rerank-k N] [--trace-spans] [--slow-query-us N]\n\
                  [--fault-rate P] [--fault-seed S] [--retrans-budget N] [--read-retry-limit N] [--degraded-ok]\n\
                  [--pipeline-depth D] [--prefetch-budget-bytes B]"
    );
}

/// Parses `--key value` pairs. A flag followed by another `--flag` (or
/// by nothing) is boolean and stored as `"1"` — e.g. `--check`,
/// `--trace-spans`.
fn parse_flags(args: &[String]) -> AnyResult<HashMap<String, String>> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                flags.insert(key.to_string(), v.clone());
                i += 2;
            }
            _ => {
                flags.insert(key.to_string(), "1".to_string());
                i += 1;
            }
        }
    }
    Ok(flags)
}

fn flag_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> AnyResult<usize> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => Ok(v.parse()?),
    }
}

fn flag_f64_opt(flags: &HashMap<String, String>, key: &str) -> AnyResult<Option<f64>> {
    match flags.get(key) {
        None => Ok(None),
        Some(v) => Ok(Some(v.parse()?)),
    }
}

/// Applies `--slow-query-us` / `--trace-spans` to the span tracer. Call
/// after `connect()` so explicit flags win over the `DHNSW_*` env
/// fallback applied there.
fn apply_trace_flags(flags: &HashMap<String, String>, telemetry: &Telemetry) -> AnyResult<()> {
    if let Some(v) = flags.get("slow-query-us") {
        telemetry.spans().set_slow_threshold_us(v.parse()?);
    }
    if flags.contains_key("trace-spans") {
        telemetry.spans().set_enabled(true);
    }
    Ok(())
}

/// Arms seeded substrate fault injection on a connected node's queue
/// pair (`--fault-rate`, `--fault-seed`). Call after `connect()`.
fn apply_fault_flags(
    flags: &HashMap<String, String>,
    node: &dhnsw::ComputeNode,
) -> AnyResult<()> {
    if let Some(rate) = flag_f64_opt(flags, "fault-rate")? {
        let seed = flag_usize(flags, "fault-seed", 42)? as u64;
        node.queue_pair().set_fault_rate(rate, seed);
        eprintln!("fault injection armed: rate {rate}, seed {seed}");
    }
    // Mirrors the RC QP `retry_cnt` attribute (0–7 on real NICs): a
    // smaller budget surfaces drops to the engine's own retry loop
    // instead of absorbing them in silent retransmissions.
    if let Some(n) = flags.get("retrans-budget") {
        node.queue_pair().set_retry_limit(n.parse()?);
        eprintln!("retransmission budget set to {n}");
    }
    Ok(())
}

/// Applies the pipelined-execution knobs to a connected node
/// (`--pipeline-depth`, `--prefetch-budget-bytes`). Call after
/// `connect()` so explicit flags win over the `DHNSW_*` env knobs.
fn apply_pipeline_flags(
    flags: &HashMap<String, String>,
    node: &dhnsw::ComputeNode,
) -> AnyResult<()> {
    if let Some(d) = flags.get("pipeline-depth") {
        node.set_pipeline_depth(d.parse()?);
    }
    if let Some(b) = flags.get("prefetch-budget-bytes") {
        node.set_prefetch_budget_bytes(b.parse()?);
    }
    Ok(())
}

fn load_vectors(flags: &HashMap<String, String>) -> AnyResult<Dataset> {
    if let Some(path) = flags.get("input") {
        let file = std::fs::File::open(path)?;
        let ds = vecsim::io::read_fvecs(std::io::BufReader::new(file))?;
        eprintln!("loaded {} vectors x {}d from {path}", ds.len(), ds.dim());
        return Ok(ds);
    }
    if let Some(spec) = flags.get("synthetic") {
        let (kind, n) = spec
            .split_once(':')
            .ok_or("--synthetic wants <sift|gist>:<count>")?;
        let n: usize = n.parse()?;
        let seed = flag_usize(flags, "seed", 42)? as u64;
        let ds = match kind {
            "sift" => vecsim::gen::sift_like(n, seed)?,
            "gist" => vecsim::gen::gist_like(n, seed)?,
            other => return Err(format!("unknown synthetic kind {other}").into()),
        };
        eprintln!("generated {} synthetic {kind}-like vectors", ds.len());
        return Ok(ds);
    }
    Err("need --input <fvecs> or --synthetic <kind>:<n>".into())
}

/// Applies the wire-format knobs (`--quantize`, `--rerank-k`). SQ8 is
/// the default: builds emit the layout-v3 compressed copies and opened
/// stores prefer them on the wire when the snapshot carries them (a v2
/// snapshot without SQ spans falls back to full precision untouched).
/// `--quantize off` restores the uncompressed wire format.
fn apply_quantize_flags(
    flags: &HashMap<String, String>,
    config: DHnswConfig,
) -> AnyResult<DHnswConfig> {
    let mode = match flags.get("quantize") {
        Some(v) => QuantizeMode::parse(v)?,
        None => QuantizeMode::Sq8,
    };
    let mut config = config.with_quantize_mode(mode);
    if let Some(v) = flags.get("rerank-k") {
        config = config.with_rerank_k(v.parse()?);
    }
    Ok(config)
}

fn config_from(flags: &HashMap<String, String>, n: usize) -> AnyResult<DHnswConfig> {
    let reps = flag_usize(flags, "reps", (n / 2_000).clamp(32, 500))?;
    let fanout = flag_usize(flags, "fanout", 4)?;
    let slots = (n / reps / 8).max(16);
    apply_quantize_flags(
        flags,
        DHnswConfig::paper()
            .with_representatives(reps)
            .with_fanout(fanout)
            .with_overflow_slots(slots)
            .with_seed(flag_usize(flags, "seed", 0x5EED)? as u64),
    )
}

fn open_store(flags: &HashMap<String, String>) -> AnyResult<VectorStore> {
    let path = flags.get("store").ok_or("--store <snapshot> required")?;
    let file = std::fs::File::open(path)?;
    // The snapshot carries the data; runtime knobs come from flags.
    let mut config = DHnswConfig::paper()
        .with_fanout(flag_usize(flags, "fanout", 4)?)
        .with_representatives(500); // not used by restore
    if let Some(n) = flags.get("read-retry-limit") {
        config = config.with_read_retry_limit(n.parse()?);
    }
    if flags.contains_key("degraded-ok") {
        config = config.with_degraded_ok(true);
    }
    config = apply_quantize_flags(flags, config)?;
    let store = snapshot::read_snapshot(std::io::BufReader::new(file), &config)?;
    eprintln!(
        "restored store: {} base vectors, {} partitions, {:.1} MB remote",
        store.base_len(),
        store.partitions(),
        store.remote_bytes() as f64 / 1e6
    );
    Ok(store)
}

fn save_store(store: &VectorStore, flags: &HashMap<String, String>) -> AnyResult<()> {
    let path = flags.get("out").ok_or("--out <snapshot> required")?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    snapshot::write_snapshot(store, &mut file)?;
    use std::io::Write;
    file.flush()?;
    eprintln!("wrote snapshot to {path}");
    Ok(())
}

fn cmd_build(flags: &HashMap<String, String>) -> AnyResult<()> {
    let data = load_vectors(flags)?;
    let config = config_from(flags, data.len())?;
    let t = std::time::Instant::now();
    let store = VectorStore::build(data, &config)?;
    eprintln!(
        "built {} partitions over {} vectors in {:.1}s ({:.1} MB remote, meta {:.3} MB)",
        store.partitions(),
        store.base_len(),
        t.elapsed().as_secs_f64(),
        store.remote_bytes() as f64 / 1e6,
        store.meta().footprint_bytes() as f64 / 1e6
    );
    save_store(&store, flags)
}

fn cmd_info(flags: &HashMap<String, String>) -> AnyResult<()> {
    let store = open_store(flags)?;
    println!("partitions:   {}", store.partitions());
    println!("base vectors: {}", store.base_len());
    println!("dimension:    {}", store.dim());
    println!("remote bytes: {}", store.remote_bytes());
    println!("dir epoch:    {}", store.directory().epoch());
    println!(
        "meta-HNSW:    {} reps, {} layers, {:.3} MB",
        store.meta().partitions(),
        store.meta().max_level() + 1,
        store.meta().footprint_bytes() as f64 / 1e6
    );
    let mut sizes: Vec<usize> = (0..store.partitions() as u32)
        .map(|p| store.partition_size(p).unwrap_or(0))
        .collect();
    sizes.sort_unstable();
    println!(
        "cluster size: min {} / median {} / max {}",
        sizes.first().unwrap_or(&0),
        sizes.get(sizes.len() / 2).unwrap_or(&0),
        sizes.last().unwrap_or(&0)
    );
    Ok(())
}

fn load_queries(flags: &HashMap<String, String>) -> AnyResult<Dataset> {
    let qpath = flags.get("queries").ok_or("--queries <fvecs> required")?;
    let file = std::fs::File::open(qpath)?;
    let mut queries = vecsim::io::read_fvecs(std::io::BufReader::new(file))?;
    let limit = flag_usize(flags, "limit", queries.len())?;
    if queries.len() > limit {
        let ids: Vec<u32> = (0..limit as u32).collect();
        queries = queries.select(&ids);
    }
    Ok(queries)
}

/// Dumps the process-wide telemetry registry to `<base>.prom` and
/// `<base>.json`. Both files land via temp-file + rename so a scraper
/// tailing them never reads a torn write.
fn write_metrics(base: &str) -> AnyResult<()> {
    let telemetry = Telemetry::global();
    let prom = format!("{base}.prom");
    dhnsw_bench::write_atomic(&prom, &telemetry.render_prometheus())?;
    let json = format!("{base}.json");
    dhnsw_bench::write_atomic(&json, &telemetry.snapshot_json())?;
    eprintln!("wrote metrics to {prom} and {json}");
    Ok(())
}

fn cmd_query(flags: &HashMap<String, String>) -> AnyResult<()> {
    let store = open_store(flags)?;
    let queries = load_queries(flags)?;
    let k = flag_usize(flags, "k", 10)?;
    let ef = flag_usize(flags, "ef", 48)?;

    let node = store.connect(SearchMode::Full)?;
    apply_trace_flags(flags, &Telemetry::global())?;
    apply_fault_flags(flags, &node)?;
    apply_pipeline_flags(flags, &node)?;
    let (results, report) = node.query_batch(&queries, k, ef)?;
    for (i, hits) in results.iter().enumerate() {
        let row: Vec<String> = hits
            .iter()
            .map(|n| format!("{}:{:.4}", n.id, n.dist))
            .collect();
        println!("q{i}\t{}", row.join(" "));
    }
    eprintln!(
        "{} queries | {:.2} us/query ({:.1} us network total) | {} round trips | {:.2} MB read",
        report.queries,
        report.per_query_latency_us(),
        report.breakdown.network_us,
        report.round_trips,
        report.bytes_read as f64 / 1e6
    );
    if report.degraded_queries > 0 {
        eprintln!(
            "{} of {} queries degraded ({} engine read retries; mean coverage {:.3})",
            report.degraded_queries,
            report.queries,
            report.read_retries,
            report.coverage.iter().sum::<f64>() / report.coverage.len().max(1) as f64
        );
    }
    if flags.contains_key("explain") {
        eprintln!("read-cost ledger (bytes by cause):");
        eprint!("{}", report.ledger.render());
        if let Some(dominant) = report.ledger.dominant_cause() {
            eprintln!("dominant cause: {}", dominant.as_str());
        }
    }
    if let Some(base) = flags.get("metrics-out") {
        write_metrics(base)?;
    }
    Ok(())
}

/// Runs a query workload with per-query tracing on and emits the
/// telemetry registry in Prometheus text format (default) or JSON.
fn cmd_metrics(flags: &HashMap<String, String>) -> AnyResult<()> {
    let store = open_store(flags)?;
    let queries = load_queries(flags)?;
    let k = flag_usize(flags, "k", 10)?;
    let ef = flag_usize(flags, "ef", 48)?;

    let telemetry = Telemetry::global();
    telemetry.traces().set_enabled(true);
    let node = store.connect(SearchMode::Full)?;
    apply_trace_flags(flags, &telemetry)?;
    apply_fault_flags(flags, &node)?;
    apply_pipeline_flags(flags, &node)?;
    let (_, report) = node.query_batch(&queries, k, ef)?;
    if let Some(trace) = telemetry.traces().recent().last() {
        eprintln!(
            "trace: {} queries | {} clusters wanted, {} cache hits, {} loaded | {} doorbells | {:.1} us total",
            trace.queries,
            trace.unique_clusters,
            trace.cache_hits,
            trace.clusters_loaded,
            trace.doorbell_batches,
            trace.total_us
        );
    }
    eprintln!(
        "{} queries | {:.2} us/query | {} round trips",
        report.queries,
        report.per_query_latency_us(),
        report.round_trips
    );

    let format = flags.get("format").map(String::as_str).unwrap_or("prom");
    let text = match format {
        "prom" => telemetry.render_prometheus(),
        "json" => telemetry.snapshot_json(),
        other => return Err(format!("unknown --format {other}; use prom|json").into()),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text)?;
            eprintln!("wrote metrics to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_insert(flags: &HashMap<String, String>) -> AnyResult<()> {
    let store = open_store(flags)?;
    let data = load_vectors(flags)?;
    let limit = flag_usize(flags, "limit", data.len())?;
    let take: Vec<u32> = (0..data.len().min(limit) as u32).collect();
    let batch = data.select(&take);

    let node = store.connect(SearchMode::Full)?;
    apply_trace_flags(flags, &Telemetry::global())?;
    apply_fault_flags(flags, &node)?;
    apply_pipeline_flags(flags, &node)?;
    let results = node.insert_batch(&batch)?;
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let rejected = results.len() - ok;
    let stats = node.queue_pair().stats().snapshot();
    eprintln!(
        "inserted {ok}/{} vectors ({rejected} rejected: overflow full) | {} round trips, {} atomics",
        results.len(),
        stats.round_trips,
        stats.atomics
    );
    if rejected > 0 {
        eprintln!("hint: rebuild the store to fold overflow in and free space");
    }
    if let Some(base) = flags.get("metrics-out") {
        write_metrics(base)?;
    }
    save_store(&store, flags)
}

/// Resolves SLO budgets: `DHNSW_SLO_*` environment variables first,
/// then `--slo-*` flags on top (flags win per-budget).
fn budgets_from(flags: &HashMap<String, String>) -> AnyResult<SloBudgets> {
    let mut b = SloBudgets::from_env();
    if let Some(v) = flag_f64_opt(flags, "slo-p99-us")? {
        b.max_p99_us = Some(v);
    }
    if let Some(v) = flag_f64_opt(flags, "slo-min-hit-rate")? {
        b.min_cache_hit_rate = Some(v);
    }
    if let Some(v) = flag_f64_opt(flags, "slo-max-overflow")? {
        b.max_overflow_occupancy = Some(v);
    }
    if let Some(v) = flag_f64_opt(flags, "slo-max-route-gini")? {
        b.max_route_gini = Some(v);
    }
    if let Some(v) = flag_f64_opt(flags, "slo-max-degraded-rate")? {
        b.max_degraded_rate = Some(v);
    }
    Ok(b)
}

/// Probes the store with a query workload, prints the machine-readable
/// [`dhnsw::HealthReport`] (heatmap, layout occupancy/fragmentation,
/// routing skew, cache and latency health), and evaluates it against
/// the SLO budgets. With `--check`, any violated budget makes the
/// process exit non-zero; violations are also published to telemetry as
/// counters and structured span-trace warning events. With
/// `--why-slow`, the probe's slowest retained batch is diffed against
/// the reservoir baseline and the ranked diagnosis (retry-storm,
/// cache-cold, network-bound, …) prints as JSON on stdout after the
/// report.
///
/// The first `--warmup-passes` passes (default 1) run before fault
/// injection is armed and are discarded from the tail-exemplar store
/// and profile: doctor diagnoses steady-state behavior, and the
/// one-off cold batch (cache fill + first materialization) would
/// otherwise sit at the top of the K-slowest set forever, masking the
/// tail the probe is trying to explain. `--warmup-passes 0` keeps the
/// cold batch in the measurement.
fn cmd_doctor(flags: &HashMap<String, String>) -> AnyResult<()> {
    let store = open_store(flags)?;
    let k = flag_usize(flags, "k", 10)?;
    let ef = flag_usize(flags, "ef", 48)?;

    let telemetry = Telemetry::global();
    let node = store.connect(SearchMode::Full)?;
    apply_trace_flags(flags, &telemetry)?;
    apply_pipeline_flags(flags, &node)?;
    // The watchdog reports through the span ring; doctor always listens.
    telemetry.spans().set_enabled(true);

    // Probe workload: the user's queries, or the meta-HNSW
    // representatives (one per partition, capped) when none are given.
    let probes = if flags.contains_key("queries") {
        load_queries(flags)?
    } else {
        let n = store.meta().partitions().min(256);
        let rows: Vec<&[f32]> = (0..n as u32)
            .map(|p| store.meta().representative(p))
            .collect();
        Dataset::from_rows(&rows)?
    };
    let warmup = flag_usize(flags, "warmup-passes", 1)?;
    for _ in 0..warmup {
        node.query_batch(&probes, k, ef)?;
    }
    if warmup > 0 {
        // Drop the cold-start batches from the tail plane so the
        // measured passes below define both exemplars and baseline.
        telemetry.exemplars().clear();
        telemetry.profile().clear();
    }
    // Faults arm only for the measured passes: the warm-up must fill
    // the cache deterministically, not fight the injected drops.
    apply_fault_flags(flags, &node)?;
    let passes = flag_usize(flags, "passes", 2)?.max(1);
    for _ in 0..passes {
        node.query_batch(&probes, k, ef)?;
    }
    eprintln!(
        "probed with {} queries x {passes} passes (+{warmup} warm-up) (k={k}, ef={ef})",
        probes.len()
    );
    // The report's own counter probe is measurement infrastructure,
    // not the data path under test: disarm injected faults so the
    // diagnosis always lands even after a destructive fault sweep.
    if flags.contains_key("fault-rate") || flags.contains_key("retrans-budget") {
        node.queue_pair().set_fault_rate(0.0, 1);
        node.queue_pair().set_retry_limit(rdma_sim::DEFAULT_RETRY_LIMIT);
    }

    let mut health = node.health_report()?;
    let budgets = budgets_from(flags)?;
    health.violations = dhnsw::evaluate_slo(&health, &budgets);
    dhnsw::health::watchdog::emit(&telemetry, &health.violations);

    let text = health.to_json();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text)?;
            eprintln!("wrote health report to {path}");
        }
        None => println!("{text}"),
    }
    for v in &health.violations {
        match v.exemplar {
            Some(id) => eprintln!(
                "SLO violation: {} = {:.6} (limit {:.6}; exemplar trace_id={id})",
                v.budget, v.actual, v.limit
            ),
            None => eprintln!(
                "SLO violation: {} = {:.6} (limit {:.6})",
                v.budget, v.actual, v.limit
            ),
        }
    }
    if flags.contains_key("why-slow") {
        match telemetry.exemplars().diagnose_slowest() {
            Some((id, verdict, json)) => {
                eprintln!("why-slow: trace_id={id} verdict={verdict}");
                println!("{json}");
            }
            None => println!("{{\"verdict\": \"no_exemplars\"}}"),
        }
    }
    if flags.contains_key("check") && !health.violations.is_empty() {
        return Err(format!("{} SLO budget(s) violated", health.violations.len()).into());
    }
    Ok(())
}

/// Serves the live telemetry plane over HTTP: `GET /metrics`
/// (Prometheus text exposition), `/health` (a fresh [`dhnsw::HealthReport`]
/// probed from the node per request), `/traces` (chrome-trace JSON of
/// the recent span ring), `/explain/last` (the read-cost ledger of the
/// last query batch), `/profile/folded` (the always-on collapsed-stack
/// profile), `/exemplars` (the tail exemplar store), `/whyslow/<id>`
/// (ranked diagnosis of a retained exemplar), `/timeseries` (the
/// recorder's derived per-window points), `/anomalies` (online-detector
/// records), and `/shutdown` (graceful stop).
///
/// Binds `127.0.0.1:<--port>` (default 0 = ephemeral) and prints the
/// resolved URL as the first stdout line so scripts can scrape it. A
/// probe batch runs before serving (the given `--queries`, or the
/// meta-HNSW representatives) so the ledger and latency series carry
/// real traffic from the first scrape.
///
/// A background sampler thread ticks the time-series recorder every
/// `--series-tick-ms` (default 1000) — the only place in the system
/// that feeds the recorder from the wall clock — and evaluates each
/// derived window against the SLO budgets (`--slo-*` / `DHNSW_SLO_*`),
/// publishing violations through the watchdog.
fn cmd_serve(flags: &HashMap<String, String>) -> AnyResult<()> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    let store = open_store(flags)?;
    let k = flag_usize(flags, "k", 10)?;
    let ef = flag_usize(flags, "ef", 48)?;

    let telemetry = Telemetry::global();
    telemetry.spans().set_enabled(true);
    let node = Arc::new(store.connect(SearchMode::Full)?);
    apply_trace_flags(flags, &telemetry)?;
    apply_fault_flags(flags, &node)?;
    apply_pipeline_flags(flags, &node)?;

    let probes = if flags.contains_key("queries") {
        load_queries(flags)?
    } else {
        let n = store.meta().partitions().min(256);
        let rows: Vec<&[f32]> = (0..n as u32)
            .map(|p| store.meta().representative(p))
            .collect();
        Dataset::from_rows(&rows)?
    };
    let (_, report) = node.query_batch(&probes, k, ef)?;
    eprintln!(
        "probed with {} queries (k={k}, ef={ef}); serving",
        probes.len()
    );
    let last_explain = Arc::new(Mutex::new(format!(
        "read-cost ledger, last batch ({} queries):\n{}",
        report.queries,
        report.ledger.render()
    )));

    let port = flag_usize(flags, "port", 0)?;
    let listener = std::net::TcpListener::bind(("127.0.0.1", port as u16))?;
    let addr = listener.local_addr()?;
    // First stdout line is the scrape URL; scripts depend on it.
    println!("http://{addr}");
    use std::io::Write;
    std::io::stdout().flush()?;

    let sources = dhnsw_bench::serve::ServeSources {
        metrics: Box::new({
            let t = Arc::clone(&telemetry);
            move || t.render_prometheus()
        }),
        health: Box::new({
            let node = Arc::clone(&node);
            move || node.health_report().map(|h| h.to_json()).map_err(|e| e.to_string())
        }),
        traces: Box::new({
            let t = Arc::clone(&telemetry);
            move || dhnsw::chrome_trace_json(&t.spans().recent())
        }),
        explain: Box::new({
            let last = Arc::clone(&last_explain);
            move || last.lock().unwrap_or_else(|p| p.into_inner()).clone()
        }),
        profile: Box::new({
            let t = Arc::clone(&telemetry);
            move || t.profile().render_folded()
        }),
        exemplars: Box::new({
            let t = Arc::clone(&telemetry);
            move || t.exemplars().render_json()
        }),
        whyslow: Box::new({
            let t = Arc::clone(&telemetry);
            move |id: &str| {
                id.parse::<u64>()
                    .ok()
                    .and_then(|id| t.exemplars().whyslow_json(id))
            }
        }),
        timeseries: Box::new({
            let t = Arc::clone(&telemetry);
            move |query: &str| {
                let window = dhnsw_bench::serve::query_param(query, "window")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                let step = dhnsw_bench::serve::query_param(query, "step")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1);
                t.series().render_json(window, step)
            }
        }),
        anomalies: Box::new({
            let t = Arc::clone(&telemetry);
            move || t.series().anomalies_json()
        }),
    };

    // The sampler is the only wall-clock feeder the recorder has: the
    // core's tick() is timestamp-driven so every other caller stays
    // deterministic. Each derived window is also checked against the
    // SLO budgets, so a p99 or hit-rate breach shows up in the span
    // ring and the violation counters without waiting for a /health
    // probe.
    let tick_ms = flag_usize(flags, "series-tick-ms", 1_000)? as u64;
    let budgets = budgets_from(flags)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let sampler = std::thread::spawn({
        let node = Arc::clone(&node);
        let t = Arc::clone(&telemetry);
        let shutdown = Arc::clone(&shutdown);
        let start = std::time::Instant::now();
        move || {
            while !shutdown.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(tick_ms));
                let now_us = start.elapsed().as_micros() as u64;
                if let Some(point) = node.sample_series(now_us) {
                    let exemplar = t.exemplars().slowest().first().map(|r| r.trace_id);
                    let violations = dhnsw::evaluate_slo_point(&point, &budgets, exemplar);
                    if !violations.is_empty() {
                        dhnsw::health::watchdog::emit(&t, &violations);
                    }
                }
            }
        }
    });
    let served = dhnsw_bench::serve::serve_loop(listener, &sources, &shutdown)?;
    shutdown.store(true, Ordering::Relaxed);
    sampler.join().map_err(|_| "series sampler panicked")?;
    eprintln!("served {served} requests; bye");
    Ok(())
}

/// Live `top`-style dashboard against a serving node: fetches
/// `/timeseries` and `/anomalies` from `--url`, renders sparklines for
/// QPS, windowed p99, bytes/s (total and by read cause), cache hit
/// rate, and pipeline hidden ratio, plus an anomaly banner, then
/// refreshes every `--interval-ms` (default 1000). With `--once` it
/// prints a single frame without clearing the screen and exits — the
/// form `scripts/check.sh` smoke-tests.
fn cmd_top(flags: &HashMap<String, String>) -> AnyResult<()> {
    use dhnsw_bench::top;

    let url = flags
        .get("url")
        .ok_or("--url http://host:port required")?
        .trim_end_matches('/')
        .to_string();
    let once = flags.contains_key("once");
    let interval = std::time::Duration::from_millis(flag_usize(flags, "interval-ms", 1_000)? as u64);
    let timeout = std::time::Duration::from_secs(5);
    loop {
        let ts = top::http_get(&format!("{url}/timeseries"), timeout)?;
        let an = top::http_get(&format!("{url}/anomalies"), timeout)?;
        let snap = top::parse_snapshot(&ts, &an)?;
        let frame = top::render_dashboard(&snap, &url, 48);
        if once {
            print!("{frame}");
            return Ok(());
        }
        // ANSI clear + home, then the fresh frame.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write;
        std::io::stdout().flush()?;
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_flags_handles_boolean_and_valued_flags() {
        let f = parse_flags(&s(&["--store", "x", "--check", "--slo-min-hit-rate", "2.0"])).unwrap();
        assert_eq!(f.get("store").unwrap(), "x");
        assert_eq!(f.get("check").unwrap(), "1");
        assert_eq!(f.get("slo-min-hit-rate").unwrap(), "2.0");
        // Trailing boolean flag, and a bare word where a flag belongs.
        assert_eq!(
            parse_flags(&s(&["--trace-spans"])).unwrap().get("trace-spans").unwrap(),
            "1"
        );
        assert!(parse_flags(&s(&["store"])).is_err());
    }

    #[test]
    fn doctor_check_trips_watchdog_and_exits_nonzero() {
        let dir = std::env::temp_dir().join(format!("dhnsw_cli_doctor_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("store.dhnsw");
        let data = vecsim::gen::sift_like(1_200, 11).unwrap();
        let store = VectorStore::build(data, &DHnswConfig::small()).unwrap();
        {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&snap).unwrap());
            snapshot::write_snapshot(&store, &mut file).unwrap();
            use std::io::Write;
            file.flush().unwrap();
        }

        // A cache hit rate above 1.0 is unsatisfiable, so the budget
        // must always trip and --check must fail.
        let out = dir.join("health.json");
        let args = s(&[
            "doctor",
            "--store",
            snap.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--check",
            "--slo-min-hit-rate",
            "2.0",
        ]);
        let err = run(&args).expect_err("unsatisfiable budget must fail --check");
        assert!(err.to_string().contains("SLO"), "got: {err}");

        // The report on disk carries the violation...
        let report = std::fs::read_to_string(&out).unwrap();
        assert!(report.contains("\"violations\""));
        assert!(report.contains("\"cache_hit_rate\""));
        assert!(report.contains("\"heatmap\""));
        assert!(report.contains("\"occupancy\""));

        // ...and the watchdog left a structured warning in the span ring.
        let traces = Telemetry::global().spans().recent();
        assert!(
            traces.iter().any(|t| t.label == "watchdog"
                && t.spans.iter().any(|sp| sp.name == "slo_violation")),
            "no watchdog trace found"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
