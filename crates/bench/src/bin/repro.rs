//! Regenerates every table and figure of the d-HNSW paper.
//!
//! ```text
//! cargo run -p dhnsw-bench --bin repro --release -- all
//! cargo run -p dhnsw-bench --bin repro --release -- fig6a
//! ```
//!
//! Subcommands: `fig6a` `fig6b` `fig6c` `fig6d` `table1` `table2`
//! `metasize` `ablations` `faults` `pipeline` `all`. Scale via
//! `DHNSW_SIFT_N`, `DHNSW_GIST_N`, `DHNSW_QUERIES`, `DHNSW_REPS` (see
//! crate docs).
//! `faults` sweeps seeded substrate fault rates and reports recall,
//! retransmissions, engine retries, and degraded-query coverage.
//!
//! Pass `--metrics-out <base>` to additionally dump the process-wide
//! telemetry registry (every query the run issued) to `<base>.prom`
//! (Prometheus text format 0.0.4) and `<base>.json` after the run.
//!
//! `--trace-spans` turns on span capture and `--slow-query-us <n>` arms
//! the slow-query log; without the flags the `DHNSW_TRACE_SPANS` /
//! `DHNSW_SLOW_QUERY_US` environment variables apply.
//!
//! `--pipeline-depth <d>` and `--prefetch-budget-bytes <b>` apply the
//! micro-batch pipelining and background-prefetch knobs to every node
//! the run connects (they set the corresponding `DHNSW_*` env knobs
//! before any store is opened). The `pipeline` subcommand sweeps the
//! depth explicitly and gates on result equivalence.

use dhnsw::{DHnswConfig, SearchMode, Telemetry, VectorStore};
use dhnsw_bench::{
    breakdown_rows, print_breakdown_table, print_sweep_table, sweep, DatasetKind, Workload,
};
use rdma_sim::NetworkModel;

type AnyResult = Result<(), Box<dyn std::error::Error>>;

fn main() -> AnyResult {
    let mut metrics_out = None;
    let mut cmd = "all".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--metrics-out" {
            metrics_out = Some(args.next().ok_or("--metrics-out needs a value")?);
        } else if arg == "--slow-query-us" {
            let us: u64 = args
                .next()
                .ok_or("--slow-query-us needs a value")?
                .parse()?;
            Telemetry::global().spans().set_slow_threshold_us(us);
        } else if arg == "--trace-spans" {
            Telemetry::global().spans().set_enabled(true);
        } else if arg == "--pipeline-depth" {
            let d: usize = args.next().ok_or("--pipeline-depth needs a value")?.parse()?;
            // Applied via the env knob so every node the run connects
            // (there are many, built deep inside the sweeps) picks it up.
            std::env::set_var("DHNSW_PIPELINE_DEPTH", d.to_string());
        } else if arg == "--prefetch-budget-bytes" {
            let b: u64 = args
                .next()
                .ok_or("--prefetch-budget-bytes needs a value")?
                .parse()?;
            std::env::set_var("DHNSW_PREFETCH_BUDGET_BYTES", b.to_string());
        } else {
            cmd = arg;
        }
    }
    Telemetry::global().traces().set_enabled(true);
    run_cmd(&cmd)?;
    if let Some(base) = metrics_out {
        // Temp-file + rename: a scraper tailing these paths mid-run
        // sees the previous dump or this one, never a torn write.
        let telemetry = Telemetry::global();
        let prom = format!("{base}.prom");
        dhnsw_bench::write_atomic(&prom, &telemetry.render_prometheus())?;
        let json = format!("{base}.json");
        dhnsw_bench::write_atomic(&json, &telemetry.snapshot_json())?;
        eprintln!("[metrics] {prom} {json}");
    }
    Ok(())
}

fn run_cmd(cmd: &str) -> AnyResult {
    match cmd {
        "fig6a" => fig6(DatasetKind::SiftLike, 10, "Fig 6(a): SIFT, top-10"),
        "fig6b" => fig6(DatasetKind::SiftLike, 1, "Fig 6(b): SIFT, top-1"),
        "fig6c" => fig6(DatasetKind::GistLike, 10, "Fig 6(c): GIST, top-10"),
        "fig6d" => fig6(DatasetKind::GistLike, 1, "Fig 6(d): GIST, top-1"),
        "table1" => table(DatasetKind::SiftLike, "Table 1: SIFT1M@1, efSearch 48"),
        "table2" => table(DatasetKind::GistLike, "Table 2: GIST1M@1, efSearch 48"),
        "metasize" => metasize(),
        "ablations" => ablations(),
        "faults" => fault_sweep(),
        "pipeline" => pipeline_sweep(),
        "tail" => tail_latency(),
        "all" => {
            // Each dataset's workload + store are reused across its
            // figure and table so `all` builds each store once.
            let sift = Workload::standard(DatasetKind::SiftLike)?;
            let sift_store = sift.build_store()?;
            run_fig6(&sift, &sift_store, 10, "Fig 6(a): SIFT, top-10")?;
            run_fig6(&sift, &sift_store, 1, "Fig 6(b): SIFT, top-1")?;
            run_table(&sift, &sift_store, "Table 1: SIFT1M@1, efSearch 48")?;
            let gist = Workload::standard(DatasetKind::GistLike)?;
            let gist_store = gist.build_store()?;
            run_fig6(&gist, &gist_store, 10, "Fig 6(c): GIST, top-10")?;
            run_fig6(&gist, &gist_store, 1, "Fig 6(d): GIST, top-1")?;
            run_table(&gist, &gist_store, "Table 2: GIST1M@1, efSearch 48")?;
            metasize()?;
            ablations()?;
            fault_sweep()?;
            pipeline_sweep()?;
            tail_latency()
        }
        other => {
            eprintln!(
                "unknown subcommand {other}; use fig6a|fig6b|fig6c|fig6d|table1|table2|metasize|ablations|faults|pipeline|tail|all"
            );
            std::process::exit(2);
        }
    }
}

fn fig6(kind: DatasetKind, k: usize, title: &str) -> AnyResult {
    let w = Workload::standard(kind)?;
    let store = w.build_store()?;
    run_fig6(&w, &store, k, title)
}

fn run_fig6(w: &Workload, store: &VectorStore, k: usize, title: &str) -> AnyResult {
    let mut schemes = Vec::new();
    for mode in [SearchMode::Naive, SearchMode::NoDoorbell, SearchMode::Full] {
        eprintln!("[sweep] {title}: {mode}");
        schemes.push((mode, sweep(store, mode, w, k)?));
    }
    print_sweep_table(
        &format!("{title} | {} queries, fanout {}", w.queries.len(), store.config().fanout()),
        &schemes,
    );
    let slug = title
        .split(':')
        .next()
        .unwrap_or(title)
        .to_lowercase()
        .replace([' ', '(', ')'], "");
    let path = dhnsw_bench::csv::write_sweep_csv("results", &slug, &schemes)?;
    eprintln!("[csv] {}", path.display());
    Ok(())
}

fn table(kind: DatasetKind, title: &str) -> AnyResult {
    let w = Workload::standard(kind)?;
    let store = w.build_store()?;
    run_table(&w, &store, title)
}

fn run_table(w: &Workload, store: &VectorStore, title: &str) -> AnyResult {
    let rows = breakdown_rows(store, w)?;
    print_breakdown_table(
        &format!(
            "{title} | batch {} (latencies are per batch, as in the paper)",
            w.queries.len()
        ),
        &rows,
    );
    let slug = title
        .split(':')
        .next()
        .unwrap_or(title)
        .to_lowercase()
        .replace(' ', "");
    let path = dhnsw_bench::csv::write_breakdown_csv("results", &slug, &rows)?;
    eprintln!("[csv] {}", path.display());
    Ok(())
}

/// Tail-latency characterization under a mixed query/insert trace —
/// beyond the paper's mean-latency reporting, but what a serving system
/// would evaluate next.
fn tail_latency() -> AnyResult {
    use dhnsw_bench::trace::{replay, TraceSpec};
    let w = Workload::sized(
        DatasetKind::SiftLike,
        dhnsw_bench::env_usize("DHNSW_ABLATION_N", 10_000),
        8, // queries come from the trace, not the workload
    )?;
    let store = VectorStore::build(w.data.clone(), &DHnswConfig::paper().with_representatives(200))?;
    println!("\n=== Tail latency under mixed query/insert traces (20 batches x 200 queries) ===");
    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "scheme", "skew", "mean us", "p50 us", "p95 us", "p99 us", "inserts"
    );
    for mode in [SearchMode::Naive, SearchMode::NoDoorbell, SearchMode::Full] {
        for skew in [0.0f64, 1.0] {
            let node = store.connect(mode)?;
            let ops = TraceSpec {
                batches: 20,
                batch_size: 200,
                bursts: 4,
                burst_size: 16,
                skew,
                noise: 0.03,
                seed: 0x7A11,
            }
            .synthesize(&w.data)?;
            let report = replay(&node, &ops, 10, 48)?;
            println!(
                "{:<22} {:>6.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>9}",
                mode.name(),
                skew,
                report.mean_us(),
                report.percentile_us(0.50),
                report.percentile_us(0.95),
                report.percentile_us(0.99),
                report.inserts,
            );
        }
    }
    Ok(())
}

/// Resilience characterization: seeded substrate fault rates against
/// the default retransmission budget and the engine's read-retry layer.
/// At realistic drop rates the budget absorbs everything (recall holds,
/// zero degradation); the final row caps retransmissions at zero with
/// degradation allowed, showing the graceful-degradation floor.
fn fault_sweep() -> AnyResult {
    let w = Workload::sized(
        DatasetKind::SiftLike,
        dhnsw_bench::env_usize("DHNSW_ABLATION_N", 10_000),
        dhnsw_bench::env_usize("DHNSW_ABLATION_Q", 500),
    )?;
    let base = DHnswConfig::paper().with_representatives(200);
    println!("\n=== Fault sweep: seeded verb drops vs retransmission + engine retries ===");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "rate", "recall@10", "faults", "retries", "degraded", "coverage", "net us"
    );
    // One batch collapses into a couple of doorbell verbs, so each rate
    // runs several cold-cache rounds to give the drop rate something to
    // bite on.
    const ROUNDS: usize = 8;
    let run = |rate: f64, degraded: bool| -> Result<(f64, usize), Box<dyn std::error::Error>> {
        let cfg = if degraded {
            base.clone().with_degraded_ok(true)
        } else {
            base.clone()
        };
        let store = VectorStore::build(w.data.clone(), &cfg)?;
        let node = store.connect(SearchMode::Full)?;
        node.queue_pair().set_fault_rate(rate, 1234);
        if degraded {
            node.queue_pair().set_retry_limit(0);
        }
        let (mut recall_sum, mut coverage_sum, mut net_us) = (0.0f64, 0.0f64, 0.0f64);
        let (mut retries, mut degraded_total) = (0u64, 0usize);
        for _ in 0..ROUNDS {
            node.drop_cache();
            let (results, r) = node.query_batch(&w.queries, 10, 48)?;
            let ids: Vec<Vec<u32>> = results
                .iter()
                .map(|x| x.iter().map(|n| n.id).collect())
                .collect();
            recall_sum += vecsim::recall::mean_recall(&ids, w.truth(10));
            coverage_sum += if r.coverage.is_empty() {
                1.0
            } else {
                r.coverage.iter().sum::<f64>() / r.coverage.len() as f64
            };
            retries += r.read_retries;
            degraded_total += r.degraded_queries;
            net_us += r.breakdown.network_us;
        }
        let rec = recall_sum / ROUNDS as f64;
        println!(
            "{:>6.0}% {:>10.3} {:>10} {:>10} {:>10} {:>10.3} {:>10.1}",
            rate * 100.0,
            rec,
            node.queue_pair().stats().faults(),
            retries,
            degraded_total,
            coverage_sum / ROUNDS as f64,
            net_us / ROUNDS as f64
        );
        Ok((rec, degraded_total))
    };
    // Gate: under the default retransmission budget every faulted row
    // must match the clean row's recall exactly, with zero degradation.
    let (clean_recall, _) = run(0.0, false)?;
    for rate in [0.01, 0.05, 0.10, 0.15] {
        let (rec, degraded) = run(rate, false)?;
        if rec != clean_recall || degraded > 0 {
            return Err(format!(
                "fault gate: rate {rate} changed results \
                 (recall {rec} vs {clean_recall}, degraded {degraded})"
            )
            .into());
        }
    }
    // No retransmissions at all: only the engine layer stands, and it
    // degrades instead of failing (a half-lossy fabric makes the
    // coverage loss visible).
    run(0.5, true)?;
    Ok(())
}

/// Micro-batch pipelining characterization: exposed network time and
/// end-to-end batch latency as the pipeline deepens, on cold batches
/// (the cache is dropped before each run so every stage actually
/// loads). Gated: every depth must return byte-identical results and
/// bytes_read to the sequential schedule, and pipelining must never
/// *increase* the exposed network time. A final row arms the heatmap
/// prefetcher and reports what it warmed.
fn pipeline_sweep() -> AnyResult {
    let w = Workload::sized(
        DatasetKind::SiftLike,
        dhnsw_bench::env_usize("DHNSW_ABLATION_N", 10_000),
        dhnsw_bench::env_usize("DHNSW_ABLATION_Q", 500),
    )?;
    let base = DHnswConfig::paper().with_representatives(200);
    let store = VectorStore::build(w.data.clone(), &base)?;
    println!("\n=== Pipelined micro-batches: exposed network time vs depth (cold batches) ===");
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>12}",
        "depth", "recall@10", "network us", "batch us", "MB read"
    );
    let mut baseline: Option<(Vec<Vec<vecsim::Neighbor>>, u64, f64)> = None;
    for depth in [1usize, 2, 4, 8] {
        let node = store.connect(SearchMode::Full)?;
        node.set_pipeline_depth(depth);
        node.drop_cache();
        let (results, r) = node.query_batch(&w.queries, 10, 48)?;
        let ids: Vec<Vec<u32>> = results
            .iter()
            .map(|x| x.iter().map(|n| n.id).collect())
            .collect();
        let rec = vecsim::recall::mean_recall(&ids, w.truth(10));
        println!(
            "{:>6} {:>10.3} {:>14.1} {:>14.1} {:>12.2}",
            depth,
            rec,
            r.breakdown.network_us,
            r.breakdown.total_us(),
            r.bytes_read as f64 / 1e6
        );
        match &baseline {
            None => baseline = Some((results, r.bytes_read, r.breakdown.network_us)),
            Some((seq_results, seq_bytes, seq_net)) => {
                if results != *seq_results || r.bytes_read != *seq_bytes {
                    return Err(format!(
                        "pipeline gate: depth {depth} changed results or bytes_read"
                    )
                    .into());
                }
                if r.breakdown.network_us > *seq_net {
                    return Err(format!(
                        "pipeline gate: depth {depth} exposed {} us network \
                         vs sequential {} us",
                        r.breakdown.network_us, seq_net
                    )
                    .into());
                }
            }
        }
    }
    // Prefetch: constrain the cache, seed the heatmap with a skewed
    // batch, then report what one budgeted round warms.
    let cfg = base.clone().with_cache_fraction(0.25);
    let store_p = VectorStore::build(w.data.clone(), &cfg)?;
    let node = store_p.connect(SearchMode::Full)?;
    let zq = vecsim::gen::zipf_queries(&w.data, w.queries.len(), 0.03, 1.0, 0xFE7C)?;
    node.query_batch(&zq, 10, 48)?;
    let admitted = {
        node.set_prefetch_budget_bytes(u64::MAX);
        node.prefetch_hot()
    };
    let (_, r) = node.query_batch(&zq, 10, 48)?;
    println!(
        "prefetch (25% cache, zipf 1.0): warmed {admitted} clusters; repeat batch hit rate {:.0}%",
        r.cache_hit_rate() * 100.0
    );
    Ok(())
}

/// §3.1's meta-HNSW footprint claim: 0.373 MB for SIFT1M, 1.960 MB for
/// GIST1M with 500 representatives.
fn metasize() -> AnyResult {
    println!("\n=== Meta-HNSW footprint (paper: 0.373 MB SIFT1M, 1.960 MB GIST1M) ===");
    for (kind, n) in [
        (DatasetKind::SiftLike, 4_000usize),
        (DatasetKind::GistLike, 4_000),
    ] {
        let data = kind.generate(n, 1)?;
        let cfg = DHnswConfig::paper().with_representatives(500);
        let meta = dhnsw::MetaIndex::build(&data, &cfg)?;
        println!(
            "{:<32} {} reps, {} layers, {:.3} MB",
            kind.name(),
            meta.partitions(),
            meta.max_level() + 1,
            meta.footprint_bytes() as f64 / 1e6
        );
    }
    Ok(())
}

/// Ablations over the design choices §3 calls out: doorbell batch size,
/// cache fraction, per-query fan-out, and representative count.
fn ablations() -> AnyResult {
    let w = Workload::sized(
        DatasetKind::SiftLike,
        dhnsw_bench::env_usize("DHNSW_ABLATION_N", 10_000),
        dhnsw_bench::env_usize("DHNSW_ABLATION_Q", 500),
    )?;
    let base = DHnswConfig::paper().with_representatives(200);

    println!("\n=== Ablation: doorbell batch limit (§3.2 NIC-scalability tradeoff) ===");
    println!(
        "{:>8} {:>14} {:>12} {:>14}",
        "limit", "network us", "trips", "trips/query"
    );
    let store = VectorStore::build(w.data.clone(), &base)?;
    for limit in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let cfg = base
            .clone()
            .with_network(NetworkModel::connectx6().with_doorbell_limit(limit)?);
        let store_l = VectorStore::build(w.data.clone(), &cfg)?;
        let node = store_l.connect(SearchMode::Full)?;
        node.query_batch(&w.queries, 10, 48)?;
        let (_, r) = node.query_batch(&w.queries, 10, 48)?;
        println!(
            "{:>8} {:>14.1} {:>12} {:>14.4}",
            limit,
            r.breakdown.network_us,
            r.round_trips,
            r.round_trips_per_query()
        );
    }

    println!("\n=== Ablation: compute-side cache fraction (§3.3, paper uses 10%) ===");
    println!(
        "{:>8} {:>10} {:>10} {:>14} {:>12}",
        "cache", "loads", "hits", "network us", "MB read"
    );
    for frac in [0.0, 0.05, 0.10, 0.25, 0.50, 1.0] {
        let cfg = base.clone().with_cache_fraction(frac);
        let store_c = VectorStore::build(w.data.clone(), &cfg)?;
        let node = store_c.connect(SearchMode::Full)?;
        node.query_batch(&w.queries, 10, 48)?;
        let (_, r) = node.query_batch(&w.queries, 10, 48)?;
        println!(
            "{:>7.0}% {:>10} {:>10} {:>14.1} {:>12.2}",
            frac * 100.0,
            r.clusters_loaded,
            r.cache_hits,
            r.breakdown.network_us,
            r.bytes_read as f64 / 1e6
        );
    }

    println!("\n=== Ablation: cache under Zipf query skew (hot partitions stay resident) ===");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>14}",
        "skew", "loads", "hits", "hit rate", "network us"
    );
    for skew in [0.0f64, 0.5, 1.0, 1.5] {
        let store_z = VectorStore::build(w.data.clone(), &base)?;
        let node = store_z.connect(SearchMode::Full)?;
        let zq = vecsim::gen::zipf_queries(&w.data, w.queries.len(), 0.03, skew, 0xBEEF)?;
        node.query_batch(&zq, 10, 48)?;
        let (_, r) = node.query_batch(&zq, 10, 48)?;
        println!(
            "{:>6.1} {:>10} {:>10} {:>11.0}% {:>14.1}",
            skew,
            r.clusters_loaded,
            r.cache_hits,
            r.cache_hit_rate() * 100.0,
            r.breakdown.network_us
        );
    }

    println!("\n=== Ablation: partitions probed per query (fan-out b) ===");
    println!(
        "{:>4} {:>10} {:>14} {:>12}",
        "b", "recall@10", "network us", "MB read"
    );
    // Fan-out is a per-call override: one store serves the whole sweep.
    let store_b = VectorStore::build(w.data.clone(), &base)?;
    for b in [1usize, 2, 4, 8, 16] {
        let node = store_b.connect(SearchMode::Full)?;
        let opts = dhnsw::QueryOptions::new(10, 48).with_fanout(b);
        node.query_batch_opts(&w.queries, &opts)?;
        let (results, r) = node.query_batch_opts(&w.queries, &opts)?;
        let ids: Vec<Vec<u32>> = results
            .iter()
            .map(|x| x.iter().map(|n| n.id).collect())
            .collect();
        let rec = vecsim::recall::mean_recall(&ids, w.truth(10));
        println!(
            "{:>4} {:>10.3} {:>14.1} {:>12.2}",
            b,
            rec,
            r.breakdown.network_us,
            r.bytes_read as f64 / 1e6
        );
    }

    println!("\n=== Ablation: representative count (paper fixes 500) ===");
    println!(
        "{:>6} {:>12} {:>10} {:>14} {:>12}",
        "reps", "meta MB", "recall@10", "network us", "MB read"
    );
    for reps in [50usize, 100, 200, 400, 800] {
        let cfg = base.clone().with_representatives(reps);
        let store_r = VectorStore::build(w.data.clone(), &cfg)?;
        let node = store_r.connect(SearchMode::Full)?;
        node.query_batch(&w.queries, 10, 48)?;
        let (results, r) = node.query_batch(&w.queries, 10, 48)?;
        let ids: Vec<Vec<u32>> = results
            .iter()
            .map(|x| x.iter().map(|n| n.id).collect())
            .collect();
        let rec = vecsim::recall::mean_recall(&ids, w.truth(10));
        println!(
            "{:>6} {:>12.3} {:>10.3} {:>14.1} {:>12.2}",
            reps,
            store_r.meta().footprint_bytes() as f64 / 1e6,
            rec,
            r.breakdown.network_us,
            r.bytes_read as f64 / 1e6
        );
    }
    let _ = store;
    Ok(())
}
