//! Benchmark-regression gate.
//!
//! Runs the pinned-seed workload grid ({single-node, sharded} × {cold,
//! warm cache}), writes a schema-versioned `BENCH_<label>.json` plus a
//! per-scenario time-series artifact `series_<label>.json`, and — when
//! a baseline exists — compares against it with per-metric tolerances,
//! exiting non-zero on any regression. The run itself hard-gates the
//! deterministic-series anomaly count at zero: under a pinned seed the
//! online detector firing means the workload changed shape.
//!
//! ```text
//! bench_regress [--profile smoke|full] [--label NAME] [--out DIR]
//!               [--baseline PATH] [--write-baseline]
//!               [--tolerance-scale X] [--trace-out PATH]
//! ```
//!
//! Defaults: smoke profile, label `current`, output under `results/`,
//! baseline at `results/BENCH_baseline.json`, tolerance scale 1.0.
//! `--write-baseline` (re)writes the baseline from this run instead of
//! comparing. `--trace-out` additionally saves the single-node
//! scenario's span traces as Chrome trace-event JSON (open in Perfetto
//! or chrome://tracing).

use std::path::PathBuf;
use std::process::ExitCode;

use dhnsw::chrome_trace_json;
use dhnsw_bench::regress::{compare, render_comparison, series_json, BenchResult, Profile};
use dhnsw_bench::write_atomic;

struct Args {
    profile: Profile,
    label: String,
    out_dir: PathBuf,
    baseline: PathBuf,
    write_baseline: bool,
    tolerance_scale: f64,
    trace_out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_regress [--profile smoke|full] [--label NAME] [--out DIR] \
         [--baseline PATH] [--write-baseline] [--tolerance-scale X] [--trace-out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        profile: Profile::smoke(),
        label: "current".to_string(),
        out_dir: PathBuf::from("results"),
        baseline: PathBuf::from("results/BENCH_baseline.json"),
        write_baseline: false,
        tolerance_scale: 1.0,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--profile" => {
                let name = value("--profile");
                args.profile = Profile::by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown profile {name:?} (want smoke or full)");
                    usage();
                });
            }
            "--label" => args.label = value("--label"),
            "--out" => args.out_dir = PathBuf::from(value("--out")),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")),
            "--write-baseline" => args.write_baseline = true,
            "--tolerance-scale" => {
                let raw = value("--tolerance-scale");
                args.tolerance_scale = raw.parse().unwrap_or_else(|_| {
                    eprintln!("bad --tolerance-scale {raw:?}");
                    usage();
                });
            }
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    eprintln!(
        "[bench_regress] profile={} label={} seed={:#x}",
        args.profile.name, args.label, args.profile.seed
    );

    let run = match dhnsw_bench::regress::run_profile(
        &args.profile,
        &args.label,
        args.trace_out.is_some(),
    ) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("[bench_regress] run failed: {e}");
            return ExitCode::from(2);
        }
    };

    // Opt-in large-scale SQ8 smoke: 1M vectors is minutes of build
    // time, so it only runs when explicitly requested. Its gates
    // (compressed bytes < 0.30x, recall within 0.005) are enforced
    // inside run_scale_smoke. `=1` means the canonical 1M; any larger
    // value is taken as a vector count for intermediate scales.
    let scale_n = match std::env::var("DHNSW_BENCH_1M")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(1) => Some(1_000_000),
        Some(n) if n > 1 => Some(n),
        _ => None,
    };
    if let Some(n) = scale_n {
        eprintln!("[bench_regress] DHNSW_BENCH_1M set: running {n}-vector sq8 smoke");
        match dhnsw_bench::regress::run_scale_smoke(n) {
            Ok(smoke) => {
                eprintln!(
                    "[bench_regress] scale smoke @{}: full {} bytes recall {:.4} (build {:.0}s) | \
                     sq8 {} bytes recall {:.4} (build {:.0}s) | ratio {:.3}",
                    smoke.n,
                    smoke.full.network_bytes,
                    smoke.full.recall_at_10,
                    smoke.full.build_secs,
                    smoke.sq8.network_bytes,
                    smoke.sq8.recall_at_10,
                    smoke.sq8.build_secs,
                    smoke.sq8.network_bytes as f64 / smoke.full.network_bytes as f64,
                );
            }
            Err(e) => {
                eprintln!("[bench_regress] scale smoke failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = &args.trace_out {
        let json = chrome_trace_json(&run.traces);
        if let Err(e) = write_atomic(path, &json) {
            eprintln!("[bench_regress] cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "[bench_regress] wrote {} span traces to {}",
            run.traces.len(),
            path.display()
        );
    }

    let out_path = args.out_dir.join(format!("BENCH_{}.json", args.label));
    if let Err(e) = write_atomic(&out_path, &run.result.to_json()) {
        eprintln!("[bench_regress] cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    eprintln!("[bench_regress] wrote {}", out_path.display());

    // Per-scenario time-series artifact: points and anomaly records for
    // each node scenario (the in-run gate already pinned deterministic
    // anomalies to zero, or we would not be here).
    let series_path = args.out_dir.join(format!("series_{}.json", args.label));
    if let Err(e) = write_atomic(&series_path, &series_json(&run.result, &run.series)) {
        eprintln!("[bench_regress] cannot write {}: {e}", series_path.display());
        return ExitCode::from(2);
    }
    eprintln!("[bench_regress] wrote {}", series_path.display());

    if args.write_baseline {
        if let Err(e) = write_atomic(&args.baseline, &run.result.to_json()) {
            eprintln!(
                "[bench_regress] cannot write baseline {}: {e}",
                args.baseline.display()
            );
            return ExitCode::from(2);
        }
        eprintln!("[bench_regress] baseline updated: {}", args.baseline.display());
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "[bench_regress] no baseline at {} ({e}); run with --write-baseline first",
                args.baseline.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match BenchResult::from_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "[bench_regress] bad baseline {}: {e}",
                args.baseline.display()
            );
            return ExitCode::from(2);
        }
    };
    if baseline.profile != run.result.profile {
        eprintln!(
            "[bench_regress] baseline profile {:?} != current profile {:?}; refusing to compare",
            baseline.profile, run.result.profile
        );
        return ExitCode::from(2);
    }

    let deltas = compare(&baseline, &run.result, args.tolerance_scale);
    let mut table = String::new();
    let regressed = render_comparison(&deltas, &mut table);
    println!("{table}");
    if regressed {
        eprintln!("[bench_regress] REGRESSION detected vs {}", args.baseline.display());
        ExitCode::FAILURE
    } else {
        eprintln!("[bench_regress] ok vs {}", args.baseline.display());
        ExitCode::SUCCESS
    }
}
