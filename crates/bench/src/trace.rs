//! Operation-trace driving: mixed query/insert streams with per-batch
//! latency percentiles.
//!
//! The paper reports means over large batches; serving systems also care
//! about tails. This driver synthesizes a deterministic operation trace
//! (query batches interleaved with insert bursts, optionally Zipf-skewed),
//! replays it against one compute node, and reports p50/p95/p99 of the
//! per-batch modeled latency.

use dhnsw::{ComputeNode, Error, QueryTrace};
use vecsim::{gen, Dataset};

/// One operation in a trace.
#[derive(Debug, Clone)]
pub enum Op {
    /// A query batch (the dataset rows to use as queries).
    QueryBatch(Dataset),
    /// An insert burst.
    InsertBurst(Dataset),
}

/// Specification of a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Query batches in the trace.
    pub batches: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Insert bursts interleaved (one after every `batches / bursts`
    /// query batches; 0 = read-only trace).
    pub bursts: usize,
    /// Inserts per burst.
    pub burst_size: usize,
    /// Zipf skew over base vectors for query popularity (0 = uniform).
    pub skew: f64,
    /// Perturbation noise fraction.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            batches: 10,
            batch_size: 64,
            bursts: 2,
            burst_size: 8,
            skew: 0.0,
            noise: 0.03,
            seed: 0x7ACE,
        }
    }
}

impl TraceSpec {
    /// Materializes the trace against a base dataset.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn synthesize(&self, base: &Dataset) -> Result<Vec<Op>, vecsim::Error> {
        let mut ops = Vec::new();
        let burst_every = if self.bursts == 0 {
            usize::MAX
        } else {
            self.batches.div_ceil(self.bursts).max(1)
        };
        for b in 0..self.batches {
            let queries = if self.skew > 0.0 {
                gen::zipf_queries(
                    base,
                    self.batch_size,
                    self.noise,
                    self.skew,
                    self.seed.wrapping_add(b as u64),
                )?
            } else {
                gen::perturbed_queries(
                    base,
                    self.batch_size,
                    self.noise,
                    self.seed.wrapping_add(b as u64),
                )?
            };
            ops.push(Op::QueryBatch(queries));
            if (b + 1) % burst_every == 0 {
                let inserts = gen::perturbed_queries(
                    base,
                    self.burst_size,
                    self.noise / 2.0,
                    self.seed.wrapping_add(1_000 + b as u64),
                )?;
                ops.push(Op::InsertBurst(inserts));
            }
        }
        Ok(ops)
    }
}

/// Outcome of replaying a trace.
///
/// Per-batch observations are kept as the core telemetry type
/// ([`dhnsw::QueryTrace`]), built locally from each batch's report so a
/// concurrent reader of the global trace ring cannot perturb the bench.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// One structured trace per query batch, in trace order.
    pub batch_traces: Vec<QueryTrace>,
    /// Total queries answered.
    pub queries: usize,
    /// Total vectors inserted (accepted).
    pub inserts: usize,
    /// Inserts rejected with overflow-full.
    pub insert_rejects: usize,
    /// Total network round trips.
    pub round_trips: u64,
}

/// The modeled latency of one batch: network virtual time plus compute
/// wall time, µs.
fn modeled_us(t: &QueryTrace) -> f64 {
    t.meta_us + t.network_us + t.sub_us + t.materialize_us
}

impl TraceReport {
    /// Per-batch modeled latencies (network virtual + compute wall), µs,
    /// in trace order.
    pub fn batch_latencies_us(&self) -> Vec<f64> {
        self.batch_traces.iter().map(modeled_us).collect()
    }

    /// The `q`-th latency percentile (0.0–1.0) over query batches, µs.
    /// Returns `0.0` for an empty trace.
    pub fn percentile_us(&self, q: f64) -> f64 {
        let mut sorted = self.batch_latencies_us();
        if sorted.is_empty() {
            return 0.0;
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[rank]
    }

    /// Mean per-batch latency, µs.
    pub fn mean_us(&self) -> f64 {
        if self.batch_traces.is_empty() {
            return 0.0;
        }
        self.batch_latencies_us().iter().sum::<f64>() / self.batch_traces.len() as f64
    }

    /// Total bytes read from remote memory across all batches.
    pub fn bytes_read(&self) -> u64 {
        self.batch_traces.iter().map(|t| t.bytes_read).sum()
    }

    /// Total doorbell batches issued across all batches.
    pub fn doorbell_batches(&self) -> u64 {
        self.batch_traces
            .iter()
            .map(|t| u64::from(t.doorbell_batches))
            .sum()
    }

    /// Cache hits over unique-cluster demand across the trace, in
    /// `[0, 1]`; 0.0 for an empty trace.
    pub fn cache_hit_rate(&self) -> f64 {
        let unique: u64 = self
            .batch_traces
            .iter()
            .map(|t| u64::from(t.unique_clusters))
            .sum();
        if unique == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .batch_traces
            .iter()
            .map(|t| u64::from(t.cache_hits))
            .sum();
        hits as f64 / unique as f64
    }
}

/// Replays `ops` against `node`, collecting per-batch latencies.
///
/// # Errors
///
/// Propagates engine errors (overflow-full inserts are counted, not
/// raised).
pub fn replay(node: &ComputeNode, ops: &[Op], k: usize, ef: usize) -> Result<TraceReport, Error> {
    let mut report = TraceReport {
        batch_traces: Vec::new(),
        queries: 0,
        inserts: 0,
        insert_rejects: 0,
        round_trips: 0,
    };
    for op in ops {
        match op {
            Op::QueryBatch(queries) => {
                let stats0 = node.queue_pair().stats().snapshot();
                let (_, batch) = node.query_batch(queries, k, ef)?;
                let delta = node.queue_pair().stats().snapshot() - stats0;
                report.batch_traces.push(QueryTrace {
                    mode: node.mode().label(),
                    queries: batch.queries as u32,
                    k: k as u32,
                    ef: ef as u32,
                    fanout: node.config().fanout() as u32,
                    raw_cluster_demand: batch.raw_cluster_demand as u32,
                    unique_clusters: batch.unique_clusters as u32,
                    cache_hits: batch.cache_hits as u32,
                    clusters_loaded: batch.clusters_loaded as u32,
                    doorbell_batches: delta.doorbell_batches as u32,
                    round_trips: batch.round_trips,
                    bytes_read: batch.bytes_read,
                    meta_us: batch.breakdown.meta_hnsw_us,
                    network_us: batch.breakdown.network_us,
                    sub_us: batch.breakdown.sub_hnsw_us,
                    materialize_us: batch.breakdown.materialize_us,
                    total_us: batch.breakdown.total_us(),
                    cause_bytes: batch.ledger.cause_bytes,
                });
                report.queries += batch.queries;
                report.round_trips += batch.round_trips;
            }
            Op::InsertBurst(vectors) => {
                for r in node.insert_batch(vectors)? {
                    match r {
                        Ok(_) => report.inserts += 1,
                        Err(Error::OverflowFull { .. }) => report.insert_rejects += 1,
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhnsw::{DHnswConfig, SearchMode, VectorStore};

    fn setup() -> (Dataset, VectorStore) {
        let data = gen::sift_like(600, 51).unwrap();
        let store = VectorStore::build(
            data.clone(),
            &DHnswConfig::small().with_overflow_slots(64),
        )
        .unwrap();
        (data, store)
    }

    #[test]
    fn synthesize_produces_expected_op_mix() {
        let (data, _) = setup();
        let spec = TraceSpec {
            batches: 6,
            bursts: 2,
            ..Default::default()
        };
        let ops = spec.synthesize(&data).unwrap();
        let queries = ops.iter().filter(|o| matches!(o, Op::QueryBatch(_))).count();
        let bursts = ops.iter().filter(|o| matches!(o, Op::InsertBurst(_))).count();
        assert_eq!(queries, 6);
        assert_eq!(bursts, 2);
    }

    #[test]
    fn read_only_trace_has_no_bursts() {
        let (data, _) = setup();
        let ops = TraceSpec {
            bursts: 0,
            ..Default::default()
        }
        .synthesize(&data)
        .unwrap();
        assert!(ops.iter().all(|o| matches!(o, Op::QueryBatch(_))));
    }

    #[test]
    fn replay_accounts_for_everything() {
        let (data, store) = setup();
        let node = store.connect(SearchMode::Full).unwrap();
        let spec = TraceSpec {
            batches: 4,
            batch_size: 10,
            bursts: 2,
            burst_size: 3,
            ..Default::default()
        };
        let ops = spec.synthesize(&data).unwrap();
        let report = replay(&node, &ops, 5, 32).unwrap();
        assert_eq!(report.queries, 40);
        assert_eq!(report.inserts + report.insert_rejects, 6);
        assert_eq!(report.batch_traces.len(), 4);
        assert!(report.round_trips > 0);
        assert!(report.mean_us() > 0.0);
        assert!(report.bytes_read() > 0);
        let t = &report.batch_traces[0];
        assert_eq!(t.mode, "full");
        assert_eq!((t.queries, t.k, t.ef), (10, 5, 32));
        assert!(t.unique_clusters > 0);
    }

    fn trace_with_network_us(us: f64) -> QueryTrace {
        QueryTrace {
            mode: "full",
            queries: 1,
            k: 1,
            ef: 1,
            fanout: 1,
            raw_cluster_demand: 0,
            unique_clusters: 0,
            cache_hits: 0,
            clusters_loaded: 0,
            doorbell_batches: 0,
            round_trips: 0,
            bytes_read: 0,
            meta_us: 0.0,
            network_us: us,
            sub_us: 0.0,
            materialize_us: 0.0,
            total_us: us,
            cause_bytes: [0; rdma_sim::READ_CAUSES],
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let report = TraceReport {
            batch_traces: [5.0, 1.0, 9.0, 3.0, 7.0]
                .iter()
                .map(|&us| trace_with_network_us(us))
                .collect(),
            queries: 0,
            inserts: 0,
            insert_rejects: 0,
            round_trips: 0,
        };
        assert_eq!(report.percentile_us(0.0), 1.0);
        assert_eq!(report.percentile_us(0.5), 5.0);
        assert_eq!(report.percentile_us(1.0), 9.0);
        assert!(report.percentile_us(0.95) >= report.percentile_us(0.5));
    }

    #[test]
    fn empty_report_is_zeroed() {
        let report = TraceReport {
            batch_traces: vec![],
            queries: 0,
            inserts: 0,
            insert_rejects: 0,
            round_trips: 0,
        };
        assert_eq!(report.percentile_us(0.5), 0.0);
        assert_eq!(report.mean_us(), 0.0);
        assert_eq!(report.cache_hit_rate(), 0.0);
        assert_eq!(report.doorbell_batches(), 0);
    }

    #[test]
    fn skewed_trace_gets_better_cache_behaviour() {
        let data = gen::sift_like(2_000, 52).unwrap();
        let store = VectorStore::build(data.clone(), &DHnswConfig::small()).unwrap();
        let run = |skew: f64| {
            let node = store.connect(SearchMode::Full).unwrap();
            let ops = TraceSpec {
                batches: 6,
                batch_size: 40,
                bursts: 0,
                skew,
                ..Default::default()
            }
            .synthesize(&data)
            .unwrap();
            let report = replay(&node, &ops, 5, 16).unwrap();
            report.round_trips
        };
        let uniform_trips = run(0.0);
        let skewed_trips = run(1.5);
        assert!(
            skewed_trips <= uniform_trips,
            "skewed {skewed_trips} vs uniform {uniform_trips}"
        );
    }
}
