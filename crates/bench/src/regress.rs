//! Benchmark-regression harness: pinned-seed workloads, schema-versioned
//! `BENCH_<label>.json` files, and tolerance-gated comparison against a
//! committed baseline.
//!
//! The harness runs a deterministic synthetic workload across
//! {single-node, sharded} × {cold cache, warm cache} and reduces each
//! scenario to a flat set of metrics: per-batch latency percentiles,
//! recall@10, network bytes, doorbell batches, and cache hit rate.
//! Deterministic metrics (bytes, doorbells, recall) get tight tolerances;
//! wall-clock latencies get generous ones. `bench_regress` (the binary)
//! exits non-zero when any metric regresses beyond its tolerance, which
//! is what lets `scripts/check.sh` gate on a committed
//! `results/BENCH_baseline.json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use dhnsw::telemetry::Telemetry;
use dhnsw::{
    AnomalyRecord, DHnswConfig, FinishedTrace, QuantizeMode, QueryTrace, SearchMode, SeriesPoint,
    ShardedStore, VectorStore,
};
use vecsim::{gen, ground_truth, recall, Dataset, Metric};

use crate::trace::TraceReport;

/// Version stamped into every `BENCH_*.json`; bump when the metric set or
/// envelope changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// A pinned benchmark workload.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Profile name recorded in the JSON envelope (`smoke` / `full`).
    pub name: &'static str,
    /// Base vectors.
    pub n: usize,
    /// Query batches per pass.
    pub batches: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Shards in the sharded scenarios.
    pub shards: usize,
    /// Neighbors requested per query.
    pub k: usize,
    /// Sub-HNSW beam width.
    pub ef: usize,
    /// RNG seed for data and queries.
    pub seed: u64,
}

impl Profile {
    /// Small profile for CI gating (a few seconds end to end).
    pub fn smoke() -> Self {
        Profile {
            name: "smoke",
            n: 3_000,
            batches: 6,
            batch_size: 32,
            shards: 2,
            k: 10,
            ef: 32,
            seed: 0xBE7C,
        }
    }

    /// Larger profile for local investigation.
    pub fn full() -> Self {
        Profile {
            name: "full",
            n: 20_000,
            batches: 16,
            batch_size: 64,
            shards: 4,
            k: 10,
            ef: 48,
            seed: 0xBE7C,
        }
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }

    /// The store configuration the profile benches under.
    pub fn config(&self) -> DHnswConfig {
        let reps = (self.n / 150).clamp(8, 64);
        DHnswConfig::small().with_representatives(reps)
    }
}

/// One run's measurements: the envelope of a `BENCH_<label>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Free-form label (`baseline`, a branch name, ...).
    pub label: String,
    /// Profile name the metrics were measured under.
    pub profile: String,
    /// Workload seed.
    pub seed: u64,
    /// Flat dotted-key metrics (`scenario.metric` → value).
    pub metrics: BTreeMap<String, f64>,
}

/// Everything a harness run produces.
#[derive(Debug)]
pub struct RunOutput {
    /// The measurements.
    pub result: BenchResult,
    /// Finished span traces from the single-node scenario (empty unless
    /// span capture was requested).
    pub traces: Vec<FinishedTrace>,
    /// Per-scenario time series (one recorder tick per batch, synthetic
    /// one-second timestamps) for the node scenarios. Sharded scenarios
    /// have no entry: their shards share the global hub, so a
    /// per-scenario recorder cannot be isolated there.
    pub series: BTreeMap<String, ScenarioSeries>,
}

/// One scenario's recorded time series: the derived points plus any
/// anomaly records the online detector fired during the pass.
#[derive(Debug, Clone, Default)]
pub struct ScenarioSeries {
    /// Derived per-batch points, oldest first.
    pub points: Vec<SeriesPoint>,
    /// Anomaly records fired during the pass.
    pub anomalies: Vec<AnomalyRecord>,
}

/// Renders the per-scenario series of a run as the
/// `results/series_<label>.json` artifact.
pub fn series_json(result: &BenchResult, series: &BTreeMap<String, ScenarioSeries>) -> String {
    let scenarios = series
        .iter()
        .map(|(name, s)| {
            let points = s
                .points
                .iter()
                .map(|p| p.to_json())
                .collect::<Vec<_>>()
                .join(", ");
            let anomalies = s
                .anomalies
                .iter()
                .map(|a| a.to_json())
                .collect::<Vec<_>>()
                .join(", ");
            format!("\"{name}\": {{\"points\": [{points}], \"anomalies\": [{anomalies}]}}")
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"schema_version\": {SCHEMA_VERSION}, \"label\": \"{}\", \"profile\": \"{}\", \
         \"seed\": {}, \"scenarios\": {{{scenarios}}}}}\n",
        escape_json(&result.label),
        escape_json(&result.profile),
        result.seed,
    )
}

fn batch_queries(data: &Dataset, profile: &Profile) -> Result<Vec<Dataset>, vecsim::Error> {
    (0..profile.batches)
        .map(|b| {
            gen::perturbed_queries(
                data,
                profile.batch_size,
                0.03,
                profile.seed.wrapping_add(100 + b as u64),
            )
        })
        .collect()
}

/// Per-pass accumulator: the per-batch traces plus recall.
struct PassStats {
    report: TraceReport,
    recall_sum: f64,
}

impl PassStats {
    fn new() -> Self {
        PassStats {
            report: TraceReport {
                batch_traces: Vec::new(),
                queries: 0,
                inserts: 0,
                insert_rejects: 0,
                round_trips: 0,
            },
            recall_sum: 0.0,
        }
    }

    fn mean_recall(&self) -> f64 {
        if self.report.batch_traces.is_empty() {
            0.0
        } else {
            self.recall_sum / self.report.batch_traces.len() as f64
        }
    }

    fn emit(&self, scenario: &str, metrics: &mut BTreeMap<String, f64>) {
        metrics.insert(format!("{scenario}.p50_us"), self.report.percentile_us(0.50));
        metrics.insert(format!("{scenario}.p95_us"), self.report.percentile_us(0.95));
        metrics.insert(format!("{scenario}.p99_us"), self.report.percentile_us(0.99));
        metrics.insert(format!("{scenario}.recall_at_10"), self.mean_recall());
        metrics.insert(
            format!("{scenario}.network_bytes"),
            self.report.bytes_read() as f64,
        );
        metrics.insert(
            format!("{scenario}.doorbell_batches"),
            self.report.doorbell_batches() as f64,
        );
        metrics.insert(
            format!("{scenario}.cache_hit_rate"),
            self.report.cache_hit_rate(),
        );
        // Exposed (virtual) network time summed over the pass: the
        // deterministic component of latency, and the one micro-batch
        // pipelining provably shrinks on cold grids.
        metrics.insert(
            format!("{scenario}.network_us"),
            self.report
                .batch_traces
                .iter()
                .map(|t| t.network_us)
                .sum::<f64>(),
        );
        // Byte provenance: the pass's read bytes attributed by cause.
        // The harness gates on these tiling `network_bytes` exactly, so
        // a regression here means a read path lost its attribution.
        let mut cause_bytes = [0u64; rdma_sim::READ_CAUSES];
        for t in &self.report.batch_traces {
            for (sum, &b) in cause_bytes.iter_mut().zip(&t.cause_bytes) {
                *sum += b;
            }
        }
        for (cause, &bytes) in dhnsw::ReadCause::ALL.iter().zip(&cause_bytes) {
            metrics.insert(
                format!("{scenario}.cause_bytes.{}", cause.as_str()),
                bytes as f64,
            );
        }
    }
}

/// The shared workload grid one node scenario runs against: query
/// batches, their exact ground truth, and the profile knobs.
struct PassGrid<'a> {
    batches: &'a [Dataset],
    truths: &'a [Vec<Vec<vecsim::Neighbor>>],
    profile: &'a Profile,
    fanout: u32,
}

/// Runs consecutive passes of the whole batch grid against one node
/// (first pass cold, later passes warm), emitting one scenario label per
/// pass.
fn run_node_passes(
    node: &dhnsw::ComputeNode,
    grid: &PassGrid<'_>,
    scenarios: &[&str],
    telemetry: &Telemetry,
    metrics: &mut BTreeMap<String, f64>,
    series_out: &mut BTreeMap<String, ScenarioSeries>,
) -> Result<(), Box<dyn std::error::Error>> {
    let PassGrid {
        batches,
        truths,
        profile,
        fanout,
    } = *grid;
    for scenario in scenarios {
        let mut stats = PassStats::new();
        // Each pass gets a fresh recorder window: clear, baseline tick,
        // then one tick per batch, one virtual second apart. Timestamps
        // are synthetic so the recorded rates (and the zero-anomaly
        // gate below) are exactly reproducible under a pinned seed.
        telemetry.series().clear();
        let mut t_us = 0u64;
        node.sample_series(t_us);
        for (b, queries) in batches.iter().enumerate() {
            let stats0 = node.queue_pair().stats().snapshot();
            let (results, report) = node.query_batch(queries, profile.k, profile.ef)?;
            let delta = node.queue_pair().stats().snapshot() - stats0;
            let ids: Vec<Vec<u32>> = results
                .iter()
                .map(|r| r.iter().map(|n| n.id).collect())
                .collect();
            stats.recall_sum += recall::mean_recall(&ids, &truths[b]);
            stats.report.batch_traces.push(QueryTrace {
                mode: node.mode().label(),
                queries: report.queries as u32,
                k: profile.k as u32,
                ef: profile.ef as u32,
                fanout,
                raw_cluster_demand: report.raw_cluster_demand as u32,
                unique_clusters: report.unique_clusters as u32,
                cache_hits: report.cache_hits as u32,
                clusters_loaded: report.clusters_loaded as u32,
                doorbell_batches: delta.doorbell_batches as u32,
                round_trips: report.round_trips,
                bytes_read: report.bytes_read,
                meta_us: report.breakdown.meta_hnsw_us,
                network_us: report.breakdown.network_us,
                sub_us: report.breakdown.sub_hnsw_us,
                materialize_us: report.breakdown.materialize_us,
                total_us: report.breakdown.total_us(),
                cause_bytes: report.ledger.cause_bytes,
            });
            t_us += 1_000_000;
            node.sample_series(t_us);
        }
        stats.emit(scenario, metrics);
        let pass = ScenarioSeries {
            points: telemetry.series().points(),
            anomalies: telemetry.series().anomalies(),
        };
        emit_series_metrics(scenario, &pass, metrics)?;
        series_out.insert(scenario.to_string(), pass);
    }
    Ok(())
}

/// Emits `{scenario}.series_*` stability metrics from one pass's
/// recorded series and hard-gates the deterministic anomaly count at
/// zero: under a pinned seed with no fault injection, the online
/// detector firing on a count-derived series means the workload itself
/// changed shape, not that the machine was noisy.
fn emit_series_metrics(
    scenario: &str,
    pass: &ScenarioSeries,
    metrics: &mut BTreeMap<String, f64>,
) -> Result<(), Box<dyn std::error::Error>> {
    let deterministic = pass
        .anomalies
        .iter()
        .filter(|a| a.deterministic)
        .count();
    if deterministic > 0 {
        let offenders: Vec<&str> = pass
            .anomalies
            .iter()
            .filter(|a| a.deterministic)
            .map(|a| a.series)
            .collect();
        return Err(format!(
            "series gate: scenario {scenario} fired {deterministic} deterministic \
             anomalies under a pinned seed ({offenders:?})"
        )
        .into());
    }
    metrics.insert(
        format!("{scenario}.series_points"),
        pass.points.len() as f64,
    );
    metrics.insert(format!("{scenario}.series_anomalies"), 0.0);
    metrics.insert(
        format!("{scenario}.series_anomalies_wallclock"),
        (pass.anomalies.len() - deterministic) as f64,
    );
    // Relative spread of windowed p99 across active points. Wall-clock
    // derived, so the comparison band is wide; the gate pins down gross
    // instability (e.g. one batch 10x slower than its siblings), not
    // scheduler jitter.
    let p99s: Vec<f64> = pass
        .points
        .iter()
        .filter(|p| p.window_queries > 0)
        .map(|p| p.p99_us)
        .collect();
    let drift = match (
        p99s.iter().cloned().fold(f64::INFINITY, f64::min),
        p99s.iter().cloned().fold(0.0f64, f64::max),
    ) {
        (min, max) if max > 0.0 => (max - min) / max,
        _ => 0.0,
    };
    metrics.insert(format!("{scenario}.series_p99_drift"), drift);
    Ok(())
}

/// Emits `{prefix}.tail_*` metrics from one hub's tail-anatomy state
/// and enforces the bucket-exemplar invariant: every latency-histogram
/// bucket that counted a sample must carry an exemplar. Both are filed
/// under the same sample value by construction, so a hole means the
/// exemplar path dropped a batch the histogram saw.
fn emit_tail_metrics(
    telemetry: &Telemetry,
    prefix: &str,
    metrics: &mut BTreeMap<String, f64>,
) -> Result<(), Box<dyn std::error::Error>> {
    let ex = telemetry.exemplars();
    // Verdict of the slowest retained batch vs the reservoir baseline,
    // as a stable index (0 = nominal ... 6 = compute_bound). The index
    // is wall-clock sensitive, so the comparison band is wide; what the
    // gate actually pins down is that a verdict exists at all.
    let verdict = ex
        .diagnose_slowest()
        .map_or(99, |(_, v, _)| dhnsw::verdict_index(v));
    metrics.insert(format!("{prefix}.tail_verdict"), verdict as f64);
    metrics.insert(
        format!("{prefix}.tail_exemplars_recorded"),
        ex.recorded() as f64,
    );
    metrics.insert(
        format!("{prefix}.tail_exemplar_occupancy"),
        ex.occupancy() as f64,
    );
    let hist = telemetry.histogram(
        "dhnsw_query_latency_us",
        "Per-query latency in microseconds (CPU wall + exposed network stall, batch time / batch size)",
        &[("mode", "full")],
    );
    let buckets = ex.bucket_exemplars();
    let mut prev = 0u64;
    for (i, (bound, cum)) in hist.cumulative_buckets().iter().enumerate() {
        let count = cum - prev;
        prev = *cum;
        if count > 0 && buckets[i].is_none() {
            return Err(format!(
                "tail gate: {prefix} latency bucket le={bound} holds {count} sample(s) \
                 but no exemplar"
            )
            .into());
        }
    }
    Ok(())
}

/// Runs the full scenario grid for `profile`.
///
/// When `capture_spans` is set, span tracing is enabled on the
/// single-node scenario and its finished per-batch traces are returned
/// for Chrome trace export.
///
/// # Errors
///
/// Propagates build and query errors.
pub fn run_profile(
    profile: &Profile,
    label: &str,
    capture_spans: bool,
) -> Result<RunOutput, Box<dyn std::error::Error>> {
    let data = gen::sift_like(profile.n, profile.seed)?;
    let batches = batch_queries(&data, profile)?;
    let truths: Vec<_> = batches
        .iter()
        .map(|q| ground_truth::exact_batch(&data, q, profile.k, Metric::L2))
        .collect();
    let config = profile.config();
    let mut metrics = BTreeMap::new();
    let mut traces = Vec::new();
    let mut series = BTreeMap::new();

    // Single-node scenarios: one connection, pass 1 cold, pass 2 warm.
    {
        let store = VectorStore::build(data.clone(), &config)?;
        let telemetry = Arc::new(Telemetry::with_trace_capacity(64));
        telemetry
            .spans()
            .set_enabled(capture_spans);
        let node = store.connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))?;
        // Pin the sequential schedule: the DHNSW_PIPELINE_DEPTH env knob
        // must not turn the baseline pass into a pipelined one (it would
        // erase the pipeline gate's contrast and shift doorbell counts).
        node.set_pipeline_depth(1);
        run_node_passes(
            &node,
            &PassGrid {
                batches: &batches,
                truths: &truths,
                profile,
                fanout: config.fanout() as u32,
            },
            &["single_cold", "single_warm"],
            &telemetry,
            &mut metrics,
            &mut series,
        )?;
        // Health snapshot of the warmed single node. Keys absent from a
        // baseline are never treated as regressions, so adding these is
        // backward compatible with old BENCH_*.json files.
        let health = node.health_report()?;
        metrics.insert(
            "health.overflow_occupancy_max".into(),
            health.layout.max_group_occupancy,
        );
        metrics.insert(
            "health.region_utilization".into(),
            health.layout.utilization,
        );
        metrics.insert("health.fragmentation".into(), health.layout.fragmentation);
        metrics.insert("health.partition_gini".into(), health.partition_skew.gini);
        metrics.insert("health.route_gini".into(), health.route_skew.gini);
        metrics.insert("health.cache_hit_rate".into(), health.cache.hit_rate);
        // Tail anatomy of the single-node grid, read from the block's
        // isolated hub so other scenarios cannot pollute the store.
        emit_tail_metrics(&telemetry, "single", &mut metrics)?;
        if capture_spans {
            traces = telemetry.spans().recent();
        }
    }

    // Pipelined scenarios: a fresh store and connection running the same
    // grid with micro-batch pipelining enabled. Recall, network bytes,
    // and doorbell counts must match the sequential single-node pass
    // exactly (pipelining changes only the schedule); the latency
    // percentiles are what the pipeline label is gated on.
    {
        let store = VectorStore::build(data.clone(), &config)?;
        // Own hub for the same isolation reason as the single-node pass:
        // the tail metrics below must describe only this scenario.
        let pipe_telemetry = Arc::new(Telemetry::with_trace_capacity(64));
        let node =
            store.connect_with_telemetry(SearchMode::Full, Arc::clone(&pipe_telemetry))?;
        node.set_pipeline_depth(2);
        run_node_passes(
            &node,
            &PassGrid {
                batches: &batches,
                truths: &truths,
                profile,
                fanout: config.fanout() as u32,
            },
            &["pipeline_cold", "pipeline_warm"],
            &pipe_telemetry,
            &mut metrics,
            &mut series,
        )?;
        // Hard gate, independent of the committed baseline: on the cold
        // grid the pipelined schedule must expose strictly less virtual
        // network time than the sequential pass while moving identical
        // bytes at identical recall. Deterministic per profile seed —
        // wall-clock percentiles stay band-gated instead because a
        // loaded box drowns the same win in scheduler noise.
        for metric in ["network_bytes", "recall_at_10"] {
            let seq = metrics[&format!("single_cold.{metric}")];
            let pipe = metrics[&format!("pipeline_cold.{metric}")];
            if seq != pipe {
                return Err(format!(
                    "pipeline gate: {metric} diverged (sequential {seq} vs pipelined {pipe})"
                )
                .into());
            }
        }
        let seq_net = metrics["single_cold.network_us"];
        let pipe_net = metrics["pipeline_cold.network_us"];
        if pipe_net >= seq_net {
            return Err(format!(
                "pipeline gate: exposed network time did not shrink \
                 (sequential {seq_net} us vs pipelined {pipe_net} us)"
            )
            .into());
        }
        emit_tail_metrics(&pipe_telemetry, "pipeline", &mut metrics)?;
    }

    // Quantized scenarios: the same grid against a store whose clusters
    // also carry an SQ8 copy, which the engine then prefers on the wire
    // (compressed sub-search + targeted exact rerank of the survivors).
    {
        let sq_config = config.clone().with_quantize_mode(QuantizeMode::Sq8);
        let store = VectorStore::build(data.clone(), &sq_config)?;
        let sq_telemetry = Arc::new(Telemetry::with_trace_capacity(64));
        let node =
            store.connect_with_telemetry(SearchMode::Full, Arc::clone(&sq_telemetry))?;
        node.set_pipeline_depth(1);
        run_node_passes(
            &node,
            &PassGrid {
                batches: &batches,
                truths: &truths,
                profile,
                fanout: sq_config.fanout() as u32,
            },
            &["sq8_cold", "sq8_warm"],
            &sq_telemetry,
            &mut metrics,
            &mut series,
        )?;
        // Hard gates, independent of the committed baseline. First the
        // whole point of the compressed wire format: the cold grid must
        // move less than 0.30x the uncompressed cold pass's bytes —
        // u8 codes are exactly 4x smaller than f32 rows, and the rerank
        // reads plus quantization params must not eat the win.
        let sq_bytes = metrics["sq8_cold.network_bytes"];
        let full_bytes = metrics["single_cold.network_bytes"];
        if sq_bytes >= 0.30 * full_bytes {
            return Err(format!(
                "sq8 gate: compressed cold pass moved {sq_bytes} bytes, \
                 not under 0.30x of the uncompressed {full_bytes}"
            )
            .into());
        }
        // Second, exact rerank must close the quality gap: recall@10
        // after rerank stays within 0.005 of full precision.
        let sq_recall = metrics["sq8_cold.recall_at_10"];
        let full_recall = metrics["single_cold.recall_at_10"];
        if sq_recall + 0.005 < full_recall {
            return Err(format!(
                "sq8 gate: recall after rerank {sq_recall} fell more than \
                 0.005 below the uncompressed pass's {full_recall}"
            )
            .into());
        }
        // Third, the rerank reads must exist and carry their own cause:
        // zero rerank bytes means the engine silently answered from
        // quantized distances alone.
        if metrics["sq8_cold.cause_bytes.rerank"] <= 0.0 {
            return Err("sq8 gate: cold pass recorded no rerank bytes".into());
        }
        emit_tail_metrics(&sq_telemetry, "sq8", &mut metrics)?;
    }

    // Sharded scenarios: one session over `shards` shards; per-batch
    // latency is the slowest shard (shards overlap in a real deployment),
    // volume metrics are summed across shards.
    {
        let sharded = ShardedStore::build(&data, &config, profile.shards)?;
        let session = sharded.connect(SearchMode::Full)?;
        // Same pinning as the single-node pass: sharded scenarios are
        // sequential per shard regardless of the env knob.
        session.set_pipeline_depth(1);
        for scenario in ["sharded_cold", "sharded_warm"] {
            let mut stats = PassStats::new();
            for (b, queries) in batches.iter().enumerate() {
                let stats0: Vec<_> = (0..session.shards())
                    .map(|s| session.node(s).queue_pair().stats().snapshot())
                    .collect();
                let (results, reports) = session.query_batch(queries, profile.k, profile.ef)?;
                let doorbells: u64 = (0..session.shards())
                    .map(|s| {
                        (session.node(s).queue_pair().stats().snapshot() - stats0[s])
                            .doorbell_batches
                    })
                    .sum();
                let ids: Vec<Vec<u32>> = results
                    .iter()
                    .map(|r| {
                        r.iter()
                            .filter_map(|n| sharded.original_row(n.id))
                            .collect()
                    })
                    .collect();
                stats.recall_sum += recall::mean_recall(&ids, &truths[b]);
                let slowest = reports
                    .iter()
                    .max_by(|a, b| {
                        a.breakdown.total_us().total_cmp(&b.breakdown.total_us())
                    })
                    .cloned()
                    .unwrap_or_default();
                let sum_u32 = |f: fn(&dhnsw::BatchReport) -> usize| -> u32 {
                    reports.iter().map(f).sum::<usize>() as u32
                };
                stats.report.batch_traces.push(QueryTrace {
                    mode: "full",
                    queries: queries.len() as u32,
                    k: profile.k as u32,
                    ef: profile.ef as u32,
                    fanout: config.fanout() as u32,
                    raw_cluster_demand: sum_u32(|r| r.raw_cluster_demand),
                    unique_clusters: sum_u32(|r| r.unique_clusters),
                    cache_hits: sum_u32(|r| r.cache_hits),
                    clusters_loaded: sum_u32(|r| r.clusters_loaded),
                    doorbell_batches: doorbells as u32,
                    round_trips: reports.iter().map(|r| r.round_trips).sum(),
                    bytes_read: reports.iter().map(|r| r.bytes_read).sum(),
                    meta_us: slowest.breakdown.meta_hnsw_us,
                    network_us: slowest.breakdown.network_us,
                    sub_us: slowest.breakdown.sub_hnsw_us,
                    materialize_us: slowest.breakdown.materialize_us,
                    total_us: slowest.breakdown.total_us(),
                    cause_bytes: {
                        let mut sum = [0u64; rdma_sim::READ_CAUSES];
                        for r in &reports {
                            for (s, &b) in sum.iter_mut().zip(&r.ledger.cause_bytes) {
                                *s += b;
                            }
                        }
                        sum
                    },
                });
            }
            stats.emit(scenario, &mut metrics);
        }
    }

    // Provenance hard gates, independent of the committed baseline.
    // First: on every scenario the per-cause bytes must tile the byte
    // counter exactly — causes partition `bytes_read` by construction,
    // so any daylight between the sums means a read path lost (or
    // double-counted) its attribution.
    let scenario_names = [
        "single_cold",
        "single_warm",
        "pipeline_cold",
        "pipeline_warm",
        "sq8_cold",
        "sq8_warm",
        "sharded_cold",
        "sharded_warm",
    ];
    for scenario in scenario_names {
        let total = metrics[&format!("{scenario}.network_bytes")];
        let tiled: f64 = dhnsw::ReadCause::ALL
            .iter()
            .map(|c| metrics[&format!("{scenario}.cause_bytes.{}", c.as_str())])
            .sum();
        if tiled != total {
            return Err(format!(
                "provenance gate: {scenario} cause bytes do not tile network_bytes \
                 (sum of causes {tiled} vs total {total})"
            )
            .into());
        }
    }
    // Second: shape checks on where the bytes land. A cold pass is
    // stage-load work by definition; version-check traffic (the tiny
    // per-cluster version slots) rides every Full-mode pass, warm or
    // cold. (With the profile's partial cache the warm pass still
    // reloads evicted clusters, so stage loads legitimately dominate
    // there too — only a full-capacity cache shifts a warm pass to
    // version checks.)
    let cold_stage = metrics["single_cold.cause_bytes.stage_load"];
    let cold_total = metrics["single_cold.network_bytes"];
    if !(cold_stage > 0.0 && cold_stage >= 0.5 * cold_total) {
        return Err(format!(
            "provenance gate: cold pass not stage-load dominated \
             ({cold_stage} of {cold_total} bytes)"
        )
        .into());
    }
    for scenario in ["single_cold", "single_warm"] {
        let vc = metrics[&format!("{scenario}.cause_bytes.version_check")];
        if vc <= 0.0 {
            return Err(format!(
                "provenance gate: {scenario} recorded no version-check bytes"
            )
            .into());
        }
    }

    Ok(RunOutput {
        result: BenchResult {
            label: label.to_string(),
            profile: profile.name.to_string(),
            seed: profile.seed,
            metrics,
        },
        traces,
        series,
    })
}

/// One wire format's measurements in a [`run_scale_smoke`] pass.
#[derive(Debug, Clone, Copy)]
pub struct ScalePass {
    /// Bytes the cold batch grid moved.
    pub network_bytes: u64,
    /// Mean recall@10 over the grid.
    pub recall_at_10: f64,
    /// Wall-clock seconds spent building the store.
    pub build_secs: f64,
}

/// Result of the large-scale compressed-vs-uncompressed smoke.
#[derive(Debug, Clone, Copy)]
pub struct ScaleSmoke {
    /// Base vectors in the store.
    pub n: usize,
    /// Uncompressed (full-precision wire) pass.
    pub full: ScalePass,
    /// SQ8 wire pass (compressed sub-search + exact rerank).
    pub sq8: ScalePass,
}

/// Runs the large-scale SQ8 smoke: builds an uncompressed and a
/// quantized store over `n` vectors (sequentially, so only one layout
/// is resident at a time), runs the same cold batch grid against each,
/// and hard-gates the same two invariants as the smoke profile —
/// compressed bytes under 0.30x and recall within 0.005.
///
/// This is deliberately not part of [`run_profile`]: at 1M vectors the
/// build alone takes minutes, so `bench_regress` only calls it when
/// `DHNSW_BENCH_1M=1` is set.
///
/// # Errors
///
/// Propagates build and query errors, and fails when either gate trips.
pub fn run_scale_smoke(n: usize) -> Result<ScaleSmoke, Box<dyn std::error::Error>> {
    let seed = 0xBE7C;
    let data = gen::sift_like(n, seed)?;
    let batches: Vec<Dataset> = (0..4)
        .map(|b| gen::perturbed_queries(&data, 32, 0.03, seed + 100 + b))
        .collect::<Result<_, _>>()?;
    let truths: Vec<_> = batches
        .iter()
        .map(|q| ground_truth::exact_batch(&data, q, 10, Metric::L2))
        .collect();
    let reps = (n / 150).clamp(8, 4_096);
    let base_config = DHnswConfig::small().with_representatives(reps);

    let run = |config: &DHnswConfig| -> Result<ScalePass, Box<dyn std::error::Error>> {
        let t0 = std::time::Instant::now();
        let store = VectorStore::build(data.clone(), config)?;
        let build_secs = t0.elapsed().as_secs_f64();
        let node = store.connect(SearchMode::Full)?;
        let mut bytes = 0u64;
        let mut recall_sum = 0.0;
        for (b, queries) in batches.iter().enumerate() {
            let (results, report) = node.query_batch(queries, 10, 48)?;
            bytes += report.bytes_read;
            let ids: Vec<Vec<u32>> = results
                .iter()
                .map(|r| r.iter().map(|nb| nb.id).collect())
                .collect();
            recall_sum += recall::mean_recall(&ids, &truths[b]);
        }
        Ok(ScalePass {
            network_bytes: bytes,
            recall_at_10: recall_sum / batches.len() as f64,
            build_secs,
        })
    };

    let full = run(&base_config)?;
    let sq8 = run(&base_config.clone().with_quantize_mode(QuantizeMode::Sq8))?;

    if sq8.network_bytes as f64 >= 0.30 * full.network_bytes as f64 {
        return Err(format!(
            "scale smoke: sq8 moved {} bytes, not under 0.30x of the \
             uncompressed {}",
            sq8.network_bytes, full.network_bytes
        )
        .into());
    }
    if sq8.recall_at_10 + 0.005 < full.recall_at_10 {
        return Err(format!(
            "scale smoke: sq8 recall {} fell more than 0.005 below the \
             uncompressed {}",
            sq8.recall_at_10, full.recall_at_10
        )
        .into());
    }
    Ok(ScaleSmoke { n, full, sq8 })
}

// ---------------------------------------------------------------------
// JSON envelope (hand-rolled: the workspace is dependency-free).
// ---------------------------------------------------------------------

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BenchResult {
    /// Renders the schema-versioned `BENCH_*.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"label\": \"{}\",", escape_json(&self.label));
        let _ = writeln!(out, "  \"profile\": \"{}\",", escape_json(&self.profile));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"metrics\": {\n");
        let n = self.metrics.len();
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == n { "" } else { "," };
            let _ = writeln!(out, "    \"{}\": {:.6}{}", escape_json(k), v, comma);
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a document produced by [`BenchResult::to_json`] (or any
    /// JSON object with the same shape).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = JsonParser::new(text).parse_document()?;
        let top = match value {
            Json::Obj(map) => map,
            _ => return Err("top level is not an object".into()),
        };
        let num = |key: &str| -> Result<f64, String> {
            match top.get(key) {
                Some(Json::Num(v)) => Ok(*v),
                Some(_) => Err(format!("\"{key}\" is not a number")),
                None => Err(format!("missing \"{key}\"")),
            }
        };
        let text_field = |key: &str| -> Result<String, String> {
            match top.get(key) {
                Some(Json::Str(v)) => Ok(v.clone()),
                Some(_) => Err(format!("\"{key}\" is not a string")),
                None => Err(format!("missing \"{key}\"")),
            }
        };
        let version = num("schema_version")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} unsupported (expected {SCHEMA_VERSION})"
            ));
        }
        let mut metrics = BTreeMap::new();
        match top.get("metrics") {
            Some(Json::Obj(map)) => {
                for (k, v) in map {
                    match v {
                        Json::Num(value) => {
                            metrics.insert(k.clone(), *value);
                        }
                        _ => return Err(format!("metric \"{k}\" is not a number")),
                    }
                }
            }
            _ => return Err("missing \"metrics\" object".into()),
        }
        Ok(BenchResult {
            label: text_field("label")?,
            profile: text_field("profile")?,
            seed: num("seed")? as u64,
            metrics,
        })
    }
}

/// A parsed JSON value, covering the subset the bench envelope and the
/// telemetry endpoints emit.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number (all JSON numbers are parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An object, keyed by member name.
    Obj(BTreeMap<String, Json>),
    /// An array.
    Arr(Vec<Json>),
    /// A boolean.
    Bool(bool),
    /// The `null` literal.
    Null,
}

impl Json {
    /// Looks up a member of an object; `None` for non-objects or
    /// missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }
}

/// A minimal recursive-descent parser covering the subset of JSON the
/// bench envelope and the telemetry snapshot use: objects, arrays,
/// strings, numbers, booleans, and `null`.
pub struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    /// Wraps `text` for parsing.
    #[must_use]
    pub fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    /// Parses the wrapped text as a single JSON document.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on malformed input or trailing
    /// bytes.
    pub fn parse_document(&mut self) -> Result<Json, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                c as char, self.pos
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Json::Str(self.parse_string()?)),
            b'-' | b'0'..=b'9' => self.parse_number(),
            b't' => self.parse_literal("true", Json::Bool(true)),
            b'f' => self.parse_literal("false", Json::Bool(false)),
            b'n' => self.parse_literal("null", Json::Null),
            c => Err(format!(
                "unsupported JSON value starting with '{}' at offset {}",
                c as char, self.pos
            )),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at offset {}", self.pos))
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => {
                    return Err(format!(
                        "expected ',' or ']', got '{}' at offset {}",
                        c as char, self.pos
                    ))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                c => {
                    return Err(format!(
                        "expected ',' or '}}', got '{}' at offset {}",
                        c as char, self.pos
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self
                        .bytes
                        .get(self.pos + 1)
                        .ok_or("unterminated escape")?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        c => {
                            return Err(format!(
                                "unsupported escape '\\{}'",
                                *c as char
                            ))
                        }
                    }
                    self.pos += 2;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

// ---------------------------------------------------------------------
// Comparison against a baseline.
// ---------------------------------------------------------------------

/// Per-metric acceptance band.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative slack as a fraction of the baseline value.
    pub rel: f64,
    /// Absolute slack floor (same unit as the metric).
    pub abs: f64,
    /// Whether an increase (true) or a decrease (false) is the bad
    /// direction.
    pub higher_is_worse: bool,
}

/// The tolerance for a dotted metric key, selected by its suffix.
///
/// Wall-clock latencies get generous relative slack (they share a CI box
/// with other work); virtual-clock byte/doorbell counts are deterministic
/// and get tight bands; quality metrics use small absolute bands.
pub fn tolerance_for(metric: &str) -> Tolerance {
    // Per-cause byte counters are as deterministic as `network_bytes`
    // (their suffix is the cause name, so they need their own match).
    if metric.contains(".cause_bytes.") {
        return Tolerance {
            rel: 0.01,
            abs: 1.0,
            higher_is_worse: true,
        };
    }
    let suffix = metric.rsplit('.').next().unwrap_or(metric);
    match suffix {
        // `network_us` rides with the wall-clock band: at pipeline depth
        // > 1 the exposed share depends on how fast the box's compute
        // ran (slow compute hides more transfer), so it is only as
        // reproducible as the wall clock even though its unit is virtual.
        "p50_us" | "p95_us" | "p99_us" | "mean_us" | "network_us" => Tolerance {
            rel: 1.0,
            abs: 200.0,
            higher_is_worse: true,
        },
        "network_bytes" | "doorbell_batches" => Tolerance {
            rel: 0.01,
            abs: 1.0,
            higher_is_worse: true,
        },
        "recall_at_10" => Tolerance {
            rel: 0.0,
            abs: 0.02,
            higher_is_worse: false,
        },
        "cache_hit_rate" => Tolerance {
            rel: 0.0,
            abs: 0.02,
            higher_is_worse: false,
        },
        // The verdict index ranks wall-clock excess, so legitimate runs
        // can land on any of the six verdicts (indices 0–6); what the
        // band rejects is the `unknown` sentinel (99) — a run whose
        // exemplar store produced no diagnosis at all.
        "tail_verdict" => Tolerance {
            rel: 0.0,
            abs: 6.0,
            higher_is_worse: true,
        },
        // One exemplar per batch, exactly reproducible: losing any means
        // the engine stopped offering batches to the store.
        "tail_exemplars_recorded" | "tail_exemplar_occupancy" => Tolerance {
            rel: 0.0,
            abs: 0.0,
            higher_is_worse: false,
        },
        // One recorder point per batch, exactly reproducible: losing
        // any means the tick path stopped deriving windows.
        "series_points" => Tolerance {
            rel: 0.0,
            abs: 0.0,
            higher_is_worse: false,
        },
        // Deterministic anomalies are hard-gated to zero inside the
        // run; the band re-pins that in baseline comparisons too.
        "series_anomalies" => Tolerance {
            rel: 0.0,
            abs: 0.0,
            higher_is_worse: true,
        },
        // Wall-clock-derived anomalies (p99) may fire on a loaded box;
        // allow a few before calling it a regression.
        "series_anomalies_wallclock" => Tolerance {
            rel: 0.0,
            abs: 4.0,
            higher_is_worse: true,
        },
        // Relative p99 spread across a pass's windows is a ratio in
        // [0, 1] derived from the wall clock; only gross instability
        // (the whole band plus scale) should trip it.
        "series_p99_drift" => Tolerance {
            rel: 0.5,
            abs: 0.5,
            higher_is_worse: true,
        },
        _ => Tolerance {
            rel: 0.25,
            abs: 0.0,
            higher_is_worse: true,
        },
    }
}

/// One metric's baseline-vs-current verdict.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Dotted metric key.
    pub metric: String,
    /// Baseline value (`None` for a metric new in the current run).
    pub baseline: Option<f64>,
    /// Current value (`None` when the current run lost the metric).
    pub current: Option<f64>,
    /// Whether this metric regressed beyond tolerance.
    pub regressed: bool,
}

/// Compares a run against a baseline; `scale` multiplies every tolerance
/// band (check.sh smoke mode passes > 1 to be generous).
pub fn compare(baseline: &BenchResult, current: &BenchResult, scale: f64) -> Vec<MetricDelta> {
    let mut out = Vec::new();
    for (metric, &base) in &baseline.metrics {
        match current.metrics.get(metric) {
            None => out.push(MetricDelta {
                metric: metric.clone(),
                baseline: Some(base),
                current: None,
                regressed: true,
            }),
            Some(&cur) => {
                let tol = tolerance_for(metric);
                let worse = if tol.higher_is_worse {
                    cur - base
                } else {
                    base - cur
                };
                let allowed = (tol.abs + tol.rel * base.abs()) * scale.max(0.0);
                out.push(MetricDelta {
                    metric: metric.clone(),
                    baseline: Some(base),
                    current: Some(cur),
                    regressed: worse > allowed,
                });
            }
        }
    }
    for (metric, &cur) in &current.metrics {
        if !baseline.metrics.contains_key(metric) {
            out.push(MetricDelta {
                metric: metric.clone(),
                baseline: None,
                current: Some(cur),
                regressed: false,
            });
        }
    }
    out
}

/// Renders a comparison table; returns whether any metric regressed.
pub fn render_comparison(deltas: &[MetricDelta], out: &mut String) -> bool {
    let mut regressed = false;
    let _ = writeln!(
        out,
        "{:<34} {:>16} {:>16} {:>9}  status",
        "metric", "baseline", "current", "delta"
    );
    for d in deltas {
        let status = match (d.baseline, d.current) {
            (Some(_), None) => "MISSING",
            (None, Some(_)) => "new",
            _ if d.regressed => "REGRESSED",
            _ => "ok",
        };
        if d.regressed {
            regressed = true;
        }
        let delta = match (d.baseline, d.current) {
            (Some(b), Some(c)) if b.abs() > 1e-12 => {
                format!("{:+.1}%", (c - b) / b * 100.0)
            }
            (Some(b), Some(c)) => format!("{:+.3}", c - b),
            _ => "-".to_string(),
        };
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<34} {:>16} {:>16} {:>9}  {}",
            d.metric,
            fmt(d.baseline),
            fmt(d.current),
            delta,
            status
        );
    }
    regressed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(metrics: &[(&str, f64)]) -> BenchResult {
        BenchResult {
            label: "test".into(),
            profile: "smoke".into(),
            seed: 7,
            metrics: metrics
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = result_with(&[
            ("single_cold.p50_us", 1234.5),
            ("single_cold.recall_at_10", 0.937),
            ("sharded_warm.network_bytes", 1_048_576.0),
        ]);
        let parsed = BenchResult::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.label, "test");
        assert_eq!(parsed.profile, "smoke");
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.metrics.len(), 3);
        assert!((parsed.metrics["single_cold.p50_us"] - 1234.5).abs() < 1e-6);
        assert!((parsed.metrics["single_cold.recall_at_10"] - 0.937).abs() < 1e-9);
    }

    #[test]
    fn parser_rejects_schema_mismatch_and_garbage() {
        assert!(BenchResult::from_json("{").is_err());
        assert!(BenchResult::from_json("[1, 2]").is_err());
        let wrong_version = r#"{"schema_version": 99, "label": "x", "profile": "smoke", "seed": 1, "metrics": {}}"#;
        assert!(BenchResult::from_json(wrong_version)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn deterministic_metric_regression_is_caught() {
        let base = result_with(&[("single_cold.network_bytes", 1000.0)]);
        // +0.5% stays inside the 1% band.
        let ok = result_with(&[("single_cold.network_bytes", 1005.0)]);
        assert!(!compare(&base, &ok, 1.0).iter().any(|d| d.regressed));
        // +5% regresses.
        let bad = result_with(&[("single_cold.network_bytes", 1050.0)]);
        let deltas = compare(&base, &bad, 1.0);
        assert!(deltas.iter().any(|d| d.regressed));
        // ...unless the tolerance scale is opened up.
        assert!(!compare(&base, &bad, 10.0).iter().any(|d| d.regressed));
    }

    #[test]
    fn lower_is_worse_metrics_gate_on_drops_only() {
        let base = result_with(&[("single_warm.recall_at_10", 0.95)]);
        let better = result_with(&[("single_warm.recall_at_10", 1.0)]);
        assert!(!compare(&base, &better, 1.0).iter().any(|d| d.regressed));
        let worse = result_with(&[("single_warm.recall_at_10", 0.90)]);
        assert!(compare(&base, &worse, 1.0).iter().any(|d| d.regressed));
    }

    #[test]
    fn missing_metric_is_a_regression_and_new_metric_is_not() {
        let base = result_with(&[("a.p50_us", 1.0), ("b.p50_us", 2.0)]);
        let cur = result_with(&[("a.p50_us", 1.0), ("c.p50_us", 3.0)]);
        let deltas = compare(&base, &cur, 1.0);
        let by_name = |n: &str| deltas.iter().find(|d| d.metric == n).unwrap();
        assert!(by_name("b.p50_us").regressed);
        assert!(!by_name("c.p50_us").regressed);
        let mut table = String::new();
        assert!(render_comparison(&deltas, &mut table));
        assert!(table.contains("MISSING"));
        assert!(table.contains("new"));
    }

    #[test]
    fn latency_tolerances_are_generous() {
        let base = result_with(&[("single_cold.p99_us", 1000.0)]);
        let doubled = result_with(&[("single_cold.p99_us", 1990.0)]);
        assert!(!compare(&base, &doubled, 1.0).iter().any(|d| d.regressed));
        let tripled = result_with(&[("single_cold.p99_us", 3500.0)]);
        assert!(compare(&base, &tripled, 1.0).iter().any(|d| d.regressed));
    }

    #[test]
    fn telemetry_snapshot_json_parses_back() {
        // The registry's JSON snapshot — counters, gauges, and the
        // histogram objects with their bucket arrays — must be real
        // JSON: every registered series parses back, including the
        // per-cause byte counters the provenance ledger feeds.
        let data = gen::sift_like(600, 3).unwrap();
        let config = DHnswConfig::small().with_representatives(8);
        let store = VectorStore::build(data.clone(), &config).unwrap();
        let telemetry = Arc::new(Telemetry::new());
        let node = store
            .connect_with_telemetry(SearchMode::Full, Arc::clone(&telemetry))
            .unwrap();
        let queries = gen::perturbed_queries(&data, 8, 0.03, 9).unwrap();
        node.query_batch(&queries, 5, 16).unwrap();
        node.health_report().unwrap();

        let json = telemetry.snapshot_json();
        let parsed = JsonParser::new(&json).parse_document().unwrap();
        let Json::Obj(top) = parsed else {
            panic!("snapshot is not a JSON object")
        };
        let section = |name: &str| match top.get(name) {
            Some(Json::Obj(map)) => map.clone(),
            other => panic!("\"{name}\" is not an object: {other:?}"),
        };
        let counters = section("counters");
        let gauges = section("gauges");
        let histograms = section("histograms");
        assert!(!counters.is_empty() && !gauges.is_empty() && !histograms.is_empty());
        for map in [&counters, &gauges] {
            for (k, v) in map {
                assert!(matches!(v, Json::Num(_)), "{k} is not a number");
            }
        }
        for (k, v) in &histograms {
            let Json::Obj(h) = v else {
                panic!("histogram {k} is not an object")
            };
            assert!(matches!(h.get("buckets"), Some(Json::Arr(_))), "{k}");
            assert!(matches!(h.get("p99"), Some(Json::Num(_) | Json::Str(_))), "{k}");
        }
        for cause in dhnsw::ReadCause::ALL {
            let key = format!(
                "dhnsw_rdma_read_bytes_by_cause_total{{cause=\"{}\"}}",
                cause.as_str()
            );
            assert!(
                matches!(counters.get(&key), Some(Json::Num(_))),
                "missing per-cause series {key}"
            );
        }
    }

    #[test]
    fn tiny_profile_produces_the_full_metric_grid() {
        let profile = Profile {
            name: "smoke",
            n: 600,
            batches: 2,
            batch_size: 8,
            shards: 2,
            k: 10,
            ef: 16,
            seed: 0xBE7C,
        };
        let out = run_profile(&profile, "unit", true).unwrap();
        let r = &out.result;
        assert_eq!(r.profile, "smoke");
        for scenario in [
            "single_cold",
            "single_warm",
            "pipeline_cold",
            "pipeline_warm",
            "sq8_cold",
            "sq8_warm",
            "sharded_cold",
            "sharded_warm",
        ] {
            for metric in [
                "p50_us",
                "p95_us",
                "p99_us",
                "recall_at_10",
                "network_bytes",
                "doorbell_batches",
                "cache_hit_rate",
                "network_us",
            ] {
                let key = format!("{scenario}.{metric}");
                assert!(r.metrics.contains_key(&key), "missing {key}");
            }
        }
        for metric in [
            "health.overflow_occupancy_max",
            "health.region_utilization",
            "health.fragmentation",
            "health.partition_gini",
            "health.route_gini",
            "health.cache_hit_rate",
        ] {
            assert!(r.metrics.contains_key(metric), "missing {metric}");
        }
        // Tail anatomy rides the single and pipelined scenarios: one
        // exemplar per batch (2 batches x 2 passes on each hub), and a
        // real verdict (the unknown sentinel 99 means no diagnosis).
        for prefix in ["single", "pipeline", "sq8"] {
            assert_eq!(
                r.metrics[&format!("{prefix}.tail_exemplars_recorded")],
                4.0,
                "{prefix}: every batch must land an exemplar"
            );
            assert!(r.metrics[&format!("{prefix}.tail_exemplar_occupancy")] > 0.0);
            assert!(
                r.metrics[&format!("{prefix}.tail_verdict")] <= 6.0,
                "{prefix}: diagnosis missing"
            );
        }
        // Warm passes reuse the cache: strictly fewer bytes than cold.
        assert!(
            r.metrics["single_warm.network_bytes"] <= r.metrics["single_cold.network_bytes"]
        );
        assert!(
            r.metrics["single_warm.cache_hit_rate"] >= r.metrics["single_cold.cache_hit_rate"]
        );
        // Pipelining changes only the schedule, never what crosses the
        // network or what is found. (Doorbell *batches* legitimately
        // differ — each stage rings its own doorbell.)
        for metric in ["network_bytes", "recall_at_10"] {
            for pass in ["cold", "warm"] {
                assert_eq!(
                    r.metrics[&format!("pipeline_{pass}.{metric}")],
                    r.metrics[&format!("single_{pass}.{metric}")],
                    "pipeline_{pass}.{metric} diverged from the sequential pass"
                );
            }
        }
        // Byte provenance: every scenario carries the per-cause grid
        // and the causes tile network_bytes exactly (run_profile hard-
        // gates this too; re-check here so a gate edit can't silently
        // weaken it).
        for scenario in [
            "single_cold",
            "single_warm",
            "pipeline_cold",
            "pipeline_warm",
            "sq8_cold",
            "sq8_warm",
            "sharded_cold",
            "sharded_warm",
        ] {
            let tiled: f64 = dhnsw::ReadCause::ALL
                .iter()
                .map(|c| r.metrics[&format!("{scenario}.cause_bytes.{}", c.as_str())])
                .sum();
            assert_eq!(
                tiled,
                r.metrics[&format!("{scenario}.network_bytes")],
                "{scenario}: causes do not tile network_bytes"
            );
            // Nothing in the bench path is unattributed.
            assert_eq!(r.metrics[&format!("{scenario}.cause_bytes.other")], 0.0);
        }
        // The cold pass is stage-load work; version slots ride along.
        assert!(
            r.metrics["single_cold.cause_bytes.stage_load"]
                >= 0.5 * r.metrics["single_cold.network_bytes"]
        );
        assert!(r.metrics["single_cold.cause_bytes.version_check"] > 0.0);
        // Span capture returned per-batch traces (2 batches x 2 passes).
        assert_eq!(out.traces.len(), 4);
        assert!(out.traces.iter().all(|t| !t.spans.is_empty()));
        // Time series ride every node scenario: one point per batch,
        // and the zero-anomaly hard gate held (run_profile would have
        // errored otherwise — re-pin the emitted metric here).
        for scenario in [
            "single_cold",
            "single_warm",
            "pipeline_cold",
            "pipeline_warm",
            "sq8_cold",
            "sq8_warm",
        ] {
            let pass = &out.series[scenario];
            assert_eq!(
                pass.points.len(),
                2,
                "{scenario}: expected one series point per batch"
            );
            assert!(
                pass.points.iter().all(|p| p.window_queries == 8),
                "{scenario}: each window covers one 8-query batch"
            );
            assert_eq!(r.metrics[&format!("{scenario}.series_points")], 2.0);
            assert_eq!(r.metrics[&format!("{scenario}.series_anomalies")], 0.0);
            assert!(r.metrics.contains_key(&format!("{scenario}.series_p99_drift")));
        }
        // Sharded scenarios share the global hub, so no series entry.
        assert!(!out.series.contains_key("sharded_cold"));
        // The artifact renderer round-trips through the JSON parser.
        let artifact = series_json(r, &out.series);
        let doc = JsonParser::new(artifact.trim()).parse_document().unwrap();
        assert_eq!(
            doc.get("scenarios")
                .and_then(|s| s.get("single_cold"))
                .map(|s| s.get("points").map(|p| p.items().len())),
            Some(Some(2))
        );
        // A self-comparison has zero regressions.
        assert!(!compare(r, r, 1.0).iter().any(|d| d.regressed));
    }
}
