//! CSV emission for sweep and breakdown results, so figures can be
//! re-plotted without re-running the harness. Files land under
//! `results/` (created on demand); the schema is one row per measured
//! point with every counter the [`crate::SweepPoint`] /
//! [`crate::BreakdownRow`] structs carry.

use std::io::Write;
use std::path::{Path, PathBuf};

use dhnsw::SearchMode;

use crate::{BreakdownRow, SweepPoint};

/// Header row for sweep CSVs.
pub const SWEEP_HEADER: &str = "scheme,ef,recall,latency_us_per_query,network_us,sub_hnsw_us,meta_hnsw_us,round_trips,bytes_read,unique_clusters,cache_hits,clusters_loaded,queries";

/// Header row for breakdown CSVs.
pub const BREAKDOWN_HEADER: &str = "scheme,network_us,sub_hnsw_us,meta_hnsw_us,round_trips_per_query,bytes_read,recall,queries";

/// Formats one sweep point as a CSV row.
pub fn sweep_row(mode: SearchMode, p: &SweepPoint) -> String {
    let r = &p.report;
    format!(
        "{},{},{:.6},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{},{}",
        mode.name().replace(',', ";"),
        p.ef,
        p.recall,
        p.latency_us,
        r.breakdown.network_us,
        // The paper folds cluster decode into the search column; keep
        // the CSV schema stable by re-merging the split components.
        r.breakdown.sub_hnsw_us + r.breakdown.materialize_us,
        r.breakdown.meta_hnsw_us,
        r.round_trips,
        r.bytes_read,
        r.unique_clusters,
        r.cache_hits,
        r.clusters_loaded,
        r.queries,
    )
}

/// Formats one breakdown row as CSV.
pub fn breakdown_row(row: &BreakdownRow) -> String {
    let r = &row.report;
    format!(
        "{},{:.3},{:.3},{:.3},{:.6},{},{:.6},{}",
        row.mode.name().replace(',', ";"),
        r.breakdown.network_us,
        // Same column semantics as the sweep: search time includes
        // cluster decode, as in the paper's tables.
        r.breakdown.sub_hnsw_us + r.breakdown.materialize_us,
        r.breakdown.meta_hnsw_us,
        r.round_trips_per_query(),
        r.bytes_read,
        row.recall,
        r.queries,
    )
}

/// Writes a whole sweep (several schemes) to `results/<name>.csv`,
/// returning the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_sweep_csv(
    dir: impl AsRef<Path>,
    name: &str,
    schemes: &[(SearchMode, Vec<SweepPoint>)],
) -> std::io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{SWEEP_HEADER}")?;
    for (mode, points) in schemes {
        for p in points {
            writeln!(f, "{}", sweep_row(*mode, p))?;
        }
    }
    Ok(path)
}

/// Writes a breakdown table to `results/<name>.csv`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_breakdown_csv(
    dir: impl AsRef<Path>,
    name: &str,
    rows: &[BreakdownRow],
) -> std::io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{BREAKDOWN_HEADER}")?;
    for row in rows {
        writeln!(f, "{}", breakdown_row(row))?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhnsw::BatchReport;

    fn point(ef: usize) -> SweepPoint {
        SweepPoint {
            ef,
            recall: 0.5,
            latency_us: 12.25,
            report: BatchReport {
                queries: 10,
                round_trips: 3,
                bytes_read: 1024,
                ..Default::default()
            },
        }
    }

    #[test]
    fn sweep_row_has_header_arity() {
        let row = sweep_row(SearchMode::Full, &point(8));
        assert_eq!(
            row.split(',').count(),
            SWEEP_HEADER.split(',').count(),
            "row/header column mismatch"
        );
        assert!(row.starts_with("d-HNSW,8,"));
    }

    #[test]
    fn breakdown_row_has_header_arity() {
        let row = breakdown_row(&BreakdownRow {
            mode: SearchMode::Naive,
            report: BatchReport {
                queries: 5,
                round_trips: 20,
                ..Default::default()
            },
            recall: 0.9,
        });
        assert_eq!(row.split(',').count(), BREAKDOWN_HEADER.split(',').count());
    }

    #[test]
    fn csv_files_are_written_and_parse_back() {
        let dir = std::env::temp_dir().join(format!("dhnsw_csv_test_{}", std::process::id()));
        let path = write_sweep_csv(
            &dir,
            "fig_test",
            &[(SearchMode::Full, vec![point(1), point(2)])],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], SWEEP_HEADER);
        assert!(lines[2].contains("d-HNSW,2,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
