//! Shared benchmark harness for the d-HNSW reproduction.
//!
//! The `repro` binary (`cargo run -p dhnsw-bench --bin repro --release`)
//! regenerates every table and figure of the paper; the Criterion benches
//! exercise the same code paths at micro scale. This library holds the
//! pieces both share: workload construction, the efSearch sweep runner,
//! and table formatting.
//!
//! Scale knobs (environment variables, all optional):
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `DHNSW_SIFT_N` | 40000 | SIFT-like base vectors |
//! | `DHNSW_GIST_N` | 8000 | GIST-like base vectors |
//! | `DHNSW_QUERIES` | 1000 | queries per batch (paper: 2000) |
//! | `DHNSW_RUNS` | 1 | measured batches per point (median reported; the per-query average over the batch already smooths noise) |
//! | `DHNSW_REPS` | n/2000 in [32, 500] | representatives (paper: 500 for 1M vectors — same ratio) |
//! | `DHNSW_SIFT_FVECS` | unset | path to the real `sift_base.fvecs`; used instead of the stand-in |
//! | `DHNSW_GIST_FVECS` | unset | path to the real `gist_base.fvecs` |
//!
//! The paper runs SIFT1M/GIST1M on four 72-core servers; the defaults
//! here are sized for a single-core CI box. Raising `DHNSW_SIFT_N` to
//! 1000000 reproduces the paper's scale verbatim, given time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod regress;
pub mod serve;
pub mod top;
pub mod trace;

use std::time::Instant;

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temp file first, then a `rename` swaps it into place, so a scraper
/// or CI step reading `path` concurrently sees either the old file or
/// the new one — never a torn half-write. Missing parent directories
/// are created first, so `--metrics-out nested/dir/run.prom` works
/// without a separate `mkdir`.
pub fn write_atomic<P: AsRef<std::path::Path>>(path: P, contents: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

use dhnsw::{BatchReport, DHnswConfig, SearchMode, VectorStore};
use vecsim::{gen, ground_truth, recall, Dataset, Metric, Neighbor};

/// Which paper dataset a workload stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// SIFT1M stand-in: 128-d, clustered, `[0, 255]`.
    SiftLike,
    /// GIST1M stand-in: 960-d, clustered, `[0, 1]`.
    GistLike,
}

impl DatasetKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::SiftLike => "SIFT1M (synthetic stand-in)",
            DatasetKind::GistLike => "GIST1M (synthetic stand-in)",
        }
    }

    /// Default base-vector count, overridable via environment.
    pub fn default_n(self) -> usize {
        match self {
            DatasetKind::SiftLike => env_usize("DHNSW_SIFT_N", 40_000),
            DatasetKind::GistLike => env_usize("DHNSW_GIST_N", 8_000),
        }
    }

    /// Generates the base dataset.
    pub fn generate(self, n: usize, seed: u64) -> vecsim::Result<Dataset> {
        match self {
            DatasetKind::SiftLike => gen::sift_like(n, seed),
            DatasetKind::GistLike => gen::gist_like(n, seed),
        }
    }

    /// Environment variable naming a real `.fvecs` file for this dataset.
    pub fn fvecs_env_var(self) -> &'static str {
        match self {
            DatasetKind::SiftLike => "DHNSW_SIFT_FVECS",
            DatasetKind::GistLike => "DHNSW_GIST_FVECS",
        }
    }

    /// Loads the real dataset when its `fvecs` path is configured (taking
    /// the first `n` vectors), otherwise generates the synthetic
    /// stand-in. This is how the harness evaluates on actual
    /// SIFT1M/GIST1M when the TEXMEX files are available.
    pub fn load_or_generate(self, n: usize, seed: u64) -> vecsim::Result<Dataset> {
        match std::env::var(self.fvecs_env_var()) {
            Ok(path) if !path.is_empty() => {
                eprintln!("[data] loading {} from {path}", self.name());
                let ds = load_fvecs_prefix(&path, n)?;
                eprintln!("[data] loaded {} vectors x {}d", ds.len(), ds.dim());
                Ok(ds)
            }
            _ => self.generate(n, seed),
        }
    }
}

/// Reads up to `n` vectors from an `fvecs` file.
///
/// # Errors
///
/// Propagates I/O and format errors from the vector layer.
pub fn load_fvecs_prefix(path: &str, n: usize) -> vecsim::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    let full = vecsim::io::read_fvecs(std::io::BufReader::new(file))?;
    if full.len() <= n {
        return Ok(full);
    }
    let ids: Vec<u32> = (0..n as u32).collect();
    Ok(full.select(&ids))
}

/// Reads a `usize` environment knob with a default.
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A fully prepared workload: base data, queries, and exact ground truth
/// at the k values the paper evaluates (1 and 10).
#[derive(Debug)]
pub struct Workload {
    /// Which dataset this stands in for.
    pub kind: DatasetKind,
    /// Base vectors.
    pub data: Dataset,
    /// Query vectors.
    pub queries: Dataset,
    /// Exact top-1 ground truth.
    pub truth1: Vec<Vec<Neighbor>>,
    /// Exact top-10 ground truth.
    pub truth10: Vec<Vec<Neighbor>>,
}

impl Workload {
    /// Builds the standard workload for `kind` at its default scale.
    pub fn standard(kind: DatasetKind) -> Result<Self, Box<dyn std::error::Error>> {
        let n = kind.default_n();
        let nq = env_usize("DHNSW_QUERIES", 1_000);
        Self::sized(kind, n, nq)
    }

    /// Builds a workload with explicit sizes.
    pub fn sized(
        kind: DatasetKind,
        n: usize,
        nq: usize,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let data = kind.load_or_generate(n, 0xDA7A)?;
        let queries = gen::perturbed_queries(&data, nq, 0.03, 0xC0FE)?;
        let truth1 = ground_truth::exact_batch(&data, &queries, 1, Metric::L2);
        let truth10 = ground_truth::exact_batch(&data, &queries, 10, Metric::L2);
        Ok(Workload {
            kind,
            data,
            queries,
            truth1,
            truth10,
        })
    }

    /// Ground truth for a given k (1 or 10).
    pub fn truth(&self, k: usize) -> &[Vec<Neighbor>] {
        if k == 1 {
            &self.truth1
        } else {
            &self.truth10
        }
    }

    /// The paper's store configuration for this workload, with the
    /// representative count and overflow capacity scaled to the dataset:
    /// the paper uses 500 representatives per million vectors (≈ one per
    /// 2000) and overflow areas around an eighth of a cluster's payload.
    /// `DHNSW_REPS` overrides the representative count outright.
    pub fn config(&self) -> DHnswConfig {
        let n = self.data.len();
        let reps = env_usize("DHNSW_REPS", (n / 2_000).clamp(32, 500));
        let slots = (n / reps / 8).max(16);
        DHnswConfig::paper()
            .with_representatives(reps)
            .with_overflow_slots(slots)
    }

    /// Builds the store (timed, with progress output to stderr).
    pub fn build_store(&self) -> Result<VectorStore, Box<dyn std::error::Error>> {
        self.build_store_with(&self.config())
    }

    /// Builds the store under a custom configuration.
    pub fn build_store_with(
        &self,
        config: &DHnswConfig,
    ) -> Result<VectorStore, Box<dyn std::error::Error>> {
        let t = Instant::now();
        let store = VectorStore::build(self.data.clone(), config)?;
        eprintln!(
            "[build] {}: {} vectors -> {} partitions in {:.1}s ({:.1} MB remote)",
            self.kind.name(),
            self.data.len(),
            store.partitions(),
            t.elapsed().as_secs_f64(),
            store.remote_bytes() as f64 / 1e6
        );
        Ok(store)
    }
}

/// One point of a latency-recall sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The efSearch value.
    pub ef: usize,
    /// Mean recall@k against exact ground truth.
    pub recall: f64,
    /// Mean per-query latency in µs (network virtual + compute wall).
    pub latency_us: f64,
    /// The full batch report.
    pub report: BatchReport,
}

/// The efSearch values Fig. 6 sweeps.
pub const EF_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 24, 32, 48];

/// Runs the Fig. 6 sweep for one scheme: for each efSearch value, answer
/// the whole query batch and record latency + recall.
///
/// Matching the paper's steady-state measurement, each point runs one
/// warm-up batch (populating the LRU cache) before the measured batch;
/// the Naive scheme has no state to warm but is treated identically.
pub fn sweep(
    store: &VectorStore,
    mode: SearchMode,
    workload: &Workload,
    k: usize,
) -> Result<Vec<SweepPoint>, Box<dyn std::error::Error>> {
    let node = store.connect(mode)?;
    let runs = env_usize("DHNSW_RUNS", 1).max(1);
    let mut out = Vec::with_capacity(EF_SWEEP.len());
    for &ef in EF_SWEEP {
        node.query_batch(&workload.queries, k, ef)?; // warm-up
        let mut rec = 0.0;
        let mut reports = Vec::with_capacity(runs);
        for _ in 0..runs {
            let (results, report) = node.query_batch(&workload.queries, k, ef)?;
            let ids: Vec<Vec<u32>> = results
                .iter()
                .map(|r| r.iter().map(|n| n.id).collect())
                .collect();
            rec = recall::mean_recall(&ids, workload.truth(k));
            reports.push(report);
        }
        let report = median_report(reports);
        out.push(SweepPoint {
            ef,
            recall: rec,
            latency_us: report.per_query_latency_us(),
            report,
        });
    }
    Ok(out)
}

/// Picks the median report by total latency — compute components are
/// wall-clock and jitter on loaded hosts, so a single batch can mislead.
fn median_report(mut reports: Vec<BatchReport>) -> BatchReport {
    reports.sort_by(|a, b| {
        a.breakdown
            .total_us()
            .total_cmp(&b.breakdown.total_us())
    });
    let mid = reports.len() / 2;
    reports.swap_remove(mid)
}

/// A measured Table-1/2 row: the three latency components for one scheme,
/// plus round trips per query.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// The scheme.
    pub mode: SearchMode,
    /// The batch report at efSearch = 48.
    pub report: BatchReport,
    /// Recall achieved at this operating point.
    pub recall: f64,
}

/// Runs the Table 1/2 measurement: top-1, efSearch 48, warm caches, all
/// three schemes on the same store.
pub fn breakdown_rows(
    store: &VectorStore,
    workload: &Workload,
) -> Result<Vec<BreakdownRow>, Box<dyn std::error::Error>> {
    let runs = env_usize("DHNSW_RUNS", 1).max(1);
    let mut rows = Vec::new();
    for mode in [SearchMode::Naive, SearchMode::NoDoorbell, SearchMode::Full] {
        let node = store.connect(mode)?;
        node.query_batch(&workload.queries, 1, 48)?; // warm-up
        let mut rec = 0.0;
        let mut reports = Vec::with_capacity(runs);
        for _ in 0..runs {
            let (results, report) = node.query_batch(&workload.queries, 1, 48)?;
            let ids: Vec<Vec<u32>> = results
                .iter()
                .map(|r| r.iter().map(|n| n.id).collect())
                .collect();
            rec = recall::mean_recall(&ids, workload.truth(1));
            reports.push(report);
        }
        rows.push(BreakdownRow {
            mode,
            report: median_report(reports),
            recall: rec,
        });
    }
    Ok(rows)
}

/// Formats microseconds the way the paper's tables mix units (µs / ms).
pub fn fmt_us(us: f64) -> String {
    if us >= 10_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.1}us")
    }
}

/// Prints a Fig. 6-style sweep table for several schemes side by side.
pub fn print_sweep_table(title: &str, schemes: &[(SearchMode, Vec<SweepPoint>)]) {
    println!("\n=== {title} ===");
    print!("{:>4} |", "ef");
    for (mode, _) in schemes {
        print!(" {:>28} |", mode.name());
    }
    println!();
    print!("{:>4} |", "");
    for _ in schemes {
        print!(" {:>14} {:>13} |", "latency/query", "recall");
    }
    println!();
    for i in 0..schemes[0].1.len() {
        print!("{:>4} |", schemes[0].1[i].ef);
        for (_, points) in schemes {
            let p = &points[i];
            print!(" {:>14} {:>13.3} |", fmt_us(p.latency_us), p.recall);
        }
        println!();
    }
    // The "up to Nx" summary the paper quotes.
    let best_factor = |a: &[SweepPoint], b: &[SweepPoint]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.latency_us / y.latency_us.max(1e-9))
            .fold(0.0f64, f64::max)
    };
    if schemes.len() == 3 {
        let naive = &schemes[0].1;
        let nodb = &schemes[1].1;
        let full = &schemes[2].1;
        println!(
            "summary: d-HNSW latency up to {:.0}x lower than naive, {:.2}x lower than w/o doorbell; max recall {:.3}",
            best_factor(naive, full),
            best_factor(nodb, full),
            full.iter().map(|p| p.recall).fold(0.0, f64::max)
        );
    }
}

/// Prints a Table 1/2-style breakdown.
pub fn print_breakdown_table(title: &str, rows: &[BreakdownRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "Scheme", "Network", "Sub-HNSW", "Meta-HNSW", "trips/query", "recall"
    );
    for row in rows {
        println!(
            "{:<24} {:>12} {:>12} {:>12} {:>12.4} {:>10.3}",
            row.mode.name(),
            fmt_us(row.report.breakdown.network_us),
            // The table's Sub-HNSW column folds decode back in, matching
            // the paper's presentation.
            fmt_us(row.report.breakdown.sub_hnsw_us + row.report.breakdown.materialize_us),
            fmt_us(row.report.breakdown.meta_hnsw_us),
            row.report.round_trips_per_query(),
            row.recall
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_usize_parses_and_defaults() {
        std::env::set_var("DHNSW_TEST_KNOB", "123");
        assert_eq!(env_usize("DHNSW_TEST_KNOB", 7), 123);
        assert_eq!(env_usize("DHNSW_TEST_KNOB_MISSING", 7), 7);
        std::env::set_var("DHNSW_TEST_KNOB_BAD", "xyz");
        assert_eq!(env_usize("DHNSW_TEST_KNOB_BAD", 7), 7);
    }

    #[test]
    fn fvecs_prefix_loads_and_truncates() {
        let ds = vecsim::gen::uniform(4, 20, 0.0, 1.0, 1).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("dhnsw_bench_fvecs_{}.fvecs", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        vecsim::io::write_fvecs(&mut f, &ds).unwrap();
        drop(f);
        let all = load_fvecs_prefix(path.to_str().unwrap(), 100).unwrap();
        assert_eq!(all.len(), 20);
        let few = load_fvecs_prefix(path.to_str().unwrap(), 5).unwrap();
        assert_eq!(few.len(), 5);
        assert_eq!(few.get(0), ds.get(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gist_env_var_switches_to_real_file() {
        let ds = vecsim::gen::uniform(960, 8, 0.0, 1.0, 2).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("dhnsw_bench_gistenv_{}.fvecs", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        vecsim::io::write_fvecs(&mut f, &ds).unwrap();
        drop(f);
        std::env::set_var("DHNSW_GIST_FVECS", path.to_str().unwrap());
        let loaded = DatasetKind::GistLike.load_or_generate(4, 0).unwrap();
        std::env::remove_var("DHNSW_GIST_FVECS");
        assert_eq!(loaded.len(), 4);
        assert_eq!(loaded.get(0), ds.get(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fmt_us_switches_units() {
        assert_eq!(fmt_us(527.6), "527.6us");
        assert_eq!(fmt_us(90_271.2), "90.3ms");
    }

    #[test]
    fn small_workload_round_trips_through_sweep() {
        let w = Workload::sized(DatasetKind::SiftLike, 800, 30).unwrap();
        let cfg = DHnswConfig::small();
        let store = w.build_store_with(&cfg).unwrap();
        let points = sweep(&store, SearchMode::Full, &w, 10).unwrap();
        assert_eq!(points.len(), EF_SWEEP.len());
        for p in &points {
            assert!(p.recall >= 0.0 && p.recall <= 1.0);
            assert!(p.latency_us >= 0.0);
        }
        // Recall at ef=48 should beat ef=1 (or at least match).
        assert!(points.last().unwrap().recall + 1e-9 >= points[0].recall - 0.05);
    }

    #[test]
    fn breakdown_rows_cover_all_modes_in_paper_order() {
        let w = Workload::sized(DatasetKind::SiftLike, 600, 20).unwrap();
        let store = w.build_store_with(&DHnswConfig::small()).unwrap();
        let rows = breakdown_rows(&store, &w).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mode, SearchMode::Naive);
        assert_eq!(rows[2].mode, SearchMode::Full);
        // Network ordering: naive worst.
        assert!(
            rows[0].report.breakdown.network_us > rows[2].report.breakdown.network_us
        );
    }
}
