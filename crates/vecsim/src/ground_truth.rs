//! Exact brute-force nearest-neighbour computation.
//!
//! Used to produce the ground truth that recall is measured against. The
//! batch variant fans out over `std::thread::scope` so building ground
//! truth for bench-scale datasets stays fast without pulling in a thread
//! pool dependency.

use crate::{Dataset, Metric, Neighbor, TopK};

/// Exact top-`k` neighbours of `query` in `data` under `metric`, sorted by
/// ascending distance.
///
/// Returns fewer than `k` entries when the dataset is smaller than `k`.
///
/// # Example
///
/// ```rust
/// use vecsim::{ground_truth, Dataset, Metric};
///
/// # fn main() -> Result<(), vecsim::Error> {
/// let ds = Dataset::from_rows(&[[0.0f32, 0.0], [1.0, 0.0], [5.0, 5.0]])?;
/// let top = ground_truth::exact(&ds, &[0.9, 0.1], 2, Metric::L2);
/// assert_eq!(top[0].id, 1);
/// assert_eq!(top[1].id, 0);
/// # Ok(())
/// # }
/// ```
pub fn exact(data: &Dataset, query: &[f32], k: usize, metric: Metric) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for (i, v) in data.iter().enumerate() {
        top.push(i as u32, metric.distance(query, v));
    }
    top.into_sorted_vec()
}

/// Exact top-`k` for every query, parallelized across available cores.
///
/// The output preserves query order: `result[i]` answers `queries.get(i)`.
pub fn exact_batch(
    data: &Dataset,
    queries: &Dataset,
    k: usize,
    metric: Metric,
) -> Vec<Vec<Neighbor>> {
    let n = queries.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<Neighbor>> = vec![Vec::new(); n];

    std::thread::scope(|s| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            s.spawn(move || {
                for (off, res) in slot.iter_mut().enumerate() {
                    *res = exact(data, queries.get(start + off), k, metric);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn exact_finds_true_nearest() {
        let ds = Dataset::from_rows(&[[0.0f32, 0.0], [3.0, 0.0], [0.0, 1.0]]).unwrap();
        let top = exact(&ds, &[0.0, 0.9], 1, Metric::L2);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].id, 2);
    }

    #[test]
    fn exact_is_sorted_ascending() {
        let ds = gen::uniform(8, 200, 0.0, 1.0, 3).unwrap();
        let q = vec![0.5f32; 8];
        let top = exact(&ds, &q, 10, Metric::L2);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn exact_with_small_dataset_returns_all() {
        let ds = Dataset::from_rows(&[[1.0f32], [2.0]]).unwrap();
        let top = exact(&ds, &[0.0], 10, Metric::L2);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn batch_matches_single_query_path() {
        let ds = gen::uniform(4, 300, 0.0, 1.0, 9).unwrap();
        let qs = gen::uniform(4, 17, 0.0, 1.0, 10).unwrap();
        let batch = exact_batch(&ds, &qs, 5, Metric::L2);
        assert_eq!(batch.len(), 17);
        for (i, expected) in batch.iter().enumerate() {
            let single = exact(&ds, qs.get(i), 5, Metric::L2);
            assert_eq!(&single, expected, "query {i} diverged");
        }
    }

    #[test]
    fn batch_of_zero_queries_is_empty() {
        let ds = gen::uniform(4, 10, 0.0, 1.0, 9).unwrap();
        let qs = Dataset::new(4);
        assert!(exact_batch(&ds, &qs, 5, Metric::L2).is_empty());
    }

    #[test]
    fn self_queries_return_themselves_first() {
        let ds = gen::uniform(6, 50, 0.0, 1.0, 4).unwrap();
        for i in (0..50).step_by(7) {
            let top = exact(&ds, ds.get(i), 1, Metric::L2);
            assert_eq!(top[0].id, i as u32);
            assert_eq!(top[0].dist, 0.0);
        }
    }
}
