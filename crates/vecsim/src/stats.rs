//! Dataset statistics.
//!
//! Small descriptive-statistics helpers used to sanity-check generated
//! workloads (are SIFT-like vectors actually in `[0, 255]`? how clustered
//! is the data?) and to choose benchmark parameters like query noise from
//! the data itself instead of magic constants.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, Metric};

/// Summary statistics of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of vectors.
    pub len: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Smallest component value.
    pub min: f32,
    /// Largest component value.
    pub max: f32,
    /// Mean of all components.
    pub component_mean: f64,
    /// Standard deviation of all components.
    pub component_std: f64,
    /// Mean Euclidean norm of the vectors.
    pub mean_norm: f64,
}

/// Computes [`DatasetStats`] in one pass.
///
/// An empty dataset yields zeroed statistics with `min`/`max` of `0.0`.
///
/// # Example
///
/// ```rust
/// use vecsim::{gen, stats};
///
/// # fn main() -> Result<(), vecsim::Error> {
/// let ds = gen::sift_like(500, 1)?;
/// let s = stats::describe(&ds);
/// assert_eq!(s.dim, 128);
/// assert!(s.min >= 0.0 && s.max <= 255.0);
/// # Ok(())
/// # }
/// ```
pub fn describe(data: &Dataset) -> DatasetStats {
    if data.is_empty() {
        return DatasetStats {
            len: 0,
            dim: data.dim(),
            min: 0.0,
            max: 0.0,
            component_mean: 0.0,
            component_std: 0.0,
            mean_norm: 0.0,
        };
    }
    let flat = data.as_flat();
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &x in flat {
        min = min.min(x);
        max = max.max(x);
        sum += f64::from(x);
        sum_sq += f64::from(x) * f64::from(x);
    }
    let n = flat.len() as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);

    let mut norm_sum = 0.0f64;
    for row in data.iter() {
        norm_sum += f64::from(crate::distance::norm(row));
    }

    DatasetStats {
        len: data.len(),
        dim: data.dim(),
        min,
        max,
        component_mean: mean,
        component_std: var.sqrt(),
        mean_norm: norm_sum / data.len() as f64,
    }
}

/// Estimates the mean distance from a vector to its nearest neighbour,
/// over `samples` randomly chosen probes (exact scan per probe). This is
/// the natural scale for query perturbation noise: noise well below it
/// keeps the perturbed base the true nearest; noise above it makes
/// queries genuinely hard.
///
/// Returns `0.0` for datasets with fewer than two vectors.
pub fn mean_nn_distance(data: &Dataset, metric: Metric, samples: usize, seed: u64) -> f64 {
    if data.len() < 2 || samples == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = samples.min(data.len());
    let mut total = 0.0f64;
    for _ in 0..samples {
        let i = rng.gen_range(0..data.len());
        let probe = data.get(i);
        let mut best = f32::INFINITY;
        for (j, v) in data.iter().enumerate() {
            if j == i {
                continue;
            }
            best = best.min(metric.distance(probe, v));
        }
        total += f64::from(best);
    }
    total / samples as f64
}

/// Hopkins-style clustering-tendency estimate in `[0, 1]`: values near
/// `0.5` indicate uniform data; values near `1.0` indicate strong
/// clustering. Uses `probes` random real points versus `probes` uniform
/// synthetic points within the data's bounding box.
pub fn clustering_tendency(data: &Dataset, probes: usize, seed: u64) -> f64 {
    if data.len() < 4 || probes == 0 {
        return 0.5;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = data.dim();
    let mut lo = vec![f32::INFINITY; dim];
    let mut hi = vec![f32::NEG_INFINITY; dim];
    for row in data.iter() {
        for (d, &x) in row.iter().enumerate() {
            lo[d] = lo[d].min(x);
            hi[d] = hi[d].max(x);
        }
    }

    let nn_excluding = |probe: &[f32], exclude: Option<usize>| -> f64 {
        let mut best = f32::INFINITY;
        for (j, v) in data.iter().enumerate() {
            if Some(j) == exclude {
                continue;
            }
            best = best.min(crate::l2_sq(probe, v));
        }
        f64::from(best).sqrt()
    };

    let probes = probes.min(data.len() - 1);
    let mut w = 0.0f64; // real-point NN distances
    let mut u = 0.0f64; // uniform-point NN distances
    let mut synth = vec![0.0f32; dim];
    for _ in 0..probes {
        let i = rng.gen_range(0..data.len());
        w += nn_excluding(data.get(i), Some(i));
        for d in 0..dim {
            synth[d] = if hi[d] > lo[d] {
                rng.gen_range(lo[d]..hi[d])
            } else {
                lo[d]
            };
        }
        u += nn_excluding(&synth, None);
    }
    if u + w == 0.0 {
        0.5
    } else {
        u / (u + w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn describe_matches_hand_computation() {
        let ds = Dataset::from_rows(&[[0.0f32, 2.0], [4.0, 6.0]]).unwrap();
        let s = describe(&ds);
        assert_eq!(s.len, 2);
        assert_eq!(s.dim, 2);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 6.0);
        assert!((s.component_mean - 3.0).abs() < 1e-9);
        // std of {0,2,4,6} = sqrt(5)
        assert!((s.component_std - 5f64.sqrt()).abs() < 1e-6);
        // norms: 2 and sqrt(52)
        assert!((s.mean_norm - (2.0 + 52f64.sqrt()) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn describe_empty_is_zeroed() {
        let s = describe(&Dataset::new(4));
        assert_eq!(s.len, 0);
        assert_eq!(s.mean_norm, 0.0);
    }

    #[test]
    fn sift_like_stats_are_in_range() {
        let ds = gen::sift_like(300, 2).unwrap();
        let s = describe(&ds);
        assert!(s.min >= 0.0);
        assert!(s.max <= 255.0);
        assert!(s.component_std > 1.0, "SIFT-like data should have spread");
    }

    #[test]
    fn mean_nn_distance_is_positive_and_scale_sensitive() {
        let near = gen::uniform(4, 200, 0.0, 1.0, 3).unwrap();
        let far = gen::uniform(4, 200, 0.0, 100.0, 3).unwrap();
        let d_near = mean_nn_distance(&near, Metric::L2, 20, 4);
        let d_far = mean_nn_distance(&far, Metric::L2, 20, 4);
        assert!(d_near > 0.0);
        assert!(d_far > d_near * 100.0, "{d_far} vs {d_near}");
    }

    #[test]
    fn mean_nn_distance_degenerate_cases() {
        assert_eq!(mean_nn_distance(&Dataset::new(4), Metric::L2, 5, 0), 0.0);
        let one = Dataset::from_rows(&[[1.0f32]]).unwrap();
        assert_eq!(mean_nn_distance(&one, Metric::L2, 5, 0), 0.0);
    }

    #[test]
    fn clustered_data_scores_higher_than_uniform() {
        let uniform = gen::uniform(8, 400, 0.0, 255.0, 5).unwrap();
        let (clustered, _) = gen::GaussianMixture::new(8, 5)
            .center_range(0.0, 255.0)
            .cluster_std(2.0)
            .generate(400, 6)
            .unwrap();
        let h_uniform = clustering_tendency(&uniform, 30, 7);
        let h_clustered = clustering_tendency(&clustered, 30, 7);
        assert!(
            h_clustered > h_uniform + 0.1,
            "clustered {h_clustered} vs uniform {h_uniform}"
        );
        assert!((0.3..0.75).contains(&h_uniform), "uniform H = {h_uniform}");
    }

    #[test]
    fn tendency_degenerate_is_neutral() {
        assert_eq!(clustering_tendency(&Dataset::new(4), 5, 0), 0.5);
    }
}
