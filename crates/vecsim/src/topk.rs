//! Bounded top-k collection.
//!
//! [`TopK`] is a size-bounded max-heap over [`Neighbor`]s: it retains the
//! `k` smallest-distance entries seen so far, evicting the current worst
//! when a closer candidate arrives. It is the shared building block for the
//! brute-force ground truth, HNSW's result collection, and d-HNSW's
//! cross-partition candidate merging.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate neighbour: vector id plus its distance to the query.
///
/// Ordering is total: by distance (via [`f32::total_cmp`]) and then by id,
/// so `Neighbor` can live in heaps and be sorted deterministically even in
/// the presence of ties.
///
/// # Example
///
/// ```rust
/// use vecsim::Neighbor;
///
/// let mut v = vec![Neighbor::new(2, 0.5), Neighbor::new(1, 0.25)];
/// v.sort();
/// assert_eq!(v[0].id, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Identifier of the vector within its dataset.
    pub id: u32,
    /// Distance from the query under the active metric.
    pub dist: f32,
}

impl Neighbor {
    /// Creates a neighbour record.
    pub fn new(id: u32, dist: f32) -> Self {
        Neighbor { id, dist }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// A bounded collection of the `k` nearest neighbours seen so far.
///
/// # Example
///
/// ```rust
/// use vecsim::TopK;
///
/// let mut top = TopK::new(2);
/// top.push(0, 3.0);
/// top.push(1, 1.0);
/// top.push(2, 2.0);
/// let out = top.into_sorted_vec();
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[0].id, 1);
/// assert_eq!(out[1].id, 2);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Max-heap: the root is the *worst* of the current best-k, so a new
    // candidate only has to beat the root.
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a collector for the `k` nearest entries. `k == 0` collects
    /// nothing.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps it only if it is among the best `k` so far.
    /// Returns `true` when the candidate was retained.
    #[inline]
    pub fn push(&mut self, id: u32, dist: f32) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(Neighbor::new(id, dist));
            return true;
        }
        let worst = self
            .heap
            .peek()
            .expect("heap is non-empty when len == k > 0");
        if Neighbor::new(id, dist) < *worst {
            self.heap.pop();
            self.heap.push(Neighbor::new(id, dist));
            true
        } else {
            false
        }
    }

    /// The current worst retained distance, i.e. the threshold a new
    /// candidate must beat once the collector is full. `None` while fewer
    /// than `k` candidates have been offered.
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|n| n.dist)
        }
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the collector and returns neighbours sorted by ascending
    /// distance.
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort();
        v
    }
}

impl Extend<Neighbor> for TopK {
    fn extend<T: IntoIterator<Item = Neighbor>>(&mut self, iter: T) {
        for n in iter {
            self.push(n.id, n.dist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_k_best() {
        let mut t = TopK::new(3);
        for (id, d) in [(0, 9.0), (1, 1.0), (2, 8.0), (3, 2.0), (4, 3.0)] {
            t.push(id, d);
        }
        let out = t.into_sorted_vec();
        let ids: Vec<u32> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut t = TopK::new(0);
        assert!(!t.push(0, 1.0));
        assert!(t.is_empty());
        assert!(t.into_sorted_vec().is_empty());
    }

    #[test]
    fn threshold_none_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(0, 5.0);
        assert_eq!(t.threshold(), None);
        t.push(1, 3.0);
        assert_eq!(t.threshold(), Some(5.0));
        t.push(2, 1.0);
        assert_eq!(t.threshold(), Some(3.0));
    }

    #[test]
    fn ties_break_by_id_deterministically() {
        let mut t = TopK::new(2);
        t.push(7, 1.0);
        t.push(3, 1.0);
        t.push(5, 1.0);
        let ids: Vec<u32> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn push_returns_whether_candidate_was_kept() {
        let mut t = TopK::new(1);
        assert!(t.push(0, 2.0));
        assert!(!t.push(1, 3.0));
        assert!(t.push(2, 1.0));
    }

    #[test]
    fn handles_nan_via_total_order_without_panicking() {
        let mut t = TopK::new(2);
        t.push(0, f32::NAN);
        t.push(1, 1.0);
        t.push(2, 0.5);
        // NaN sorts greater than every real number under total_cmp, so it
        // gets evicted.
        let ids: Vec<u32> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 1]);
    }

    #[test]
    fn extend_merges_candidate_streams() {
        let mut t = TopK::new(2);
        t.extend([Neighbor::new(0, 4.0), Neighbor::new(1, 2.0)]);
        t.extend([Neighbor::new(2, 3.0)]);
        let ids: Vec<u32> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
