//! Distance kernels.
//!
//! All kernels operate on `&[f32]` slices of equal length. The hot loops are
//! manually unrolled four-wide, which lets LLVM vectorize them without any
//! `unsafe` or architecture-specific intrinsics. [`Metric`] selects a kernel
//! at runtime; everything downstream (HNSW, d-HNSW) is metric-agnostic.

/// Distance metric selector.
///
/// All metrics are expressed as *distances* (smaller is closer) so that the
/// same candidate ordering code works for every metric:
///
/// - [`Metric::L2`] — squared Euclidean distance. The square root is
///   monotone, so ranking by the squared distance is equivalent and cheaper.
/// - [`Metric::InnerProduct`] — negated dot product (maximum inner product
///   search expressed as a minimization).
/// - [`Metric::Cosine`] — `1 − cos(a, b)`.
///
/// # Example
///
/// ```rust
/// use vecsim::Metric;
///
/// let a = [1.0, 0.0];
/// let b = [0.0, 1.0];
/// assert_eq!(Metric::L2.distance(&a, &b), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Squared Euclidean distance.
    #[default]
    L2,
    /// Negated inner product.
    InnerProduct,
    /// Cosine distance `1 − cos`.
    Cosine,
}

impl Metric {
    /// Computes the distance between `a` and `b` under this metric.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `a.len() != b.len()`; in release builds the
    /// shorter length wins (the kernels iterate over `min(len)` lanes).
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "metric arguments must match in length");
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::InnerProduct => -dot(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }

    /// A short stable name, used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            Metric::L2 => "l2",
            Metric::InnerProduct => "ip",
            Metric::Cosine => "cosine",
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Squared Euclidean distance between `a` and `b`.
///
/// ```rust
/// assert_eq!(vecsim::l2_sq(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
/// ```
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let mut s0 = 0.0f32;
    let mut s1 = 0.0f32;
    let mut s2 = 0.0f32;
    let mut s3 = 0.0f32;
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..n {
        let d = a[j] - b[j];
        tail += d * d;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Dot product of `a` and `b`.
///
/// ```rust
/// assert_eq!(vecsim::dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
/// ```
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let mut s0 = 0.0f32;
    let mut s1 = 0.0f32;
    let mut s2 = 0.0f32;
    let mut s3 = 0.0f32;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0f32;
    for j in chunks * 4..n {
        tail += a[j] * b[j];
    }
    s0 + s1 + s2 + s3 + tail
}

/// Euclidean norm of `a`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine distance `1 − cos(a, b)`.
///
/// Degenerate zero-norm inputs are defined to be at distance `1.0` from
/// everything (they carry no directional information).
///
/// ```rust
/// let d = vecsim::cosine_distance(&[1.0, 0.0], &[1.0, 0.0]);
/// assert!(d.abs() < 1e-6);
/// ```
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_l2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn l2_matches_naive_across_lengths() {
        // Cover every unrolling remainder 0..=3 and longer vectors.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 128, 960] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5 - 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
            let fast = l2_sq(&a, &b);
            let slow = naive_l2(&a, &b);
            assert!(
                (fast - slow).abs() <= 1e-3 * slow.abs().max(1.0),
                "n={n}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn dot_matches_naive_across_lengths() {
        for n in [0usize, 1, 3, 4, 6, 13, 128] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25).collect();
            let b: Vec<f32> = (0..n).map(|i| 1.0 - (i as f32) * 0.125).collect();
            let fast = dot(&a, &b);
            let slow = naive_dot(&a, &b);
            assert!((fast - slow).abs() <= 1e-3 * slow.abs().max(1.0));
        }
    }

    #[test]
    fn l2_is_zero_on_identical_vectors() {
        let v: Vec<f32> = (0..128).map(|i| i as f32).collect();
        assert_eq!(l2_sq(&v, &v), 0.0);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_one() {
        let d = cosine_distance(&[1.0, 0.0], &[0.0, 5.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_two() {
        let d = cosine_distance(&[2.0, 0.0], &[-1.0, 0.0]);
        assert!((d - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_norm_defined_as_one() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn inner_product_metric_prefers_larger_dot() {
        // Larger dot product => smaller "distance".
        let q = [1.0, 1.0];
        let close = [2.0, 2.0];
        let far = [0.1, 0.1];
        assert!(Metric::InnerProduct.distance(&q, &close) < Metric::InnerProduct.distance(&q, &far));
    }

    #[test]
    fn metric_names_are_stable() {
        assert_eq!(Metric::L2.to_string(), "l2");
        assert_eq!(Metric::InnerProduct.to_string(), "ip");
        assert_eq!(Metric::Cosine.to_string(), "cosine");
    }

    #[test]
    fn metric_is_symmetric_for_l2_and_cosine() {
        let a: Vec<f32> = (0..17).map(|i| i as f32 * 0.3).collect();
        let b: Vec<f32> = (0..17).map(|i| 5.0 - i as f32 * 0.2).collect();
        for m in [Metric::L2, Metric::Cosine] {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            assert!((ab - ba).abs() < 1e-5, "{m}: {ab} vs {ba}");
        }
    }
}
