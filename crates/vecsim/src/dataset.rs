//! Flat vector container.
//!
//! [`Dataset`] stores `n` vectors of a fixed dimensionality `d` in one
//! contiguous `Vec<f32>`. This is the layout everything else in the
//! workspace assumes: distance kernels get tight slices, serialization is a
//! `memcpy`, and the RDMA layout code can compute byte offsets directly.

use crate::{Error, Result};

/// A set of fixed-dimension `f32` vectors stored contiguously.
///
/// # Example
///
/// ```rust
/// use vecsim::Dataset;
///
/// # fn main() -> Result<(), vecsim::Error> {
/// let mut ds = Dataset::new(3);
/// ds.push(&[1.0, 2.0, 3.0])?;
/// ds.push(&[4.0, 5.0, 6.0])?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.get(1), &[4.0, 5.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
}

impl Dataset {
    /// Creates an empty dataset for vectors of dimensionality `dim`.
    ///
    /// A `dim` of zero is permitted only for the `Default` empty value;
    /// pushing into a zero-dimension dataset returns an error.
    pub fn new(dim: usize) -> Self {
        Dataset {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty dataset with capacity for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        Dataset {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a dataset from a flat buffer of `n * dim` floats.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `dim` is zero or the buffer
    /// length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidParameter("dim must be non-zero".into()));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(Error::InvalidParameter(format!(
                "flat buffer length {} is not a multiple of dim {}",
                data.len(),
                dim
            )));
        }
        Ok(Dataset { dim, data })
    }

    /// Builds a dataset from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if any row disagrees with the
    /// first row's length, or [`Error::InvalidParameter`] on empty input
    /// rows of zero length.
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Result<Self> {
        let dim = rows.first().map(|r| r.as_ref().len()).unwrap_or(0);
        if !rows.is_empty() && dim == 0 {
            return Err(Error::InvalidParameter("rows must be non-empty".into()));
        }
        let mut ds = Dataset::with_capacity(dim.max(1), rows.len());
        ds.dim = if rows.is_empty() { 0 } else { dim };
        for r in rows {
            ds.push(r.as_ref())?;
        }
        Ok(ds)
    }

    /// The dimensionality of every vector in this dataset.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors stored.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether the dataset holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the `i`-th vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Returns the `i`-th vector, or `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, i: usize) -> Option<&[f32]> {
        if i < self.len() {
            Some(self.get(i))
        } else {
            None
        }
    }

    /// Appends a vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `v.len() != self.dim()`, and
    /// [`Error::InvalidParameter`] when the dataset was created with a zero
    /// dimension.
    pub fn push(&mut self, v: &[f32]) -> Result<()> {
        if self.dim == 0 {
            return Err(Error::InvalidParameter(
                "cannot push into a zero-dimension dataset".into(),
            ));
        }
        if v.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                got: v.len(),
            });
        }
        self.data.extend_from_slice(v);
        Ok(())
    }

    /// Iterates over vectors as slices.
    pub fn iter(&self) -> Iter<'_> {
        Iter { ds: self, next: 0 }
    }

    /// The underlying flat buffer, `len() * dim()` floats.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the dataset and returns the flat buffer.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Returns a new dataset containing the rows selected by `ids`, in
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds.
    pub fn select(&self, ids: &[u32]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, ids.len());
        for &id in ids {
            out.data.extend_from_slice(self.get(id as usize));
        }
        out
    }

    /// Total payload size in bytes (`len * dim * 4`).
    pub fn byte_len(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Iterator over dataset rows produced by [`Dataset::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    ds: &'a Dataset,
    next: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a [f32];

    fn next(&mut self) -> Option<Self::Item> {
        let out = self.ds.try_get(self.next)?;
        self.next += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.ds.len().saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl<'a> ExactSizeIterator for Iter<'a> {}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a [f32];
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0, 2.0]).unwrap();
        ds.push(&[3.0, 4.0]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.get(0), &[1.0, 2.0]);
        assert_eq!(ds.get(1), &[3.0, 4.0]);
    }

    #[test]
    fn push_wrong_dim_is_rejected() {
        let mut ds = Dataset::new(3);
        let err = ds.push(&[1.0]).unwrap_err();
        assert!(matches!(
            err,
            Error::DimensionMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn push_into_zero_dim_is_rejected() {
        let mut ds = Dataset::default();
        assert!(ds.push(&[]).is_err());
    }

    #[test]
    fn from_flat_validates_multiple() {
        assert!(Dataset::from_flat(3, vec![0.0; 7]).is_err());
        assert!(Dataset::from_flat(0, vec![]).is_err());
        let ds = Dataset::from_flat(3, vec![0.0; 9]).unwrap();
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = [[1.0f32, 2.0], [3.0, 4.0], [5.0, 6.0]];
        let ds = Dataset::from_rows(&rows).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.get(2), &[5.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows: [&[f32]; 2] = [&[1.0, 2.0], &[3.0]];
        assert!(Dataset::from_rows(&rows).is_err());
    }

    #[test]
    fn from_rows_empty_gives_empty_dataset() {
        let rows: [&[f32]; 0] = [];
        let ds = Dataset::from_rows(&rows).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn iter_visits_rows_in_order() {
        let ds = Dataset::from_flat(1, vec![10.0, 20.0, 30.0]).unwrap();
        let rows: Vec<f32> = ds.iter().map(|r| r[0]).collect();
        assert_eq!(rows, vec![10.0, 20.0, 30.0]);
        assert_eq!(ds.iter().len(), 3);
    }

    #[test]
    fn select_extracts_rows_in_requested_order() {
        let ds = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]).unwrap();
        let sel = ds.select(&[2, 0]);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.get(0), &[2.0, 2.0]);
        assert_eq!(sel.get(1), &[0.0, 0.0]);
    }

    #[test]
    fn try_get_out_of_bounds_is_none() {
        let ds = Dataset::from_flat(2, vec![0.0; 4]).unwrap();
        assert!(ds.try_get(2).is_none());
        assert!(ds.try_get(1).is_some());
    }

    #[test]
    fn byte_len_counts_payload() {
        let ds = Dataset::from_flat(4, vec![0.0; 8]).unwrap();
        assert_eq!(ds.byte_len(), 32);
    }
}
